//! Criterion bench for the ablation studies called out in DESIGN.md: choice
//! sharing on/off, critical-ratio sweep, mixed vs single representation.

use mch_bench::harness::Criterion;
use mch_bench::{criterion_group, criterion_main};
use mch_bench::experiments::{
    ablation_choice_sharing, ablation_critical_ratio, ablation_mixed_vs_single,
};

fn bench_ablation(c: &mut Criterion) {
    let net = mch_benchmarks::benchmark("int2float").unwrap();
    let mut group = c.benchmark_group("ablation_int2float");
    group.sample_size(10);
    group.bench_function("choice_sharing", |b| b.iter(|| ablation_choice_sharing(&net)));
    group.bench_function("critical_ratio_sweep", |b| {
        b.iter(|| ablation_critical_ratio(&net, &[0.5, 0.7, 0.9]))
    });
    group.bench_function("mixed_vs_single", |b| b.iter(|| ablation_mixed_vs_single(&net)));
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
