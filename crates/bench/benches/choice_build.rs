//! Benchmark for parallel plan/commit choice construction: serial-vs-threaded
//! curves for `build_mch`, a per-phase wall-time breakdown, the
//! commit-phase scaling curve of the sharded concurrent strash (serial
//! commit walk vs the coordinator's link phase, per thread count), the
//! choice phase's share of a full MCH flow, and the arena waste reclaimed by
//! `NetworkCuts::compact` after choice transfer. Results are written to
//! `BENCH_choice.json` at the workspace root.
//!
//! Every threaded build is checked **identical** to the serial one (the
//! `ChoiceNetwork` comparison covers the mixed network node for node, the
//! choice classes and the deterministic statistics) — determinism is the
//! hard invariant; the speedup curve is only meaningful when the host
//! actually has the cores (`host_cpus` is recorded; on a 1-core container
//! the curve hovers around 1.0x and measures pool overhead, not scaling).
//!
//! Set `MCH_BENCH_SMOKE=1` for a reduced circuit list with fewer samples
//! (used by CI); set `MCH_BENCH_FULL=1` for the complete list.

use mch_bench::harness::{format_ns, Criterion};
use mch_benchmarks::{barrel_shifter, multiplier, sine_approx, square, voter};
use mch_choice::{build_mch, build_mch_with_stats, MchParams, MchStats};
use mch_core::{asic_flow_mch, MchConfig};
use mch_cut::{CutCost, CutCostModel};
use mch_logic::Network;
use mch_mapper::prepare_cuts;
use mch_techlib::asap7_lite;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

struct Row {
    circuit: String,
    gates: usize,
    serial_ns: f64,
    parallel_ns: Vec<f64>, // same order as THREAD_COUNTS
    deterministic: bool,
    phases: MchStats,
    choices: usize,
    /// `MchStats::commit_time` of the serial build: the fused serial commit
    /// walk through the plain structural hash.
    serial_commit_ns: f64,
    /// `MchStats::commit_time` per entry of `THREAD_COUNTS`: the
    /// coordinator's id-ordered linking of worker-claimed reservations —
    /// the phase the sharded strash shrinks.
    commit_ns: Vec<f64>,
}

fn gather_circuits() -> Vec<(String, Network)> {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let full = std::env::var_os("MCH_BENCH_FULL").is_some();
    if smoke {
        vec![
            ("multiplier12".into(), multiplier(12)),
            ("voter127".into(), voter(127)),
            ("bar32".into(), barrel_shifter(32)),
        ]
    } else {
        let mut v = vec![
            ("multiplier16".into(), multiplier(16)),
            ("square24".into(), square(24)),
            ("voter255".into(), voter(255)),
            ("bar64".into(), barrel_shifter(64)),
        ];
        if full {
            v.push(("sin12".into(), sine_approx(12)));
            v.push(("multiplier24".into(), multiplier(24)));
        }
        v
    }
}

/// The choice-heaviest preset (two area strategies plus an XMG secondary
/// representation), at an explicit thread count.
fn params(threads: usize) -> MchParams {
    MchParams::area_oriented().with_threads(threads)
}

/// Serial-vs-parallel identity check, run once per circuit outside timing.
/// Compares the full choice network (mixed network, classes) and the
/// deterministic half of the statistics, and grabs the commit-phase wall
/// time of each threaded build for the commit scaling curve.
fn check_determinism(net: &Network) -> (bool, MchStats, usize, Vec<f64>) {
    let (serial, serial_stats) = build_mch_with_stats(net, &params(1));
    let mut ok = true;
    let mut commit_ns = Vec::with_capacity(THREAD_COUNTS.len());
    for &t in &THREAD_COUNTS {
        let (threaded, stats) = build_mch_with_stats(net, &params(t));
        ok &= serial == threaded && serial_stats.timeless() == stats.timeless();
        commit_ns.push(stats.commit_time.as_nanos() as f64);
    }
    let choices = serial.choice_count();
    (ok, serial_stats, choices, commit_ns)
}

fn main() {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let sample_size = if smoke { 3 } else { 5 };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let circuits = gather_circuits();

    let mut c = Criterion::new();
    let mut rows: Vec<Row> = Vec::new();
    for (name, net) in &circuits {
        let (deterministic, phases, choices, commit_ns) = check_determinism(net);
        let mut group = c.benchmark_group(format!("choice_build/{name}"));
        group.sample_size(sample_size);
        group.bench_function("serial", |b| b.iter(|| build_mch(net, &params(1))));
        for &t in &THREAD_COUNTS {
            group.bench_function(format!("{t}threads"), |b| {
                b.iter(|| build_mch(net, &params(t)))
            });
        }
        group.finish();
        let records = c.records();
        let base = records.len() - 1 - THREAD_COUNTS.len();
        rows.push(Row {
            circuit: name.clone(),
            gates: net.gate_count(),
            serial_ns: records[base].median_ns,
            parallel_ns: (0..THREAD_COUNTS.len())
                .map(|i| records[base + 1 + i].median_ns)
                .collect(),
            deterministic,
            serial_commit_ns: phases.commit_time.as_nanos() as f64,
            phases,
            choices,
            commit_ns,
        });
    }
    c.final_summary();

    // Choice share of a full flow: one end-to-end MCH ASIC flow per circuit
    // (un-benched single shot; the flow verifies internally) against the
    // serial choice-construction median.
    let lib = asap7_lite();
    let mut flow_rows: Vec<(String, f64, f64)> = Vec::new();
    for ((name, net), row) in circuits.iter().zip(&rows) {
        let start = Instant::now();
        let flow = asic_flow_mch(net, &lib, &MchConfig::area_oriented().with_threads(1));
        let flow_ns = start.elapsed().as_nanos() as f64;
        assert!(flow.verified, "{name}: MCH flow failed verification");
        flow_rows.push((name.clone(), flow_ns, row.serial_ns));
    }

    // Arena waste after choice transfer, and what `compact` reclaims. The
    // observable cut sets must be untouched by compaction.
    let unit = CutCostModel::unit();
    let mut compact_rows: Vec<(String, usize, usize, usize)> = Vec::new();
    for (name, net) in &circuits {
        let mch = build_mch(net, &params(1));
        let mut cuts = prepare_cuts(&mch, 4, 8, CutCost::Hybrid, &unit, 1);
        let total = cuts.total_cuts();
        let wasted = cuts.wasted_slots();
        let before: usize = (0..mch.network().len())
            .map(|i| cuts.of(mch_logic::NodeId::from_index(i)).len())
            .sum();
        let reclaimed = cuts.compact();
        let after: usize = (0..mch.network().len())
            .map(|i| cuts.of(mch_logic::NodeId::from_index(i)).len())
            .sum();
        assert_eq!(before, after, "{name}: compaction changed a cut set");
        assert_eq!(reclaimed, wasted, "{name}: reclaimed != tracked waste");
        assert_eq!(cuts.wasted_slots(), 0, "{name}: residual waste after compact");
        compact_rows.push((name.clone(), total, wasted, cuts.wasted_slots()));
    }

    let geomean = |f: &dyn Fn(&Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let geomeans: Vec<f64> = (0..THREAD_COUNTS.len())
        .map(|i| geomean(&|r: &Row| r.serial_ns / r.parallel_ns[i]))
        .collect();
    let commit_geomeans: Vec<f64> = (0..THREAD_COUNTS.len())
        .map(|i| geomean(&|r: &Row| r.serial_commit_ns / r.commit_ns[i].max(1.0)))
        .collect();
    let all_deterministic = rows.iter().all(|r| r.deterministic);

    let phase_pct = |p: &MchStats| -> [f64; 4] {
        let total = (p.one_to_one_time + p.cut_enum_time + p.resynthesis_time + p.commit_time)
            .as_nanos()
            .max(1) as f64;
        [
            p.one_to_one_time.as_nanos() as f64 / total * 100.0,
            p.cut_enum_time.as_nanos() as f64 / total * 100.0,
            p.resynthesis_time.as_nanos() as f64 / total * 100.0,
            p.commit_time.as_nanos() as f64 / total * 100.0,
        ]
    };

    let mut json = String::from("{\n  \"bench\": \"choice_build\",\n");
    let _ = writeln!(
        json,
        "  \"params\": \"MchParams::area_oriented (cut 4/8, K=8, XMG secondary)\",\n  \"host_cpus\": {host_cpus},\n  \"thread_counts\": [2, 4, 8],\n  \"circuits\": ["
    );
    for (i, r) in rows.iter().enumerate() {
        let mut curve = String::new();
        for (j, &t) in THREAD_COUNTS.iter().enumerate() {
            let _ = write!(
                curve,
                "{{\"threads\": {t}, \"ns\": {:.0}, \"speedup\": {:.2}}}{}",
                r.parallel_ns[j],
                r.serial_ns / r.parallel_ns[j],
                if j + 1 < THREAD_COUNTS.len() { ", " } else { "" },
            );
        }
        let mut commit_curve = String::new();
        for (j, &t) in THREAD_COUNTS.iter().enumerate() {
            let _ = write!(
                commit_curve,
                "{{\"threads\": {t}, \"ns\": {:.0}, \"speedup\": {:.2}}}{}",
                r.commit_ns[j],
                r.serial_commit_ns / r.commit_ns[j].max(1.0),
                if j + 1 < THREAD_COUNTS.len() { ", " } else { "" },
            );
        }
        let pct = phase_pct(&r.phases);
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{}\", \"gates\": {}, \"choices\": {}, \"npn_classes\": {}, \"npn_cache_hits\": {}, \"serial_ns\": {:.0}, \"deterministic\": {}, \"parallel\": [{}], \"commit_phase\": {{\"serial_ns\": {:.0}, \"parallel\": [{}]}}, \"serial_phase_pct\": {{\"one_to_one\": {:.1}, \"cut_enum\": {:.1}, \"resynthesis\": {:.1}, \"commit\": {:.1}}}}}{}",
            r.circuit,
            r.gates,
            r.choices,
            r.phases.npn_classes,
            r.phases.npn_cache_hits,
            r.serial_ns,
            r.deterministic,
            curve,
            r.serial_commit_ns,
            commit_curve,
            pct[0],
            pct[1],
            pct[2],
            pct[3],
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"geomean_speedup\": {{\"2\": {:.2}, \"4\": {:.2}, \"8\": {:.2}}},",
        geomeans[0], geomeans[1], geomeans[2]
    );
    let _ = writeln!(
        json,
        "  \"geomean_commit_speedup\": {{\"2\": {:.2}, \"4\": {:.2}, \"8\": {:.2}}},",
        commit_geomeans[0], commit_geomeans[1], commit_geomeans[2]
    );
    let _ = writeln!(json, "  \"flow_share\": [");
    for (i, (name, flow_ns, choice_ns)) in flow_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{name}\", \"flow_ns\": {flow_ns:.0}, \"choice_ns\": {choice_ns:.0}, \"choice_share_pct\": {:.1}}}{}",
            choice_ns / flow_ns * 100.0,
            if i + 1 < flow_rows.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],\n  \"choice_transfer_compaction\": [");
    for (i, (name, total, wasted, residual)) in compact_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{name}\", \"arena_cuts\": {total}, \"wasted_slots_before\": {wasted}, \"residual_after_compact\": {residual}}}{}",
            if i + 1 < compact_rows.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],\n  \"all_deterministic\": {all_deterministic}\n}}");

    // crates/bench → workspace root.
    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_choice.json");
    std::fs::write(&out, &json).expect("write BENCH_choice.json");

    eprintln!("\nchoice build: speedup vs threads (serial → 2 / 4 / 8), host has {host_cpus} cpu(s):");
    for r in &rows {
        let pct = phase_pct(&r.phases);
        eprintln!(
            "  {:<13} {:>7} gates {:>6} choices  {:>10}  ×{:.2} ×{:.2} ×{:.2}  [1:1 {:.0}% | cuts {:.0}% | resyn {:.0}% | commit {:.0}%]{}",
            r.circuit,
            r.gates,
            r.choices,
            format_ns(r.serial_ns),
            r.serial_ns / r.parallel_ns[0],
            r.serial_ns / r.parallel_ns[1],
            r.serial_ns / r.parallel_ns[2],
            pct[0],
            pct[1],
            pct[2],
            pct[3],
            if r.deterministic { "" } else { "  !! NONDETERMINISTIC" },
        );
    }
    eprintln!(
        "geomean speedup: ×{:.2} (2t) ×{:.2} (4t) ×{:.2} (8t)",
        geomeans[0], geomeans[1], geomeans[2]
    );
    eprintln!(
        "geomean commit-phase speedup: ×{:.2} (2t) ×{:.2} (4t) ×{:.2} (8t)",
        commit_geomeans[0], commit_geomeans[1], commit_geomeans[2]
    );
    for (name, flow_ns, choice_ns) in &flow_rows {
        eprintln!(
            "flow share {name}: choice construction {:.1}% of the MCH ASIC flow",
            choice_ns / flow_ns * 100.0
        );
    }
    for (name, total, wasted, _) in &compact_rows {
        eprintln!(
            "compaction {name}: {total} arena cuts, {wasted} wasted slots reclaimed, 0 residual"
        );
    }
    assert!(
        all_deterministic,
        "threaded choice construction diverged from serial"
    );
    eprintln!("wrote {}", out.display());
}
