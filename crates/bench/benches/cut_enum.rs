//! Benchmark for the zero-allocation priority-cut enumeration rewrite.
//!
//! Times 6-input cut enumeration (`CutParams::new(6, 8)`, the default mapping
//! configuration) over the benchmark suite, comparing the inline
//! implementation against the preserved heap-allocating baseline in
//! `mch_cut::legacy`. Results — per-circuit medians and the aggregate
//! geometric-mean speedup — are written to `BENCH_cuts.json` at the workspace
//! root so the perf trajectory of the cut layer is recorded next to the code.
//!
//! Set `MCH_BENCH_SMOKE=1` to run a reduced circuit list with fewer samples
//! (used by CI); set `MCH_BENCH_FULL=1` to run the entire EPFL-like suite.

use mch_bench::harness::{format_ns, Criterion};
use mch_benchmarks::{benchmark, epfl_suite, epfl_suite_small};
use mch_cut::{enumerate_cuts, legacy_enumerate_cuts, CutParams};
use mch_logic::{convert, Network, NetworkKind};
use std::fmt::Write as _;
use std::path::PathBuf;

struct Row {
    circuit: String,
    gates: usize,
    total_cuts: usize,
    legacy_ns: f64,
    inline_ns: f64,
}

fn gather_circuits() -> Vec<(String, Network)> {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let full = std::env::var_os("MCH_BENCH_FULL").is_some();
    let mut circuits: Vec<(String, Network)> = if smoke {
        ["ctrl", "int2float", "cavlc"]
            .iter()
            .filter_map(|n| benchmark(n).map(|net| (n.to_string(), net)))
            .collect()
    } else if full {
        epfl_suite()
            .into_iter()
            .map(|b| (b.name.to_string(), b.network))
            .collect()
    } else {
        epfl_suite_small()
            .into_iter()
            .map(|b| (b.name.to_string(), b.network))
            .collect()
    };
    // A majority-based view exercises the 3-fanin merge path as well.
    if let Some(net) = benchmark("voter") {
        let mig = convert(&net, NetworkKind::Mig);
        circuits.push(("voter_mig".to_string(), mig));
    }
    circuits
}

fn main() {
    let params = CutParams::new(6, 8);
    let sample_size = if std::env::var_os("MCH_BENCH_SMOKE").is_some() {
        5
    } else {
        10
    };
    let circuits = gather_circuits();
    let mut c = Criterion::new();
    let mut rows: Vec<Row> = Vec::new();
    for (name, net) in &circuits {
        let total_cuts = enumerate_cuts(net, &params).total_cuts();
        let mut group = c.benchmark_group(format!("cut_enum6/{name}"));
        group.sample_size(sample_size);
        group.bench_function("legacy", |b| b.iter(|| legacy_enumerate_cuts(net, &params)));
        group.bench_function("inline", |b| b.iter(|| enumerate_cuts(net, &params)));
        group.finish();
        let records = c.records();
        let legacy_ns = records[records.len() - 2].median_ns;
        let inline_ns = records[records.len() - 1].median_ns;
        rows.push(Row {
            circuit: name.clone(),
            gates: net.gate_count(),
            total_cuts,
            legacy_ns,
            inline_ns,
        });
    }
    c.final_summary();

    let geomean: f64 = (rows
        .iter()
        .map(|r| (r.legacy_ns / r.inline_ns).ln())
        .sum::<f64>()
        / rows.len() as f64)
        .exp();

    let mut json = String::from(
        "{\n  \"bench\": \"cut_enum6\",\n  \"params\": {\"cut_size\": 6, \"cut_limit\": 8},\n  \"circuits\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{}\", \"gates\": {}, \"total_cuts\": {}, \"legacy_ns\": {:.0}, \"inline_ns\": {:.0}, \"speedup\": {:.2}}}{}",
            r.circuit,
            r.gates,
            r.total_cuts,
            r.legacy_ns,
            r.inline_ns,
            r.legacy_ns / r.inline_ns,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(json, "  ],\n  \"geomean_speedup\": {geomean:.2}\n}}\n");

    // crates/bench → workspace root.
    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cuts.json");
    std::fs::write(&out, &json).expect("write BENCH_cuts.json");

    eprintln!("\nper-circuit speedups (legacy → inline):");
    for r in &rows {
        eprintln!(
            "  {:<12} {:>6} gates  {:>10} → {:>10}  ×{:.2}",
            r.circuit,
            r.gates,
            format_ns(r.legacy_ns),
            format_ns(r.inline_ns),
            r.legacy_ns / r.inline_ns
        );
    }
    eprintln!("geomean speedup: ×{geomean:.2}");
    eprintln!("wrote {}", out.display());
}
