//! Benchmark for level-parallel cut enumeration: speedup-vs-threads curves.
//!
//! Times 6-input cut enumeration (`CutParams::new(6, 8)`) over scaled-up
//! variants of the benchmark suite — wide enough that level-sharding has real
//! work per level — comparing the serial driver against
//! `enumerate_cuts_threaded` at 2, 4 and 8 worker threads. Every parallel run
//! is also checked byte-identical to the serial one, and the choice-transfer
//! path reports the arena slots wasted by `extend_node` (bounded by the
//! in-place span reuse). Results are written to `BENCH_parallel.json` at the
//! workspace root.
//!
//! The host core count is recorded in the JSON: speedups are only meaningful
//! when the machine actually has the cores (on a 1-core container the whole
//! curve hovers at or below 1.0x and the numbers measure pool overhead, not
//! scaling).
//!
//! Set `MCH_BENCH_SMOKE=1` for a reduced circuit list with fewer samples
//! (used by CI); set `MCH_BENCH_FULL=1` for the complete scaled suite.

use mch_bench::harness::{format_ns, Criterion};
use mch_benchmarks::{
    barrel_shifter, hypotenuse, multiplier, sine_approx, square, voter,
};
use mch_choice::{build_mch, MchParams};
use mch_cut::{
    enumerate_cuts, enumerate_cuts_threaded, CutCost, CutCostModel, CutParams,
};
use mch_logic::{convert, levelize, Network, NetworkKind};
use mch_mapper::prepare_cuts;
use std::fmt::Write as _;
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

struct Row {
    circuit: String,
    gates: usize,
    levels: usize,
    max_width: usize,
    serial_ns: f64,
    parallel_ns: Vec<f64>, // same order as THREAD_COUNTS
    deterministic: bool,
}

fn gather_circuits() -> Vec<(String, Network)> {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let full = std::env::var_os("MCH_BENCH_FULL").is_some();
    let mut circuits: Vec<(String, Network)> = if smoke {
        vec![
            ("multiplier24".into(), multiplier(24)),
            ("voter255".into(), voter(255)),
            ("bar64".into(), barrel_shifter(64)),
        ]
    } else {
        let mut v = vec![
            ("multiplier32".into(), multiplier(32)),
            ("square48".into(), square(48)),
            ("voter511".into(), voter(511)),
            ("sin20".into(), sine_approx(20)),
            ("bar128".into(), barrel_shifter(128)),
        ];
        if full {
            v.push(("hyp24".into(), hypotenuse(24)));
        }
        v
    };
    // A majority-based view exercises the 3-fanin kernel on the pool too.
    let mig_src = if smoke { voter(255) } else { voter(511) };
    circuits.push(("voter_mig".into(), convert(&mig_src, NetworkKind::Mig)));
    circuits
}

/// Serial-vs-parallel identity check, run once per circuit outside timing.
fn check_determinism(net: &Network, params: &CutParams) -> bool {
    let unit = CutCostModel::unit();
    let serial = enumerate_cuts(net, params);
    THREAD_COUNTS.iter().all(|&t| {
        serial.identical(&enumerate_cuts_threaded(net, params, &unit, t))
    })
}

fn main() {
    let params = CutParams::new(6, 8);
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let sample_size = if smoke { 3 } else { 7 };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let circuits = gather_circuits();
    let unit = CutCostModel::unit();

    let mut c = Criterion::new();
    let mut rows: Vec<Row> = Vec::new();
    for (name, net) in &circuits {
        let deterministic = check_determinism(net, &params);
        let lv = levelize(net);
        let mut group = c.benchmark_group(format!("cut_enum_parallel/{name}"));
        group.sample_size(sample_size);
        group.bench_function("serial", |b| b.iter(|| enumerate_cuts(net, &params)));
        for &t in &THREAD_COUNTS {
            group.bench_function(format!("{t}threads"), |b| {
                b.iter(|| enumerate_cuts_threaded(net, &params, &unit, t))
            });
        }
        group.finish();
        let records = c.records();
        let base = records.len() - 1 - THREAD_COUNTS.len();
        rows.push(Row {
            circuit: name.clone(),
            gates: net.gate_count(),
            levels: lv.num_levels(),
            max_width: lv.max_width(),
            serial_ns: records[base].median_ns,
            parallel_ns: (0..THREAD_COUNTS.len())
                .map(|i| records[base + 1 + i].median_ns)
                .collect(),
            deterministic,
        });
    }
    c.final_summary();

    // Choice-transfer waste: enumerate + transfer over an MCH choice network
    // and report how many arena slots extend_node abandoned.
    let transfer_sources: Vec<(&str, Network)> = vec![
        ("voter63", voter(63)),
        ("bar32", barrel_shifter(32)),
    ];
    let mut transfer_rows = Vec::new();
    for (name, net) in &transfer_sources {
        let mch = build_mch(net, &MchParams::area_oriented());
        let serial = prepare_cuts(&mch, 4, 8, CutCost::Hybrid, &unit, 1);
        let parallel = prepare_cuts(&mch, 4, 8, CutCost::Hybrid, &unit, 4);
        let transfer_deterministic = serial.identical(&parallel);
        transfer_rows.push((
            name.to_string(),
            serial.total_cuts(),
            serial.wasted_slots(),
            transfer_deterministic,
        ));
    }

    let geomean = |f: &dyn Fn(&Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let geomeans: Vec<f64> = (0..THREAD_COUNTS.len())
        .map(|i| geomean(&|r: &Row| r.serial_ns / r.parallel_ns[i]))
        .collect();
    let all_deterministic =
        rows.iter().all(|r| r.deterministic) && transfer_rows.iter().all(|t| t.3);

    let mut json = String::from("{\n  \"bench\": \"cut_enum_parallel\",\n");
    let _ = writeln!(
        json,
        "  \"params\": {{\"cut_size\": 6, \"cut_limit\": 8}},\n  \"host_cpus\": {host_cpus},\n  \"thread_counts\": [2, 4, 8],\n  \"circuits\": ["
    );
    for (i, r) in rows.iter().enumerate() {
        let mut curve = String::new();
        for (j, &t) in THREAD_COUNTS.iter().enumerate() {
            let _ = write!(
                curve,
                "{{\"threads\": {t}, \"ns\": {:.0}, \"speedup\": {:.2}}}{}",
                r.parallel_ns[j],
                r.serial_ns / r.parallel_ns[j],
                if j + 1 < THREAD_COUNTS.len() { ", " } else { "" },
            );
        }
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{}\", \"gates\": {}, \"levels\": {}, \"max_width\": {}, \"serial_ns\": {:.0}, \"deterministic\": {}, \"parallel\": [{}]}}{}",
            r.circuit,
            r.gates,
            r.levels,
            r.max_width,
            r.serial_ns,
            r.deterministic,
            curve,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"geomean_speedup\": {{\"2\": {:.2}, \"4\": {:.2}, \"8\": {:.2}}},",
        geomeans[0], geomeans[1], geomeans[2]
    );
    let _ = writeln!(json, "  \"choice_transfer\": [");
    for (i, (name, total, wasted, det)) in transfer_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{name}\", \"arena_cuts\": {total}, \"wasted_slots\": {wasted}, \"deterministic\": {det}}}{}",
            if i + 1 < transfer_rows.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],\n  \"all_deterministic\": {all_deterministic}\n}}");

    // crates/bench → workspace root.
    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    std::fs::write(&out, &json).expect("write BENCH_parallel.json");

    eprintln!("\nspeedup vs threads (serial → 2 / 4 / 8), host has {host_cpus} cpu(s):");
    for r in &rows {
        eprintln!(
            "  {:<13} {:>7} gates {:>5} levels  {:>10}  ×{:.2} ×{:.2} ×{:.2}{}",
            r.circuit,
            r.gates,
            r.levels,
            format_ns(r.serial_ns),
            r.serial_ns / r.parallel_ns[0],
            r.serial_ns / r.parallel_ns[1],
            r.serial_ns / r.parallel_ns[2],
            if r.deterministic { "" } else { "  !! NONDETERMINISTIC" },
        );
    }
    eprintln!(
        "geomean speedup: ×{:.2} (2t) ×{:.2} (4t) ×{:.2} (8t)",
        geomeans[0], geomeans[1], geomeans[2]
    );
    for (name, total, wasted, _) in &transfer_rows {
        eprintln!("choice transfer {name}: {total} arena cuts, {wasted} wasted slots");
    }
    assert!(
        all_deterministic,
        "parallel enumeration diverged from the serial driver"
    );
    eprintln!("wrote {}", out.display());
}
