//! Criterion bench for the Figure-1 experiment: ASIC mapping of the "Max"
//! circuit in different logic representations.

use mch_bench::harness::Criterion;
use mch_bench::{criterion_group, criterion_main};
use mch_choice::ChoiceNetwork;
use mch_logic::{convert, NetworkKind};
use mch_mapper::{map_asic, AsicMapParams, MappingObjective};
use mch_techlib::asap7_lite;

fn bench_fig1(c: &mut Criterion) {
    let library = asap7_lite();
    let max = mch_benchmarks::benchmark("max").expect("max exists");
    let mut group = c.benchmark_group("fig1_representations");
    group.sample_size(10);
    for kind in [NetworkKind::Aig, NetworkKind::Xmg] {
        let net = convert(&max, kind);
        group.bench_function(format!("map_area_{kind}"), |b| {
            b.iter(|| {
                map_asic(
                    &ChoiceNetwork::from_network(&net),
                    &library,
                    &AsicMapParams::new(MappingObjective::Area),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
