//! Criterion bench for the Figure-2 experiment: the full demo comparison
//! (traditional vs DCH vs MCH) on the `(a+b) > 0` circuit.

use mch_bench::harness::Criterion;
use mch_bench::{criterion_group, criterion_main};
use mch_bench::run_fig2;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_demo");
    group.sample_size(10);
    group.bench_function("three_flows", |b| b.iter(run_fig2));
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
