//! Criterion bench for the Figure-6 experiment: iterated graph mapping with
//! and without MCH.

use mch_bench::harness::Criterion;
use mch_bench::{criterion_group, criterion_main};
use mch_choice::MchParams;
use mch_logic::NetworkKind;
use mch_mapper::MappingObjective;
use mch_opt::{iterate_graph_map, iterate_graph_map_mch};

fn bench_fig6(c: &mut Criterion) {
    let net = mch_benchmarks::benchmark("int2float").unwrap();
    let params = MchParams::mixed(&[NetworkKind::Mig, NetworkKind::Xmg]);
    let mut group = c.benchmark_group("fig6_graph_opt_int2float");
    group.sample_size(10);
    group.bench_function("baseline_graph_map", |b| {
        b.iter(|| iterate_graph_map(&net, NetworkKind::Xmg, MappingObjective::Area, 3))
    });
    group.bench_function("mch_graph_map", |b| {
        b.iter(|| {
            iterate_graph_map_mch(&net, NetworkKind::Xmg, &params, MappingObjective::Area, 3)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
