//! Benchmark for the ASIC-guided fused LUT mapper.
//!
//! Maps every suite circuit three times at the same cut limit, all through
//! the hybrid (depth + area-flow) ranking baseline of `mapping_quality`:
//!
//! * **structural**: static `(size, leaves)` cut order — the common
//!   denominator shared with `BENCH_mapping.json`;
//! * **hybrid**: cost-aware ranking — the pinned quality baseline;
//! * **fused**: hybrid ranking plus the ASIC guide cover
//!   (`FusionMode::Full`): guide-selected cones injected as extra cut
//!   candidates and favoured by a ranking bonus.
//!
//! The per-circuit numbers and the aggregate geometric-mean ratios over the
//! structural denominator (lower is better) are written to
//! `BENCH_fusion.json` at the workspace root. The headline claim this file
//! records: the fused mapper is **no worse than the hybrid baseline on both
//! LUT geomeans and strictly better on at least one**, and its netlists are
//! byte-identical at 1, 2, 4 and 8 worker threads.
//!
//! Set `MCH_BENCH_SMOKE=1` for the reduced CI circuit list; set
//! `MCH_BENCH_FULL=1` for the entire EPFL-like suite.

use mch_benchmarks::{benchmark, epfl_suite, epfl_suite_small};
use mch_cut::CutCost;
use mch_logic::Network;
use mch_mapper::{
    map_lut_fused_network, map_lut_network, FusionMode, LutMapParams, MappingObjective,
};
use mch_techlib::{asap7_lite, LutLibrary};
use std::fmt::Write as _;
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Row {
    circuit: String,
    gates: usize,
    structural_luts: usize,
    structural_levels: u32,
    hybrid_luts: usize,
    hybrid_levels: u32,
    fused_luts: usize,
    fused_levels: u32,
    deterministic: bool,
}

fn gather_circuits() -> Vec<(String, Network)> {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let full = std::env::var_os("MCH_BENCH_FULL").is_some();
    if smoke {
        ["ctrl", "int2float", "cavlc"]
            .iter()
            .filter_map(|n| benchmark(n).map(|net| (n.to_string(), net)))
            .collect()
    } else if full {
        epfl_suite()
            .into_iter()
            .map(|b| (b.name.to_string(), b.network))
            .collect()
    } else {
        epfl_suite_small()
            .into_iter()
            .map(|b| (b.name.to_string(), b.network))
            .collect()
    }
}

fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = ratios.fold((0.0f64, 0usize), |(s, n), r| (s + r.ln(), n + 1));
    (sum / n as f64).exp()
}

fn main() {
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    let objective = MappingObjective::Balanced;
    let circuits = gather_circuits();
    let mut rows: Vec<Row> = Vec::new();
    for (name, net) in &circuits {
        eprintln!("mapping {name}…");
        let params = LutMapParams::new(objective);
        let structural = map_lut_network(net, &lut, &params.with_ranking(CutCost::Structural));
        let hybrid = map_lut_network(net, &lut, &params.with_ranking(CutCost::Hybrid));
        let fused_params = params
            .with_ranking(CutCost::Hybrid)
            .with_fusion(FusionMode::Full);
        let fused = map_lut_fused_network(net, &lut, &lib, &fused_params);
        // Scheduling must never be observable: the guide cover and the fused
        // LUT cover both run under every tested worker count and must hand
        // back the byte-identical netlist.
        let deterministic = THREAD_COUNTS.iter().all(|&threads| {
            map_lut_fused_network(net, &lut, &lib, &fused_params.with_threads(threads)) == fused
        });
        rows.push(Row {
            circuit: name.clone(),
            gates: net.gate_count(),
            structural_luts: structural.lut_count(),
            structural_levels: structural.level_count(),
            hybrid_luts: hybrid.lut_count(),
            hybrid_levels: hybrid.level_count(),
            fused_luts: fused.lut_count(),
            fused_levels: fused.level_count(),
            deterministic,
        });
    }

    let hybrid_level_ratio = geomean(
        rows.iter()
            .map(|r| r.hybrid_levels as f64 / r.structural_levels as f64),
    );
    let hybrid_count_ratio = geomean(
        rows.iter()
            .map(|r| r.hybrid_luts as f64 / r.structural_luts as f64),
    );
    let fused_level_ratio = geomean(
        rows.iter()
            .map(|r| r.fused_levels as f64 / r.structural_levels as f64),
    );
    let fused_count_ratio = geomean(
        rows.iter()
            .map(|r| r.fused_luts as f64 / r.structural_luts as f64),
    );
    let all_deterministic = rows.iter().all(|r| r.deterministic);

    let mut json = String::from(
        "{\n  \"bench\": \"mapping_fusion\",\n  \"params\": {\"cut_limit\": 8, \"objective\": \"balanced\", \"lut_k\": 6, \"guide_library\": \"asap7_lite\", \"fusion\": \"full\", \"thread_counts\": [1, 2, 4, 8]},\n  \"circuits\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{}\", \"gates\": {}, \"structural\": {{\"luts\": {}, \"levels\": {}}}, \"hybrid\": {{\"luts\": {}, \"levels\": {}}}, \"fused\": {{\"luts\": {}, \"levels\": {}}}, \"deterministic\": {}}}{}",
            r.circuit,
            r.gates,
            r.structural_luts,
            r.structural_levels,
            r.hybrid_luts,
            r.hybrid_levels,
            r.fused_luts,
            r.fused_levels,
            r.deterministic,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"geomean_hybrid_over_structural\": {{\"lut_levels\": {hybrid_level_ratio:.4}, \"lut_count\": {hybrid_count_ratio:.4}}},\n  \"geomean_fused_over_structural\": {{\"lut_levels\": {fused_level_ratio:.4}, \"lut_count\": {fused_count_ratio:.4}}},\n  \"all_deterministic\": {all_deterministic}\n}}\n"
    );

    // crates/bench → workspace root.
    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fusion.json");
    std::fs::write(&out, &json).expect("write BENCH_fusion.json");

    eprintln!("\nper-circuit LUT quality (structural / hybrid / fused):");
    for r in &rows {
        eprintln!(
            "  {:<12} {:>6} gates   levels {:>2} / {:>2} / {:>2}   luts {:>5} / {:>5} / {:>5}   deterministic: {}",
            r.circuit,
            r.gates,
            r.structural_levels,
            r.hybrid_levels,
            r.fused_levels,
            r.structural_luts,
            r.hybrid_luts,
            r.fused_luts,
            r.deterministic,
        );
    }
    eprintln!(
        "geomean ratios over structural: hybrid levels {hybrid_level_ratio:.4}, hybrid count {hybrid_count_ratio:.4}, fused levels {fused_level_ratio:.4}, fused count {fused_count_ratio:.4}"
    );
    eprintln!("all_deterministic: {all_deterministic}");
    eprintln!("wrote {}", out.display());

    assert!(
        all_deterministic,
        "fused mapping diverged across thread counts"
    );
    assert!(
        fused_level_ratio <= hybrid_level_ratio + 1e-9
            && fused_count_ratio <= hybrid_count_ratio + 1e-9,
        "fusion regressed a LUT geomean: levels {fused_level_ratio:.4} vs {hybrid_level_ratio:.4}, count {fused_count_ratio:.4} vs {hybrid_count_ratio:.4}"
    );
    assert!(
        fused_level_ratio < hybrid_level_ratio - 1e-9
            || fused_count_ratio < hybrid_count_ratio - 1e-9,
        "fusion improved neither LUT geomean: levels {fused_level_ratio:.4} vs {hybrid_level_ratio:.4}, count {fused_count_ratio:.4} vs {hybrid_count_ratio:.4}"
    );
}
