//! Benchmark for the delay/area-flow-aware cut ranking.
//!
//! Maps every suite circuit twice at the same `cut_limit` — once with the
//! static `(size, leaves)` structural cut order and once with the hybrid
//! (depth + area-flow) ranking — through both mappers:
//!
//! * **6-LUT mapping** (balanced objective): LUT count and LUT levels;
//! * **ASIC mapping** onto `asap7_lite` (balanced objective): cell area and
//!   critical-path delay.
//!
//! The per-circuit numbers and the aggregate geometric-mean ratios
//! (`hybrid / structural`, lower is better) are written to
//! `BENCH_mapping.json` at the workspace root. The headline claim this file
//! records: at the same cut limit, cost-aware ranking maps **no deeper and no
//! larger** than the static order on geomean.
//!
//! Set `MCH_BENCH_SMOKE=1` for the reduced CI circuit list; set
//! `MCH_BENCH_FULL=1` for the entire EPFL-like suite.

use mch_benchmarks::{benchmark, epfl_suite, epfl_suite_small};
use mch_core::{lut_flow_mch, try_lut_flow_mch_with_budget, FlowBudget, MchConfig};
use mch_cut::CutCost;
use mch_logic::Network;
use mch_mapper::{
    map_asic_network, map_lut_network, AsicMapParams, LutMapParams, MappingObjective,
};
use mch_techlib::{asap7_lite, LutLibrary};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Row {
    circuit: String,
    gates: usize,
    structural_luts: usize,
    structural_levels: u32,
    hybrid_luts: usize,
    hybrid_levels: u32,
    structural_area: f64,
    structural_delay: f64,
    hybrid_area: f64,
    hybrid_delay: f64,
}

fn gather_circuits() -> Vec<(String, Network)> {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let full = std::env::var_os("MCH_BENCH_FULL").is_some();
    if smoke {
        ["ctrl", "int2float", "cavlc"]
            .iter()
            .filter_map(|n| benchmark(n).map(|net| (n.to_string(), net)))
            .collect()
    } else if full {
        epfl_suite()
            .into_iter()
            .map(|b| (b.name.to_string(), b.network))
            .collect()
    } else {
        epfl_suite_small()
            .into_iter()
            .map(|b| (b.name.to_string(), b.network))
            .collect()
    }
}

fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = ratios.fold((0.0f64, 0usize), |(s, n), r| (s + r.ln(), n + 1));
    (sum / n as f64).exp()
}

fn main() {
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    let objective = MappingObjective::Balanced;
    let circuits = gather_circuits();
    let mut rows: Vec<Row> = Vec::new();
    for (name, net) in &circuits {
        eprintln!("mapping {name}…");
        let lut_params = LutMapParams::new(objective);
        let asic_params = AsicMapParams::new(objective);
        let s_lut = map_lut_network(net, &lut, &lut_params.with_ranking(CutCost::Structural));
        let h_lut = map_lut_network(net, &lut, &lut_params.with_ranking(CutCost::Hybrid));
        let s_asic = map_asic_network(net, &lib, &asic_params.with_ranking(CutCost::Structural));
        let h_asic = map_asic_network(net, &lib, &asic_params.with_ranking(CutCost::Hybrid));
        rows.push(Row {
            circuit: name.clone(),
            gates: net.gate_count(),
            structural_luts: s_lut.lut_count(),
            structural_levels: s_lut.level_count(),
            hybrid_luts: h_lut.lut_count(),
            hybrid_levels: h_lut.level_count(),
            structural_area: s_asic.area(&lib),
            structural_delay: s_asic.delay(&lib),
            hybrid_area: h_asic.area(&lib),
            hybrid_delay: h_asic.delay(&lib),
        });
    }

    // Supervision overhead: the same MCH LUT flow once plain and once with a
    // generous (enabled-but-unbreached) `FlowBudget`. The budgeted run pays
    // for preflight validation and the phase-boundary budget checks, but no
    // degradation rung fires — so the mapped result must be metric-identical
    // and the wall-clock ratio within measurement noise. Two interleaved
    // samples per variant, best-of taken, to shave scheduler jitter.
    struct Supervised {
        circuit: String,
        plain_ms: f64,
        budgeted_ms: f64,
    }
    let generous = FlowBudget::unlimited()
        .with_deadline(Duration::from_secs(3600))
        .with_max_cut_arena_slots(usize::MAX)
        .with_max_resynthesis_candidates(usize::MAX);
    let flow_config = MchConfig::lut_area();
    let mut supervised: Vec<Supervised> = Vec::new();
    for (name, net) in &circuits {
        eprintln!("supervising {name}…");
        let (mut plain_ms, mut budgeted_ms) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..2 {
            let t = Instant::now();
            let plain = lut_flow_mch(net, &lut, &flow_config);
            plain_ms = plain_ms.min(t.elapsed().as_secs_f64() * 1e3);

            let t = Instant::now();
            let budgeted = try_lut_flow_mch_with_budget(net, &lut, &flow_config, &generous)
                .expect("a generous budget must not fail a valid circuit");
            budgeted_ms = budgeted_ms.min(t.elapsed().as_secs_f64() * 1e3);

            assert!(
                !budgeted.degradation.degraded(),
                "{name}: a generous budget must not trip the degradation ladder"
            );
            assert_eq!(
                (plain.luts, plain.levels),
                (budgeted.luts, budgeted.levels),
                "{name}: an unbreached budget changed the mapped result"
            );
        }
        supervised.push(Supervised {
            circuit: name.clone(),
            plain_ms,
            budgeted_ms,
        });
    }
    let supervision_ratio = geomean(supervised.iter().map(|s| s.budgeted_ms / s.plain_ms));

    let lut_level_ratio = geomean(
        rows.iter()
            .map(|r| r.hybrid_levels as f64 / r.structural_levels as f64),
    );
    let lut_count_ratio = geomean(
        rows.iter()
            .map(|r| r.hybrid_luts as f64 / r.structural_luts as f64),
    );
    let asic_delay_ratio = geomean(rows.iter().map(|r| r.hybrid_delay / r.structural_delay));
    let asic_area_ratio = geomean(rows.iter().map(|r| r.hybrid_area / r.structural_area));

    let mut json = String::from(
        "{\n  \"bench\": \"mapping_quality\",\n  \"params\": {\"cut_limit\": 8, \"objective\": \"balanced\", \"lut_k\": 6, \"library\": \"asap7_lite\"},\n  \"circuits\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{}\", \"gates\": {}, \"structural\": {{\"luts\": {}, \"levels\": {}, \"area\": {:.3}, \"delay\": {:.3}}}, \"hybrid\": {{\"luts\": {}, \"levels\": {}, \"area\": {:.3}, \"delay\": {:.3}}}}}{}",
            r.circuit,
            r.gates,
            r.structural_luts,
            r.structural_levels,
            r.structural_area,
            r.structural_delay,
            r.hybrid_luts,
            r.hybrid_levels,
            r.hybrid_area,
            r.hybrid_delay,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"geomean_hybrid_over_structural\": {{\"lut_levels\": {lut_level_ratio:.4}, \"lut_count\": {lut_count_ratio:.4}, \"asic_delay\": {asic_delay_ratio:.4}, \"asic_area\": {asic_area_ratio:.4}}},\n  \"supervision_overhead\": {{\n    \"flows\": [\n"
    );
    for (i, s) in supervised.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"circuit\": \"{}\", \"plain_ms\": {:.3}, \"budgeted_ms\": {:.3}}}{}",
            s.circuit,
            s.plain_ms,
            s.budgeted_ms,
            if i + 1 < supervised.len() { "," } else { "" },
        );
    }
    let _ = write!(
        json,
        "    ],\n    \"results_identical\": true,\n    \"geomean_time_ratio\": {supervision_ratio:.4}\n  }}\n}}\n"
    );

    // crates/bench → workspace root.
    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_mapping.json");
    std::fs::write(&out, &json).expect("write BENCH_mapping.json");

    eprintln!("\nper-circuit hybrid vs structural (LUT levels / LUT count / ASIC delay / ASIC area):");
    for r in &rows {
        eprintln!(
            "  {:<12} {:>6} gates  levels {:>2} vs {:>2}   luts {:>5} vs {:>5}   delay {:>8.1} vs {:>8.1}   area {:>9.2} vs {:>9.2}",
            r.circuit,
            r.gates,
            r.hybrid_levels,
            r.structural_levels,
            r.hybrid_luts,
            r.structural_luts,
            r.hybrid_delay,
            r.structural_delay,
            r.hybrid_area,
            r.structural_area,
        );
    }
    eprintln!(
        "geomean ratios (hybrid/structural): LUT levels {lut_level_ratio:.4}, LUT count {lut_count_ratio:.4}, ASIC delay {asic_delay_ratio:.4}, ASIC area {asic_area_ratio:.4}"
    );
    eprintln!("\nsupervision overhead (budgeted-but-unbreached MCH LUT flow vs plain):");
    for s in &supervised {
        eprintln!(
            "  {:<12} plain {:>9.2} ms   budgeted {:>9.2} ms   ratio {:.3}",
            s.circuit,
            s.plain_ms,
            s.budgeted_ms,
            s.budgeted_ms / s.plain_ms,
        );
    }
    eprintln!("geomean supervision time ratio (budgeted/plain): {supervision_ratio:.4}");
    eprintln!("wrote {}", out.display());
}
