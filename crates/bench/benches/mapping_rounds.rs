//! Benchmark for the covering engine's memoised area-recovery rounds.
//!
//! Times the covering dynamic program in isolation: per circuit, cuts are
//! enumerated and a `CoverProblem` (candidates + fanout relations) is built
//! once, then `CoverProblem::solve` runs at `area_rounds` ∈ {2, 4, 8}, once
//! with the engine's `CandidateCache` memoisation (the default) and once
//! with the full-recompute baseline (`memoise = false`), and the wall-clock
//! ratio is recorded. Cut enumeration, choice transfer and candidate
//! construction are excluded from the timed region — they are identical in
//! both configurations, independent of the round count, and would only
//! dilute the quantity under test. Memoised and recomputed netlists are
//! asserted **identical** outside the timed region — the cache is an exact
//! skip, never an approximation.
//!
//! Results go to `BENCH_rounds.json` at the workspace root. The headline
//! claim this file records: with memoisation, extra area-recovery rounds are
//! nearly free — the committed target is a ≥ 1.5× covering-phase speedup at
//! 8 rounds (gated in CI on multi-core runners, mirroring the
//! `cut_enum_parallel` gate pattern; wall-clock numbers from 1-CPU smoke
//! containers are recorded but too noisy to hard-gate).
//!
//! Set `MCH_BENCH_SMOKE=1` for the reduced CI circuit list; set
//! `MCH_BENCH_FULL=1` for the extended list.

use mch_bench::harness::{format_ns, Criterion};
use mch_benchmarks::benchmark;
use mch_choice::ChoiceNetwork;
use mch_cut::CutCostModel;
use mch_logic::Network;
use mch_mapper::{
    library_cost_model, prepare_cuts, AsicMapParams, AsicTarget, CoverProblem, EngineParams,
    LutMapParams, LutTarget, MappingObjective,
};
use mch_techlib::{asap7_lite, LutLibrary};
use std::fmt::Write as _;
use std::path::PathBuf;

const ROUND_COUNTS: [usize; 3] = [2, 4, 8];

struct TargetRow {
    memo_ns: Vec<f64>,      // same order as ROUND_COUNTS
    recompute_ns: Vec<f64>, // same order as ROUND_COUNTS
    identical: bool,
}

struct Row {
    circuit: String,
    gates: usize,
    lut: TargetRow,
    asic: TargetRow,
}

fn gather_circuits() -> Vec<(String, Network)> {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let full = std::env::var_os("MCH_BENCH_FULL").is_some();
    let names: &[&str] = if smoke {
        &["int2float", "cavlc", "priority"]
    } else if full {
        &["int2float", "cavlc", "priority", "sin", "voter", "bar", "max", "i2c"]
    } else {
        &["int2float", "cavlc", "priority", "sin", "voter"]
    };
    names
        .iter()
        .filter_map(|n| benchmark(n).map(|net| (n.to_string(), net)))
        .collect()
}

fn main() {
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let sample_size = if smoke { 3 } else { 5 };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let circuits = gather_circuits();

    let engine_params = |rounds: usize, memoise: bool| EngineParams {
        objective: MappingObjective::Balanced,
        area_rounds: rounds,
        exact_area: false,
        memoise,
    };

    let mut c = Criterion::new();
    let mut rows: Vec<Row> = Vec::new();
    for (name, net) in &circuits {
        // Enumeration, choice transfer and candidate construction once per
        // circuit, outside timing: both configurations solve the exact same
        // prepared problem.
        let choice = ChoiceNetwork::from_network(net);
        let lut_defaults = LutMapParams::new(MappingObjective::Balanced);
        let lut_cuts = prepare_cuts(
            &choice,
            lut.k(),
            lut_defaults.cut_limit,
            lut_defaults.cut_ranking,
            &CutCostModel::unit(),
            1,
        );
        let lut_target = LutTarget::new(&lut, &lut_cuts);
        let lut_problem = CoverProblem::new(&choice, &lut_target);
        let asic_defaults = AsicMapParams::new(MappingObjective::Balanced);
        let asic_cuts = prepare_cuts(
            &choice,
            lib.max_inputs().clamp(3, 6),
            asic_defaults.cut_limit,
            asic_defaults.cut_ranking,
            &library_cost_model(&lib),
            1,
        );
        let asic_target = AsicTarget::new(&lib, &asic_cuts);
        let asic_problem = CoverProblem::new(&choice, &asic_target);
        // Exactness first, also outside the timed region: the memoised cover
        // must be bit-identical to full recomputation at every round count.
        let lut_identical = ROUND_COUNTS.iter().all(|&r| {
            lut_problem.solve(&engine_params(r, true)) == lut_problem.solve(&engine_params(r, false))
        });
        let asic_identical = ROUND_COUNTS.iter().all(|&r| {
            asic_problem.solve(&engine_params(r, true))
                == asic_problem.solve(&engine_params(r, false))
        });

        let mut group = c.benchmark_group(format!("mapping_rounds/{name}"));
        group.sample_size(sample_size);
        for &r in &ROUND_COUNTS {
            group.bench_function(format!("lut/{r}rounds/memo"), |b| {
                b.iter(|| lut_problem.solve(&engine_params(r, true)))
            });
            group.bench_function(format!("lut/{r}rounds/recompute"), |b| {
                b.iter(|| lut_problem.solve(&engine_params(r, false)))
            });
            group.bench_function(format!("asic/{r}rounds/memo"), |b| {
                b.iter(|| asic_problem.solve(&engine_params(r, true)))
            });
            group.bench_function(format!("asic/{r}rounds/recompute"), |b| {
                b.iter(|| asic_problem.solve(&engine_params(r, false)))
            });
        }
        group.finish();
        let records = c.records();
        let base = records.len() - 4 * ROUND_COUNTS.len();
        let pick = |offset: usize| -> Vec<f64> {
            (0..ROUND_COUNTS.len())
                .map(|i| records[base + 4 * i + offset].median_ns)
                .collect()
        };
        rows.push(Row {
            circuit: name.clone(),
            gates: net.gate_count(),
            lut: TargetRow {
                memo_ns: pick(0),
                recompute_ns: pick(1),
                identical: lut_identical,
            },
            asic: TargetRow {
                memo_ns: pick(2),
                recompute_ns: pick(3),
                identical: asic_identical,
            },
        });
    }
    c.final_summary();

    let geomean = |f: &dyn Fn(&Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let lut_geo: Vec<f64> = (0..ROUND_COUNTS.len())
        .map(|i| geomean(&|r: &Row| r.lut.recompute_ns[i] / r.lut.memo_ns[i]))
        .collect();
    let asic_geo: Vec<f64> = (0..ROUND_COUNTS.len())
        .map(|i| geomean(&|r: &Row| r.asic.recompute_ns[i] / r.asic.memo_ns[i]))
        .collect();
    let overall_geo: Vec<f64> = (0..ROUND_COUNTS.len())
        .map(|i| (lut_geo[i] * asic_geo[i]).sqrt())
        .collect();
    let all_identical = rows.iter().all(|r| r.lut.identical && r.asic.identical);

    let mut json = String::from("{\n  \"bench\": \"mapping_rounds\",\n");
    let _ = writeln!(
        json,
        "  \"params\": {{\"objective\": \"balanced\", \"cut_limit\": 8, \"lut_k\": 6, \"library\": \"asap7_lite\", \"timed\": \"covering DP only (CoverProblem::solve; cuts and candidates prepared once)\"}},\n  \"host_cpus\": {host_cpus},\n  \"round_counts\": [2, 4, 8],\n  \"circuits\": ["
    );
    let target_json = |t: &TargetRow| -> String {
        let mut s = String::from("[");
        for (i, &r) in ROUND_COUNTS.iter().enumerate() {
            let _ = write!(
                s,
                "{{\"rounds\": {r}, \"memo_ns\": {:.0}, \"recompute_ns\": {:.0}, \"speedup\": {:.2}}}{}",
                t.memo_ns[i],
                t.recompute_ns[i],
                t.recompute_ns[i] / t.memo_ns[i],
                if i + 1 < ROUND_COUNTS.len() { ", " } else { "" },
            );
        }
        s.push(']');
        s
    };
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{}\", \"gates\": {}, \"identical\": {}, \"lut\": {}, \"asic\": {}}}{}",
            r.circuit,
            r.gates,
            r.lut.identical && r.asic.identical,
            target_json(&r.lut),
            target_json(&r.asic),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"geomean_speedup\": {{\"lut\": {{\"2\": {:.2}, \"4\": {:.2}, \"8\": {:.2}}}, \"asic\": {{\"2\": {:.2}, \"4\": {:.2}, \"8\": {:.2}}}, \"overall\": {{\"2\": {:.2}, \"4\": {:.2}, \"8\": {:.2}}}}},",
        lut_geo[0], lut_geo[1], lut_geo[2],
        asic_geo[0], asic_geo[1], asic_geo[2],
        overall_geo[0], overall_geo[1], overall_geo[2],
    );
    let _ = writeln!(json, "  \"all_identical\": {all_identical}\n}}");

    // crates/bench → workspace root.
    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_rounds.json");
    std::fs::write(&out, &json).expect("write BENCH_rounds.json");

    eprintln!("\nmemoised vs recompute speedup at 2 / 4 / 8 area rounds ({host_cpus} cpu(s)):");
    for r in &rows {
        eprintln!(
            "  {:<12} {:>6} gates  lut ×{:.2} ×{:.2} ×{:.2} ({})  asic ×{:.2} ×{:.2} ×{:.2}{}",
            r.circuit,
            r.gates,
            r.lut.recompute_ns[0] / r.lut.memo_ns[0],
            r.lut.recompute_ns[1] / r.lut.memo_ns[1],
            r.lut.recompute_ns[2] / r.lut.memo_ns[2],
            format_ns(r.lut.memo_ns[2]),
            r.asic.recompute_ns[0] / r.asic.memo_ns[0],
            r.asic.recompute_ns[1] / r.asic.memo_ns[1],
            r.asic.recompute_ns[2] / r.asic.memo_ns[2],
            if r.lut.identical && r.asic.identical { "" } else { "  !! DIVERGED" },
        );
    }
    eprintln!(
        "geomean speedup (overall): ×{:.2} (2 rounds) ×{:.2} (4 rounds) ×{:.2} (8 rounds)",
        overall_geo[0], overall_geo[1], overall_geo[2]
    );
    assert!(
        all_identical,
        "memoised covering diverged from full recomputation"
    );
    eprintln!("wrote {}", out.display());
}
