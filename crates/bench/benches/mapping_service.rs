//! Benchmark for the batched mapping service: circuits/sec × threads over a
//! mixed big/small workload, against a sequential one-job-at-a-time
//! baseline. Results are written to `BENCH_service.json` at the workspace
//! root.
//!
//! Every batched run is byte-compared against solo runs of the same jobs at
//! the same thread count — determinism is the hard invariant (CI gates on
//! `all_deterministic`); the throughput curve is only meaningful when the
//! host actually has the cores (`host_cpus` is recorded; on a 1-core
//! container the batched curve measures coordination overhead, not
//! throughput).
//!
//! Set `MCH_BENCH_SMOKE=1` for a reduced workload with fewer samples (used
//! by CI); set `MCH_BENCH_FULL=1` for the complete list.

use mch_bench::harness::{format_ns, Criterion};
use mch_benchmarks::{adder, demo_adder_gt, multiplier, square, voter};
use mch_core::service::{Job, JobOutput, JobReport, MappingService};
use mch_core::MchConfig;
use mch_io::{write_lut_blif, write_verilog};
use mch_techlib::{asap7_lite, LutLibrary};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The mixed workload: a couple of batch-threshold-clearing circuits plus a
/// tail of small ones whose tasks backfill the big jobs' idle levels.
fn workload(threads: usize) -> Vec<Job> {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let full = std::env::var_os("MCH_BENCH_FULL").is_some();
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    let mut jobs = vec![
        Job::lut(
            "mul12-lut",
            multiplier(12),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::asic(
            "voter63-asic",
            voter(63),
            lib.clone(),
            MchConfig::balanced().with_threads(threads),
        ),
        Job::lut(
            "adder16-lut",
            adder(16),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::lut(
            "adder8-lut",
            adder(8),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::lut(
            "demo-lut",
            demo_adder_gt(),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::asic(
            "square8-asic",
            square(8),
            lib.clone(),
            MchConfig::area_oriented().with_threads(threads),
        ),
    ];
    if !smoke {
        jobs.push(Job::lut(
            "mul16-lut",
            multiplier(16),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ));
        jobs.push(Job::asic(
            "voter127-asic",
            voter(127),
            lib,
            MchConfig::balanced().with_threads(threads),
        ));
    }
    if full {
        jobs.push(Job::lut(
            "square12-lut",
            square(12),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ));
    }
    jobs
}

/// Deterministic fingerprint of a successful report: netlist bytes plus the
/// degradation trace (wall times excluded).
fn fingerprint(report: &JobReport) -> String {
    let out = report
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("job {} failed: {e}", report.name));
    let bytes = match out {
        JobOutput::Asic(r) => {
            assert!(r.verified, "{} did not verify", report.name);
            write_verilog(&r.netlist, &asap7_lite())
        }
        JobOutput::Lut(r) => {
            assert!(r.verified, "{} did not verify", report.name);
            write_lut_blif(&r.netlist)
        }
        JobOutput::Sweep(_) => panic!("{}: this workload has no sweep jobs", report.name),
    };
    format!("{bytes}\n{:?}", out.degradation())
}

/// The hard gate: a batched run at `threads` byte-matches solo runs of the
/// same jobs at the same thread count.
fn check_determinism(threads: usize) -> bool {
    let solo: Vec<String> = workload(threads)
        .into_iter()
        .map(|job| fingerprint(&MappingService::new().run(job)))
        .collect();
    let batched = MappingService::new().run_batch(workload(threads));
    batched
        .iter()
        .zip(&solo)
        .all(|(report, want)| &fingerprint(report) == want)
}

fn main() {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let sample_size = if smoke { 2 } else { 3 };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let n_jobs = workload(1).len();

    // Determinism first, outside all timing.
    let deterministic: Vec<(usize, bool)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, check_determinism(t)))
        .collect();
    let all_deterministic = deterministic.iter().all(|&(_, ok)| ok);

    let mut c = Criterion::new();
    let mut group = c.benchmark_group("mapping_service");
    group.sample_size(sample_size);
    // Sequential baseline: one job at a time, single-threaded phases, cold
    // service per sample — the "one circuit at a time" deployment.
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let service = MappingService::new();
            for job in workload(1) {
                let report = service.run(job);
                assert!(report.outcome.is_ok());
            }
        })
    });
    // Batched service: whole workload in flight at once, per-job phases at
    // the swept thread count, cold service per sample.
    for &t in &THREAD_COUNTS {
        group.bench_function(format!("batched/{t}threads"), |b| {
            b.iter(|| {
                let service = MappingService::new();
                let reports = service.run_batch(workload(t));
                assert!(reports.iter().all(|r| r.outcome.is_ok()));
            })
        });
    }
    group.finish();
    let records = c.records();
    let base = records.len() - 1 - THREAD_COUNTS.len();
    let sequential_ns = records[base].median_ns;
    let batched_ns: Vec<f64> = (0..THREAD_COUNTS.len())
        .map(|i| records[base + 1 + i].median_ns)
        .collect();
    c.final_summary();

    // Warm-cache throughput: the same service serving a second batch (the
    // shared NPN store and the pool are both hot). Single shot at 4 threads.
    let warm_service = MappingService::new();
    let _ = warm_service.run_batch(workload(4));
    let warm_start = Instant::now();
    let warm_reports = warm_service.run_batch(workload(4));
    let warm_ns = warm_start.elapsed().as_nanos() as f64;
    assert!(warm_reports.iter().all(|r| r.outcome.is_ok()));
    let service_stats = warm_service.stats();

    let cps = |ns: f64| n_jobs as f64 / (ns / 1e9);

    let mut json = String::from("{\n  \"bench\": \"mapping_service\",\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {host_cpus},\n  \"thread_counts\": [1, 2, 4, 8],\n  \"jobs\": ["
    );
    let jobs = workload(1);
    for (i, job) in jobs.iter().enumerate() {
        let kind = match &job.kind {
            mch_core::JobKind::AsicMch(_) => "asic",
            mch_core::JobKind::LutMch(_) => "lut",
            mch_core::JobKind::LutFusedMch(_, _) => "lut-fused",
            mch_core::JobKind::Sweep(_, _) => "sweep",
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"gates\": {}, \"kind\": \"{kind}\"}}{}",
            job.name,
            job.network.gate_count(),
            if i + 1 < jobs.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"sequential\": {{\"ns\": {sequential_ns:.0}, \"circuits_per_sec\": {:.3}}},",
        cps(sequential_ns)
    );
    let _ = writeln!(json, "  \"service\": [");
    for (i, &t) in THREAD_COUNTS.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {t}, \"ns\": {:.0}, \"circuits_per_sec\": {:.3}, \"speedup_vs_sequential\": {:.2}}}{}",
            batched_ns[i],
            cps(batched_ns[i]),
            sequential_ns / batched_ns[i],
            if i + 1 < THREAD_COUNTS.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"warm\": {{\"threads\": 4, \"ns\": {warm_ns:.0}, \"circuits_per_sec\": {:.3}}},",
        cps(warm_ns)
    );
    let _ = writeln!(
        json,
        "  \"shared_npn\": {{\"classes\": {}, \"hits\": {}, \"misses\": {}}},",
        service_stats.shared_npn_classes,
        service_stats.shared_npn_hits,
        service_stats.shared_npn_misses
    );
    let _ = writeln!(json, "  \"all_deterministic\": {all_deterministic}\n}}");

    // crates/bench → workspace root.
    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    std::fs::write(&out, &json).expect("write BENCH_service.json");

    eprintln!(
        "\nmapping service: {n_jobs} mixed jobs, host has {host_cpus} cpu(s); sequential {}:",
        format_ns(sequential_ns)
    );
    for (i, &t) in THREAD_COUNTS.iter().enumerate() {
        let (_, det) = deterministic[i];
        eprintln!(
            "  batched @{t}t  {:>10}  {:.2} circuits/sec  ×{:.2} vs sequential{}",
            format_ns(batched_ns[i]),
            cps(batched_ns[i]),
            sequential_ns / batched_ns[i],
            if det { "" } else { "  !! NONDETERMINISTIC" },
        );
    }
    eprintln!(
        "  warm @4t      {:>10}  {:.2} circuits/sec (shared NPN: {} classes, {} hits / {} misses)",
        format_ns(warm_ns),
        cps(warm_ns),
        service_stats.shared_npn_classes,
        service_stats.shared_npn_hits,
        service_stats.shared_npn_misses
    );
    assert!(
        all_deterministic,
        "a batched job diverged from its solo run"
    );
    eprintln!("wrote {}", out.display());
}
