//! Benchmark for the warm-start sweep engine: one circuit × eight parameter
//! variants, warm (`Job::sweep` reusing one prepared flow) against cold
//! (each variant solo on a cache-disabled service). Results are written to
//! `BENCH_sweep.json` at the workspace root.
//!
//! Every warm variant is byte-compared against its cold solo run at every
//! thread count before any timing happens — determinism is the hard
//! invariant (CI gates on `all_deterministic`); the speedup curve is the
//! payoff: the choice construction, cut enumeration and candidate matching
//! are paid once per sweep instead of once per variant, so warm throughput
//! approaches `1 / (share of per-variant covering work)`.
//!
//! Set `MCH_BENCH_SMOKE=1` for a reduced circuit with fewer samples (used
//! by CI).

use mch_bench::harness::{format_ns, Criterion};
use mch_benchmarks::{adder, multiplier};
use mch_core::service::{Job, JobReport, MappingService};
use mch_core::{CutCost, JobKind, JobOutput, MchConfig};
use mch_io::write_lut_blif;
use mch_techlib::LutLibrary;
use std::fmt::Write as _;
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The swept circuit: big enough that choice construction and cut
/// enumeration dominate a single flow.
fn circuit() -> mch_core::Network {
    if std::env::var_os("MCH_BENCH_SMOKE").is_some() {
        adder(16)
    } else {
        multiplier(12)
    }
}

/// Eight LUT parameter variants sharing one choice construction: only
/// mapper-side knobs vary (recovery rounds, exact area, cut ranking), so
/// every variant keys to the same prepared flow.
fn variants(threads: usize) -> Vec<MchConfig> {
    let base = MchConfig::lut_area().with_threads(threads);
    let mut structural = base.clone();
    structural.cut_ranking = CutCost::Structural;
    let mut depth = base.clone().with_area_rounds(2);
    depth.cut_ranking = CutCost::Depth;
    vec![
        base.clone(),
        base.clone().with_area_rounds(0),
        base.clone().with_area_rounds(4),
        base.clone().with_exact_area(true),
        base.clone().with_area_rounds(6).with_exact_area(true),
        structural,
        depth,
        base.with_area_rounds(1),
    ]
}

/// A service with warm starts disabled: the cold reference.
fn cold_service() -> MappingService {
    MappingService::new().with_prepared_capacity(0)
}

fn sweep_job(threads: usize) -> Job {
    Job::sweep(
        "sweep",
        circuit(),
        JobKind::LutMch(LutLibrary::k6()),
        variants(threads),
    )
}

/// Deterministic fingerprint of one variant's report: netlist bytes plus
/// the degradation trace (wall times excluded).
fn fingerprint(report: &JobReport) -> String {
    let out = report
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("job {} failed: {e}", report.name));
    match out {
        JobOutput::Lut(r) => {
            assert!(r.verified, "{} did not verify", report.name);
            format!("{}\n{:?}", write_lut_blif(&r.netlist), r.degradation)
        }
        _ => panic!("{}: sweep variants are LUT jobs", report.name),
    }
}

/// The hard gate: every variant of a warm sweep at `threads` byte-matches
/// that variant run cold and solo at the same thread count.
fn check_determinism(threads: usize) -> bool {
    let network = circuit();
    let lut = LutLibrary::k6();
    let cold: Vec<String> = variants(threads)
        .into_iter()
        .map(|cfg| fingerprint(&cold_service().run(Job::lut("cold", network.clone(), lut, cfg))))
        .collect();
    let report = MappingService::new().run(sweep_job(threads));
    let out = report.outcome.expect("sweep job failed");
    let sweep = match &out {
        JobOutput::Sweep(reports) => reports,
        _ => panic!("expected a sweep output"),
    };
    sweep.len() == cold.len()
        && sweep
            .iter()
            .zip(&cold)
            .all(|(report, want)| &fingerprint(report) == want)
}

fn main() {
    let smoke = std::env::var_os("MCH_BENCH_SMOKE").is_some();
    let sample_size = if smoke { 2 } else { 3 };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let network = circuit();
    let n_variants = variants(1).len();

    // Determinism first, outside all timing.
    let deterministic: Vec<(usize, bool)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, check_determinism(t)))
        .collect();
    let all_deterministic = deterministic.iter().all(|&(_, ok)| ok);

    let mut c = Criterion::new();
    let mut group = c.benchmark_group("mapping_sweep");
    group.sample_size(sample_size);
    for &t in &THREAD_COUNTS {
        // Cold baseline: each variant as its own job on a cache-disabled
        // service — the pre-warm-start deployment, fresh service per sample.
        group.bench_function(format!("cold/{t}threads"), |b| {
            b.iter(|| {
                let service = cold_service();
                let lut = LutLibrary::k6();
                for cfg in variants(t) {
                    let report = service.run(Job::lut("cold", network.clone(), lut, cfg));
                    assert!(report.outcome.is_ok());
                }
            })
        });
        // Warm sweep: one `Job::sweep`, cold cache per sample — the first
        // variant builds the prepared flow, the other seven reuse it.
        group.bench_function(format!("warm/{t}threads"), |b| {
            b.iter(|| {
                let service = MappingService::new();
                let report = service.run(sweep_job(t));
                assert!(report.outcome.is_ok());
            })
        });
    }
    group.finish();
    let records = c.records();
    let base = records.len() - 2 * THREAD_COUNTS.len();
    let cold_ns: Vec<f64> = (0..THREAD_COUNTS.len())
        .map(|i| records[base + 2 * i].median_ns)
        .collect();
    let warm_ns: Vec<f64> = (0..THREAD_COUNTS.len())
        .map(|i| records[base + 2 * i + 1].median_ns)
        .collect();
    c.final_summary();

    let speedups: Vec<f64> = cold_ns.iter().zip(&warm_ns).map(|(c, w)| c / w).collect();
    let geomean_speedup =
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();

    // Cache telemetry from one warm sweep on a fresh service.
    let stats_service = MappingService::new();
    let report = stats_service.run(sweep_job(4));
    assert!(report.outcome.is_ok());
    let stats = stats_service.stats();

    let vps = |ns: f64| n_variants as f64 / (ns / 1e9);

    let mut json = String::from("{\n  \"bench\": \"mapping_sweep\",\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {host_cpus},\n  \"circuit\": {{\"gates\": {}, \"variants\": {n_variants}}},",
        network.gate_count()
    );
    let _ = writeln!(json, "  \"thread_counts\": [1, 2, 4, 8],\n  \"sweep\": [");
    for (i, &t) in THREAD_COUNTS.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {t}, \"cold_ns\": {:.0}, \"warm_ns\": {:.0}, \"cold_variants_per_sec\": {:.3}, \"warm_variants_per_sec\": {:.3}, \"speedup_warm_vs_cold\": {:.2}}}{}",
            cold_ns[i],
            warm_ns[i],
            vps(cold_ns[i]),
            vps(warm_ns[i]),
            speedups[i],
            if i + 1 < THREAD_COUNTS.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"geomean_speedup\": {geomean_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"prepared_cache\": {{\"entries\": {}, \"bytes\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}},",
        stats.prepared_entries,
        stats.prepared_bytes,
        stats.prepared_hits,
        stats.prepared_misses,
        stats.prepared_evictions
    );
    let _ = writeln!(json, "  \"all_deterministic\": {all_deterministic}\n}}");

    // crates/bench → workspace root.
    let out: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");

    eprintln!(
        "\nwarm-start sweep: {} gates × {n_variants} variants, host has {host_cpus} cpu(s):",
        network.gate_count()
    );
    for (i, &t) in THREAD_COUNTS.iter().enumerate() {
        let (_, det) = deterministic[i];
        eprintln!(
            "  @{t}t  cold {:>10}  warm {:>10}  ×{:.2} warm vs cold{}",
            format_ns(cold_ns[i]),
            format_ns(warm_ns[i]),
            speedups[i],
            if det { "" } else { "  !! NONDETERMINISTIC" },
        );
    }
    eprintln!(
        "  geomean ×{geomean_speedup:.2} (prepared cache: {} hits / {} misses, {} entries, {} bytes)",
        stats.prepared_hits, stats.prepared_misses, stats.prepared_entries, stats.prepared_bytes
    );
    assert!(
        all_deterministic,
        "a warm sweep variant diverged from its cold solo run"
    );
    eprintln!("wrote {}", out.display());
}
