//! Criterion bench for the Table-I experiment: the six ASIC flows on a
//! representative control circuit.

use mch_bench::harness::Criterion;
use mch_bench::{criterion_group, criterion_main};
use mch_core::{
    asic_flow_baseline, asic_flow_dch, asic_flow_mch, prepare_input, MchConfig,
};
use mch_mapper::MappingObjective;
use mch_techlib::asap7_lite;

fn bench_table1(c: &mut Criterion) {
    let library = asap7_lite();
    let input = prepare_input(&mch_benchmarks::benchmark("int2float").unwrap(), 2);
    let mut group = c.benchmark_group("table1_asic_int2float");
    group.sample_size(10);
    group.bench_function("baseline_nf", |b| {
        b.iter(|| asic_flow_baseline(&input, &library, MappingObjective::Balanced))
    });
    group.bench_function("dch_balanced", |b| {
        b.iter(|| asic_flow_dch(&input, &library, MappingObjective::Balanced))
    });
    group.bench_function("mch_balanced", |b| {
        b.iter(|| asic_flow_mch(&input, &library, &MchConfig::balanced()))
    });
    group.bench_function("mch_area", |b| {
        b.iter(|| asic_flow_mch(&input, &library, &MchConfig::area_oriented()))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
