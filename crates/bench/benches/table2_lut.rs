//! Criterion bench for the Table-II experiment: baseline vs MCH 6-LUT mapping.

use mch_bench::harness::Criterion;
use mch_bench::{criterion_group, criterion_main};
use mch_core::{lut_flow_baseline, lut_flow_mch, MchConfig};
use mch_mapper::MappingObjective;
use mch_opt::compress2rs_like;
use mch_techlib::LutLibrary;

fn bench_table2(c: &mut Criterion) {
    let lut = LutLibrary::k6();
    let net = compress2rs_like(&mch_benchmarks::benchmark("int2float").unwrap(), 2);
    let mut group = c.benchmark_group("table2_lut_int2float");
    group.sample_size(10);
    group.bench_function("baseline_if", |b| {
        b.iter(|| lut_flow_baseline(&net, &lut, MappingObjective::Area))
    });
    group.bench_function("mch_lut_area", |b| {
        b.iter(|| lut_flow_mch(&net, &lut, &MchConfig::lut_area()))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
