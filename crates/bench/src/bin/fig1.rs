//! Regenerates Figure 1: mapping the "Max" circuit in each representation.
//!
//! Run with `cargo run -p mch_bench --bin fig1 --release`.

use mch_bench::printing::print_fig1;
use mch_bench::run_fig1;

fn main() {
    let rows = run_fig1();
    print!("{}", print_fig1(&rows));
}
