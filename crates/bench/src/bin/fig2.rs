//! Regenerates Figure 2: the `(a+b) > 0` demo through the traditional, DCH
//! and MCH flows.
//!
//! Run with `cargo run -p mch_bench --bin fig2 --release`.

use mch_bench::printing::print_fig2;
use mch_bench::run_fig2;

fn main() {
    let report = run_fig2();
    print!("{}", print_fig2(&report));
}
