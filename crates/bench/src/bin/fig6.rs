//! Regenerates Figure 6: MCH-based graph-mapping optimization versus the
//! iterated single-representation baseline.
//!
//! Run with `cargo run -p mch_bench --bin fig6 --release`.
//! Pass `--quick` to restrict the run to the smaller circuits.

use mch_bench::printing::print_fig6;
use mch_bench::run_fig6;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let names: Vec<&str> = if quick {
        vec!["int2float", "ctrl", "router", "max", "priority"]
    } else {
        vec![
            "adder", "bar", "max", "sin", "square", "arbiter", "cavlc", "ctrl", "int2float",
            "priority", "router", "voter",
        ]
    };
    let rows = run_fig6(&names);
    print!("{}", print_fig6(&rows));
}
