//! Regenerates Table I: ASIC technology mapping of the EPFL-like suite across
//! the six flows (baseline, DCH×2, MCH×3).
//!
//! Run with `cargo run -p mch_bench --bin table1 --release`.
//! Pass `--quick` to restrict the run to the smaller circuits.

use mch_bench::experiments::quick_suite;
use mch_bench::printing::print_table1;
use mch_bench::run_table1;
use mch_benchmarks::epfl_suite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let suite = if quick { quick_suite() } else { epfl_suite() };
    eprintln!(
        "running Table I on {} benchmarks ({} mode)…",
        suite.len(),
        if quick { "quick" } else { "full" }
    );
    let rows = run_table1(&suite);
    print!("{}", print_table1(&rows));
}
