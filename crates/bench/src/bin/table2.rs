//! Regenerates Table II: the EPFL best-results 6-LUT challenge circuits
//! mapped with the MCH-based area-focused LUT mapper.
//!
//! Run with `cargo run -p mch_bench --bin table2 --release`.

use mch_bench::experiments::table2_benchmark_names;
use mch_bench::printing::print_table2;
use mch_bench::run_table2;

fn main() {
    let rows = run_table2(&table2_benchmark_names());
    print!("{}", print_table2(&rows));
}
