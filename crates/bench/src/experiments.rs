//! The experiment implementations (one function per table / figure).

use mch_benchmarks::{benchmark, demo_adder_gt, epfl_suite, Benchmark};
use mch_choice::{build_mch, build_mch_with_stats, MchParams};
use mch_core::{
    asic_flow_baseline, asic_flow_dch, asic_flow_mch, geometric_mean, improvement_percent,
    lut_flow_baseline, lut_flow_mch, prepare_input, MchConfig,
};
use mch_logic::{convert, Network, NetworkKind};
use mch_mapper::{map_asic, map_lut, AsicMapParams, LutMapParams, MappingObjective};
use mch_opt::{compress2rs_like, iterate_graph_map, iterate_graph_map_mch};
use mch_techlib::{asap7_lite, LutLibrary};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Figure 1: mapping the "Max" circuit in each representation.
// ---------------------------------------------------------------------------

/// One row of Figure 1: the mapped area/delay of one representation.
#[derive(Clone, Debug)]
pub struct Fig1Row {
    /// The logic representation.
    pub representation: NetworkKind,
    /// Gate count of the representation.
    pub nodes: usize,
    /// Logic depth of the representation.
    pub levels: u32,
    /// Area of the delay-oriented mapping (µm²).
    pub delay_oriented_area: f64,
    /// Delay of the delay-oriented mapping (ps).
    pub delay_oriented_delay: f64,
    /// Area of the area-oriented mapping (µm²).
    pub area_oriented_area: f64,
    /// Delay of the area-oriented mapping (ps).
    pub area_oriented_delay: f64,
}

/// Reproduces Figure 1: the "Max" circuit converted into AIG, XAG, MIG and
/// XMG, each mapped with the delay- and area-oriented ASIC mapper.
pub fn run_fig1() -> Vec<Fig1Row> {
    let library = asap7_lite();
    let max = benchmark("max").expect("max benchmark exists");
    NetworkKind::homogeneous()
        .into_iter()
        .map(|kind| {
            let net = convert(&max, kind);
            let delay_map = map_asic(
                &mch_choice::ChoiceNetwork::from_network(&net),
                &library,
                &AsicMapParams::new(MappingObjective::Delay),
            );
            let area_map = map_asic(
                &mch_choice::ChoiceNetwork::from_network(&net),
                &library,
                &AsicMapParams::new(MappingObjective::Area),
            );
            Fig1Row {
                representation: kind,
                nodes: net.gate_count(),
                levels: net.depth(),
                delay_oriented_area: delay_map.area(&library),
                delay_oriented_delay: delay_map.delay(&library),
                area_oriented_area: area_map.area(&library),
                area_oriented_delay: area_map.delay(&library),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 2: the (a+b) > 0 demo through the three flows.
// ---------------------------------------------------------------------------

/// One flow of the Figure 2 comparison.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Flow name.
    pub flow: String,
    /// Subject-graph nodes seen by the mapper.
    pub nodes: usize,
    /// Number of choice nodes in the subject graph.
    pub choices: usize,
    /// Subject-graph depth.
    pub levels: u32,
    /// Mapped area (µm²).
    pub area: f64,
    /// Mapped delay (ps).
    pub delay: f64,
}

/// The full Figure 2 report.
#[derive(Clone, Debug)]
pub struct Fig2Report {
    /// The original AIG statistics (nodes, levels).
    pub original_nodes: usize,
    /// Depth of the original AIG.
    pub original_levels: u32,
    /// One row per flow (traditional, DCH, MCH).
    pub rows: Vec<Fig2Row>,
}

/// Reproduces Figure 2: the `(a+b) > 0` demo mapped through the traditional
/// flow (technology-independent optimization + mapping), the DCH flow and the
/// MCH flow.
pub fn run_fig2() -> Fig2Report {
    let library = asap7_lite();
    let demo = demo_adder_gt();
    let optimized = compress2rs_like(&demo, 3);

    let mut rows = Vec::new();

    // Traditional flow: optimize, then map without choices.
    let base = asic_flow_baseline(&optimized, &library, MappingObjective::Balanced);
    rows.push(Fig2Row {
        flow: "traditional (opt + map)".into(),
        nodes: optimized.gate_count(),
        choices: 0,
        levels: optimized.depth(),
        area: base.area,
        delay: base.delay,
    });

    // DCH flow.
    let dch = asic_flow_dch(&optimized, &library, MappingObjective::Balanced);
    rows.push(Fig2Row {
        flow: "DCH for technology map".into(),
        nodes: optimized.gate_count(),
        choices: 1,
        levels: optimized.depth(),
        area: dch.area,
        delay: dch.delay,
    });

    // MCH flow (balanced), reporting the real choice count of the mixed network.
    let (mch_net, stats) = build_mch_with_stats(&optimized, &MchConfig::balanced().mch);
    let mch = asic_flow_mch(&optimized, &library, &MchConfig::balanced());
    rows.push(Fig2Row {
        flow: "MCH for technology map".into(),
        nodes: mch_net.network().gate_count(),
        choices: stats.total(),
        levels: mch_net.network().depth(),
        area: mch.area,
        delay: mch.delay,
    });

    Fig2Report {
        original_nodes: demo.gate_count(),
        original_levels: demo.depth(),
        rows,
    }
}

// ---------------------------------------------------------------------------
// Table I: ASIC technology mapping across six flows.
// ---------------------------------------------------------------------------

/// One benchmark row of Table I: (area, delay, seconds) per flow, in the
/// paper's column order.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Metrics per flow, in the order returned by [`table1_flow_names`].
    pub flows: Vec<(f64, f64, f64)>,
}

/// The flow names (column headers) of Table I.
pub fn table1_flow_names() -> [&'static str; 6] {
    [
        "&nf",
        "&dch -m; &nf",
        "dch; map -a",
        "MCH balanced",
        "MCH Delay-oriented",
        "MCH Area-oriented",
    ]
}

/// Runs the Table-I experiment on the given benchmarks (pass
/// [`mch_benchmarks::epfl_suite`] for the full table).
pub fn run_table1(suite: &[Benchmark]) -> Vec<Table1Row> {
    let library = asap7_lite();
    let mut rows = Vec::new();
    for b in suite {
        let input = prepare_input(&b.network, 2);
        let mut flows = Vec::new();
        // Baseline &nf (balanced).
        let r = asic_flow_baseline(&input, &library, MappingObjective::Balanced);
        flows.push((r.area, r.delay, r.seconds));
        // DCH balanced.
        let r = asic_flow_dch(&input, &library, MappingObjective::Balanced);
        flows.push((r.area, r.delay, r.seconds));
        // DCH area-oriented.
        let r = asic_flow_dch(&input, &library, MappingObjective::Area);
        flows.push((r.area, r.delay, r.seconds));
        // MCH balanced / delay / area.
        for config in [
            MchConfig::balanced(),
            MchConfig::delay_oriented(),
            MchConfig::area_oriented(),
        ] {
            let r = asic_flow_mch(&input, &library, &config);
            flows.push((r.area, r.delay, r.seconds));
        }
        rows.push(Table1Row {
            benchmark: b.name.to_string(),
            flows,
        });
    }
    rows
}

/// Geometric means per flow for a set of Table-I rows: `(area, delay, time)`.
pub fn table1_geomeans(rows: &[Table1Row]) -> Vec<(f64, f64, f64)> {
    let flow_count = rows.first().map_or(0, |r| r.flows.len());
    (0..flow_count)
        .map(|f| {
            let areas: Vec<f64> = rows.iter().map(|r| r.flows[f].0).collect();
            let delays: Vec<f64> = rows.iter().map(|r| r.flows[f].1).collect();
            let times: Vec<f64> = rows.iter().map(|r| r.flows[f].2.max(1e-6)).collect();
            (
                geometric_mean(&areas),
                geometric_mean(&delays),
                geometric_mean(&times),
            )
        })
        .collect()
}

/// Improvements of each flow over the first (baseline) flow, in percent:
/// `(area gain, delay gain)`.
pub fn table1_improvements(geomeans: &[(f64, f64, f64)]) -> Vec<(f64, f64)> {
    let (base_area, base_delay, _) = geomeans[0];
    geomeans
        .iter()
        .map(|&(a, d, _)| {
            (
                improvement_percent(base_area, a),
                improvement_percent(base_delay, d),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table II: the EPFL best-results 6-LUT challenge.
// ---------------------------------------------------------------------------

/// One row of Table II.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Incumbent (best known single-representation) LUT count.
    pub best_luts: usize,
    /// Incumbent LUT levels.
    pub best_levels: u32,
    /// MCH-based mapping LUT count.
    pub mch_luts: usize,
    /// MCH-based mapping LUT levels.
    pub mch_levels: u32,
}

/// The benchmarks reported in Table II of the paper.
pub fn table2_benchmark_names() -> [&'static str; 5] {
    ["sin", "sqrt", "square", "hyp", "voter"]
}

/// Runs the Table-II experiment: for each circuit the incumbent is the
/// area-focused 6-LUT mapping of the optimized AIG (standing in for the
/// published best result, see `DESIGN.md`), and the challenger is the
/// MCH-based (AIG + XMG) area-focused mapping of the very same network.
pub fn run_table2(names: &[&str]) -> Vec<Table2Row> {
    let lut = LutLibrary::k6();
    names
        .iter()
        .filter_map(|name| {
            let net = benchmark(name)?;
            let optimized = compress2rs_like(&net, 2);
            let incumbent = lut_flow_baseline(&optimized, &lut, MappingObjective::Area);
            let challenger = lut_flow_mch(&optimized, &lut, &MchConfig::lut_area());
            Some(Table2Row {
                benchmark: name.to_string(),
                best_luts: incumbent.luts,
                best_levels: incumbent.levels,
                mch_luts: challenger.luts,
                mch_levels: challenger.levels,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 6: MCH-based graph-mapping optimization.
// ---------------------------------------------------------------------------

/// One point of Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// XMG node improvement of MCH graph mapping over the baseline (%).
    pub graph_node_improvement: f64,
    /// XMG level improvement of MCH graph mapping over the baseline (%).
    pub graph_level_improvement: f64,
    /// 6-LUT count improvement after mapping the optimized networks (%).
    pub lut_node_improvement: f64,
    /// 6-LUT level improvement after mapping the optimized networks (%).
    pub lut_level_improvement: f64,
    /// Runtime of the MCH-based optimization in seconds.
    pub seconds: f64,
}

/// Runs the Figure-6 experiment on the named benchmarks: the baseline iterates
/// plain XMG graph mapping to its local optimum; the MCH series iterates graph
/// mapping over MIG+XMG mixed choice networks; both results are then 6-LUT
/// mapped and compared.
pub fn run_fig6(names: &[&str]) -> Vec<Fig6Row> {
    let lut = LutLibrary::k6();
    let params = MchParams::mixed(&[NetworkKind::Mig, NetworkKind::Xmg]);
    names
        .iter()
        .filter_map(|name| {
            let net = benchmark(name)?;
            let objective = MappingObjective::Area;
            let baseline = iterate_graph_map(&net, NetworkKind::Xmg, objective, 4);
            let start = Instant::now();
            let mch = iterate_graph_map_mch(&net, NetworkKind::Xmg, &params, objective, 4);
            let seconds = start.elapsed().as_secs_f64();

            let base_lut = map_lut(
                &mch_choice::ChoiceNetwork::from_network(&baseline.network),
                &lut,
                &LutMapParams::new(MappingObjective::Area),
            );
            let mch_lut = map_lut(
                &mch_choice::ChoiceNetwork::from_network(&mch.network),
                &lut,
                &LutMapParams::new(MappingObjective::Area),
            );
            Some(Fig6Row {
                benchmark: name.to_string(),
                graph_node_improvement: improvement_percent(
                    baseline.gate_count() as f64,
                    mch.gate_count() as f64,
                ),
                graph_level_improvement: improvement_percent(
                    baseline.depth() as f64,
                    mch.depth() as f64,
                ),
                lut_node_improvement: improvement_percent(
                    base_lut.lut_count() as f64,
                    mch_lut.lut_count() as f64,
                ),
                lut_level_improvement: improvement_percent(
                    base_lut.level_count() as f64,
                    mch_lut.level_count() as f64,
                ),
                seconds,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md §5).
// ---------------------------------------------------------------------------

/// Ablation: maps one benchmark with and without choice-cut sharing, returning
/// `(area with sharing, area without sharing)` for the area objective.
pub fn ablation_choice_sharing(network: &Network) -> (f64, f64) {
    let library = asap7_lite();
    let with = asic_flow_mch(network, &library, &MchConfig::area_oriented()).area;
    let without = asic_flow_baseline(network, &library, MappingObjective::Area).area;
    (with, without)
}

/// Ablation: sweeps the critical-path ratio `r` and returns `(r, delay)` pairs
/// for the balanced MCH flow.
pub fn ablation_critical_ratio(network: &Network, ratios: &[f64]) -> Vec<(f64, f64)> {
    let library = asap7_lite();
    ratios
        .iter()
        .map(|&r| {
            let mut config = MchConfig::balanced();
            config.mch.critical_ratio = r;
            let result = asic_flow_mch(network, &library, &config);
            (r, result.delay)
        })
        .collect()
}

/// Ablation: single-representation vs mixed-representation choices, returning
/// `(single area, mixed area)` for area-oriented LUT mapping.
pub fn ablation_mixed_vs_single(network: &Network) -> (usize, usize) {
    let lut = LutLibrary::k6();
    let single = {
        let params = MchParams::mixed(&[NetworkKind::Aig]);
        let choices = build_mch(network, &params);
        map_lut(&choices, &lut, &LutMapParams::new(MappingObjective::Area)).lut_count()
    };
    let mixed = {
        let params = MchParams::mixed(&[NetworkKind::Xmg]);
        let choices = build_mch(network, &params);
        map_lut(&choices, &lut, &LutMapParams::new(MappingObjective::Area)).lut_count()
    };
    (single, mixed)
}

/// Convenience: the benchmarks used for quick experiment runs (small circuits
/// only, so Criterion benches and CI tests stay fast).
pub fn quick_suite() -> Vec<Benchmark> {
    epfl_suite()
        .into_iter()
        .filter(|b| {
            matches!(
                b.name,
                "max" | "adder" | "bar" | "int2float" | "cavlc" | "ctrl" | "router" | "priority"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shows_representation_dependence() {
        let rows = run_fig1();
        assert_eq!(rows.len(), 4);
        // Not every representation maps to the same area: structural bias exists.
        let areas: Vec<f64> = rows.iter().map(|r| r.area_oriented_area).collect();
        let min = areas.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = areas.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "representations should differ in mapped area");
        for r in &rows {
            assert!(r.delay_oriented_delay <= r.area_oriented_delay + 1e-6, "{:?}", r);
        }
    }

    #[test]
    fn fig2_mch_beats_traditional_flow_on_the_demo() {
        let report = run_fig2();
        assert_eq!(report.rows.len(), 3);
        let traditional = &report.rows[0];
        let mch = &report.rows[2];
        assert!(mch.choices > 0);
        assert!(
            mch.area <= traditional.area + 1e-9 || mch.delay <= traditional.delay + 1e-9,
            "MCH should not lose on both metrics"
        );
    }

    #[test]
    fn table1_runs_on_a_small_subset_with_sane_relations() {
        let suite: Vec<Benchmark> = epfl_suite()
            .into_iter()
            .filter(|b| matches!(b.name, "max" | "int2float" | "ctrl"))
            .collect();
        let rows = run_table1(&suite);
        assert_eq!(rows.len(), 3);
        let geo = table1_geomeans(&rows);
        assert_eq!(geo.len(), 6);
        let improvements = table1_improvements(&geo);
        // MCH area-oriented (last column) should improve area over the baseline.
        assert!(
            improvements[5].0 > -5.0,
            "area-oriented MCH should not regress area substantially: {:?}",
            improvements
        );
        // MCH delay-oriented should improve delay over the baseline.
        assert!(
            improvements[4].1 > -5.0,
            "delay-oriented MCH should not regress delay substantially: {:?}",
            improvements
        );
    }

    #[test]
    fn table2_mch_never_needs_more_luts_than_incumbent_plus_margin() {
        let rows = run_table2(&["sin", "int2float"]);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.mch_luts as f64 <= r.best_luts as f64 * 1.05 + 1.0,
                "{}: {} vs {}",
                r.benchmark,
                r.mch_luts,
                r.best_luts
            );
        }
    }

    #[test]
    fn fig6_improvements_are_bounded() {
        let rows = run_fig6(&["int2float", "ctrl"]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.graph_node_improvement > -25.0, "{:?}", r);
            assert!(r.graph_level_improvement > -25.0, "{:?}", r);
        }
    }

    #[test]
    fn ablations_run() {
        let net = benchmark("int2float").unwrap();
        let (with, without) = ablation_choice_sharing(&net);
        assert!(with > 0.0 && without > 0.0);
        let sweep = ablation_critical_ratio(&net, &[0.5, 0.9]);
        assert_eq!(sweep.len(), 2);
        let (single, mixed) = ablation_mixed_vs_single(&net);
        assert!(single > 0 && mixed > 0);
    }
}
