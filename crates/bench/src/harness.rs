//! A minimal, dependency-free stand-in for the Criterion benchmark API.
//!
//! The container this reproduction builds in has no access to crates.io, so
//! the bench targets use this drop-in subset of Criterion instead: groups,
//! `sample_size`, `bench_function`/`Bencher::iter` and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is wall-clock with
//! automatic iteration batching for sub-millisecond functions; the reported
//! statistic is the median over samples, which is robust to scheduler noise.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// One measured benchmark function.
#[derive(Clone, Debug)]
pub struct Record {
    /// `"group/function"` identifier.
    pub id: String,
    /// Median time of one call, in nanoseconds.
    pub median_ns: f64,
    /// Minimum observed time of one call, in nanoseconds.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level benchmark driver; collects a [`Record`] per measured function.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Creates an empty driver.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let record = run_benchmark(&id, 20, f);
        self.records.push(record);
        self
    }

    /// All records measured so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Prints a closing one-line-per-record summary.
    pub fn final_summary(&self) {
        eprintln!("\n== bench summary ({} functions) ==", self.records.len());
        for r in &self.records {
            eprintln!("{:<50} median {:>12}", r.id, format_ns(r.median_ns));
        }
    }
}

/// A named group of benchmark functions sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per function.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Measures `f` and records the result as `"group/function"`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let record = run_benchmark(&id, self.sample_size, f);
        self.criterion.records.push(record);
        self
    }

    /// Ends the group (retained for Criterion API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the closure of `bench_function`; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Calls `routine` `self.iters` times, timing the whole batch.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) -> Record {
    // Warm-up and calibration: time a single call, then batch iterations so
    // each sample runs for at least ~2 ms (bounded to keep totals sane).
    let mut bencher = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    f(&mut bencher);
    let once_ns = bencher.elapsed_ns.max(1.0);
    let iters = ((2_000_000.0 / once_ns).ceil() as u64).clamp(1, 100_000);

    let mut per_call: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        per_call.push(b.elapsed_ns / iters as f64);
    }
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median_ns = per_call[per_call.len() / 2];
    let min_ns = per_call[0];
    eprintln!(
        "{id:<50} median {:>12}  min {:>12}  ({sample_size} samples × {iters} iters)",
        format_ns(median_ns),
        format_ns(min_ns),
    );
    Record {
        id: id.to_string(),
        median_ns,
        min_ns,
        samples: sample_size,
    }
}

/// Renders nanoseconds with an adaptive unit.
pub fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::new();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_collected_per_group() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("fast", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert_eq!(c.records().len(), 1);
        assert_eq!(c.records()[0].id, "g/fast");
        assert!(c.records()[0].median_ns > 0.0);
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with("s"));
    }
}
