//! Experiment harness: the code that regenerates every table and figure of
//! the MCH paper's evaluation section.
//!
//! Each `run_*` function produces the rows of one table/figure; the binaries
//! in `src/bin/` print them and the Criterion benches in `benches/` time the
//! underlying flows. See `EXPERIMENTS.md` for the mapping between paper
//! numbers and these functions.

pub mod experiments;
pub mod harness;
pub mod printing;

pub use experiments::{
    run_fig1, run_fig2, run_fig6, run_table1, run_table2, Fig1Row, Fig2Report, Fig2Row, Fig6Row,
    Table1Row, Table2Row,
};
