//! Plain-text rendering of the experiment tables (what the `src/bin/*`
//! binaries print).

use crate::experiments::{
    table1_flow_names, table1_geomeans, table1_improvements, Fig1Row, Fig2Report, Fig6Row,
    Table1Row, Table2Row,
};
use mch_core::geometric_mean;

/// Renders Figure 1 as a table.
pub fn print_fig1(rows: &[Fig1Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 1: technology mapping of 'Max' per representation (ASAP7-lite)\n");
    out.push_str(&format!(
        "{:<6} {:>7} {:>7} | {:>14} {:>14} | {:>14} {:>14}\n",
        "repr", "nodes", "levels", "delay-map area", "delay-map ps", "area-map area", "area-map ps"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:>7} {:>7} | {:>14.2} {:>14.2} | {:>14.2} {:>14.2}\n",
            r.representation.to_string(),
            r.nodes,
            r.levels,
            r.delay_oriented_area,
            r.delay_oriented_delay,
            r.area_oriented_area,
            r.area_oriented_delay
        ));
    }
    out
}

/// Renders Figure 2 as a table.
pub fn print_fig2(report: &Fig2Report) -> String {
    let mut out = String::new();
    out.push_str("Figure 2: (a+b) > 0 demo through the three flows\n");
    out.push_str(&format!(
        "original AIG: {} nodes, {} levels\n",
        report.original_nodes, report.original_levels
    ));
    out.push_str(&format!(
        "{:<26} {:>6} {:>8} {:>7} {:>10} {:>10}\n",
        "flow", "nodes", "choices", "levels", "area", "delay"
    ));
    for r in &report.rows {
        out.push_str(&format!(
            "{:<26} {:>6} {:>8} {:>7} {:>10.2} {:>10.2}\n",
            r.flow, r.nodes, r.choices, r.levels, r.area, r.delay
        ));
    }
    out
}

/// Renders Table I with geometric means and improvements.
pub fn print_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table I: ASIC technology mapping (area um^2 / delay ps / time s)\n");
    out.push_str(&format!("{:<12}", "benchmark"));
    for name in table1_flow_names() {
        out.push_str(&format!(" | {:^28}", name));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<12}", r.benchmark));
        for (area, delay, time) in &r.flows {
            out.push_str(&format!(" | {:>10.2} {:>9.2} {:>6.2}", area, delay, time));
        }
        out.push('\n');
    }
    let geo = table1_geomeans(rows);
    out.push_str(&format!("{:<12}", "geomean"));
    for (a, d, t) in &geo {
        out.push_str(&format!(" | {:>10.2} {:>9.2} {:>6.2}", a, d, t));
    }
    out.push('\n');
    let imp = table1_improvements(&geo);
    out.push_str(&format!("{:<12}", "improvement"));
    for (a, d) in &imp {
        out.push_str(&format!(" | {:>9.2}% {:>8.2}% {:>6}", a, d, ""));
    }
    out.push('\n');
    out
}

/// Renders Table II.
pub fn print_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("Table II: best area results for the EPFL benchmarks (6-LUT)\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}\n",
        "benchmark", "best LUTs", "best lev", "MCH LUTs", "MCH lev"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}\n",
            r.benchmark, r.best_luts, r.best_levels, r.mch_luts, r.mch_levels
        ));
    }
    out
}

/// Renders Figure 6 with the geometric-mean markers.
pub fn print_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6: MCH-based graph mapping improvements over the iterated baseline (%)\n");
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>8}\n",
        "benchmark", "XMG nodes", "XMG levels", "LUT count", "LUT levels", "time s"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}% {:>8.2}\n",
            r.benchmark,
            r.graph_node_improvement,
            r.graph_level_improvement,
            r.lut_node_improvement,
            r.lut_level_improvement,
            r.seconds
        ));
    }
    let geo_nodes = geometric_mean(
        &rows
            .iter()
            .map(|r| (100.0 + r.graph_node_improvement).max(1.0))
            .collect::<Vec<_>>(),
    ) - 100.0;
    let geo_levels = geometric_mean(
        &rows
            .iter()
            .map(|r| (100.0 + r.graph_level_improvement).max(1.0))
            .collect::<Vec<_>>(),
    ) - 100.0;
    out.push_str(&format!(
        "geomean marker (graph map): level {:.2}%, node {:.2}%\n",
        geo_levels, geo_nodes
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_fig2, run_table2};

    #[test]
    fn fig2_rendering_contains_flows() {
        let text = print_fig2(&run_fig2());
        assert!(text.contains("MCH for technology map"));
        assert!(text.contains("traditional"));
    }

    #[test]
    fn table2_rendering_has_header_and_rows() {
        let rows = run_table2(&["int2float"]);
        let text = print_table2(&rows);
        assert!(text.contains("best LUTs"));
        assert!(text.contains("int2float"));
    }
}
