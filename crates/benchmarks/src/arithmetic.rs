//! Generators for the arithmetic half of the EPFL-like benchmark suite.
//!
//! Every generator reproduces the functional family of the corresponding EPFL
//! circuit (carry chains, shifter trees, multiplier arrays, digit-recurrence
//! dividers/square roots, …) at a reduced bit-width so that the complete
//! experiment table runs in CI time; the widths used by the default suite are
//! listed in `EXPERIMENTS.md`.

use crate::words::{
    barrel_shift_left, constant_word, greater_than, multiply, mux_word, ripple_add, ripple_sub,
    shift_left_fixed, zero_extend, Word,
};
use mch_logic::{Network, NetworkKind, Signal};

/// `adder`: a `width`-bit ripple-carry adder (sum plus carry-out).
pub fn adder(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "adder");
    let a = n.add_inputs(width);
    let b = n.add_inputs(width);
    let zero = n.constant(false);
    let (sum, carry) = ripple_add(&mut n, &a, &b, zero);
    for s in sum {
        n.add_output(s);
    }
    n.add_output(carry);
    n
}

/// `bar`: a logarithmic barrel shifter over `width` data bits.
pub fn barrel_shifter(width: usize) -> Network {
    assert!(width.is_power_of_two(), "barrel shifter width must be a power of two");
    let mut n = Network::with_name(NetworkKind::Aig, "bar");
    let data = n.add_inputs(width);
    let shift = n.add_inputs(width.trailing_zeros() as usize);
    let out = barrel_shift_left(&mut n, &data, &shift);
    for s in out {
        n.add_output(s);
    }
    n
}

/// `div`: a restoring divider producing quotient and remainder.
pub fn divider(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "div");
    let a = n.add_inputs(width);
    let b = n.add_inputs(width);
    let rem_width = width + 1;
    let mut rem: Word = constant_word(&n, rem_width, 0);
    let b_ext = zero_extend(&n, &b, rem_width);
    let mut quotient = vec![n.constant(false); width];
    for i in (0..width).rev() {
        // rem = (rem << 1) | a[i]
        let mut shifted = shift_left_fixed(&n, &rem, 1);
        shifted[0] = a[i];
        let (diff, borrow) = ripple_sub(&mut n, &shifted, &b_ext);
        let take = !borrow;
        rem = mux_word(&mut n, take, &diff, &shifted);
        quotient[i] = take;
    }
    for q in quotient {
        n.add_output(q);
    }
    for r in rem.into_iter().take(width) {
        n.add_output(r);
    }
    n
}

/// Builds the square-root datapath over an existing word (digit recurrence).
fn sqrt_word(n: &mut Network, a: &[Signal]) -> Word {
    let width = a.len();
    let half = width.div_ceil(2);
    let rem_width = width + 2;
    let mut rem: Word = constant_word(n, rem_width, 0);
    let mut root: Word = constant_word(n, half, 0);
    for i in (0..half).rev() {
        // Bring down the next two bits of the radicand.
        let mut shifted = shift_left_fixed(n, &rem, 2);
        if 2 * i + 1 < width {
            shifted[1] = a[2 * i + 1];
        }
        if 2 * i < width {
            shifted[0] = a[2 * i];
        }
        // trial = (root << 2) | 1
        let mut trial = zero_extend(n, &shift_left_fixed(n, &root, 2), rem_width);
        trial[0] = n.constant(true);
        let (diff, borrow) = ripple_sub(n, &shifted, &trial);
        let take = !borrow;
        rem = mux_word(n, take, &diff, &shifted);
        // root = (root << 1) | take
        let mut new_root = shift_left_fixed(n, &root, 1);
        new_root[0] = take;
        root = new_root;
    }
    root
}

/// `sqrt`: integer square root by digit recurrence.
pub fn square_root(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "sqrt");
    let a = n.add_inputs(width);
    let root = sqrt_word(&mut n, &a);
    for r in root {
        n.add_output(r);
    }
    n
}

/// `hyp`: the hypotenuse `sqrt(a² + b²)`.
pub fn hypotenuse(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "hyp");
    let a = n.add_inputs(width);
    let b = n.add_inputs(width);
    let aa = multiply(&mut n, &a, &a);
    let bb = multiply(&mut n, &b, &b);
    let ext = 2 * width + 1;
    let aa_ext = zero_extend(&n, &aa, ext);
    let bb_ext = zero_extend(&n, &bb, ext);
    let zero = n.constant(false);
    let (sum, carry) = ripple_add(&mut n, &aa_ext, &bb_ext, zero);
    let mut radicand = sum;
    radicand.push(carry);
    let root = sqrt_word(&mut n, &radicand);
    for r in root {
        n.add_output(r);
    }
    n
}

/// Priority encoder over `bits` (MSB wins); returns the index word and a
/// "some bit set" flag.
pub(crate) fn priority_encode(n: &mut Network, bits: &[Signal]) -> (Word, Signal) {
    let width = bits.len();
    let index_width = usize::BITS as usize - (width - 1).leading_zeros() as usize;
    let mut index = constant_word(n, index_width.max(1), 0);
    let mut found = n.constant(false);
    // Scan from LSB to MSB so the highest set bit wins last.
    for (i, &bit) in bits.iter().enumerate() {
        let this_index = constant_word(n, index.len(), i as u64);
        index = mux_word(n, bit, &this_index, &index);
        found = n.or(found, bit);
    }
    (index, found)
}

/// `log2`: integer+fractional base-2 logarithm approximation.
///
/// The exponent is the position of the most significant set bit; the fraction
/// is the normalised mantissa (input shifted left so its MSB is aligned),
/// mirroring the leading-one-detect + normalise + table structure of the EPFL
/// circuit.
pub fn log2_approx(width: usize) -> Network {
    assert!(width.is_power_of_two(), "log2 width must be a power of two");
    let mut n = Network::with_name(NetworkKind::Aig, "log2");
    let a = n.add_inputs(width);
    let (msb_index, valid) = priority_encode(&mut n, &a);
    // Normalise: shift left by (width-1 - msb_index).
    let max_index = constant_word(&n, msb_index.len(), (width - 1) as u64);
    let (shift_amount, _) = ripple_sub(&mut n, &max_index, &msb_index);
    let normalised = barrel_shift_left(&mut n, &a, &shift_amount);
    for bit in &msb_index {
        n.add_output(*bit);
    }
    n.add_output(valid);
    // The fraction: the bits just below the leading one.
    for bit in normalised.iter().rev().skip(1).take(width / 2) {
        n.add_output(*bit);
    }
    n
}

/// `max`: the maximum of four `width`-bit words plus the index of the winner.
pub fn max_of_four(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "max");
    let words: Vec<Word> = (0..4).map(|_| n.add_inputs(width)).collect();
    // Tournament: winners of (0,1) and (2,3), then the final.
    let gt01 = greater_than(&mut n, &words[0], &words[1]);
    let w01 = mux_word(&mut n, gt01, &words[0], &words[1]);
    let gt23 = greater_than(&mut n, &words[2], &words[3]);
    let w23 = mux_word(&mut n, gt23, &words[2], &words[3]);
    let gt_final = greater_than(&mut n, &w01, &w23);
    let winner = mux_word(&mut n, gt_final, &w01, &w23);
    for s in winner {
        n.add_output(s);
    }
    // Two-bit index of the winner.
    let low = n.mux(gt_final, !gt01, !gt23);
    n.add_output(low);
    n.add_output(!gt_final);
    n
}

/// `multiplier`: an array multiplier of two `width`-bit operands.
pub fn multiplier(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "multiplier");
    let a = n.add_inputs(width);
    let b = n.add_inputs(width);
    let p = multiply(&mut n, &a, &b);
    for s in p {
        n.add_output(s);
    }
    n
}

/// `square`: the square of a `width`-bit operand.
pub fn square(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "square");
    let a = n.add_inputs(width);
    let p = multiply(&mut n, &a.clone(), &a);
    for s in p {
        n.add_output(s);
    }
    n
}

/// `sin`: a fixed-point polynomial approximation `x - x³/8 + x⁵/64`
/// (structurally: two multiplier stages plus shift-and-add post-processing,
/// like the CORDIC/polynomial datapath of the EPFL circuit).
pub fn sine_approx(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "sin");
    let x = n.add_inputs(width);
    let x2 = multiply(&mut n, &x, &x);
    let x2_top: Word = x2[width..].to_vec();
    let x3 = multiply(&mut n, &x2_top, &x);
    let x3_top: Word = x3[width..].to_vec();
    let x5 = multiply(&mut n, &x3_top, &x2_top);
    let x5_top: Word = x5[width..].to_vec();
    // x - x3/8 + x5/64 over `width` bits.
    let x3_shift = zero_extend(&n, &shift_left_fixed(&n, &x3_top, 0)[3..], width);
    let x5_shift = zero_extend(&n, &shift_left_fixed(&n, &x5_top, 0)[6.min(width - 1)..], width);
    let (tmp, _) = ripple_sub(&mut n, &x, &x3_shift);
    let zero = n.constant(false);
    let (result, _) = ripple_add(&mut n, &tmp, &x5_shift, zero);
    for s in result {
        n.add_output(s);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::simulate;

    fn eval_words(net: &Network, assignments: &[(usize, usize, u64)]) -> Vec<u64> {
        let mut patterns = vec![vec![0u64; 1]; net.input_count()];
        for &(base, width, value) in assignments {
            for b in 0..width {
                if (value >> b) & 1 == 1 {
                    patterns[base + b][0] = u64::MAX;
                }
            }
        }
        simulate(net, &patterns).iter().map(|w| w[0] & 1).collect()
    }

    fn value(bits: &[u64]) -> u64 {
        bits.iter().enumerate().fold(0, |acc, (i, &b)| acc | ((b & 1) << i))
    }

    #[test]
    fn adder_is_functional() {
        let net = adder(10);
        assert_eq!(net.input_count(), 20);
        assert_eq!(net.output_count(), 11);
        let outs = eval_words(&net, &[(0, 10, 700), (10, 10, 500)]);
        assert_eq!(value(&outs), 1200);
    }

    #[test]
    fn divider_divides() {
        let w = 8;
        let net = divider(w);
        for (a, b) in [(200u64, 7u64), (45, 9), (13, 200), (255, 1)] {
            let outs = eval_words(&net, &[(0, w, a), (w, w, b)]);
            let q = value(&outs[..w]);
            let r = value(&outs[w..2 * w]);
            assert_eq!(q, a / b, "{a}/{b}");
            assert_eq!(r, a % b, "{a}%{b}");
        }
    }

    #[test]
    fn square_root_is_exact() {
        let w = 12;
        let net = square_root(w);
        for a in [0u64, 1, 4, 100, 1023, 2047, 3600, 4095] {
            let outs = eval_words(&net, &[(0, w, a)]);
            let r = value(&outs);
            assert_eq!(r, (a as f64).sqrt().floor() as u64, "sqrt({a})");
        }
    }

    #[test]
    fn hypotenuse_matches_reference() {
        let w = 6;
        let net = hypotenuse(w);
        for (a, b) in [(3u64, 4u64), (5, 12), (60, 11), (0, 0), (63, 63)] {
            let outs = eval_words(&net, &[(0, w, a), (w, w, b)]);
            let r = value(&outs);
            let expect = ((a * a + b * b) as f64).sqrt().floor() as u64;
            assert_eq!(r, expect, "hyp({a},{b})");
        }
    }

    #[test]
    fn max_selects_largest() {
        let w = 6;
        let net = max_of_four(w);
        let outs = eval_words(&net, &[(0, w, 12), (w, w, 60), (2 * w, w, 3), (3 * w, w, 59)]);
        assert_eq!(value(&outs[..w]), 60);
    }

    #[test]
    fn multiplier_and_square() {
        let w = 6;
        let m = multiplier(w);
        let outs = eval_words(&m, &[(0, w, 21), (w, w, 13)]);
        assert_eq!(value(&outs), 21 * 13);
        let sq = square(w);
        let outs = eval_words(&sq, &[(0, w, 37)]);
        assert_eq!(value(&outs), 37 * 37);
    }

    #[test]
    fn barrel_shifter_has_expected_interface() {
        let net = barrel_shifter(16);
        assert_eq!(net.input_count(), 16 + 4);
        assert_eq!(net.output_count(), 16);
        let outs = eval_words(&net, &[(0, 16, 0b1011), (16, 4, 2)]);
        assert_eq!(value(&outs), 0b101100);
    }

    #[test]
    fn log2_reports_msb_position() {
        let net = log2_approx(16);
        let outs = eval_words(&net, &[(0, 16, 0b0010_0000_0000)]);
        // First outputs are the exponent bits (index of the MSB = 9).
        assert_eq!(value(&outs[..4]), 9);
        assert_eq!(outs[4] & 1, 1, "valid flag");
    }

    #[test]
    fn sine_is_buildable_and_nontrivial() {
        let net = sine_approx(8);
        assert_eq!(net.output_count(), 8);
        assert!(net.gate_count() > 100);
    }
}
