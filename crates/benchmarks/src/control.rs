//! Generators for the random/control half of the EPFL-like benchmark suite.

use crate::arithmetic::priority_encode;
use crate::random_logic::random_logic;
use crate::words::{barrel_shift_left, constant_word, greater_than, popcount, ripple_sub};
use mch_logic::{Network, NetworkKind, Signal};

/// `dec`: a full binary decoder with `sel_width` select bits and
/// `2^sel_width` one-hot outputs.
pub fn decoder(sel_width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "dec");
    let sel = n.add_inputs(sel_width);
    for value in 0..(1usize << sel_width) {
        let literals: Vec<Signal> = sel
            .iter()
            .enumerate()
            .map(|(bit, &s)| s.xor_complement((value >> bit) & 1 == 0))
            .collect();
        let out = n.and_reduce(&literals);
        n.add_output(out);
    }
    n
}

/// `priority`: a priority encoder over `width` request lines (MSB wins),
/// producing the binary index and a valid flag.
pub fn priority(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "priority");
    let reqs = n.add_inputs(width);
    let (index, valid) = priority_encode(&mut n, &reqs);
    for bit in index {
        n.add_output(bit);
    }
    n.add_output(valid);
    n
}

/// `voter`: the majority function of `n_inputs` voters, built as a
/// population count followed by a threshold comparison.
pub fn voter(n_inputs: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "voter");
    let votes = n.add_inputs(n_inputs);
    let count = popcount(&mut n, &votes);
    let threshold = constant_word(&n, count.len(), (n_inputs / 2) as u64);
    let majority = greater_than(&mut n, &count, &threshold);
    n.add_output(majority);
    n
}

/// `arbiter`: a combinational round-robin arbiter: `width` request lines plus
/// a `width`-bit rotating-priority mask (the registered pointer in the real
/// design), producing one-hot grants.
pub fn round_robin_arbiter(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "arbiter");
    let requests = n.add_inputs(width);
    let mask = n.add_inputs(width);
    // Grants among masked requests (the high-priority window).
    let masked: Vec<Signal> = requests
        .iter()
        .zip(&mask)
        .map(|(&r, &m)| n.and(r, m))
        .collect();
    let any_masked = n.or_reduce(&masked);
    // Fixed-priority chains over both the masked and unmasked requests.
    let chain = |n: &mut Network, reqs: &[Signal]| -> Vec<Signal> {
        let mut grants = Vec::with_capacity(reqs.len());
        let mut taken = n.constant(false);
        for &r in reqs {
            let g = n.and(r, !taken);
            grants.push(g);
            taken = n.or(taken, r);
        }
        grants
    };
    let masked_grants = chain(&mut n, &masked);
    let plain_grants = chain(&mut n, &requests);
    for i in 0..width {
        let g = n.mux(any_masked, masked_grants[i], plain_grants[i]);
        n.add_output(g);
    }
    n
}

/// `int2float`: converts a `width`-bit unsigned integer into a small
/// floating-point format (leading-one detection, normalisation, truncation),
/// with a 3-bit exponent and 4-bit mantissa like the EPFL circuit.
pub fn int2float(width: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "int2float");
    let a = n.add_inputs(width);
    let (msb, valid) = priority_encode(&mut n, &a);
    let max_index = constant_word(&n, msb.len(), (width - 1) as u64);
    let (shift, _) = ripple_sub(&mut n, &max_index, &msb);
    let normalised = barrel_shift_left(&mut n, &a, &shift);
    // Exponent: the MSB index (clamped to 3 bits); mantissa: top 4 bits below
    // the leading one.
    for bit in msb.iter().take(3) {
        n.add_output(*bit);
    }
    let mantissa: Vec<Signal> = normalised.iter().rev().skip(1).take(4).copied().collect();
    for bit in mantissa {
        n.add_output(bit);
    }
    let zero_flag = !valid;
    n.add_output(zero_flag);
    n
}

/// `cavlc`: the coefficient-coding controller, modelled as seeded random
/// control logic with the EPFL interface (10 inputs, 11 outputs).
pub fn cavlc() -> Network {
    random_logic("cavlc", 10, 11, 350, 0xCA71C)
}

/// `ctrl`: the small controller cone (7 inputs, 26 outputs).
pub fn ctrl() -> Network {
    random_logic("ctrl", 7, 26, 120, 0xC7121)
}

/// `i2c`: the bus-controller cone, scaled to 40 inputs / 35 outputs.
pub fn i2c() -> Network {
    random_logic("i2c", 40, 35, 700, 0x12C)
}

/// `mem_ctrl`: the memory-controller cone, scaled to 60 inputs / 50 outputs.
pub fn mem_ctrl() -> Network {
    random_logic("mem_ctrl", 60, 50, 2400, 0x3E3)
}

/// `router`: the NoC router control cone, scaled to 30 inputs / 20 outputs.
pub fn router() -> Network {
    random_logic("router", 30, 20, 180, 0x20172)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::Word;
    use mch_logic::simulate;

    fn eval(net: &Network, bits: &[(usize, bool)]) -> Vec<u64> {
        let mut patterns = vec![vec![0u64; 1]; net.input_count()];
        for &(i, v) in bits {
            patterns[i][0] = if v { u64::MAX } else { 0 };
        }
        simulate(net, &patterns).iter().map(|w| w[0] & 1).collect()
    }

    fn value(bits: &[u64]) -> u64 {
        bits.iter().enumerate().fold(0, |acc, (i, &b)| acc | ((b & 1) << i))
    }

    #[test]
    fn decoder_is_one_hot() {
        let net = decoder(4);
        assert_eq!(net.output_count(), 16);
        let outs = eval(&net, &[(0, true), (2, true)]); // select = 0b0101 = 5
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(o & 1 == 1, i == 5, "output {i}");
        }
    }

    #[test]
    fn priority_encoder_prefers_msb() {
        let net = priority(16);
        let outs = eval(&net, &[(3, true), (9, true)]);
        assert_eq!(value(&outs[..4]), 9);
        assert_eq!(outs[4] & 1, 1);
        let none = eval(&net, &[]);
        assert_eq!(none[4] & 1, 0, "valid must be low with no requests");
    }

    #[test]
    fn voter_takes_majority() {
        let net = voter(15);
        // 8 of 15 votes -> majority.
        let yes: Vec<(usize, bool)> = (0..8).map(|i| (i, true)).collect();
        assert_eq!(eval(&net, &yes)[0] & 1, 1);
        let no: Vec<(usize, bool)> = (0..7).map(|i| (i, true)).collect();
        assert_eq!(eval(&net, &no)[0] & 1, 0);
    }

    #[test]
    fn arbiter_grants_exactly_one_requester() {
        let width = 8;
        let net = round_robin_arbiter(width);
        // Requests 2 and 5, mask favouring indices >= 4.
        let mut assign: Vec<(usize, bool)> = vec![(2, true), (5, true)];
        for i in 4..width {
            assign.push((width + i, true));
        }
        let outs = eval(&net, &assign);
        let grants: Word = vec![];
        drop(grants);
        assert_eq!(outs.iter().map(|b| b & 1).sum::<u64>(), 1, "one-hot grant");
        assert_eq!(outs[5] & 1, 1, "masked (rotated) priority wins");
        // Without the mask window, the lowest index wins.
        let outs = eval(&net, &[(2, true), (5, true)]);
        assert_eq!(outs[2] & 1, 1);
    }

    #[test]
    fn int2float_reports_exponent() {
        let net = int2float(11);
        // Input 0b100_0000_0000 -> exponent (MSB index) = 10.
        let outs = eval(&net, &[(10, true)]);
        assert_eq!(value(&outs[..3]), 10 & 0x7);
        // Zero input sets the zero flag (last output).
        let zero = eval(&net, &[]);
        assert_eq!(zero.last().unwrap() & 1, 1);
    }

    #[test]
    fn random_control_benchmarks_have_expected_interfaces() {
        assert_eq!(cavlc().input_count(), 10);
        assert_eq!(cavlc().output_count(), 11);
        assert_eq!(ctrl().input_count(), 7);
        assert_eq!(ctrl().output_count(), 26);
        assert_eq!(i2c().output_count(), 35);
        assert_eq!(router().output_count(), 20);
        assert!(mem_ctrl().gate_count() > 1000);
    }
}
