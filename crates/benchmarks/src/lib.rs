//! EPFL-like combinational benchmark circuit generators.
//!
//! The MCH paper evaluates on the EPFL combinational benchmark suite. The
//! original suite is distributed as files; this crate instead *generates*
//! functionally-equivalent-in-spirit circuits (same functional families, same
//! structural character, reduced bit-widths) so the whole evaluation is
//! self-contained and deterministic. See `DESIGN.md` for the substitution
//! rationale and `EXPERIMENTS.md` for the exact widths.
//!
//! # Example
//!
//! ```
//! use mch_benchmarks::{benchmark, epfl_suite};
//!
//! let adder = benchmark("adder").expect("known benchmark");
//! assert_eq!(adder.input_count(), 64);
//!
//! let suite = epfl_suite();
//! assert_eq!(suite.len(), 20);
//! ```

mod arithmetic;
mod control;
mod random_logic;
mod suite;
pub mod words;

pub use arithmetic::{
    adder, barrel_shifter, divider, hypotenuse, log2_approx, max_of_four, multiplier, sine_approx,
    square, square_root,
};
pub use control::{
    cavlc, ctrl, decoder, i2c, int2float, mem_ctrl, priority, round_robin_arbiter, router, voter,
};
pub use random_logic::random_logic;
pub use suite::{
    arithmetic_names, benchmark, control_names, demo_adder_gt, epfl_suite, epfl_suite_small,
    Benchmark, Category,
};
