//! Seeded random control-logic generator.
//!
//! Several EPFL "random/control" benchmarks (cavlc, ctrl, i2c, mem_ctrl,
//! router) are flattened controller cones without a crisp arithmetic
//! structure. They are modelled here by a deterministic, seeded generator
//! that produces layered random logic with prescribed input/output/gate
//! counts, which exercises the mappers the same way: irregular cones, mixed
//! polarities and wide fanin distributions.

use mch_logic::{Network, NetworkKind, Prng, Signal};

/// Generates a random layered control-logic network.
///
/// The generator grows a pool of signals starting from the primary inputs;
/// each new gate picks two (or three) distinct pool signals, random
/// polarities and a random operator. Outputs are drawn from the deepest
/// signals so that every output cone is non-trivial. The construction is
/// fully deterministic in `seed`.
///
/// # Panics
///
/// Panics if `inputs` is zero or `outputs` is zero.
pub fn random_logic(
    name: &str,
    inputs: usize,
    outputs: usize,
    gates: usize,
    seed: u64,
) -> Network {
    assert!(inputs > 0, "at least one input required");
    assert!(outputs > 0, "at least one output required");
    let mut rng = Prng::seed_from_u64(seed);
    let mut net = Network::with_name(NetworkKind::Aig, name.to_string());
    let mut pool: Vec<Signal> = net.add_inputs(inputs);
    let target = inputs + gates;
    while net.len() < target + 1 {
        // Bias fanin selection towards recently created signals so that most
        // of the logic ends up in the transitive fan-in of the outputs (which
        // are drawn from the tail of the pool).
        let pick = |rng: &mut Prng, pool: &Vec<Signal>| -> Signal {
            if rng.gen_bool(0.6) && pool.len() > 8 {
                let window = pool.len().min(24);
                pool[pool.len() - 1 - rng.gen_range(0..window)]
            } else {
                pool[rng.gen_range(0..pool.len())]
            }
        };
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let a = a.xor_complement(rng.gen_bool(0.3));
        let b = b.xor_complement(rng.gen_bool(0.3));
        let s = match rng.gen_range(0..6) {
            0 | 1 => net.and(a, b),
            2 | 3 => net.or(a, b),
            4 => net.xor(a, b),
            _ => {
                let c = pool[rng.gen_range(0..pool.len())];
                net.maj(a, b, c)
            }
        };
        if !s.is_const() {
            pool.push(s);
        }
    }
    // Outputs: prefer late (deep) pool entries, fall back to earlier ones.
    let mut chosen = Vec::new();
    let start = pool.len().saturating_sub(outputs * 3);
    for i in 0..outputs {
        let idx = if start + i < pool.len() {
            rng.gen_range(start..pool.len())
        } else {
            rng.gen_range(0..pool.len())
        };
        chosen.push(pool[idx].xor_complement(rng.gen_bool(0.2)));
    }
    for s in chosen {
        net.add_output(s);
    }
    net.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::cec;

    #[test]
    fn generation_is_deterministic() {
        let a = random_logic("x", 12, 8, 200, 42);
        let b = random_logic("x", 12, 8, 200, 42);
        assert_eq!(a.gate_count(), b.gate_count());
        assert!(cec(&a, &b).holds());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_logic("x", 12, 8, 200, 1);
        let b = random_logic("x", 12, 8, 200, 2);
        // Interfaces match but structures should differ.
        assert!(a.gate_count() != b.gate_count() || !cec(&a, &b).holds());
    }

    #[test]
    fn respects_interface_counts() {
        let n = random_logic("y", 20, 10, 500, 7);
        assert_eq!(n.input_count(), 20);
        assert_eq!(n.output_count(), 10);
        assert!(n.gate_count() > 100, "cleanup should keep most of the logic");
        assert!(n.depth() > 3);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_rejected() {
        let _ = random_logic("bad", 0, 1, 10, 0);
    }
}
