//! The assembled EPFL-like benchmark suite and the paper's demo circuit.

use crate::arithmetic::{
    adder, barrel_shifter, divider, hypotenuse, log2_approx, max_of_four, multiplier, sine_approx,
    square, square_root,
};
use crate::control::{
    cavlc, ctrl, decoder, i2c, int2float, mem_ctrl, priority, round_robin_arbiter, router, voter,
};
use mch_logic::{Network, NetworkKind};

/// Which half of the EPFL suite a benchmark belongs to.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Category {
    /// Arithmetic circuits (adders, shifters, multipliers, dividers, …).
    Arithmetic,
    /// Random/control circuits (arbiters, decoders, controllers, …).
    RandomControl,
}

/// One generated benchmark circuit.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The EPFL benchmark name this circuit stands in for.
    pub name: &'static str,
    /// Arithmetic or random/control.
    pub category: Category,
    /// The generated network (an AIG).
    pub network: Network,
}

/// Generates the circuit standing in for the named EPFL benchmark, at the
/// default (scaled) size. Returns `None` for unknown names.
pub fn benchmark(name: &str) -> Option<Network> {
    let net = match name {
        "adder" => adder(32),
        "bar" => barrel_shifter(32),
        "div" => divider(12),
        "hyp" => hypotenuse(10),
        "log2" => log2_approx(16),
        "max" => max_of_four(16),
        "multiplier" => multiplier(12),
        "sin" => sine_approx(10),
        "sqrt" => square_root(16),
        "square" => square(12),
        "arbiter" => round_robin_arbiter(32),
        "cavlc" => cavlc(),
        "ctrl" => ctrl(),
        "dec" => decoder(7),
        "i2c" => i2c(),
        "int2float" => int2float(11),
        "mem_ctrl" => mem_ctrl(),
        "priority" => priority(64),
        "router" => router(),
        "voter" => voter(63),
        _ => return None,
    };
    Some(net)
}

/// Names of the ten arithmetic benchmarks, in the paper's table order.
pub fn arithmetic_names() -> [&'static str; 10] {
    [
        "adder",
        "bar",
        "div",
        "hyp",
        "log2",
        "max",
        "multiplier",
        "sin",
        "sqrt",
        "square",
    ]
}

/// Names of the ten random/control benchmarks, in the paper's table order.
pub fn control_names() -> [&'static str; 10] {
    [
        "arbiter",
        "cavlc",
        "ctrl",
        "dec",
        "i2c",
        "int2float",
        "mem_ctrl",
        "priority",
        "router",
        "voter",
    ]
}

/// Generates the complete 20-circuit suite at default sizes.
pub fn epfl_suite() -> Vec<Benchmark> {
    let mut out = Vec::with_capacity(20);
    for name in arithmetic_names() {
        out.push(Benchmark {
            name,
            category: Category::Arithmetic,
            network: benchmark(name).expect("known benchmark"),
        });
    }
    for name in control_names() {
        out.push(Benchmark {
            name,
            category: Category::RandomControl,
            network: benchmark(name).expect("known benchmark"),
        });
    }
    out
}

/// A reduced suite (the smaller circuits only) used by CI-friendly tests and
/// the quick variants of the experiment binaries.
pub fn epfl_suite_small() -> Vec<Benchmark> {
    epfl_suite()
        .into_iter()
        .filter(|b| b.network.gate_count() <= 1200)
        .collect()
}

/// The demo circuit of Fig. 2 of the paper: `res = (a + b) > 0` for two 2-bit
/// operands, which structurally hashes into the 11-node AIG shown there.
pub fn demo_adder_gt() -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "demo");
    let a = n.add_inputs(2);
    let b = n.add_inputs(2);
    let zero = n.constant(false);
    let (sum, carry) = crate::words::ripple_add(&mut n, &a, &b, zero);
    let mut all = sum;
    all.push(carry);
    let gt = n.or_reduce(&all);
    n.add_output(gt);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_circuits_with_unique_names() {
        let suite = epfl_suite();
        assert_eq!(suite.len(), 20);
        let mut names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 20);
        assert_eq!(
            suite.iter().filter(|b| b.category == Category::Arithmetic).count(),
            10
        );
    }

    #[test]
    fn every_benchmark_is_nontrivial_and_an_aig() {
        for b in epfl_suite() {
            assert!(b.network.gate_count() > 30, "{} too small", b.name);
            assert!(b.network.depth() > 2, "{} too shallow", b.name);
            assert_eq!(b.network.kind(), NetworkKind::Aig, "{}", b.name);
            assert!(b.network.output_count() > 0, "{}", b.name);
        }
    }

    #[test]
    fn unknown_benchmark_name_is_none() {
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn small_suite_is_a_subset() {
        let small = epfl_suite_small();
        assert!(!small.is_empty());
        assert!(small.len() <= 20);
        assert!(small.iter().all(|b| b.network.gate_count() <= 1200));
    }

    #[test]
    fn demo_circuit_matches_figure_two() {
        let demo = demo_adder_gt();
        assert_eq!(demo.input_count(), 4);
        assert_eq!(demo.output_count(), 1);
        // The paper reports an 11-node AIG with 4 levels for this circuit; our
        // structural translation lands in the same ballpark before any
        // technology-independent optimization.
        assert!(demo.gate_count() >= 9 && demo.gate_count() <= 20, "{}", demo.gate_count());
        assert!(demo.depth() >= 3 && demo.depth() <= 6);
    }
}
