//! Word-level construction helpers: bit-vector arithmetic and selection
//! primitives used by the benchmark generators.

use mch_logic::{Network, Signal};

/// A little-endian bit vector (`bits[0]` is the least significant bit).
pub type Word = Vec<Signal>;

/// Builds a constant word of the given width.
pub fn constant_word(net: &Network, width: usize, value: u64) -> Word {
    (0..width)
        .map(|i| net.constant((value >> i) & 1 == 1))
        .collect()
}

/// Ripple-carry addition; returns the sum (same width) and the carry-out.
pub fn ripple_add(net: &mut Network, a: &[Signal], b: &[Signal], carry_in: Signal) -> (Word, Signal) {
    assert_eq!(a.len(), b.len(), "operands must have equal widths");
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = net.full_adder(x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b`; returns the difference and a borrow
/// flag (`true` when `a < b`).
pub fn ripple_sub(net: &mut Network, a: &[Signal], b: &[Signal]) -> (Word, Signal) {
    let nb: Word = b.iter().map(|&s| !s).collect();
    let one = net.constant(true);
    let (diff, carry) = ripple_add(net, a, &nb, one);
    (diff, !carry)
}

/// Unsigned "greater than" comparison.
pub fn greater_than(net: &mut Network, a: &[Signal], b: &[Signal]) -> Signal {
    assert_eq!(a.len(), b.len());
    let mut gt = net.constant(false);
    let mut eq = net.constant(true);
    // From MSB to LSB: gt |= eq & a_i & !b_i ; eq &= (a_i == b_i).
    for i in (0..a.len()).rev() {
        let ai_gt_bi = net.and(a[i], !b[i]);
        let this = net.and(eq, ai_gt_bi);
        gt = net.or(gt, this);
        let same = net.xnor(a[i], b[i]);
        eq = net.and(eq, same);
    }
    gt
}

/// Returns `true` when the word is non-zero.
pub fn non_zero(net: &mut Network, a: &[Signal]) -> Signal {
    net.or_reduce(a)
}

/// Word-level 2:1 multiplexer: `sel ? a : b`.
pub fn mux_word(net: &mut Network, sel: Signal, a: &[Signal], b: &[Signal]) -> Word {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| net.mux(sel, x, y)).collect()
}

/// Logical left shift by a fixed amount (zero fill), keeping the width.
pub fn shift_left_fixed(net: &Network, a: &[Signal], amount: usize) -> Word {
    let mut out = vec![net.constant(false); a.len()];
    for i in 0..a.len() {
        if i >= amount {
            out[i] = a[i - amount];
        }
    }
    out
}

/// Logical right shift by a fixed amount (zero fill), keeping the width.
pub fn shift_right_fixed(net: &Network, a: &[Signal], amount: usize) -> Word {
    let mut out = vec![net.constant(false); a.len()];
    for i in 0..a.len() {
        if i + amount < a.len() {
            out[i] = a[i + amount];
        }
    }
    out
}

/// Barrel shifter: logical left shift of `a` by the binary amount `shift`.
pub fn barrel_shift_left(net: &mut Network, a: &[Signal], shift: &[Signal]) -> Word {
    let mut current: Word = a.to_vec();
    for (stage, &s) in shift.iter().enumerate() {
        let shifted = shift_left_fixed(net, &current, 1 << stage);
        current = mux_word(net, s, &shifted, &current);
    }
    current
}

/// Array multiplier; the result has `a.len() + b.len()` bits.
pub fn multiply(net: &mut Network, a: &[Signal], b: &[Signal]) -> Word {
    let width = a.len() + b.len();
    let mut acc = constant_word(net, width, 0);
    for (i, &bi) in b.iter().enumerate() {
        // Partial product: (a & b_i) << i, extended to `width` bits.
        let mut partial = vec![net.constant(false); width];
        for (j, &aj) in a.iter().enumerate() {
            partial[i + j] = net.and(aj, bi);
        }
        let zero = net.constant(false);
        let (sum, _) = ripple_add(net, &acc, &partial, zero);
        acc = sum;
    }
    acc
}

/// Zero-extends a word to `width` bits.
pub fn zero_extend(net: &Network, a: &[Signal], width: usize) -> Word {
    let mut out = a.to_vec();
    while out.len() < width {
        out.push(net.constant(false));
    }
    out.truncate(width);
    out
}

/// Counts the number of set bits; the result has `ceil(log2(n+1))` bits.
pub fn popcount(net: &mut Network, bits: &[Signal]) -> Word {
    if bits.is_empty() {
        return vec![];
    }
    if bits.len() == 1 {
        return vec![bits[0]];
    }
    let mid = bits.len() / 2;
    let left = popcount(net, &bits[..mid]);
    let right = popcount(net, &bits[mid..]);
    let width = left.len().max(right.len()) + 1;
    let l = zero_extend(net, &left, width);
    let r = zero_extend(net, &right, width);
    let zero = net.constant(false);
    let (sum, _) = ripple_add(net, &l, &r, zero);
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{simulate, Network, NetworkKind};

    /// Evaluates a combinational word function on concrete inputs.
    fn eval(net: &Network, inputs: &[(usize, u64)], width_in: usize) -> Vec<u64> {
        let mut patterns = vec![vec![0u64; 1]; net.input_count()];
        for &(base, value) in inputs {
            for b in 0..width_in {
                if (value >> b) & 1 == 1 {
                    patterns[base + b][0] = u64::MAX;
                }
            }
        }
        simulate(net, &patterns).iter().map(|w| w[0] & 1).collect()
    }

    fn word_value(bits: &[u64]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | ((b & 1) << i))
    }

    #[test]
    fn adder_computes_sums() {
        let mut net = Network::new(NetworkKind::Aig);
        let a = net.add_inputs(8);
        let b = net.add_inputs(8);
        let zero = net.constant(false);
        let (sum, carry) = ripple_add(&mut net, &a, &b, zero);
        for s in sum {
            net.add_output(s);
        }
        net.add_output(carry);
        for (x, y) in [(3u64, 5u64), (200, 100), (255, 255), (0, 0)] {
            let outs = eval(&net, &[(0, x), (8, y)], 8);
            let total = word_value(&outs[..8]) | (outs[8] & 1) << 8;
            assert_eq!(total, x + y, "{x}+{y}");
        }
    }

    #[test]
    fn subtractor_and_comparator() {
        let mut net = Network::new(NetworkKind::Aig);
        let a = net.add_inputs(6);
        let b = net.add_inputs(6);
        let (diff, borrow) = ripple_sub(&mut net, &a, &b);
        let gt = greater_than(&mut net, &a, &b);
        for d in diff {
            net.add_output(d);
        }
        net.add_output(borrow);
        net.add_output(gt);
        for (x, y) in [(20u64, 7u64), (7, 20), (33, 33), (63, 0)] {
            let outs = eval(&net, &[(0, x), (6, y)], 6);
            let diff = word_value(&outs[..6]);
            assert_eq!(diff, x.wrapping_sub(y) & 0x3F);
            assert_eq!(outs[6] & 1 == 1, x < y, "borrow for {x}-{y}");
            assert_eq!(outs[7] & 1 == 1, x > y, "gt for {x}>{y}");
        }
    }

    #[test]
    fn multiplier_is_correct() {
        let mut net = Network::new(NetworkKind::Aig);
        let a = net.add_inputs(5);
        let b = net.add_inputs(5);
        let p = multiply(&mut net, &a, &b);
        for s in p {
            net.add_output(s);
        }
        for (x, y) in [(0u64, 0u64), (31, 31), (12, 17), (25, 3)] {
            let outs = eval(&net, &[(0, x), (5, y)], 5);
            assert_eq!(word_value(&outs), x * y, "{x}*{y}");
        }
    }

    #[test]
    fn barrel_shifter_shifts() {
        let mut net = Network::new(NetworkKind::Aig);
        let a = net.add_inputs(8);
        let sh = net.add_inputs(3);
        let out = barrel_shift_left(&mut net, &a, &sh);
        for s in out {
            net.add_output(s);
        }
        for (value, shift) in [(0b1011u64, 0u64), (0b1011, 3), (0xFF, 7), (1, 5)] {
            let outs = eval(&net, &[(0, value), (8, shift)], 8);
            assert_eq!(word_value(&outs), (value << shift) & 0xFF, "{value}<<{shift}");
        }
    }

    #[test]
    fn popcount_counts() {
        let mut net = Network::new(NetworkKind::Aig);
        let bits = net.add_inputs(7);
        let count = popcount(&mut net, &bits);
        for c in count {
            net.add_output(c);
        }
        for value in [0u64, 0b1111111, 0b1010101, 0b0011000] {
            let outs = eval(&net, &[(0, value)], 7);
            assert_eq!(word_value(&outs), value.count_ones() as u64, "popcount({value:b})");
        }
    }
}
