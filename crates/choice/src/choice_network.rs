//! Choice networks: a mixed network plus equivalence classes between
//! *representative* nodes (the original structure) and *choice* nodes
//! (functionally equivalent candidate structures).

use mch_logic::{simulate_nodes, GateKind, Network, NetworkKind, NodeId, Prng, Signal};
use std::collections::BTreeMap;

/// A mixed network with structural choices.
///
/// The network always contains the original structure; candidate structures
/// added later share its primary inputs and are linked to original nodes
/// through equivalence classes. Representative nodes are the original nodes;
/// each may own any number of choice nodes, each with a phase flag (`true`
/// when the choice computes the complement of the representative).
///
/// # Determinism
///
/// Choice classes are stored in id-sorted structures ([`BTreeMap`]s), so
/// every iteration a consumer can observe —
/// [`representatives`](ChoiceNetwork::representatives),
/// [`verify`](ChoiceNetwork::verify), equality comparison — is in ascending
/// node-id order, independent of any hasher seed. (An earlier revision kept `HashMap`s here; the mapper's
/// choice transfer had to sort around it, and anything that forgot inherited
/// run-to-run nondeterminism from the source.) Two choice networks built the
/// same way therefore compare equal with `==`, down to the underlying
/// network's node vector.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChoiceNetwork {
    network: Network,
    original_len: usize,
    choices: BTreeMap<NodeId, Vec<(NodeId, bool)>>,
    repr: BTreeMap<NodeId, (NodeId, bool)>,
}

impl ChoiceNetwork {
    /// Creates a choice network containing only the original structure.
    ///
    /// The original network is copied verbatim into a [`NetworkKind::Mixed`]
    /// network; node ids are preserved, so ids of `network` remain valid in
    /// the choice network.
    pub fn from_network(network: &Network) -> Self {
        let mut mixed = Network::with_name(NetworkKind::Mixed, network.name().to_string());
        for _ in 0..network.input_count() {
            mixed.add_input();
        }
        for id in network.gate_ids() {
            let node = network.node(id);
            let f: Vec<Signal> = node.fanins().to_vec();
            let new = match node.kind() {
                GateKind::And2 => mixed.and2(f[0], f[1]),
                GateKind::Xor2 => mixed.xor2(f[0], f[1]),
                GateKind::Maj3 => mixed.maj3(f[0], f[1], f[2]),
                _ => unreachable!("gate_ids yields only gates"),
            };
            debug_assert_eq!(new.node(), id, "verbatim copy must preserve node ids");
            debug_assert!(!new.is_complement());
        }
        for &o in network.outputs() {
            mixed.add_output(o);
        }
        debug_assert_eq!(mixed.len(), network.len());
        ChoiceNetwork {
            original_len: network.len(),
            network: mixed,
            choices: BTreeMap::new(),
            repr: BTreeMap::new(),
        }
    }

    /// The underlying mixed network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the underlying mixed network, used by the MCH
    /// construction to emit candidate cones.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Number of nodes belonging to the original structure.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Returns `true` if `node` belongs to the original structure (and is
    /// therefore a representative or a primary input/constant).
    pub fn is_original(&self, node: NodeId) -> bool {
        node.index() < self.original_len
    }

    /// Records that `candidate` computes the same function as representative
    /// `repr` (up to the complement encoded in the candidate signal).
    ///
    /// Requests are ignored when the candidate *is* the representative, when
    /// the candidate is part of the original structure, or when the candidate
    /// already belongs to another equivalence class.
    ///
    /// Returns `true` if the choice was recorded.
    pub fn add_choice(&mut self, repr: NodeId, candidate: Signal) -> bool {
        let cand_node = candidate.node();
        if cand_node == repr || cand_node.is_const() {
            return false;
        }
        if self.is_original(cand_node) {
            // Structural hashing resolved the candidate onto existing original
            // logic — nothing new to offer the mapper.
            return false;
        }
        if self.repr.contains_key(&cand_node) {
            return false;
        }
        let phase = candidate.is_complement();
        self.repr.insert(cand_node, (repr, phase));
        let entry = self.choices.entry(repr).or_default();
        if entry.iter().any(|&(n, _)| n == cand_node) {
            return false;
        }
        entry.push((cand_node, phase));
        true
    }

    /// The choices recorded for representative `repr`.
    pub fn choices_of(&self, repr: NodeId) -> &[(NodeId, bool)] {
        self.choices.get(&repr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The representative (and phase) of a choice node, if any.
    pub fn repr_of(&self, node: NodeId) -> Option<(NodeId, bool)> {
        self.repr.get(&node).copied()
    }

    /// Representatives that own at least one choice, in ascending id order
    /// (guaranteed — consumers may rely on it for deterministic scheduling).
    pub fn representatives(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.choices.keys().copied()
    }

    /// Total number of choice nodes in the network.
    pub fn choice_count(&self) -> usize {
        self.choices.values().map(Vec::len).sum()
    }

    /// Verifies every recorded equivalence by randomized simulation.
    ///
    /// Returns the list of `(representative, choice)` pairs whose simulated
    /// values differ — an empty vector means no discrepancy was observed.
    /// Pairs are reported in ascending representative-id order.
    pub fn verify(&self, words: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        if self.choices.is_empty() {
            return Vec::new();
        }
        let mut rng = Prng::seed_from_u64(seed);
        let patterns: Vec<Vec<u64>> = (0..self.network.input_count())
            .map(|_| (0..words).map(|_| rng.next_u64()).collect())
            .collect();
        let values = simulate_nodes(&self.network, &patterns);
        let mut bad = Vec::new();
        for (&repr, list) in &self.choices {
            for &(choice, phase) in list {
                let equal = values[repr.index()]
                    .iter()
                    .zip(&values[choice.index()])
                    .all(|(&a, &b)| if phase { a == !b } else { a == b });
                if !equal {
                    bad.push((repr, choice));
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{Network, NetworkKind};

    fn base() -> (Network, Signal, Signal, Signal) {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let f = n.and2(a, b);
        n.add_output(f);
        (n, a, b, f)
    }

    #[test]
    fn from_network_preserves_ids_and_outputs() {
        let (n, _, _, f) = base();
        let cn = ChoiceNetwork::from_network(&n);
        assert_eq!(cn.network().len(), n.len());
        assert_eq!(cn.network().outputs(), n.outputs());
        assert!(cn.is_original(f.node()));
        assert_eq!(cn.choice_count(), 0);
    }

    #[test]
    fn add_choice_links_candidate() {
        let (n, a, b, f) = base();
        let mut cn = ChoiceNetwork::from_network(&n);
        // Candidate: !(!a | !b) == a & b built as an OR-of-inverters (NOR form).
        let cand = {
            let net = cn.network_mut();
            let o = net.maj3(!a, !b, Signal::CONST1); // !a | !b as a majority
            !o
        };
        assert!(cn.add_choice(f.node(), cand));
        assert_eq!(cn.choice_count(), 1);
        assert_eq!(cn.repr_of(cand.node()), Some((f.node(), cand.is_complement())));
        assert_eq!(cn.choices_of(f.node()).len(), 1);
        assert!(cn.verify(8, 7).is_empty());
    }

    #[test]
    fn add_choice_rejects_self_and_duplicates() {
        let (n, a, b, f) = base();
        let mut cn = ChoiceNetwork::from_network(&n);
        assert!(!cn.add_choice(f.node(), f));
        let cand = {
            let net = cn.network_mut();
            net.maj3(a, b, Signal::CONST0)
        };
        assert!(cn.add_choice(f.node(), cand));
        assert!(!cn.add_choice(f.node(), cand));
        // A second representative cannot claim the same candidate node.
        assert!(!cn.add_choice(a.node(), cand));
    }

    #[test]
    fn add_choice_rejects_original_nodes() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let f = n.and2(a, b);
        let g = n.and2(a, !b);
        n.add_output(f);
        n.add_output(g);
        let mut cn = ChoiceNetwork::from_network(&n);
        // g is part of the original structure; it cannot become a choice of f.
        assert!(!cn.add_choice(f.node(), g));
    }

    #[test]
    fn verify_detects_wrong_choices() {
        let (n, a, b, f) = base();
        let mut cn = ChoiceNetwork::from_network(&n);
        let wrong = {
            let net = cn.network_mut();
            net.maj3(a, !b, Signal::CONST0) // a & !b, NOT equivalent to a & b
        };
        assert!(cn.add_choice(f.node(), wrong));
        assert_eq!(cn.verify(8, 3).len(), 1);
    }

    #[test]
    fn representatives_iterate_in_ascending_id_order() {
        // Insert choices against representatives in scrambled order; the
        // iteration (and everything derived from it: scheduling, arena
        // layouts, verification reports) must come back id-sorted.
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(4);
        let g1 = n.and2(xs[0], xs[1]);
        let g2 = n.and2(xs[2], xs[3]);
        let g3 = n.and2(g1, g2);
        n.add_output(g3);
        let mut cn = ChoiceNetwork::from_network(&n);
        for &repr in [g3, g1, g2].iter() {
            let cand = {
                let net = cn.network_mut();
                let inner = net.node(repr.node()).fanins().to_vec();
                let o = net.maj3(!inner[0], !inner[1], Signal::CONST1);
                !o
            };
            assert!(cn.add_choice(repr.node(), cand), "candidate for {repr}");
        }
        let reprs: Vec<NodeId> = cn.representatives().collect();
        let mut sorted = reprs.clone();
        sorted.sort_unstable();
        assert_eq!(reprs, sorted, "representatives must iterate id-sorted");
        assert_eq!(reprs.len(), 3);
        assert!(cn.verify(16, 1).is_empty());
    }

    #[test]
    fn equal_construction_sequences_compare_equal() {
        let (n, a, b, f) = base();
        let build = || {
            let mut cn = ChoiceNetwork::from_network(&n);
            let cand = {
                let net = cn.network_mut();
                net.maj3(a, b, Signal::CONST0)
            };
            cn.add_choice(f.node(), cand);
            cn
        };
        assert_eq!(build(), build());
    }
}
