//! The DCH baseline: structural choices from technology-independent
//! optimization snapshots.
//!
//! ABC's `dch` command builds a choice network by combining the original
//! network with the results of running synthesis scripts on it, identifying
//! functionally equivalent nodes across the versions. This module reproduces
//! that behaviour: it takes the original network plus any number of optimized
//! snapshots and links nodes whose simulation signatures agree (up to
//! complement). It is the baseline MCH is compared against in Table I.

use crate::choice_network::ChoiceNetwork;
use mch_logic::{simulate_nodes, GateKind, Network, NodeId, Prng, Signal, TruthTable};
use std::collections::{HashMap, HashSet};

/// Number of 64-bit simulation words used for signature matching.
const SIGNATURE_WORDS: usize = 32;

/// Maximum primary-input support for the exact functional check of a tentative
/// link; pairs whose combined support exceeds this are not linked (signature
/// agreement alone is not a proof of equivalence).
const MAX_LINK_SUPPORT: usize = 14;

/// Computes the function of `node` over the primary inputs in `support`
/// (given as the mapping PI node → variable index). Returns `None` when the
/// cone reaches a PI outside `support` or grows beyond a safety bound.
fn function_over_support(
    network: &Network,
    node: NodeId,
    support: &HashMap<NodeId, usize>,
) -> Option<TruthTable> {
    let nvars = support.len();
    let mut values: HashMap<NodeId, TruthTable> = HashMap::new();
    values.insert(NodeId::CONST0, TruthTable::zeros(nvars));
    // Collect the cone in topological (ascending id) order.
    let mut cone: Vec<NodeId> = Vec::new();
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if network.is_input(n) {
            let var = *support.get(&n)?;
            values.insert(n, TruthTable::var(nvars, var));
            continue;
        }
        if n.is_const() {
            continue;
        }
        cone.push(n);
        if cone.len() > 20_000 {
            return None;
        }
        for f in network.node(n).fanins() {
            stack.push(f.node());
        }
    }
    cone.sort();
    for id in cone {
        let gate = network.node(id);
        let mut fs = Vec::with_capacity(3);
        for s in gate.fanins() {
            let base = values.get(&s.node())?;
            fs.push(if s.is_complement() { base.not() } else { base.clone() });
        }
        let t = match gate.kind() {
            GateKind::And2 => fs[0].and(&fs[1]),
            GateKind::Xor2 => fs[0].xor(&fs[1]),
            GateKind::Maj3 => TruthTable::maj(&fs[0], &fs[1], &fs[2]),
            _ => return None,
        };
        values.insert(id, t);
    }
    values.get(&node).cloned()
}

/// Collects the primary-input support of `node`, aborting when it exceeds
/// `limit` inputs.
fn pi_support(network: &Network, node: NodeId, limit: usize) -> Option<Vec<NodeId>> {
    let mut pis: Vec<NodeId> = Vec::new();
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if network.is_input(n) {
            pis.push(n);
            if pis.len() > limit {
                return None;
            }
            continue;
        }
        for f in network.node(n).fanins() {
            stack.push(f.node());
        }
    }
    pis.sort();
    Some(pis)
}

/// Exact equivalence check of two nodes (up to the given phase) over their
/// combined primary-input support. Returns `false` when the support is too
/// large to check exhaustively.
fn nodes_equivalent(network: &Network, a: NodeId, b: NodeId, phase: bool) -> bool {
    let Some(sa) = pi_support(network, a, MAX_LINK_SUPPORT) else {
        return false;
    };
    let Some(sb) = pi_support(network, b, MAX_LINK_SUPPORT) else {
        return false;
    };
    let mut union: Vec<NodeId> = sa;
    union.extend(sb);
    union.sort();
    union.dedup();
    if union.len() > MAX_LINK_SUPPORT {
        return false;
    }
    let support: HashMap<NodeId, usize> = union.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let Some(fa) = function_over_support(network, a, &support) else {
        return false;
    };
    let Some(fb) = function_over_support(network, b, &support) else {
        return false;
    };
    if phase {
        fa == fb.not()
    } else {
        fa == fb
    }
}

/// Builds a choice network from the original network and optimized snapshots.
///
/// Every snapshot must have the same primary-input and primary-output counts
/// as `original`. Snapshot gates are copied into the mixed network and linked
/// to original nodes whose randomized simulation signature matches (directly
/// or complemented). Signature matching is the same lightweight equivalence
/// detection used by SAT-sweeping-based choice construction, minus the final
/// SAT proof; the experiment harness re-verifies full flows with [`mch_logic::cec`].
///
/// # Panics
///
/// Panics if a snapshot's interface differs from the original's.
pub fn dch_from_snapshots(original: &Network, snapshots: &[Network]) -> ChoiceNetwork {
    let mut cn = ChoiceNetwork::from_network(original);
    for snap in snapshots {
        add_snapshot_choices(&mut cn, snap);
    }
    cn
}

/// Copies an optimized `snapshot` of the same design into an existing choice
/// network and links its nodes to the originals by simulation signature.
///
/// This is the building block shared by the DCH baseline and the MCH flows
/// that mix whole restructured views (e.g. the XAG or MIG graph-mapped version
/// of the design) into the choice network, in addition to the per-node
/// candidates of Algorithm 2.
///
/// Returns the number of new choices recorded.
///
/// # Panics
///
/// Panics if the snapshot's interface differs from the choice network's.
pub fn add_snapshot_choices(cn: &mut ChoiceNetwork, snapshot: &Network) -> usize {
    assert_eq!(
        snapshot.input_count(),
        cn.network().input_count(),
        "snapshot primary inputs must match the original"
    );
    assert_eq!(
        snapshot.output_count(),
        cn.network().output_count(),
        "snapshot primary outputs must match the original"
    );
    let mut copied: Vec<NodeId> = Vec::new();
    {
        let mixed = cn.network_mut();
        let mut map: Vec<Signal> = vec![Signal::CONST0; snapshot.len()];
        for (i, &pi) in snapshot.inputs().iter().enumerate() {
            map[pi.index()] = mixed.input(i);
        }
        for id in snapshot.gate_ids() {
            let node = snapshot.node(id);
            let f: Vec<Signal> = node
                .fanins()
                .iter()
                .map(|s| map[s.node().index()].xor_complement(s.is_complement()))
                .collect();
            let sig = match node.kind() {
                GateKind::And2 => mixed.and2(f[0], f[1]),
                GateKind::Xor2 => mixed.xor2(f[0], f[1]),
                GateKind::Maj3 => mixed.maj3(f[0], f[1], f[2]),
                _ => unreachable!("gate_ids yields only gates"),
            };
            map[id.index()] = sig;
            copied.push(sig.node());
        }
    }
    link_by_signature(cn, &copied)
}

/// Canonicalizes a signature for phase-insensitive lookup: the first bit is
/// forced to zero by complementing when necessary.
fn canonical_signature(words: &[u64]) -> (Vec<u64>, bool) {
    if words.first().is_some_and(|w| w & 1 == 1) {
        (words.iter().map(|w| !w).collect(), true)
    } else {
        (words.to_vec(), false)
    }
}

fn link_by_signature(cn: &mut ChoiceNetwork, candidates: &[NodeId]) -> usize {
    if candidates.is_empty() {
        return 0;
    }
    let network = cn.network();
    let mut rng = Prng::seed_from_u64(0xD0C0_FFEE);
    let patterns: Vec<Vec<u64>> = (0..network.input_count())
        .map(|_| (0..SIGNATURE_WORDS).map(|_| rng.next_u64()).collect())
        .collect();
    let values = simulate_nodes(network, &patterns);

    // Index original gate nodes by canonical signature.
    let mut index: HashMap<Vec<u64>, (NodeId, bool)> = HashMap::new();
    for id in network.gate_ids() {
        if !cn.is_original(id) {
            continue;
        }
        let (key, phase) = canonical_signature(&values[id.index()]);
        index.entry(key).or_insert((id, phase));
    }

    let mut links: Vec<(NodeId, Signal)> = Vec::new();
    for &cand in candidates {
        if cn.is_original(cand) {
            continue;
        }
        let (key, cand_phase) = canonical_signature(&values[cand.index()]);
        if let Some(&(repr, repr_phase)) = index.get(&key) {
            links.push((repr, Signal::new(cand, repr_phase ^ cand_phase)));
        }
    }
    let mut added = 0;
    for (repr, sig) in links {
        // The signature match is only a hypothesis; prove it exhaustively over
        // the pair's input support before recording the choice. Pairs whose
        // support is too wide to prove are skipped — an unproven choice could
        // silently corrupt the mapped netlist.
        if !nodes_equivalent(cn.network(), repr, sig.node(), sig.is_complement()) {
            continue;
        }
        if cn.add_choice(repr, sig) {
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{cec, convert, Network, NetworkKind};

    fn original() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "dch-test");
        let a = n.add_inputs(3);
        let x = n.xor(a[0], a[1]);
        let y = n.and(x, a[2]);
        let z = n.or(y, a[0]);
        n.add_output(z);
        n.add_output(y);
        n
    }

    /// A functionally identical network with a different structure.
    fn restructured() -> Network {
        let mut n = Network::new(NetworkKind::Xag);
        let a = n.add_inputs(3);
        let x = n.xor2(a[0], a[1]);
        let y = n.and2(x, a[2]);
        let z = n.or(y, a[0]);
        n.add_output(z);
        n.add_output(y);
        n
    }

    #[test]
    fn snapshots_contribute_choices() {
        let orig = original();
        let snap = restructured();
        assert!(cec(&orig, &snap).holds());
        let cn = dch_from_snapshots(&orig, &[snap]);
        assert!(cn.choice_count() > 0, "equivalent snapshot nodes should link");
        assert!(cn.verify(16, 3).is_empty());
        assert!(cec(&orig, &cn.network().cleanup()).holds());
    }

    #[test]
    fn no_snapshots_means_no_choices() {
        let orig = original();
        let cn = dch_from_snapshots(&orig, &[]);
        assert_eq!(cn.choice_count(), 0);
    }

    #[test]
    fn representation_snapshot_links_across_kinds() {
        let orig = original();
        let mig = convert(&orig, NetworkKind::Mig);
        let cn = dch_from_snapshots(&orig, &[mig]);
        assert!(cn.choice_count() > 0);
        assert!(cn.verify(16, 9).is_empty());
    }

    #[test]
    #[should_panic(expected = "primary inputs must match")]
    fn mismatched_snapshot_is_rejected() {
        let orig = original();
        let mut other = Network::new(NetworkKind::Aig);
        let a = other.add_input();
        other.add_output(a);
        let _ = dch_from_snapshots(&orig, &[other]);
    }
}
