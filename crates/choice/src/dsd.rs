//! Disjoint-support decomposition (DSD) and Shannon decomposition.
//!
//! These are the *level-oriented* synthesis strategies of the multi-strategy
//! structural choice algorithm (Algorithm 2, lines 2–6): critical-path nodes
//! are re-expressed with top decompositions that expose balanced, shallow
//! structures (XOR tops, MUX tops) rather than area-minimal ones.

use mch_logic::{Network, Signal, TruthTable};

/// A decomposition step discovered at the top of a function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Decomposition {
    /// The function is constant.
    Constant(bool),
    /// The function is a (possibly complemented) single variable.
    Literal {
        /// Variable index.
        var: usize,
        /// Whether the literal is complemented.
        complement: bool,
    },
    /// `f = g AND h` with disjoint supports after splitting on `var`:
    /// `f = x^phase & cofactor` (simple top-AND extraction).
    TopAnd {
        /// Variable extracted.
        var: usize,
        /// Phase of the extracted literal.
        positive: bool,
        /// The remaining function (a cofactor).
        rest: TruthTable,
    },
    /// `f = x^phase OR cofactor`.
    TopOr {
        /// Variable extracted.
        var: usize,
        /// Phase of the extracted literal.
        positive: bool,
        /// The remaining function (a cofactor).
        rest: TruthTable,
    },
    /// `f = x XOR cofactor` (the variable appears linearly).
    TopXor {
        /// Variable extracted.
        var: usize,
        /// The remaining function (a cofactor).
        rest: TruthTable,
    },
    /// `f = maj(x, g, h)` where `g`/`h` are the two cofactors and the function
    /// is its own majority closure (used to seed MIG/XMG-style candidates).
    TopMaj {
        /// Variable extracted.
        var: usize,
        /// Cofactor with `var = 0`.
        low: TruthTable,
        /// Cofactor with `var = 1`.
        high: TruthTable,
    },
    /// Shannon expansion around `var`: `f = ite(x, high, low)`.
    Shannon {
        /// Splitting variable.
        var: usize,
        /// Cofactor with `var = 0`.
        low: TruthTable,
        /// Cofactor with `var = 1`.
        high: TruthTable,
    },
}

/// Finds the best top decomposition of `function`.
///
/// Preference order: constants and literals, top-XOR, top-AND/OR, majority,
/// then Shannon expansion on the most balanced variable.
pub fn decompose(function: &TruthTable) -> Decomposition {
    let n = function.num_vars();
    if function.is_const0() {
        return Decomposition::Constant(false);
    }
    if function.is_const1() {
        return Decomposition::Constant(true);
    }
    let support = function.support();
    if support.len() == 1 {
        let v = support[0];
        let complement = function.cofactor1(v).is_const0();
        return Decomposition::Literal { var: v, complement };
    }
    // Top XOR: f ^ x is independent of x.
    for &v in &support {
        let x = TruthTable::var(n, v);
        let rest = function.xor(&x);
        if rest.is_independent_of(v) {
            return Decomposition::TopXor { var: v, rest };
        }
    }
    // Top AND / OR: one cofactor constant.
    for &v in &support {
        let c0 = function.cofactor0(v);
        let c1 = function.cofactor1(v);
        if c0.is_const0() {
            return Decomposition::TopAnd { var: v, positive: true, rest: c1 };
        }
        if c1.is_const0() {
            return Decomposition::TopAnd { var: v, positive: false, rest: c0 };
        }
        if c0.is_const1() {
            return Decomposition::TopOr { var: v, positive: false, rest: c1 };
        }
        if c1.is_const1() {
            return Decomposition::TopOr { var: v, positive: true, rest: c0 };
        }
    }
    // Majority top: f == maj(x, c0, c1) iff f = x&(c0|c1) | c0&c1 ... which is
    // exactly the Shannon form rewritten; it is an *equality* only when
    // c0 & !c1 never matters, i.e. maj(x,c1,c0) == ite(x,c1,c0). Check directly.
    for &v in &support {
        let c0 = function.cofactor0(v);
        let c1 = function.cofactor1(v);
        let x = TruthTable::var(n, v);
        if TruthTable::maj(&x, &c1, &c0) == *function && c0 != c1 {
            return Decomposition::TopMaj { var: v, low: c0, high: c1 };
        }
    }
    // Shannon on the most "balanced" variable: minimise the larger cofactor
    // support, breaking ties toward smaller total support.
    let best = support
        .iter()
        .copied()
        .min_by_key(|&v| {
            let s0 = function.cofactor0(v).support().len();
            let s1 = function.cofactor1(v).support().len();
            (s0.max(s1), s0 + s1)
        })
        .expect("support is non-empty");
    Decomposition::Shannon {
        var: best,
        low: function.cofactor0(best),
        high: function.cofactor1(best),
    }
}

/// Recursively emits `function` into `network` using top decompositions,
/// reading variable `i` from `leaves[i]`. Returns the output signal.
///
/// The resulting structure favours shallow tops (XOR, MUX) and is therefore a
/// good *level-oriented* candidate.
pub fn emit_decomposed(network: &mut Network, function: &TruthTable, leaves: &[Signal]) -> Signal {
    match decompose(function) {
        Decomposition::Constant(v) => network.constant(v),
        Decomposition::Literal { var, complement } => leaves[var].xor_complement(complement),
        Decomposition::TopAnd { var, positive, rest } => {
            let lit = leaves[var].xor_complement(!positive);
            let r = emit_decomposed(network, &rest, leaves);
            network.and(lit, r)
        }
        Decomposition::TopOr { var, positive, rest } => {
            let lit = leaves[var].xor_complement(!positive);
            let r = emit_decomposed(network, &rest, leaves);
            network.or(lit, r)
        }
        Decomposition::TopXor { var, rest } => {
            let r = emit_decomposed(network, &rest, leaves);
            network.xor(leaves[var], r)
        }
        Decomposition::TopMaj { var, low, high } => {
            let l = emit_decomposed(network, &low, leaves);
            let h = emit_decomposed(network, &high, leaves);
            network.maj(leaves[var], h, l)
        }
        Decomposition::Shannon { var, low, high } => {
            let l = emit_decomposed(network, &low, leaves);
            let h = emit_decomposed(network, &high, leaves);
            network.mux(leaves[var], h, l)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{output_truth_tables, Network, NetworkKind};

    fn check_roundtrip(f: &TruthTable, kind: NetworkKind) {
        let mut n = Network::new(kind);
        let leaves = n.add_inputs(f.num_vars());
        let out = emit_decomposed(&mut n, f, &leaves);
        n.add_output(out);
        assert_eq!(&output_truth_tables(&n)[0], f);
    }

    #[test]
    fn detects_top_xor() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = a.xor(&b.and(&c));
        assert!(matches!(decompose(&f), Decomposition::TopXor { var: 0, .. }));
    }

    #[test]
    fn detects_top_and_or() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = a.and(&b.or(&c));
        assert!(matches!(decompose(&f), Decomposition::TopAnd { .. }));
        let g = a.or(&b.and(&c));
        assert!(matches!(decompose(&g), Decomposition::TopOr { .. }));
    }

    #[test]
    fn detects_majority() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = TruthTable::maj(&a, &b, &c);
        let d = decompose(&f);
        assert!(
            matches!(d, Decomposition::TopMaj { .. }),
            "majority should be recognised, got {d:?}"
        );
    }

    #[test]
    fn literal_and_constant_cases() {
        assert!(matches!(
            decompose(&TruthTable::zeros(2)),
            Decomposition::Constant(false)
        ));
        assert!(matches!(
            decompose(&TruthTable::var(3, 1).not()),
            Decomposition::Literal { var: 1, complement: true }
        ));
    }

    #[test]
    fn emission_round_trips_for_every_kind() {
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        let funcs = [
            a.and(&b).or(&c.and(&d)),
            a.xor(&b).xor(&c.and(&d)),
            TruthTable::maj(&a, &b, &c).and(&d),
            TruthTable::ite(&a, &b.xor(&c), &d.or(&b)),
        ];
        for f in &funcs {
            for kind in NetworkKind::homogeneous() {
                check_roundtrip(f, kind);
            }
            check_roundtrip(f, NetworkKind::Mixed);
        }
    }

    #[test]
    fn exhaustive_three_variable_roundtrip() {
        for bits in 0..256u64 {
            let f = TruthTable::from_u64(3, bits);
            check_roundtrip(&f, NetworkKind::Aig);
            check_roundtrip(&f, NetworkKind::Xmg);
        }
    }
}
