//! Structural choices: choice networks, the DCH baseline and the MCH
//! (mixed structural choices) operator — the primary contribution of the
//! reproduced paper.
//!
//! * [`ChoiceNetwork`] — a mixed network with representative/choice classes;
//! * [`build_mch`] / [`MchParams`] — Algorithms 1 and 2: one-to-one mapping of
//!   heterogeneous representations plus path-classified multi-strategy
//!   resynthesis;
//! * [`dch_from_snapshots`] — the traditional choice operator derived from
//!   technology-independent optimization snapshots (the baseline of Table I);
//! * resynthesis strategies: [`isop`]/[`emit_factored`] (SOP factoring),
//!   [`decompose`]/[`emit_decomposed`] (DSD/Shannon), cached per NPN class in
//!   [`NpnDatabase`].
//!
//! Construction is organised as a plan/commit split so the expensive
//! resynthesis work shards across the process-wide worker pool
//! ([`mch_cut::WorkerPool`]): workers produce detached recipes
//! ([`GateRecipe`], [`NpnPlan`]) and the coordinator commits them in node-id
//! order, making threaded builds byte-identical to serial ones (see
//! `build_mch`'s module docs and [`MchParams::threads`]).
//!
//! # Example
//!
//! ```
//! use mch_choice::{build_mch, MchParams};
//! use mch_logic::{Network, NetworkKind};
//!
//! let mut aig = Network::new(NetworkKind::Aig);
//! let xs = aig.add_inputs(4);
//! let s01 = aig.xor(xs[0], xs[1]);
//! let s23 = aig.xor(xs[2], xs[3]);
//! let f = aig.and(s01, s23);
//! aig.add_output(f);
//!
//! let mch = build_mch(&aig, &MchParams::area_oriented());
//! assert!(mch.choice_count() > 0);
//! assert!(mch.verify(16, 0).is_empty());
//! ```

mod choice_network;
mod dch;
mod dsd;
mod mch;
mod npn_db;
mod sop;
mod strategies;

pub use choice_network::ChoiceNetwork;
pub use dch::{add_snapshot_choices, dch_from_snapshots};
pub use dsd::{decompose, emit_decomposed, Decomposition};
pub use mch::{build_mch, build_mch_with_stats, build_mch_with_stats_shared, MchParams, MchStats};
pub use npn_db::{NpnDatabase, NpnPlan, NpnPlanCache, SharedNpnCache};
pub use sop::{cover_implements, emit_factored, isop, literal_count, Cube};
pub use strategies::{
    import_subnetwork, synthesize, GateRecipe, RecipeRef, StrategyEntry, StrategyLibrary,
    SynthesisStrategy,
};
