//! Construction of mixed structural choice networks (Algorithms 1 and 2).
//!
//! # Plan, claim, commit
//!
//! Both algorithms are organised as a **plan** half that computes detached
//! *choice recipes* without touching the [`ChoiceNetwork`], a **claim** half
//! that probes and reserves structural-hash buckets concurrently, and a
//! **link** half that materialises the reservations in serial order:
//!
//! * Algorithm 1 (one-to-one mapping) plans one styled
//!   [`GateRecipe`](crate::GateRecipe) template per (representation, gate
//!   kind). At `threads > 1` the original network is levelised and whole
//!   levels of gates claim their styled emissions concurrently against the
//!   batch's [`ShardedStrash`]; the coordinator then links the claim logs in
//!   gate-id order — the serial emission order — so the formerly serial
//!   strash walk reduces to an id-ordered replay of pre-resolved
//!   reservations.
//! * Algorithm 2 (multi-strategy resynthesis) fans out the expensive work:
//!   for every gate, workers classify the node, pull its cuts, evaluate its
//!   MFFC function over dense reused scratch, NPN-canonicalise each
//!   candidate function once, synthesise missing class representatives into
//!   worker-local caches ([`NpnDatabase::plan`]-family), and immediately
//!   claim each planned structure against the shared table
//!   ([`NpnDatabase::claim`]); the coordinator commits the resulting
//!   [`NpnClaim`]s strictly in node-id order ([`NpnDatabase::commit_claim`]),
//!   which links reservations instead of re-hashing every gate.
//!
//! One commit batch (`Network::begin_commit_batch`) spans the whole build;
//! because a strash bucket is reserved at most once per batch and links run
//! in the exact serial emission order, node ids, network bytes, choice
//! classes and statistics are **byte-identical** to the serial construction
//! — same mixed network, same statistics (wall-times aside) — for every
//! thread count. `threads = 1` keeps the fused serial path: plan and commit
//! per emission, no batch, no claims.

use crate::choice_network::ChoiceNetwork;
use crate::npn_db::{NpnClaim, NpnDatabase, NpnPlan, NpnPlanCache, SharedNpnCache};
use crate::strategies::{GateRecipe, StrategyLibrary};
use mch_cut::{
    enumerate_cuts_threaded, level_parallel, Cut, CutCostModel, CutParams, NetworkCuts, WorkerPool,
};
use mch_logic::{
    critical_path_nodes, levelize, mffc, ClaimLog, GateKind, Network, NetworkKind, NodeId,
    ShardedStrash, Signal, TruthTable,
};
use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Smallest gate count worth planning on the pool; below it the fused serial
/// path wins on coordination cost alone.
const PLAN_MIN_BATCH: usize = 64;

/// Chunks handed out per worker during recipe planning; smaller chunks load
/// balance better (MFFC sizes vary wildly) at slightly more channel traffic.
const PLAN_CHUNKS_PER_WORKER: usize = 4;

/// Minimum nodes per planning chunk.
const PLAN_MIN_CHUNK: usize = 32;

/// Parameters of the MCH construction (the inputs of Algorithm 1).
///
/// `PartialEq` compares every field (including `threads`); callers that key
/// caches on the choice-relevant subset normalise `threads` first — choice
/// construction is thread-invariant.
#[derive(Clone, PartialEq, Debug)]
pub struct MchParams {
    /// Representations mixed in through one-to-one mapping (Alg. 1, line 1).
    pub secondary: Vec<NetworkKind>,
    /// Maximum cut size used to harvest candidate functions (`k`).
    pub cut_size: usize,
    /// Maximum number of cuts per node (`l`).
    pub cut_limit: usize,
    /// Maximum number of MFFC leaves considered (`K`).
    pub mffc_max_inputs: usize,
    /// Fraction of the depth above which outputs are considered critical (`r`).
    pub critical_ratio: f64,
    /// Strategies applied to critical-path nodes (level-oriented).
    pub level_strategies: StrategyLibrary,
    /// Strategies applied to non-critical nodes (area-oriented).
    pub area_strategies: StrategyLibrary,
    /// Cap on the number of choices recorded per representative.
    pub max_candidates_per_node: usize,
    /// Worker threads for cut enumeration and choice-recipe planning
    /// (commits stay on the calling thread; results are identical for every
    /// value). Defaults to [`mch_cut::default_threads`]; `1` is the fused
    /// serial path.
    pub threads: usize,
}

impl MchParams {
    /// The balanced configuration of the paper: choices are derived from the
    /// input AIG alone, with path classification selecting the strategy.
    pub fn balanced() -> Self {
        MchParams {
            secondary: vec![],
            cut_size: 4,
            cut_limit: 8,
            mffc_max_inputs: 6,
            critical_ratio: 0.8,
            level_strategies: StrategyLibrary::level_oriented(&[NetworkKind::Aig, NetworkKind::Xag]),
            area_strategies: StrategyLibrary::area_oriented(&[NetworkKind::Aig]),
            max_candidates_per_node: 3,
            threads: mch_cut::default_threads(),
        }
    }

    /// The delay-oriented configuration: the input is additionally mapped
    /// one-to-one into an XAG and the critical region is widened.
    pub fn delay_oriented() -> Self {
        MchParams {
            secondary: vec![NetworkKind::Xag],
            cut_size: 4,
            cut_limit: 8,
            mffc_max_inputs: 6,
            critical_ratio: 0.5,
            level_strategies: StrategyLibrary::level_oriented(&[NetworkKind::Xag, NetworkKind::Aig]),
            area_strategies: StrategyLibrary::area_oriented(&[NetworkKind::Aig]),
            max_candidates_per_node: 3,
            threads: mch_cut::default_threads(),
        }
    }

    /// The area-oriented configuration: the input is additionally mapped
    /// one-to-one into an XMG and SOP-factored candidates dominate.
    pub fn area_oriented() -> Self {
        MchParams {
            secondary: vec![NetworkKind::Xmg],
            cut_size: 4,
            cut_limit: 8,
            mffc_max_inputs: 8,
            critical_ratio: 0.9,
            level_strategies: StrategyLibrary::level_oriented(&[NetworkKind::Xmg]),
            area_strategies: StrategyLibrary::area_oriented(&[NetworkKind::Xmg, NetworkKind::Aig]),
            max_candidates_per_node: 3,
            threads: mch_cut::default_threads(),
        }
    }

    /// A generic mixed configuration over the given representations, used by
    /// the graph-mapping experiments (e.g. MIG + XMG).
    pub fn mixed(kinds: &[NetworkKind]) -> Self {
        MchParams {
            secondary: kinds.to_vec(),
            cut_size: 4,
            cut_limit: 8,
            mffc_max_inputs: 6,
            critical_ratio: 0.7,
            level_strategies: StrategyLibrary::level_oriented(kinds),
            area_strategies: StrategyLibrary::area_oriented(kinds),
            max_candidates_per_node: 3,
            threads: mch_cut::default_threads(),
        }
    }

    /// Returns the same parameters with an explicit worker-thread count for
    /// cut enumeration and recipe planning. Every value produces an
    /// identical choice network; `1` selects the fused serial path.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

impl Default for MchParams {
    fn default() -> Self {
        MchParams::balanced()
    }
}

/// Statistics reported by [`build_mch`].
///
/// The choice counts and NPN-cache counters are deterministic — identical
/// for every thread count. The per-phase wall times are measurements and
/// vary run to run; compare [`timeless`](MchStats::timeless) views when
/// asserting determinism.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct MchStats {
    /// Choices contributed by one-to-one mapping of secondary representations.
    pub representation_choices: usize,
    /// Choices contributed by level-oriented resynthesis.
    pub level_choices: usize,
    /// Choices contributed by area-oriented resynthesis.
    pub area_choices: usize,
    /// Number of nodes classified as critical.
    pub critical_nodes: usize,
    /// Distinct NPN (class, strategy, representation) entries synthesised.
    pub npn_classes: usize,
    /// Emissions served from the NPN cache instead of fresh synthesis.
    pub npn_cache_hits: usize,
    /// Wall time of the one-to-one mapping phase (Algorithm 1, line 1).
    pub one_to_one_time: Duration,
    /// Wall time of critical-path classification plus cut enumeration.
    pub cut_enum_time: Duration,
    /// Wall time of recipe planning (classification, MFFC evaluation, NPN
    /// canonicalisation, class synthesis) — the parallel phase.
    pub resynthesis_time: Duration,
    /// Wall time of committing recipes into the choice network (imports,
    /// structural hashing, class linking) — the serial phase.
    pub commit_time: Duration,
}

impl MchStats {
    /// Total number of recorded choices.
    pub fn total(&self) -> usize {
        self.representation_choices + self.level_choices + self.area_choices
    }

    /// This statistics record with the wall-time fields zeroed: everything
    /// left is deterministic, so two builds of the same network at any two
    /// thread counts satisfy `a.timeless() == b.timeless()`.
    pub fn timeless(&self) -> MchStats {
        MchStats {
            one_to_one_time: Duration::ZERO,
            cut_enum_time: Duration::ZERO,
            resynthesis_time: Duration::ZERO,
            commit_time: Duration::ZERO,
            ..*self
        }
    }
}

/// The three styled one-to-one templates of one secondary representation.
struct StyledTemplates {
    and2: GateRecipe,
    xor2: GateRecipe,
    maj3: GateRecipe,
}

impl StyledTemplates {
    fn new(kind: NetworkKind) -> StyledTemplates {
        StyledTemplates {
            and2: GateRecipe::styled(kind, GateKind::And2),
            xor2: GateRecipe::styled(kind, GateKind::Xor2),
            maj3: GateRecipe::styled(kind, GateKind::Maj3),
        }
    }

    fn of(&self, gate: GateKind) -> &GateRecipe {
        match gate {
            GateKind::And2 => &self.and2,
            GateKind::Xor2 => &self.xor2,
            GateKind::Maj3 => &self.maj3,
            _ => unreachable!("only gates are emitted"),
        }
    }
}

/// Reused scratch for evaluating cone functions: a dense index map
/// (epoch-stamped `slot`/`stamp` arrays over node ids) plus a value arena,
/// replacing the per-cone `HashMap<NodeId, TruthTable>` and the
/// clone-per-fanin evaluation of the original implementation — the same
/// zero-allocation treatment cut enumeration received.
struct ConeScratch {
    sorted: Vec<NodeId>,
    slot: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    values: Vec<TruthTable>,
}

impl ConeScratch {
    fn new(network_len: usize) -> ConeScratch {
        ConeScratch {
            sorted: Vec::new(),
            slot: vec![0; network_len],
            stamp: vec![0; network_len],
            epoch: 0,
            values: Vec::new(),
        }
    }

    /// Binds `id` to `table` in the current epoch, overwriting an existing
    /// binding (the constant node may shadow a degenerate leaf binding,
    /// matching the insertion order of the original map-based code).
    fn bind(&mut self, id: NodeId, table: TruthTable) {
        let i = id.index();
        if self.stamp[i] == self.epoch {
            self.values[self.slot[i] as usize] = table;
        } else {
            self.stamp[i] = self.epoch;
            self.slot[i] = self.values.len() as u32;
            self.values.push(table);
        }
    }

    fn get(&self, id: NodeId) -> Option<&TruthTable> {
        let i = id.index();
        (self.stamp[i] == self.epoch).then(|| &self.values[self.slot[i] as usize])
    }

    /// The table seen through fanin edge `s` (negated into an owned copy
    /// only when the edge is complemented; plain edges borrow).
    fn fanin_table(&self, s: Signal) -> Option<std::borrow::Cow<'_, TruthTable>> {
        let base = self.get(s.node())?;
        Some(if s.is_complement() {
            std::borrow::Cow::Owned(base.not())
        } else {
            std::borrow::Cow::Borrowed(base)
        })
    }

    /// Computes the function of `root` over the cone bounded by `leaves`.
    ///
    /// Returns `None` when a cone node depends on something that is neither a
    /// cone node nor a leaf (should not happen for MFFC cones) or when the
    /// leaf count exceeds eight variables.
    fn cone_function(
        &mut self,
        network: &Network,
        cone: &[NodeId],
        root: NodeId,
        leaves: &[NodeId],
    ) -> Option<TruthTable> {
        if leaves.len() > 8 || leaves.is_empty() {
            return None;
        }
        let n = leaves.len();
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.values.clear();
        for (i, &l) in leaves.iter().enumerate() {
            self.bind(l, TruthTable::var(n, i));
        }
        self.bind(NodeId::CONST0, TruthTable::zeros(n));
        self.sorted.clear();
        self.sorted.extend_from_slice(cone);
        self.sorted.sort_unstable();
        for idx in 0..self.sorted.len() {
            let id = self.sorted[idx];
            if self.get(id).is_some() {
                continue;
            }
            let node = network.node(id);
            let table = {
                let f = node.fanins();
                match node.kind() {
                    GateKind::And2 => {
                        let a = self.fanin_table(f[0])?;
                        let b = self.fanin_table(f[1])?;
                        a.and(&b)
                    }
                    GateKind::Xor2 => {
                        let a = self.fanin_table(f[0])?;
                        let b = self.fanin_table(f[1])?;
                        a.xor(&b)
                    }
                    GateKind::Maj3 => {
                        let a = self.fanin_table(f[0])?;
                        let b = self.fanin_table(f[1])?;
                        let c = self.fanin_table(f[2])?;
                        TruthTable::maj(&a, &b, &c)
                    }
                    _ => return None,
                }
            };
            self.bind(id, table);
        }
        self.get(root).cloned()
    }
}

/// Per-worker planning scratch: the NPN spill-over cache, the dense cone
/// evaluator and a reused leaf-signal buffer.
struct PlanScratch {
    npn: NpnPlanCache,
    cone: ConeScratch,
    leaf_sigs: Vec<Signal>,
}

impl PlanScratch {
    fn new(network_len: usize) -> PlanScratch {
        PlanScratch {
            npn: NpnPlanCache::new(),
            cone: ConeScratch::new(network_len),
            leaf_sigs: Vec::new(),
        }
    }
}

/// Everything a planning worker reads; all shared, all immutable (the NPN
/// database sits behind a read lock that commits briefly take for writing).
struct PlanCtx<'a> {
    network: &'a Network,
    params: &'a MchParams,
    critical: &'a HashSet<NodeId>,
    cuts: &'a NetworkCuts,
    db: &'a RwLock<NpnDatabase>,
}

/// The planned candidate emissions of one gate, committed in node-id order:
/// cut-derived plans first (cut-major, strategy-minor — the serial emission
/// order), then the MFFC resynthesis plans that apply only while the
/// candidate cap is not yet reached.
///
/// Planning is budgeted: only the first `max_candidates_per_node +
/// PLAN_EMIT_SLACK` emissions are planned (the cap means the commit rarely
/// consumes more — see the emit statistics in `BENCH_choice.json`), and
/// `resume` records where planning stopped so the commit can fall back to
/// the fused serial loop for the rare node whose plans run dry before the
/// cap is reached. The fallback replays exactly what an unbudgeted plan
/// would have contained, so results stay byte-identical.
struct NodeRecipe {
    id: NodeId,
    critical: bool,
    cut_plans: Vec<NpnPlan>,
    mffc_plans: Vec<NpnPlan>,
    resume: Option<PlanResume>,
}

/// Where a budget-truncated plan stopped.
#[derive(Copy, Clone, Debug)]
enum PlanResume {
    /// Continue with cut `cut_index`, strategy entry `entry_index` (then the
    /// MFFC stage).
    Cuts { cut_index: usize, entry_index: usize },
    /// Cuts were fully planned; continue with MFFC strategy entry
    /// `entry_index`.
    Mffc { entry_index: usize },
}

/// Extra emissions planned beyond the per-node candidate cap, absorbing the
/// occasional candidate that structural hashing resolves onto existing
/// logic (which does not count toward the cap).
const PLAN_EMIT_SLACK: usize = 1;

/// A [`NodeRecipe`] whose plans have additionally been claimed against the
/// batch's [`ShardedStrash`] on the planning worker: the strash probing — the
/// bulk of the old serial commit — already happened concurrently, and the
/// coordinator only links the reservations.
struct NodeClaims {
    id: NodeId,
    critical: bool,
    cut_claims: Vec<NpnClaim>,
    mffc_claims: Vec<NpnClaim>,
    resume: Option<PlanResume>,
}

/// Claims every plan of `recipe` against `table`, in plan order. Runs on the
/// worker right after [`plan_node`], under the same database read guard, so
/// [`NpnDatabase::claim`] always finds the class network it needs.
fn claim_node(
    db: &NpnDatabase,
    table: &ShardedStrash,
    scratch: &NpnPlanCache,
    recipe: NodeRecipe,
) -> NodeClaims {
    NodeClaims {
        id: recipe.id,
        critical: recipe.critical,
        cut_claims: recipe
            .cut_plans
            .into_iter()
            .map(|p| db.claim(p, table, scratch))
            .collect(),
        mffc_claims: recipe
            .mffc_plans
            .into_iter()
            .map(|p| db.claim(p, table, scratch))
            .collect(),
        resume: recipe.resume,
    }
}

/// A cut worth resynthesising: non-trivial, at least three leaves, and a
/// non-constant function (Algorithm 2's candidate filter).
fn cut_qualifies(cut: &Cut) -> bool {
    !cut.is_trivial()
        && cut.size() >= 3
        && !cut.function().is_const0()
        && !cut.function().is_const1()
}

/// The MFFC resynthesis candidate of a non-critical node: its cone function
/// over the sorted leaves (Algorithm 2, lines 8 and 11), or `None` when the
/// cone is too small, too wide or degenerate.
fn mffc_candidate(
    network: &Network,
    params: &MchParams,
    id: NodeId,
    cone: &mut ConeScratch,
) -> Option<(TruthTable, Vec<Signal>)> {
    let mffc_cone = mffc(network, id, params.mffc_max_inputs);
    if mffc_cone.size() < 2
        || mffc_cone.leaves.len() < 2
        || mffc_cone.leaves.len() > params.mffc_max_inputs
    {
        return None;
    }
    let mut leaves = mffc_cone.leaves.clone();
    leaves.sort();
    let function = cone.cone_function(network, &mffc_cone.nodes, id, &leaves)?;
    if function.is_const0() || function.is_const1() {
        return None;
    }
    let leaf_sigs = leaves.iter().map(|l| l.signal()).collect();
    Some((function, leaf_sigs))
}

/// Plans the first `max_candidates_per_node + PLAN_EMIT_SLACK` candidate
/// emissions of `id` (read-only): one NPN canonicalisation per candidate
/// function, shared across the strategy entries that replay it; the MFFC is
/// evaluated only when the cut candidates left budget for it (mirroring the
/// serial loop, which rarely reaches the MFFC stage). Returns `None` when
/// the node has no applicable strategy or no candidate.
fn plan_node(
    ctx: &PlanCtx<'_>,
    db: &NpnDatabase,
    scratch: &mut PlanScratch,
    id: NodeId,
) -> Option<NodeRecipe> {
    let critical = ctx.critical.contains(&id);
    let strategies = if critical {
        &ctx.params.level_strategies
    } else {
        &ctx.params.area_strategies
    };
    if strategies.is_empty() {
        return None;
    }
    let budget = ctx.params.max_candidates_per_node + PLAN_EMIT_SLACK;
    let mut cut_plans = Vec::new();
    let mut resume: Option<PlanResume> = None;
    'cuts: for (cut_index, cut) in ctx.cuts.of(id).iter().enumerate() {
        if !cut_qualifies(cut) {
            continue;
        }
        if cut_plans.len() >= budget {
            resume = Some(PlanResume::Cuts {
                cut_index,
                entry_index: 0,
            });
            break;
        }
        scratch.leaf_sigs.clear();
        scratch
            .leaf_sigs
            .extend(cut.leaves().iter().map(|l| l.signal()));
        let canon = NpnDatabase::canonicalize(cut.function());
        for (entry_index, entry) in strategies.entries().iter().enumerate() {
            if cut_plans.len() >= budget {
                resume = Some(PlanResume::Cuts {
                    cut_index,
                    entry_index,
                });
                break 'cuts;
            }
            cut_plans.push(db.plan_with_canon(
                &canon,
                &scratch.leaf_sigs,
                entry.kind,
                entry.strategy,
                &mut scratch.npn,
            ));
        }
    }
    let mut mffc_plans = Vec::new();
    if !critical && resume.is_none() {
        if cut_plans.len() >= budget {
            // No budget left to even evaluate the cone; the commit falls back
            // if (and only if) the cap is still unmet after the cut plans.
            resume = Some(PlanResume::Mffc { entry_index: 0 });
        } else if let Some((function, leaf_sigs)) =
            mffc_candidate(ctx.network, ctx.params, id, &mut scratch.cone)
        {
            let canon = NpnDatabase::canonicalize(&function);
            for (entry_index, entry) in ctx.params.area_strategies.entries().iter().enumerate() {
                if cut_plans.len() + mffc_plans.len() >= budget {
                    resume = Some(PlanResume::Mffc { entry_index });
                    break;
                }
                mffc_plans.push(db.plan_with_canon(
                    &canon,
                    &leaf_sigs,
                    entry.kind,
                    entry.strategy,
                    &mut scratch.npn,
                ));
            }
        }
    }
    if cut_plans.is_empty() && mffc_plans.is_empty() && resume.is_none() {
        return None;
    }
    Some(NodeRecipe {
        id,
        critical,
        cut_plans,
        mffc_plans,
        resume,
    })
}

/// Where [`emit_serial_from`] starts: cut `cut_index` at strategy entry
/// `entry_index`, and — once the cuts are exhausted — MFFC strategy entry
/// `mffc_entry`. `EmitCursor::START` is the whole serial loop.
#[derive(Copy, Clone, Debug)]
struct EmitCursor {
    cut_index: usize,
    entry_index: usize,
    mffc_entry: usize,
}

impl EmitCursor {
    const START: EmitCursor = EmitCursor {
        cut_index: 0,
        entry_index: 0,
        mffc_entry: 0,
    };
}

/// The fused serial emission of one node from `cursor` onwards: plan each
/// emission and commit it immediately, stopping at the per-node candidate
/// cap. The entire serial resynthesis is this from [`EmitCursor::START`];
/// the threaded commit calls it from a recipe's resume point when the
/// budgeted plans ran dry — both uses produce the exact serial sequence.
#[allow(clippy::too_many_arguments)]
fn emit_serial_from(
    network: &Network,
    params: &MchParams,
    cuts: &NetworkCuts,
    id: NodeId,
    critical: bool,
    cursor: EmitCursor,
    added: &mut usize,
    cn: &mut ChoiceNetwork,
    db: &mut NpnDatabase,
    stats: &mut MchStats,
    scratch: &mut PlanScratch,
    commit_time: &mut Duration,
) {
    let strategies = if critical {
        &params.level_strategies
    } else {
        &params.area_strategies
    };
    if strategies.is_empty() {
        return;
    }
    let max = params.max_candidates_per_node;
    let cut_list = cuts.of(id);
    // Only the cut the cursor points into starts mid-entries.
    let mut entry_start = cursor.entry_index;
    for cut in cut_list.iter().skip(cursor.cut_index) {
        if *added >= max {
            break;
        }
        let first_entry = std::mem::take(&mut entry_start);
        if !cut_qualifies(cut) {
            continue;
        }
        scratch.leaf_sigs.clear();
        scratch
            .leaf_sigs
            .extend(cut.leaves().iter().map(|l| l.signal()));
        let canon = NpnDatabase::canonicalize(cut.function());
        for entry in &strategies.entries()[first_entry..] {
            if *added >= max {
                break;
            }
            let plan = db.plan_with_canon(
                &canon,
                &scratch.leaf_sigs,
                entry.kind,
                entry.strategy,
                &mut scratch.npn,
            );
            let commit_start = Instant::now();
            let sig = db.commit(cn.network_mut(), plan);
            if cn.add_choice(id, sig) {
                *added += 1;
                if critical {
                    stats.level_choices += 1;
                } else {
                    stats.area_choices += 1;
                }
            }
            *commit_time += commit_start.elapsed();
        }
    }
    if !critical && *added < max {
        if let Some((function, leaf_sigs)) = mffc_candidate(network, params, id, &mut scratch.cone)
        {
            let canon = NpnDatabase::canonicalize(&function);
            for entry in &params.area_strategies.entries()[cursor.mffc_entry..] {
                if *added >= max {
                    break;
                }
                let plan = db.plan_with_canon(
                    &canon,
                    &leaf_sigs,
                    entry.kind,
                    entry.strategy,
                    &mut scratch.npn,
                );
                let commit_start = Instant::now();
                let sig = db.commit(cn.network_mut(), plan);
                if cn.add_choice(id, sig) {
                    *added += 1;
                    stats.area_choices += 1;
                }
                *commit_time += commit_start.elapsed();
            }
        }
    }
}

/// Commits one node's claims: link the budgeted claims in order until the
/// per-node candidate cap is reached; if they run dry with the cap unmet,
/// continue with the fused serial loop from the recorded resume point.
/// Exactly the emission sequence the serial path performs — claims the cap
/// discards leave only unlinked reservations, purged at batch end.
#[allow(clippy::too_many_arguments)]
fn commit_node(
    network: &Network,
    params: &MchParams,
    cuts: &NetworkCuts,
    cn: &mut ChoiceNetwork,
    db: &mut NpnDatabase,
    stats: &mut MchStats,
    scratch: &mut PlanScratch,
    commit_time: &mut Duration,
    recipe: NodeClaims,
) {
    mch_logic::failpoint!("npn::commit");
    let max = params.max_candidates_per_node;
    let mut added = 0usize;
    for claim in recipe.cut_claims {
        if added >= max {
            return;
        }
        let commit_start = Instant::now();
        let sig = db.commit_claim(cn.network_mut(), claim);
        if cn.add_choice(recipe.id, sig) {
            added += 1;
            if recipe.critical {
                stats.level_choices += 1;
            } else {
                stats.area_choices += 1;
            }
        }
        *commit_time += commit_start.elapsed();
    }
    if !recipe.critical && added < max {
        for claim in recipe.mffc_claims {
            if added >= max {
                return;
            }
            let commit_start = Instant::now();
            let sig = db.commit_claim(cn.network_mut(), claim);
            if cn.add_choice(recipe.id, sig) {
                added += 1;
                stats.area_choices += 1;
            }
            *commit_time += commit_start.elapsed();
        }
    }
    if added < max {
        if let Some(resume) = recipe.resume {
            let cursor = match resume {
                PlanResume::Cuts {
                    cut_index,
                    entry_index,
                } => EmitCursor {
                    cut_index,
                    entry_index,
                    mffc_entry: 0,
                },
                PlanResume::Mffc { entry_index } => EmitCursor {
                    cut_index: usize::MAX,
                    entry_index: 0,
                    mffc_entry: entry_index,
                },
            };
            emit_serial_from(
                network,
                params,
                cuts,
                recipe.id,
                recipe.critical,
                cursor,
                &mut added,
                cn,
                db,
                stats,
                scratch,
                commit_time,
            );
        }
    }
}

/// The fused serial form of Algorithm 2: plan each emission and commit it
/// immediately, so the per-node candidate cap also caps the planning work.
/// Byte-identical to the threaded plan/commit schedule.
#[allow(clippy::too_many_arguments)]
fn resynthesis_serial(
    network: &Network,
    params: &MchParams,
    critical: &HashSet<NodeId>,
    cuts: &NetworkCuts,
    cn: &mut ChoiceNetwork,
    db: &mut NpnDatabase,
    stats: &mut MchStats,
    commit_time: &mut Duration,
) {
    let mut scratch = PlanScratch::new(network.len());
    for id in network.gate_ids() {
        // Same site name as the threaded `commit_node`, so chaos schedules
        // targeting NPN commits cover the serial path too.
        mch_logic::failpoint!("npn::commit");
        let mut added = 0usize;
        emit_serial_from(
            network,
            params,
            cuts,
            id,
            critical.contains(&id),
            EmitCursor::START,
            &mut added,
            cn,
            db,
            stats,
            &mut scratch,
            commit_time,
        );
    }
}

/// The threaded schedule of Algorithm 2: workers pull id-ordered chunks of
/// the gate list off an atomic cursor, plan recipes against the read-shared
/// NPN database and claim every planned structure against the batch's
/// sharded strash; the coordinator receives chunk results as they complete,
/// buffers the out-of-order ones, and links claims strictly in chunk (hence
/// node-id) order while planning continues.
#[allow(clippy::too_many_arguments)]
fn resynthesis_threaded(
    ctx: &PlanCtx<'_>,
    table: &ShardedStrash,
    gate_ids: &[NodeId],
    threads: usize,
    cn: &mut ChoiceNetwork,
    stats: &mut MchStats,
    commit_time: &mut Duration,
) {
    let chunk_size = gate_ids
        .len()
        .div_ceil(threads * PLAN_CHUNKS_PER_WORKER)
        .max(PLAN_MIN_CHUNK);
    let chunk_count = gate_ids.len().div_ceil(chunk_size);
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let (result_tx, result_rx) =
        mpsc::channel::<(usize, std::thread::Result<Vec<NodeClaims>>)>();
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
        .map(|_| {
            let result_tx = result_tx.clone();
            Box::new(move || {
                let mut scratch = PlanScratch::new(ctx.network.len());
                loop {
                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk >= chunk_count {
                        break;
                    }
                    let start = chunk * chunk_size;
                    let shard = &gate_ids[start..(start + chunk_size).min(gate_ids.len())];
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let db = ctx.db.read().unwrap_or_else(PoisonError::into_inner);
                        let mut claimed = Vec::with_capacity(shard.len());
                        for &id in shard {
                            if let Some(recipe) = plan_node(ctx, &db, &mut scratch, id) {
                                claimed.push(claim_node(&db, table, &scratch.npn, recipe));
                            }
                        }
                        claimed
                    }));
                    let died = result.is_err();
                    if result_tx.send((chunk, result)).is_err() || died {
                        break;
                    }
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    drop(result_tx);
    WorkerPool::global().run_with(jobs, move || {
        let mut buffered: Vec<Option<Vec<NodeClaims>>> =
            (0..chunk_count).map(|_| None).collect();
        let mut next_commit = 0usize;
        // The coordinator's own scratch — for the serial fallback when a
        // recipe's budgeted plans run dry before the candidate cap, and for
        // the chunks it plans itself below.
        let mut scratch = PlanScratch::new(ctx.network.len());
        while next_commit < chunk_count {
            // Buffer everything that already arrived without blocking.
            while let Ok((chunk, result)) = result_rx.try_recv() {
                match result {
                    Ok(recipes) => buffered[chunk] = Some(recipes),
                    // Re-raise a worker panic with its original payload; the
                    // remaining workers drain the cursor and exit on their
                    // own.
                    Err(payload) => resume_unwind(payload),
                }
            }
            // Commit strictly in chunk (hence node-id) order.
            while next_commit < chunk_count {
                let Some(recipes) = buffered[next_commit].take() else {
                    break;
                };
                let mut db = ctx.db.write().unwrap_or_else(PoisonError::into_inner);
                for recipe in recipes {
                    commit_node(
                        ctx.network,
                        ctx.params,
                        ctx.cuts,
                        cn,
                        &mut db,
                        stats,
                        &mut scratch,
                        commit_time,
                        recipe,
                    );
                }
                drop(db);
                next_commit += 1;
            }
            if next_commit >= chunk_count {
                break;
            }
            // Nothing committable yet: help. The coordinator competes with
            // the worker loops on the same cursor, so planning finishes even
            // if every pool worker is dead and the worker-loop jobs never
            // ran. Once the cursor is drained, any still-missing chunk is
            // held by a live worker loop whose panic-catching body always
            // reports, so a blocking recv cannot hang.
            let chunk = cursor.fetch_add(1, Ordering::Relaxed);
            if chunk < chunk_count {
                let start = chunk * chunk_size;
                let shard = &gate_ids[start..(start + chunk_size).min(gate_ids.len())];
                let db = ctx.db.read().unwrap_or_else(PoisonError::into_inner);
                let mut claimed = Vec::with_capacity(shard.len());
                for &id in shard {
                    if let Some(recipe) = plan_node(ctx, &db, &mut scratch, id) {
                        claimed.push(claim_node(&db, table, &scratch.npn, recipe));
                    }
                }
                drop(db);
                buffered[chunk] = Some(claimed);
            } else {
                let (chunk, result) = result_rx
                    .recv()
                    .expect("every plan worker exited without reporting a chunk");
                match result {
                    Ok(recipes) => buffered[chunk] = Some(recipes),
                    Err(payload) => resume_unwind(payload),
                }
            }
        }
        debug_assert_eq!(next_commit, chunk_count, "all chunks must commit");
    });
}

/// Smallest level width worth sharding across workers during the batched
/// one-to-one mapping; narrower networks run the claim/link path serially
/// inline (still byte-identical, see [`level_parallel`]).
const ONE_TO_ONE_MIN_SHARD: usize = 16;

/// The batched form of Algorithm 1's one-to-one mapping for one secondary
/// representation: levelise the original network, claim whole levels of
/// styled emissions concurrently against the batch's sharded strash, then
/// link the claim logs in gate-id order — the serial emission order — so the
/// committed network is byte-identical to the serial walk.
///
/// `map_rep` holds each original node's (possibly provisional) mapped claim
/// signal; a gate's fanins live in strictly earlier levels, so the level
/// barrier of [`level_parallel`] makes every read see a bound value.
fn one_to_one_batched(
    network: &Network,
    kind: NetworkKind,
    table: &ShardedStrash,
    threads: usize,
    cn: &mut ChoiceNetwork,
    stats: &mut MchStats,
) {
    let templates = StyledTemplates::new(kind);
    let levels = levelize(network);
    let map_rep: RwLock<Vec<Signal>> = {
        let mut m = vec![Signal::CONST0; network.len()];
        for &pi in network.inputs() {
            m[pi.index()] = pi.signal();
        }
        RwLock::new(m)
    };
    let mut claimed: Vec<(NodeId, Signal, ClaimLog)> = Vec::with_capacity(network.gate_count());
    level_parallel(
        levels.as_slices(),
        threads,
        ONE_TO_ONE_MIN_SHARD,
        || (),
        |_scratch, shard: &[NodeId]| {
            let map = map_rep.read().unwrap_or_else(PoisonError::into_inner);
            let mut out = Vec::with_capacity(shard.len());
            let mut fanins = [Signal::CONST0; 3];
            for &id in shard {
                let node = network.node(id);
                let arity = node.fanins().len();
                for (slot, s) in fanins.iter_mut().zip(node.fanins()) {
                    *slot = map[s.node().index()].xor_complement(s.is_complement());
                }
                let mut log = ClaimLog::new();
                let sig = templates.of(node.kind()).claim(table, &fanins[..arity], &mut log);
                out.push((id, sig, log));
            }
            out
        },
        |results| {
            let mut map = map_rep.write().unwrap_or_else(PoisonError::into_inner);
            for shard in results {
                for (id, sig, log) in shard {
                    map[id.index()] = sig;
                    claimed.push((id, sig, log));
                }
            }
        },
    );
    // Levels are level-major; links must replay the serial gate-id order.
    claimed.sort_unstable_by_key(|&(id, _, _)| id);
    for (id, out, log) in claimed {
        cn.network_mut().link_claims(&log);
        let sig = cn.network_mut().resolve_claim(out);
        if cn.add_choice(id, sig) {
            stats.representation_choices += 1;
        }
    }
}

/// Builds a mixed structural choice network (Algorithm 1).
///
/// The returned [`ChoiceNetwork`] contains the original structure as
/// representatives; every secondary representation is mixed in node-by-node
/// through one-to-one mapping, and the multi-strategy structural choice
/// algorithm (Algorithm 2) adds level-oriented candidates on critical paths
/// and area-oriented candidates elsewhere.
///
/// Enumeration and resynthesis planning shard across
/// [`MchParams::threads`] workers on the process-wide pool; the result is
/// byte-identical for every thread count (see the module docs).
pub fn build_mch(network: &Network, params: &MchParams) -> ChoiceNetwork {
    let (cn, _) = build_mch_with_stats(network, params);
    cn
}

/// Same as [`build_mch`] but also reports how many choices each source
/// contributed and where the construction time went (see [`MchStats`]).
pub fn build_mch_with_stats(network: &Network, params: &MchParams) -> (ChoiceNetwork, MchStats) {
    build_mch_with_stats_shared(network, params, None)
}

/// [`build_mch_with_stats`] over an optional service-wide
/// [`SharedNpnCache`]: with `Some(shared)` the per-build NPN database routes
/// every class synthesis through the shared store, so concurrent builds (the
/// batched mapping service) synthesise each class once per process instead
/// of once per job.
///
/// Sharing is invisible in the output: [`synthesize`](crate::synthesize) is a
/// pure function of the class key, so the choice network **and** the
/// deterministic [`MchStats`] counters are byte-identical to a private-cache
/// build at every thread count and under any concurrent workload.
pub fn build_mch_with_stats_shared(
    network: &Network,
    params: &MchParams,
    shared: Option<&Arc<SharedNpnCache>>,
) -> (ChoiceNetwork, MchStats) {
    let mut cn = ChoiceNetwork::from_network(network);
    let mut stats = MchStats::default();
    let threads = params.threads.max(1);

    // One commit batch spans the whole build: one-to-one claims and
    // resynthesis claims share the sharded table, so a reservation made in
    // either phase resolves consistently everywhere. Below the batch
    // threshold the fused serial paths run against the plain strash.
    let batched =
        threads > 1 && network.gate_count() >= PLAN_MIN_BATCH && !WorkerPool::is_worker();
    let table = batched.then(|| cn.network_mut().begin_commit_batch());

    // ------------------------------------------------------------------
    // Line 1: one-to-one mapping into each secondary representation. The
    // styled templates are the (O(1)) plan; batched builds claim whole
    // levels concurrently and link in gate-id order, serial builds walk
    // the gates committing directly into the structural hash.
    // ------------------------------------------------------------------
    let phase_start = Instant::now();
    if let Some(table) = &table {
        for &kind in &params.secondary {
            one_to_one_batched(network, kind, table, threads, &mut cn, &mut stats);
        }
    } else {
        for &kind in &params.secondary {
            let templates = StyledTemplates::new(kind);
            let mut map: Vec<Signal> = vec![Signal::CONST0; network.len()];
            for &pi in network.inputs() {
                map[pi.index()] = pi.signal();
            }
            let mut fanins = [Signal::CONST0; 3];
            for id in network.gate_ids() {
                let node = network.node(id);
                let arity = node.fanins().len();
                for (slot, s) in fanins.iter_mut().zip(node.fanins()) {
                    *slot = map[s.node().index()].xor_complement(s.is_complement());
                }
                let sig = templates
                    .of(node.kind())
                    .commit(cn.network_mut(), &fanins[..arity]);
                map[id.index()] = sig;
                if cn.add_choice(id, sig) {
                    stats.representation_choices += 1;
                }
            }
        }
    }
    stats.one_to_one_time = phase_start.elapsed();

    // ------------------------------------------------------------------
    // Line 2: critical-path collection.  Line 3: cut enumeration.
    // ------------------------------------------------------------------
    let phase_start = Instant::now();
    let critical: HashSet<NodeId> = critical_path_nodes(network, params.critical_ratio);
    stats.critical_nodes = critical.len();
    let cuts = enumerate_cuts_threaded(
        network,
        &CutParams::new(params.cut_size, params.cut_limit),
        &CutCostModel::unit(),
        threads,
    );
    stats.cut_enum_time = phase_start.elapsed();

    // ------------------------------------------------------------------
    // Line 4 / Algorithm 2: multi-strategy structural choices, as a
    // plan/commit split (threaded) or the fused serial loop.
    // ------------------------------------------------------------------
    let phase_start = Instant::now();
    let mut commit_time = Duration::ZERO;
    let db = RwLock::new(match shared {
        Some(shared) => NpnDatabase::with_shared(Arc::clone(shared)),
        None => NpnDatabase::new(),
    });
    let gate_ids: Vec<NodeId> = network.gate_ids().collect();
    if let Some(table) = &table {
        let ctx = PlanCtx {
            network,
            params,
            critical: &critical,
            cuts: &cuts,
            db: &db,
        };
        resynthesis_threaded(
            &ctx,
            table,
            &gate_ids,
            threads,
            &mut cn,
            &mut stats,
            &mut commit_time,
        );
    } else {
        let mut db = db.write().unwrap_or_else(PoisonError::into_inner);
        resynthesis_serial(
            network,
            params,
            &critical,
            &cuts,
            &mut cn,
            &mut db,
            &mut stats,
            &mut commit_time,
        );
    }
    if batched {
        drop(table);
        cn.network_mut().end_commit_batch();
    }
    let db = db.into_inner().unwrap_or_else(PoisonError::into_inner);
    stats.npn_classes = db.len();
    stats.npn_cache_hits = db.hits();
    stats.commit_time = commit_time;
    stats.resynthesis_time = phase_start.elapsed().saturating_sub(commit_time);
    (cn, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{cec, Network, NetworkKind};

    fn sample_network() -> Network {
        // A small arithmetic-flavoured network: 4-bit ripple adder MSB plus
        // some control logic, deep enough for critical-path classification.
        let mut n = Network::with_name(NetworkKind::Aig, "sample");
        let a = n.add_inputs(4);
        let b = n.add_inputs(4);
        let mut carry = n.constant(false);
        let mut sums = Vec::new();
        for i in 0..4 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            sums.push(s);
            carry = c;
        }
        let any = n.or_reduce(&sums);
        n.add_output(any);
        n.add_output(carry);
        n
    }

    /// A wider network that clears `PLAN_MIN_BATCH`, so the threaded
    /// schedule genuinely runs.
    fn wide_network() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "wide");
        let a = n.add_inputs(8);
        let b = n.add_inputs(8);
        let mut carry = n.constant(false);
        let mut bits = Vec::new();
        for i in 0..8 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            bits.push(s);
            carry = c;
        }
        for i in 0..8 {
            let x = n.xor(bits[i], a[(i + 3) % 8]);
            let y = n.and(x, b[(i + 5) % 8]);
            bits.push(y);
        }
        let any = n.or_reduce(&bits);
        n.add_output(any);
        n.add_output(carry);
        n
    }

    #[test]
    fn build_mch_balanced_produces_choices() {
        let net = sample_network();
        let (cn, stats) = build_mch_with_stats(&net, &MchParams::balanced());
        assert!(stats.total() > 0, "no choices were created");
        assert_eq!(cn.choice_count(), stats.total());
        // The mixed network is strictly larger than the original.
        assert!(cn.network().len() > net.len());
        // Every recorded choice is functionally consistent.
        assert!(cn.verify(16, 11).is_empty());
        // Outputs unchanged.
        assert_eq!(cn.network().outputs(), net.outputs());
    }

    #[test]
    fn secondary_representation_adds_representation_choices() {
        let net = sample_network();
        let (cn, stats) = build_mch_with_stats(&net, &MchParams::area_oriented());
        assert!(stats.representation_choices > 0);
        assert!(cn.verify(16, 5).is_empty());
        // XMG candidates exist: the mixed network must contain majority gates.
        let (_, _, maj) = cn.network().gate_profile();
        assert!(maj > 0);
    }

    #[test]
    fn delay_oriented_marks_more_critical_nodes_than_balanced() {
        let net = sample_network();
        let (_, balanced) = build_mch_with_stats(&net, &MchParams::balanced());
        let (_, delay) = build_mch_with_stats(&net, &MchParams::delay_oriented());
        assert!(delay.critical_nodes >= balanced.critical_nodes);
    }

    #[test]
    fn choice_network_preserves_output_functions() {
        let net = sample_network();
        for params in [
            MchParams::balanced(),
            MchParams::delay_oriented(),
            MchParams::area_oriented(),
            MchParams::mixed(&[NetworkKind::Mig, NetworkKind::Xmg]),
        ] {
            let cn = build_mch(&net, &params);
            // The mixed network read as a plain network still computes the
            // same primary outputs (choices only *add* nodes).
            assert!(cec(&net, &cn.network().cleanup()).holds());
        }
    }

    #[test]
    fn mch_stats_total_is_sum() {
        let s = MchStats {
            representation_choices: 2,
            level_choices: 3,
            area_choices: 4,
            critical_nodes: 7,
            ..MchStats::default()
        };
        assert_eq!(s.total(), 9);
    }

    #[test]
    fn timeless_drops_only_the_wall_times() {
        let s = MchStats {
            representation_choices: 1,
            npn_classes: 5,
            npn_cache_hits: 9,
            one_to_one_time: Duration::from_millis(3),
            resynthesis_time: Duration::from_millis(5),
            ..MchStats::default()
        };
        let t = s.timeless();
        assert_eq!(t.representation_choices, 1);
        assert_eq!(t.npn_classes, 5);
        assert_eq!(t.npn_cache_hits, 9);
        assert_eq!(t.one_to_one_time, Duration::ZERO);
        assert_eq!(t.resynthesis_time, Duration::ZERO);
    }

    #[test]
    fn threaded_construction_is_identical_to_serial() {
        // The wide network clears PLAN_MIN_BATCH, so threads > 1 genuinely
        // runs the plan/commit schedule; every thread count must produce the
        // same choice network and the same deterministic statistics.
        let net = wide_network();
        for base in [
            MchParams::balanced(),
            MchParams::delay_oriented(),
            MchParams::area_oriented(),
        ] {
            let (serial_cn, serial_stats) =
                build_mch_with_stats(&net, &base.clone().with_threads(1));
            assert!(
                net.gate_count() >= PLAN_MIN_BATCH,
                "test network too small to exercise the threaded path"
            );
            for threads in [2, 4, 8] {
                let (cn, stats) =
                    build_mch_with_stats(&net, &base.clone().with_threads(threads));
                assert_eq!(serial_cn, cn, "{threads} threads diverged");
                assert_eq!(
                    serial_stats.timeless(),
                    stats.timeless(),
                    "{threads}-thread stats diverged"
                );
            }
        }
    }

    #[test]
    fn cone_scratch_matches_map_based_reference() {
        // Dense scratch evaluation vs the original HashMap-based evaluation,
        // over every MFFC the construction would look at.
        fn cone_function_reference(
            network: &Network,
            cone: &[NodeId],
            root: NodeId,
            leaves: &[NodeId],
        ) -> Option<TruthTable> {
            if leaves.len() > 8 || leaves.is_empty() {
                return None;
            }
            let n = leaves.len();
            let mut values: std::collections::HashMap<NodeId, TruthTable> =
                std::collections::HashMap::new();
            for (i, &l) in leaves.iter().enumerate() {
                values.insert(l, TruthTable::var(n, i));
            }
            values.insert(NodeId::CONST0, TruthTable::zeros(n));
            let mut sorted: Vec<NodeId> = cone.to_vec();
            sorted.sort();
            for id in sorted {
                if values.contains_key(&id) {
                    continue;
                }
                let node = network.node(id);
                let mut fs = Vec::with_capacity(3);
                for s in node.fanins() {
                    let base = values.get(&s.node())?;
                    fs.push(if s.is_complement() { base.not() } else { base.clone() });
                }
                let t = match node.kind() {
                    GateKind::And2 => fs[0].and(&fs[1]),
                    GateKind::Xor2 => fs[0].xor(&fs[1]),
                    GateKind::Maj3 => TruthTable::maj(&fs[0], &fs[1], &fs[2]),
                    _ => return None,
                };
                values.insert(id, t);
            }
            values.get(&root).cloned()
        }

        for net in [sample_network(), wide_network()] {
            let mut scratch = ConeScratch::new(net.len());
            let mut checked = 0usize;
            for id in net.gate_ids() {
                let cone = mffc(&net, id, 8);
                if cone.size() < 2 || cone.leaves.is_empty() {
                    continue;
                }
                let mut leaves = cone.leaves.clone();
                leaves.sort();
                let fast = scratch.cone_function(&net, &cone.nodes, id, &leaves);
                let slow = cone_function_reference(&net, &cone.nodes, id, &leaves);
                assert_eq!(fast, slow, "cone of {id} diverged");
                checked += usize::from(fast.is_some());
            }
            assert!(checked > 0, "no cone was actually evaluated");
        }
    }
}
