//! Construction of mixed structural choice networks (Algorithms 1 and 2).

use crate::choice_network::ChoiceNetwork;
use crate::npn_db::NpnDatabase;
use crate::strategies::StrategyLibrary;
use mch_cut::{enumerate_cuts, CutParams};
use mch_logic::{
    critical_path_nodes, mffc, GateKind, Network, NetworkKind, NodeId, Signal, TruthTable,
};
use std::collections::HashSet;

/// Parameters of the MCH construction (the inputs of Algorithm 1).
#[derive(Clone, Debug)]
pub struct MchParams {
    /// Representations mixed in through one-to-one mapping (Alg. 1, line 1).
    pub secondary: Vec<NetworkKind>,
    /// Maximum cut size used to harvest candidate functions (`k`).
    pub cut_size: usize,
    /// Maximum number of cuts per node (`l`).
    pub cut_limit: usize,
    /// Maximum number of MFFC leaves considered (`K`).
    pub mffc_max_inputs: usize,
    /// Fraction of the depth above which outputs are considered critical (`r`).
    pub critical_ratio: f64,
    /// Strategies applied to critical-path nodes (level-oriented).
    pub level_strategies: StrategyLibrary,
    /// Strategies applied to non-critical nodes (area-oriented).
    pub area_strategies: StrategyLibrary,
    /// Cap on the number of choices recorded per representative.
    pub max_candidates_per_node: usize,
}

impl MchParams {
    /// The balanced configuration of the paper: choices are derived from the
    /// input AIG alone, with path classification selecting the strategy.
    pub fn balanced() -> Self {
        MchParams {
            secondary: vec![],
            cut_size: 4,
            cut_limit: 8,
            mffc_max_inputs: 6,
            critical_ratio: 0.8,
            level_strategies: StrategyLibrary::level_oriented(&[NetworkKind::Aig, NetworkKind::Xag]),
            area_strategies: StrategyLibrary::area_oriented(&[NetworkKind::Aig]),
            max_candidates_per_node: 3,
        }
    }

    /// The delay-oriented configuration: the input is additionally mapped
    /// one-to-one into an XAG and the critical region is widened.
    pub fn delay_oriented() -> Self {
        MchParams {
            secondary: vec![NetworkKind::Xag],
            cut_size: 4,
            cut_limit: 8,
            mffc_max_inputs: 6,
            critical_ratio: 0.5,
            level_strategies: StrategyLibrary::level_oriented(&[NetworkKind::Xag, NetworkKind::Aig]),
            area_strategies: StrategyLibrary::area_oriented(&[NetworkKind::Aig]),
            max_candidates_per_node: 3,
        }
    }

    /// The area-oriented configuration: the input is additionally mapped
    /// one-to-one into an XMG and SOP-factored candidates dominate.
    pub fn area_oriented() -> Self {
        MchParams {
            secondary: vec![NetworkKind::Xmg],
            cut_size: 4,
            cut_limit: 8,
            mffc_max_inputs: 8,
            critical_ratio: 0.9,
            level_strategies: StrategyLibrary::level_oriented(&[NetworkKind::Xmg]),
            area_strategies: StrategyLibrary::area_oriented(&[NetworkKind::Xmg, NetworkKind::Aig]),
            max_candidates_per_node: 3,
        }
    }

    /// A generic mixed configuration over the given representations, used by
    /// the graph-mapping experiments (e.g. MIG + XMG).
    pub fn mixed(kinds: &[NetworkKind]) -> Self {
        MchParams {
            secondary: kinds.to_vec(),
            cut_size: 4,
            cut_limit: 8,
            mffc_max_inputs: 6,
            critical_ratio: 0.7,
            level_strategies: StrategyLibrary::level_oriented(kinds),
            area_strategies: StrategyLibrary::area_oriented(kinds),
            max_candidates_per_node: 3,
        }
    }
}

impl Default for MchParams {
    fn default() -> Self {
        MchParams::balanced()
    }
}

/// Statistics reported by [`build_mch`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct MchStats {
    /// Choices contributed by one-to-one mapping of secondary representations.
    pub representation_choices: usize,
    /// Choices contributed by level-oriented resynthesis.
    pub level_choices: usize,
    /// Choices contributed by area-oriented resynthesis.
    pub area_choices: usize,
    /// Number of nodes classified as critical.
    pub critical_nodes: usize,
}

impl MchStats {
    /// Total number of recorded choices.
    pub fn total(&self) -> usize {
        self.representation_choices + self.level_choices + self.area_choices
    }
}

/// Emits one gate in the style of `kind` using only raw primitives (the
/// target network is mixed, so every primitive is allowed).
fn emit_styled(
    net: &mut Network,
    kind: NetworkKind,
    gate: GateKind,
    fanins: &[Signal],
) -> Signal {
    fn s_and(net: &mut Network, kind: NetworkKind, a: Signal, b: Signal) -> Signal {
        match kind {
            NetworkKind::Mig | NetworkKind::Xmg => net.maj3(a, b, Signal::CONST0),
            _ => net.and2(a, b),
        }
    }
    fn s_or(net: &mut Network, kind: NetworkKind, a: Signal, b: Signal) -> Signal {
        match kind {
            NetworkKind::Mig | NetworkKind::Xmg => net.maj3(a, b, Signal::CONST1),
            _ => !net.and2(!a, !b),
        }
    }
    fn s_xor(net: &mut Network, kind: NetworkKind, a: Signal, b: Signal) -> Signal {
        match kind {
            NetworkKind::Xag | NetworkKind::Xmg | NetworkKind::Mixed => net.xor2(a, b),
            _ => {
                let t = s_and(net, kind, a, !b);
                let e = s_and(net, kind, !a, b);
                s_or(net, kind, t, e)
            }
        }
    }
    fn s_maj(net: &mut Network, kind: NetworkKind, a: Signal, b: Signal, c: Signal) -> Signal {
        match kind {
            NetworkKind::Mig | NetworkKind::Xmg | NetworkKind::Mixed => net.maj3(a, b, c),
            _ => {
                let ab = s_and(net, kind, a, b);
                let aob = s_or(net, kind, a, b);
                let cc = s_and(net, kind, c, aob);
                s_or(net, kind, ab, cc)
            }
        }
    }
    match gate {
        GateKind::And2 => s_and(net, kind, fanins[0], fanins[1]),
        GateKind::Xor2 => s_xor(net, kind, fanins[0], fanins[1]),
        GateKind::Maj3 => s_maj(net, kind, fanins[0], fanins[1], fanins[2]),
        _ => unreachable!("only gates are emitted"),
    }
}

/// Computes the function of `root` over the cone bounded by `leaves`.
///
/// Returns `None` when a cone node depends on something that is neither a
/// cone node nor a leaf (should not happen for MFFC cones) or when the leaf
/// count exceeds eight variables.
fn cone_function(
    network: &Network,
    cone: &[NodeId],
    root: NodeId,
    leaves: &[NodeId],
) -> Option<TruthTable> {
    if leaves.len() > 8 || leaves.is_empty() {
        return None;
    }
    let n = leaves.len();
    let mut values: std::collections::HashMap<NodeId, TruthTable> = std::collections::HashMap::new();
    for (i, &l) in leaves.iter().enumerate() {
        values.insert(l, TruthTable::var(n, i));
    }
    values.insert(NodeId::CONST0, TruthTable::zeros(n));
    let mut sorted: Vec<NodeId> = cone.to_vec();
    sorted.sort();
    for id in sorted {
        if values.contains_key(&id) {
            continue;
        }
        let node = network.node(id);
        let mut fs = Vec::with_capacity(3);
        for s in node.fanins() {
            let base = values.get(&s.node())?;
            fs.push(if s.is_complement() { base.not() } else { base.clone() });
        }
        let t = match node.kind() {
            GateKind::And2 => fs[0].and(&fs[1]),
            GateKind::Xor2 => fs[0].xor(&fs[1]),
            GateKind::Maj3 => TruthTable::maj(&fs[0], &fs[1], &fs[2]),
            _ => return None,
        };
        values.insert(id, t);
    }
    values.get(&root).cloned()
}

/// Builds a mixed structural choice network (Algorithm 1).
///
/// The returned [`ChoiceNetwork`] contains the original structure as
/// representatives; every secondary representation is mixed in node-by-node
/// through one-to-one mapping, and the multi-strategy structural choice
/// algorithm (Algorithm 2) adds level-oriented candidates on critical paths
/// and area-oriented candidates elsewhere.
pub fn build_mch(network: &Network, params: &MchParams) -> ChoiceNetwork {
    let (cn, _) = build_mch_with_stats(network, params);
    cn
}

/// Same as [`build_mch`] but also reports how many choices each source
/// contributed.
pub fn build_mch_with_stats(network: &Network, params: &MchParams) -> (ChoiceNetwork, MchStats) {
    let mut cn = ChoiceNetwork::from_network(network);
    let mut stats = MchStats::default();

    // ------------------------------------------------------------------
    // Line 1: one-to-one mapping into each secondary representation.
    // ------------------------------------------------------------------
    for &kind in &params.secondary {
        let mut map: Vec<Signal> = vec![Signal::CONST0; network.len()];
        for &pi in network.inputs() {
            map[pi.index()] = pi.signal();
        }
        for id in network.gate_ids() {
            let node = network.node(id);
            let fanins: Vec<Signal> = node
                .fanins()
                .iter()
                .map(|s| map[s.node().index()].xor_complement(s.is_complement()))
                .collect();
            let sig = emit_styled(cn.network_mut(), kind, node.kind(), &fanins);
            map[id.index()] = sig;
            if cn.add_choice(id, sig) {
                stats.representation_choices += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Line 2: critical-path collection.  Line 3: cut enumeration.
    // ------------------------------------------------------------------
    let critical: HashSet<NodeId> = critical_path_nodes(network, params.critical_ratio);
    stats.critical_nodes = critical.len();
    let cuts = enumerate_cuts(
        network,
        &CutParams::new(params.cut_size, params.cut_limit),
    );

    // ------------------------------------------------------------------
    // Line 4 / Algorithm 2: multi-strategy structural choices.
    // ------------------------------------------------------------------
    let mut db = NpnDatabase::new();
    let gate_ids: Vec<NodeId> = network.gate_ids().collect();
    for &id in &gate_ids {
        let is_critical = critical.contains(&id);
        let strategies = if is_critical {
            &params.level_strategies
        } else {
            &params.area_strategies
        };
        if strategies.is_empty() {
            continue;
        }
        let mut added = 0usize;

        // Candidates from the node's cuts.
        for cut in cuts.of(id).iter() {
            if added >= params.max_candidates_per_node {
                break;
            }
            if cut.is_trivial() || cut.size() < 3 {
                continue;
            }
            let function = cut.function();
            if function.is_const0() || function.is_const1() {
                continue;
            }
            let leaves: Vec<Signal> = cut.leaves().iter().map(|l| l.signal()).collect();
            for entry in strategies.entries() {
                if added >= params.max_candidates_per_node {
                    break;
                }
                let sig = db.emit(
                    cn.network_mut(),
                    function,
                    &leaves,
                    entry.kind,
                    entry.strategy,
                );
                if cn.add_choice(id, sig) {
                    added += 1;
                    if is_critical {
                        stats.level_choices += 1;
                    } else {
                        stats.area_choices += 1;
                    }
                }
            }
        }

        // Non-critical nodes: additionally resynthesise the whole MFFC
        // (Algorithm 2, lines 8 and 11).
        if !is_critical && added < params.max_candidates_per_node {
            let cone = mffc(network, id, params.mffc_max_inputs);
            if cone.size() >= 2 && cone.leaves.len() >= 2 && cone.leaves.len() <= params.mffc_max_inputs
            {
                let mut leaves = cone.leaves.clone();
                leaves.sort();
                if let Some(function) = cone_function(network, &cone.nodes, id, &leaves) {
                    if !function.is_const0() && !function.is_const1() {
                        let leaf_sigs: Vec<Signal> = leaves.iter().map(|l| l.signal()).collect();
                        for entry in params.area_strategies.entries() {
                            if added >= params.max_candidates_per_node {
                                break;
                            }
                            let sig = db.emit(
                                cn.network_mut(),
                                &function,
                                &leaf_sigs,
                                entry.kind,
                                entry.strategy,
                            );
                            if cn.add_choice(id, sig) {
                                added += 1;
                                stats.area_choices += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    (cn, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{cec, Network, NetworkKind};

    fn sample_network() -> Network {
        // A small arithmetic-flavoured network: 4-bit ripple adder MSB plus
        // some control logic, deep enough for critical-path classification.
        let mut n = Network::with_name(NetworkKind::Aig, "sample");
        let a = n.add_inputs(4);
        let b = n.add_inputs(4);
        let mut carry = n.constant(false);
        let mut sums = Vec::new();
        for i in 0..4 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            sums.push(s);
            carry = c;
        }
        let any = n.or_reduce(&sums);
        n.add_output(any);
        n.add_output(carry);
        n
    }

    #[test]
    fn build_mch_balanced_produces_choices() {
        let net = sample_network();
        let (cn, stats) = build_mch_with_stats(&net, &MchParams::balanced());
        assert!(stats.total() > 0, "no choices were created");
        assert_eq!(cn.choice_count(), stats.total());
        // The mixed network is strictly larger than the original.
        assert!(cn.network().len() > net.len());
        // Every recorded choice is functionally consistent.
        assert!(cn.verify(16, 11).is_empty());
        // Outputs unchanged.
        assert_eq!(cn.network().outputs(), net.outputs());
    }

    #[test]
    fn secondary_representation_adds_representation_choices() {
        let net = sample_network();
        let (cn, stats) = build_mch_with_stats(&net, &MchParams::area_oriented());
        assert!(stats.representation_choices > 0);
        assert!(cn.verify(16, 5).is_empty());
        // XMG candidates exist: the mixed network must contain majority gates.
        let (_, _, maj) = cn.network().gate_profile();
        assert!(maj > 0);
    }

    #[test]
    fn delay_oriented_marks_more_critical_nodes_than_balanced() {
        let net = sample_network();
        let (_, balanced) = build_mch_with_stats(&net, &MchParams::balanced());
        let (_, delay) = build_mch_with_stats(&net, &MchParams::delay_oriented());
        assert!(delay.critical_nodes >= balanced.critical_nodes);
    }

    #[test]
    fn choice_network_preserves_output_functions() {
        let net = sample_network();
        for params in [
            MchParams::balanced(),
            MchParams::delay_oriented(),
            MchParams::area_oriented(),
            MchParams::mixed(&[NetworkKind::Mig, NetworkKind::Xmg]),
        ] {
            let cn = build_mch(&net, &params);
            // The mixed network read as a plain network still computes the
            // same primary outputs (choices only *add* nodes).
            assert!(cec(&net, &cn.network().cleanup()).holds());
        }
    }

    #[test]
    fn mch_stats_total_is_sum() {
        let s = MchStats {
            representation_choices: 2,
            level_choices: 3,
            area_choices: 4,
            critical_nodes: 7,
        };
        assert_eq!(s.total(), 9);
    }
}
