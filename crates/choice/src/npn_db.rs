//! A lazily-built NPN class database of candidate structures.
//!
//! The paper's level-oriented strategy is driven by a "4-input NPN library":
//! every cut function is reduced to its NPN class, the class representative is
//! synthesised once, and the resulting structure is replayed for every
//! occurrence with the appropriate input permutation and polarities. This
//! database generalises that idea to every (strategy, representation) pair the
//! MCH construction uses.
//!
//! # Plan/commit split
//!
//! Emission is split into a read-only **plan** half and a mutating **commit**
//! half so the parallel MCH construction can run the expensive part on worker
//! threads:
//!
//! * [`NpnDatabase::plan`] canonicalises the function and synthesises the
//!   class representative if neither the shared database (read through
//!   `&self`) nor the worker-local [`NpnPlanCache`] has it — no shared state
//!   is touched;
//! * [`NpnDatabase::commit`] replays a plan into the target network on the
//!   coordinating thread, merging worker-local misses into the shared cache.
//!   Because plans are committed in node-id order and
//!   [`synthesize`] is a pure function of the class key, the database
//!   contents and its hit/miss statistics end up identical to a serial run,
//!   whatever the thread count.
//!
//! [`NpnDatabase::emit`] is the fused serial form: plan immediately followed
//! by commit.
//!
//! # Cross-job sharing
//!
//! A batched mapping service runs many flows concurrently, and most of their
//! cut functions fall into the same handful of NPN classes. A
//! [`SharedNpnCache`] is the service-wide second tier behind any number of
//! per-job databases: [`NpnDatabase::with_shared`] routes every class
//! synthesis through the shared store, so a class is synthesised **once per
//! process** instead of once per job. Because [`synthesize`] is a pure
//! function of the class key, whichever job wins the insert race stores
//! exactly the network every other job would have stored — sharing can never
//! change an emitted structure. The per-job database keeps counting its own
//! hits and misses against its own cache in its own commit order, so per-job
//! statistics are byte-identical to a solo run whatever else is in flight.

use crate::strategies::{claim_subnetwork, import_subnetwork, synthesize, SynthesisStrategy};
use mch_logic::{
    npn_canonical, npn_semi_canonical, ClaimLog, Network, NetworkKind, NpnCanonical, ShardedStrash,
    Signal, TruthTable,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// The key of one cached candidate structure: the NPN class representative
/// plus the strategy and representation it was synthesised with.
type ClassKey = (TruthTable, SynthesisStrategy, NetworkKind);

/// Worker-local spill-over cache used while planning: classes that were
/// missing from the shared [`NpnDatabase`] at plan time, synthesised on the
/// worker and shipped with the plan for the coordinator to merge at commit.
///
/// One scratch cache per worker; it persists across planned nodes so a worker
/// synthesises each class at most once even before the shared database has
/// been warmed by a commit.
#[derive(Clone, Debug, Default)]
pub struct NpnPlanCache {
    synthesized: HashMap<ClassKey, Network>,
}

impl NpnPlanCache {
    /// Creates an empty plan cache.
    pub fn new() -> Self {
        NpnPlanCache::default()
    }

    /// Number of classes this worker synthesised locally.
    pub fn len(&self) -> usize {
        self.synthesized.len()
    }

    /// Returns `true` if no class has been synthesised locally.
    pub fn is_empty(&self) -> bool {
        self.synthesized.is_empty()
    }
}

/// A planned candidate emission: canonicalisation done, class representative
/// available, leaves already permuted and complemented per the NPN transform.
/// Produced by [`NpnDatabase::plan`] on any thread; replayed into a network
/// by [`NpnDatabase::commit`] on the coordinating thread.
#[derive(Clone, Debug)]
pub struct NpnPlan {
    kind: PlanKind,
}

#[derive(Clone, Debug)]
enum PlanKind {
    /// Degenerate constant function — no gates, no cache traffic.
    Constant(Signal),
    /// A planned class replay (boxed: the class payload dwarfs the constant
    /// variant).
    Class(Box<PlanClass>),
}

#[derive(Clone, Debug)]
struct PlanClass {
    key: ClassKey,
    /// The synthesised class network when the planning thread had to build
    /// it (first local encounter of a class the shared database did not
    /// hold). `None` when either cache already had it; the commit
    /// re-synthesises on demand in the (rare) case the shared database
    /// still lacks the class — the result is identical either way because
    /// [`synthesize`] is pure.
    synthesized: Option<Network>,
    /// `leaves[perm[i]] ^ neg_i` — the signal driving canonical input `i`.
    bound: Vec<Signal>,
    /// Whether the canonical output is complemented w.r.t. the function.
    output_neg: bool,
}

/// A plan whose structure has additionally been claimed against a
/// [`ShardedStrash`] on a worker thread: the claim log plus the (possibly
/// provisional) output signal, carried together with the plan so the
/// coordinator can still do the cache bookkeeping.
///
/// Produced by [`NpnDatabase::claim`]; resolved into a network by
/// [`NpnDatabase::commit_claim`].
#[derive(Clone, Debug)]
pub struct NpnClaim {
    plan: NpnPlan,
    log: ClaimLog,
    out: Signal,
}

/// A process-wide, read-mostly store of synthesised class networks shared
/// across concurrent mapping jobs (the second cache tier behind per-job
/// [`NpnDatabase`]s — see the module docs).
///
/// Reads take the lock briefly and clone the cached network; a miss
/// synthesises outside the lock and inserts first-writer-wins. The hit/miss
/// counters are service-level throughput telemetry: they depend on job
/// interleaving and are **not** deterministic — per-job determinism lives in
/// the per-job [`NpnDatabase`] counters, which never observe this store.
#[derive(Default)]
pub struct SharedNpnCache {
    store: RwLock<HashMap<ClassKey, Network>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SharedNpnCache {
    /// Creates an empty shared store.
    pub fn new() -> Self {
        SharedNpnCache::default()
    }

    /// Number of distinct (class, strategy, representation) entries stored.
    pub fn classes(&self) -> usize {
        self.store
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Syntheses served from the shared store instead of recomputed
    /// (cross-job telemetry; not deterministic).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Class syntheses actually performed through this store.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Returns the class network for `key`, synthesising and publishing it on
    /// first use. Pure in the value: every caller gets a network identical to
    /// a private synthesis.
    fn fetch_or_synthesize(&self, key: &ClassKey) -> Network {
        if let Some(net) = self
            .store
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return net.clone();
        }
        // Synthesise outside the lock; ties are benign because the value is a
        // pure function of the key (never-overwrite keeps the first insert).
        let net = synthesize(&key.0, key.2, key.1);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut store = self.store.write().unwrap_or_else(PoisonError::into_inner);
        store.entry(key.clone()).or_insert(net).clone()
    }
}

impl fmt::Debug for SharedNpnCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedNpnCache")
            .field("classes", &self.classes())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// Cache of synthesised canonical structures keyed by NPN class.
#[derive(Clone, Debug, Default)]
pub struct NpnDatabase {
    cache: HashMap<ClassKey, Network>,
    hits: usize,
    misses: usize,
    shared: Option<Arc<SharedNpnCache>>,
}

impl NpnDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        NpnDatabase::default()
    }

    /// Creates an empty per-job database backed by a service-wide
    /// [`SharedNpnCache`]: every class synthesis is routed through the shared
    /// store, while all hit/miss bookkeeping stays local to this database (so
    /// per-job statistics match a solo run exactly — see the module docs).
    pub fn with_shared(shared: Arc<SharedNpnCache>) -> Self {
        NpnDatabase {
            shared: Some(shared),
            ..NpnDatabase::default()
        }
    }

    /// Synthesises the class representative for `key`, going through the
    /// shared store when one is attached. Identical output either way:
    /// [`synthesize`] is pure.
    fn synthesize_class(&self, key: &ClassKey) -> Network {
        match &self.shared {
            Some(shared) => shared.fetch_or_synthesize(key),
            None => synthesize(&key.0, key.2, key.1),
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of classes synthesised so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct (class, strategy, kind) entries stored.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Returns `true` if no class has been synthesised yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The NPN canonical form the database keys by: exact canonicalisation up
    /// to five variables, the cheaper semi-canonical form above.
    ///
    /// Exposed so callers planning several emissions of the *same* function
    /// (one per strategy entry) can canonicalise once and reuse the result
    /// through [`plan_with_canon`](NpnDatabase::plan_with_canon).
    pub fn canonicalize(function: &TruthTable) -> NpnCanonical {
        if function.num_vars() <= 5 {
            npn_canonical(function)
        } else {
            npn_semi_canonical(function)
        }
    }

    /// Plans the emission of `function` over `leaves` without touching the
    /// database: canonicalise, then synthesise the class representative
    /// unless the shared database (`&self`) or the worker-local `scratch`
    /// already holds it.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len() != function.num_vars()`.
    pub fn plan(
        &self,
        function: &TruthTable,
        leaves: &[Signal],
        kind: NetworkKind,
        strategy: SynthesisStrategy,
        scratch: &mut NpnPlanCache,
    ) -> NpnPlan {
        assert_eq!(leaves.len(), function.num_vars(), "one leaf per variable");
        // Degenerate cases never go through the cache.
        if function.is_const0() {
            return NpnPlan {
                kind: PlanKind::Constant(Signal::CONST0),
            };
        }
        if function.is_const1() {
            return NpnPlan {
                kind: PlanKind::Constant(Signal::CONST1),
            };
        }
        let canon = Self::canonicalize(function);
        self.plan_with_canon(&canon, leaves, kind, strategy, scratch)
    }

    /// Like [`plan`](NpnDatabase::plan) but over a pre-computed canonical
    /// form, so one canonicalisation can serve several (strategy, kind)
    /// entries. The caller must have filtered out constant functions.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len()` differs from the canonical form's variable
    /// count.
    pub fn plan_with_canon(
        &self,
        canon: &NpnCanonical,
        leaves: &[Signal],
        kind: NetworkKind,
        strategy: SynthesisStrategy,
        scratch: &mut NpnPlanCache,
    ) -> NpnPlan {
        let t = &canon.transform;
        assert_eq!(leaves.len(), t.perm.len(), "one leaf per variable");
        let key = (canon.representative.clone(), strategy, kind);
        let synthesized = if self.cache.contains_key(&key)
            || scratch.synthesized.contains_key(&key)
        {
            None
        } else {
            let net = self.synthesize_class(&key);
            scratch.synthesized.insert(key.clone(), net.clone());
            Some(net)
        };
        // canonical(y) = f(x) ^ out  with  y_i = x_{perm[i]} ^ neg_i, therefore
        // f(x) = canonical(y) ^ out when canonical input i is driven by
        // leaves[perm[i]] ^ neg_i.
        let bound: Vec<Signal> = (0..leaves.len())
            .map(|i| leaves[t.perm[i]].xor_complement(t.input_neg & (1 << i) != 0))
            .collect();
        NpnPlan {
            kind: PlanKind::Class(Box::new(PlanClass {
                key,
                synthesized,
                bound,
                output_neg: t.output_neg,
            })),
        }
    }

    /// Replays a plan into `target`, merging a worker-synthesised class into
    /// the shared cache when the database does not hold it yet, and returns
    /// the candidate's output signal.
    ///
    /// Hit/miss statistics are counted here — in commit order — so a
    /// parallel plan phase followed by id-ordered commits reports exactly
    /// the numbers a serial run would.
    pub fn commit(&mut self, target: &mut Network, plan: NpnPlan) -> Signal {
        match plan.kind {
            PlanKind::Constant(sig) => sig,
            PlanKind::Class(class) => {
                let PlanClass {
                    key,
                    synthesized,
                    bound,
                    output_neg,
                } = *class;
                if !self.cache.contains_key(&key) {
                    let net = match synthesized {
                        Some(net) => net,
                        None => self.synthesize_class(&key),
                    };
                    self.cache.insert(key.clone(), net);
                    self.misses += 1;
                } else {
                    self.hits += 1;
                }
                let canonical_net = self.cache.get(&key).expect("class just ensured");
                let out = import_subnetwork(target, canonical_net, &bound);
                out.xor_complement(output_neg)
            }
        }
    }

    /// Claims a plan's structure against `table` on a worker thread, probing
    /// and reserving strash buckets instead of mutating the target network.
    ///
    /// The class network is resolved read-only: from the plan itself (first
    /// local encounter), else from the worker's `scratch`, else from the
    /// shared database — by [`plan`](NpnDatabase::plan)'s contract one of the
    /// three always holds it. No statistics are counted here; hit/miss
    /// bookkeeping happens in [`commit_claim`](NpnDatabase::commit_claim), in
    /// commit order, exactly as in the unclaimed path.
    pub fn claim(&self, plan: NpnPlan, table: &ShardedStrash, scratch: &NpnPlanCache) -> NpnClaim {
        let mut log = ClaimLog::new();
        let out = match &plan.kind {
            PlanKind::Constant(sig) => *sig,
            PlanKind::Class(class) => {
                let net = class
                    .synthesized
                    .as_ref()
                    .or_else(|| scratch.synthesized.get(&class.key))
                    .or_else(|| self.cache.get(&class.key))
                    .expect("planned class present in plan, scratch or shared cache");
                let raw = claim_subnetwork(table, net, &class.bound, &mut log);
                raw.xor_complement(class.output_neg)
            }
        };
        NpnClaim { plan, log, out }
    }

    /// The claim-side twin of [`commit`](NpnDatabase::commit): does the same
    /// cache bookkeeping, then links the claim's reservations into `target`
    /// and returns the resolved output signal.
    ///
    /// `target` must be inside the commit batch the claim was made against.
    pub fn commit_claim(&mut self, target: &mut Network, claim: NpnClaim) -> Signal {
        let NpnClaim { plan, log, out } = claim;
        match plan.kind {
            PlanKind::Constant(sig) => sig,
            PlanKind::Class(class) => {
                let PlanClass {
                    key, synthesized, ..
                } = *class;
                if !self.cache.contains_key(&key) {
                    let net = match synthesized {
                        Some(net) => net,
                        None => self.synthesize_class(&key),
                    };
                    self.cache.insert(key, net);
                    self.misses += 1;
                } else {
                    self.hits += 1;
                }
                target.link_claims(&log);
                target.resolve_claim(out)
            }
        }
    }

    /// Emits a candidate structure computing `function` over `leaves` into
    /// `target`, synthesising the function's NPN class representative on first
    /// use and replaying it afterwards — the fused serial form of
    /// [`plan`](NpnDatabase::plan) + [`commit`](NpnDatabase::commit).
    ///
    /// Returns the candidate's output signal in `target`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len() != function.num_vars()`.
    pub fn emit(
        &mut self,
        target: &mut Network,
        function: &TruthTable,
        leaves: &[Signal],
        kind: NetworkKind,
        strategy: SynthesisStrategy,
    ) -> Signal {
        let mut scratch = NpnPlanCache::new();
        let plan = self.plan(function, leaves, kind, strategy, &mut scratch);
        self.commit(target, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::output_truth_tables;

    fn check_emit(f: &TruthTable, kind: NetworkKind, strategy: SynthesisStrategy) {
        let mut db = NpnDatabase::new();
        let mut host = Network::new(NetworkKind::Mixed);
        let leaves = host.add_inputs(f.num_vars());
        let out = db.emit(&mut host, f, &leaves, kind, strategy);
        host.add_output(out);
        assert_eq!(&output_truth_tables(&host)[0], f, "{kind:?} {strategy:?}");
    }

    #[test]
    fn emit_reproduces_function_exactly() {
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        let funcs = [
            a.and(&b).or(&c.and(&d)).not(),
            a.xor(&b).xor(&c).and(&d),
            TruthTable::ite(&a, &b, &c.or(&d)),
            TruthTable::maj(&a, &b, &c).xor(&d),
        ];
        for f in &funcs {
            for kind in NetworkKind::homogeneous() {
                check_emit(f, kind, SynthesisStrategy::Decompose);
                check_emit(f, kind, SynthesisStrategy::SopFactor);
            }
        }
    }

    #[test]
    fn exhaustive_three_var_emit() {
        let mut db = NpnDatabase::new();
        for bits in 0..256u64 {
            let f = TruthTable::from_u64(3, bits);
            let mut host = Network::new(NetworkKind::Mixed);
            let leaves = host.add_inputs(3);
            let out = db.emit(
                &mut host,
                &f,
                &leaves,
                NetworkKind::Xmg,
                SynthesisStrategy::Decompose,
            );
            host.add_output(out);
            assert_eq!(output_truth_tables(&host)[0], f, "bits={bits:#x}");
        }
        // 3-variable functions fall into 14 NPN classes; constants bypass the
        // cache, so at most 13 classes are synthesised.
        assert!(db.len() <= 13, "got {} classes", db.len());
        assert!(db.hits() > db.misses());
    }

    #[test]
    fn cache_is_shared_across_equivalent_functions() {
        let mut db = NpnDatabase::new();
        let mut host = Network::new(NetworkKind::Mixed);
        let xs = host.add_inputs(2);
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let _ = db.emit(&mut host, &a.and(&b), &xs, NetworkKind::Aig, SynthesisStrategy::Decompose);
        let _ = db.emit(&mut host, &a.or(&b), &xs, NetworkKind::Aig, SynthesisStrategy::Decompose);
        let _ = db.emit(
            &mut host,
            &a.and(&b).not(),
            &xs,
            NetworkKind::Aig,
            SynthesisStrategy::Decompose,
        );
        assert_eq!(db.misses(), 1);
        assert_eq!(db.hits(), 2);
    }

    #[test]
    fn emit_handles_wide_functions_via_semi_canonical_forms() {
        // Functions with more than five variables take the semi-canonical
        // path; the emitted structure must still match the function exactly.
        let mut db = NpnDatabase::new();
        for seed in 0..10u64 {
            let n = 6 + (seed as usize % 2);
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
            let mut f = TruthTable::zeros(n);
            for i in 0..f.num_bits() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                f.set_bit(i, state & 1 == 1);
            }
            let mut host = Network::new(NetworkKind::Mixed);
            let leaves = host.add_inputs(n);
            let out = db.emit(&mut host, &f, &leaves, NetworkKind::Aig, SynthesisStrategy::SopFactor);
            host.add_output(out);
            assert_eq!(output_truth_tables(&host)[0], f, "seed {seed}");
        }
    }

    #[test]
    fn constants_bypass_cache() {
        let mut db = NpnDatabase::new();
        let mut host = Network::new(NetworkKind::Mixed);
        let xs = host.add_inputs(2);
        let s = db.emit(
            &mut host,
            &TruthTable::ones(2),
            &xs,
            NetworkKind::Aig,
            SynthesisStrategy::SopFactor,
        );
        assert!(s.is_const1());
        assert!(db.is_empty());
    }

    #[test]
    fn planned_and_fused_emission_build_identical_networks() {
        // Plan everything up front against a cold shared database (the
        // threaded schedule), commit in order, and compare against the fused
        // serial emit sequence: networks, signals and hit/miss statistics
        // must be identical.
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let funcs = [
            a.and(&b).or(&c),
            a.xor(&b).and(&c),
            a.and(&b).or(&c), // repeat: second encounter must be a hit
            TruthTable::maj(&a, &b, &c).not(),
        ];

        let mut serial_db = NpnDatabase::new();
        let mut serial_host = Network::new(NetworkKind::Mixed);
        let leaves = serial_host.add_inputs(3);
        let serial_sigs: Vec<Signal> = funcs
            .iter()
            .map(|f| {
                serial_db.emit(
                    &mut serial_host,
                    f,
                    &leaves,
                    NetworkKind::Xag,
                    SynthesisStrategy::Decompose,
                )
            })
            .collect();

        let mut planned_db = NpnDatabase::new();
        let mut planned_host = Network::new(NetworkKind::Mixed);
        let leaves2 = planned_host.add_inputs(3);
        // Two independent "workers" with their own scratch caches, planning
        // interleaved halves — both synthesise the repeated class locally.
        let mut scratch_a = NpnPlanCache::new();
        let mut scratch_b = NpnPlanCache::new();
        let plans: Vec<NpnPlan> = funcs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let scratch = if i % 2 == 0 { &mut scratch_a } else { &mut scratch_b };
                planned_db.plan(f, &leaves2, NetworkKind::Xag, SynthesisStrategy::Decompose, scratch)
            })
            .collect();
        let planned_sigs: Vec<Signal> = plans
            .into_iter()
            .map(|p| planned_db.commit(&mut planned_host, p))
            .collect();

        assert_eq!(serial_sigs, planned_sigs);
        assert_eq!(serial_host, planned_host);
        assert_eq!(serial_db.hits(), planned_db.hits());
        assert_eq!(serial_db.misses(), planned_db.misses());
        assert_eq!(serial_db.len(), planned_db.len());
        assert!(!scratch_a.is_empty() || !scratch_b.is_empty());
    }

    #[test]
    fn claimed_and_fused_emission_build_identical_networks() {
        // plan → claim (worker) → commit_claim (coordinator) against a
        // batched host must match the fused serial emit byte for byte:
        // networks, signals, statistics.
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let funcs = [
            a.and(&b).or(&c),
            a.xor(&b).and(&c),
            a.and(&b).or(&c), // repeat: hit, and a pure strash replay
            TruthTable::maj(&a, &b, &c).not(),
            TruthTable::zeros(3), // constant: bypasses cache and strash
        ];

        let mut serial_db = NpnDatabase::new();
        let mut serial_host = Network::new(NetworkKind::Mixed);
        let leaves = serial_host.add_inputs(3);
        let serial_sigs: Vec<Signal> = funcs
            .iter()
            .map(|f| {
                serial_db.emit(
                    &mut serial_host,
                    f,
                    &leaves,
                    NetworkKind::Xag,
                    SynthesisStrategy::Decompose,
                )
            })
            .collect();

        let mut claimed_db = NpnDatabase::new();
        let mut claimed_host = Network::new(NetworkKind::Mixed);
        let leaves2 = claimed_host.add_inputs(3);
        let table = claimed_host.begin_commit_batch();
        let mut scratch = NpnPlanCache::new();
        let claims: Vec<NpnClaim> = funcs
            .iter()
            .map(|f| {
                let plan = claimed_db.plan(
                    f,
                    &leaves2,
                    NetworkKind::Xag,
                    SynthesisStrategy::Decompose,
                    &mut scratch,
                );
                claimed_db.claim(plan, &table, &scratch)
            })
            .collect();
        let claimed_sigs: Vec<Signal> = claims
            .into_iter()
            .map(|cl| claimed_db.commit_claim(&mut claimed_host, cl))
            .collect();
        claimed_host.end_commit_batch();

        assert_eq!(serial_sigs, claimed_sigs);
        assert_eq!(serial_host, claimed_host);
        assert_eq!(serial_db.hits(), claimed_db.hits());
        assert_eq!(serial_db.misses(), claimed_db.misses());
        assert_eq!(serial_db.len(), claimed_db.len());
    }

    #[test]
    fn shared_cache_changes_neither_networks_nor_local_statistics() {
        // Two "jobs" over the same functions: a private database versus two
        // databases behind one shared store (the second warmed by the first).
        // Emitted networks and per-job hit/miss statistics must be identical
        // in all three runs; only the shared store's own telemetry may see
        // cross-job hits.
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let funcs = [
            a.and(&b).or(&c),
            a.xor(&b).and(&c),
            a.and(&b).or(&c),
            TruthTable::maj(&a, &b, &c).not(),
        ];

        let run = |mut db: NpnDatabase| {
            let mut host = Network::new(NetworkKind::Mixed);
            let leaves = host.add_inputs(3);
            for f in &funcs {
                let s = db.emit(&mut host, f, &leaves, NetworkKind::Xag, SynthesisStrategy::Decompose);
                host.add_output(s);
            }
            (host, db.hits(), db.misses(), db.len())
        };

        let solo = run(NpnDatabase::new());
        let shared = Arc::new(SharedNpnCache::new());
        let first = run(NpnDatabase::with_shared(Arc::clone(&shared)));
        let second = run(NpnDatabase::with_shared(Arc::clone(&shared)));

        assert_eq!(solo, first, "cold shared store must be invisible");
        assert_eq!(solo, second, "warm shared store must be invisible");
        // The second job's syntheses were all served from the shared store.
        assert_eq!(shared.misses(), solo.3);
        assert!(shared.hits() >= solo.3);
        assert_eq!(shared.classes(), solo.3);
    }

    #[test]
    fn commit_resynthesises_when_a_plan_ships_no_network() {
        // A plan whose class came from the worker-local scratch ships no
        // network; committing it against a database that never saw the class
        // must fall back to a fresh synthesis and still be correct.
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let f = a.and(&b);
        let db_for_planning = NpnDatabase::new();
        let mut scratch = NpnPlanCache::new();
        let mut host = Network::new(NetworkKind::Mixed);
        let xs = host.add_inputs(2);
        // First plan populates the scratch; second plan ships None.
        let _first = db_for_planning.plan(&f, &xs, NetworkKind::Aig, SynthesisStrategy::Decompose, &mut scratch);
        let second = db_for_planning.plan(&f, &xs, NetworkKind::Aig, SynthesisStrategy::Decompose, &mut scratch);
        // Commit `second` into a *fresh* database: the class is nowhere.
        let mut fresh = NpnDatabase::new();
        let out = fresh.commit(&mut host, second);
        host.add_output(out);
        assert_eq!(output_truth_tables(&host)[0], f);
        assert_eq!(fresh.misses(), 1);
    }
}
