//! A lazily-built NPN class database of candidate structures.
//!
//! The paper's level-oriented strategy is driven by a "4-input NPN library":
//! every cut function is reduced to its NPN class, the class representative is
//! synthesised once, and the resulting structure is replayed for every
//! occurrence with the appropriate input permutation and polarities. This
//! database generalises that idea to every (strategy, representation) pair the
//! MCH construction uses.

use crate::strategies::{import_subnetwork, synthesize, SynthesisStrategy};
use mch_logic::{npn_canonical, npn_semi_canonical, Network, NetworkKind, Signal, TruthTable};
use std::collections::HashMap;

/// Cache of synthesised canonical structures keyed by NPN class.
#[derive(Clone, Debug, Default)]
pub struct NpnDatabase {
    cache: HashMap<(TruthTable, SynthesisStrategy, NetworkKind), Network>,
    hits: usize,
    misses: usize,
}

impl NpnDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        NpnDatabase::default()
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of classes synthesised so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct (class, strategy, kind) entries stored.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Returns `true` if no class has been synthesised yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Emits a candidate structure computing `function` over `leaves` into
    /// `target`, synthesising the function's NPN class representative on first
    /// use and replaying it afterwards.
    ///
    /// Returns the candidate's output signal in `target`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len() != function.num_vars()`.
    pub fn emit(
        &mut self,
        target: &mut Network,
        function: &TruthTable,
        leaves: &[Signal],
        kind: NetworkKind,
        strategy: SynthesisStrategy,
    ) -> Signal {
        assert_eq!(leaves.len(), function.num_vars(), "one leaf per variable");
        // Degenerate cases never go through the cache.
        if function.is_const0() {
            return Signal::CONST0;
        }
        if function.is_const1() {
            return Signal::CONST1;
        }
        let canon = if function.num_vars() <= 5 {
            npn_canonical(function)
        } else {
            npn_semi_canonical(function)
        };
        let key = (canon.representative.clone(), strategy, kind);
        if !self.cache.contains_key(&key) {
            let net = synthesize(&canon.representative, kind, strategy);
            self.cache.insert(key.clone(), net);
            self.misses += 1;
        } else {
            self.hits += 1;
        }
        let canonical_net = self.cache.get(&key).expect("just inserted").clone();

        // canonical(y) = f(x) ^ out  with  y_i = x_{perm[i]} ^ neg_i, therefore
        // f(x) = canonical(y) ^ out when canonical input i is driven by
        // leaves[perm[i]] ^ neg_i.
        let t = &canon.transform;
        let bound: Vec<Signal> = (0..function.num_vars())
            .map(|i| leaves[t.perm[i]].xor_complement(t.input_neg & (1 << i) != 0))
            .collect();
        let out = import_subnetwork(target, &canonical_net, &bound);
        out.xor_complement(t.output_neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::output_truth_tables;

    fn check_emit(f: &TruthTable, kind: NetworkKind, strategy: SynthesisStrategy) {
        let mut db = NpnDatabase::new();
        let mut host = Network::new(NetworkKind::Mixed);
        let leaves = host.add_inputs(f.num_vars());
        let out = db.emit(&mut host, f, &leaves, kind, strategy);
        host.add_output(out);
        assert_eq!(&output_truth_tables(&host)[0], f, "{kind:?} {strategy:?}");
    }

    #[test]
    fn emit_reproduces_function_exactly() {
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        let funcs = [
            a.and(&b).or(&c.and(&d)).not(),
            a.xor(&b).xor(&c).and(&d),
            TruthTable::ite(&a, &b, &c.or(&d)),
            TruthTable::maj(&a, &b, &c).xor(&d),
        ];
        for f in &funcs {
            for kind in NetworkKind::homogeneous() {
                check_emit(f, kind, SynthesisStrategy::Decompose);
                check_emit(f, kind, SynthesisStrategy::SopFactor);
            }
        }
    }

    #[test]
    fn exhaustive_three_var_emit() {
        let mut db = NpnDatabase::new();
        for bits in 0..256u64 {
            let f = TruthTable::from_u64(3, bits);
            let mut host = Network::new(NetworkKind::Mixed);
            let leaves = host.add_inputs(3);
            let out = db.emit(
                &mut host,
                &f,
                &leaves,
                NetworkKind::Xmg,
                SynthesisStrategy::Decompose,
            );
            host.add_output(out);
            assert_eq!(output_truth_tables(&host)[0], f, "bits={bits:#x}");
        }
        // 3-variable functions fall into 14 NPN classes; constants bypass the
        // cache, so at most 13 classes are synthesised.
        assert!(db.len() <= 13, "got {} classes", db.len());
        assert!(db.hits() > db.misses());
    }

    #[test]
    fn cache_is_shared_across_equivalent_functions() {
        let mut db = NpnDatabase::new();
        let mut host = Network::new(NetworkKind::Mixed);
        let xs = host.add_inputs(2);
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let _ = db.emit(&mut host, &a.and(&b), &xs, NetworkKind::Aig, SynthesisStrategy::Decompose);
        let _ = db.emit(&mut host, &a.or(&b), &xs, NetworkKind::Aig, SynthesisStrategy::Decompose);
        let _ = db.emit(
            &mut host,
            &a.and(&b).not(),
            &xs,
            NetworkKind::Aig,
            SynthesisStrategy::Decompose,
        );
        assert_eq!(db.misses(), 1);
        assert_eq!(db.hits(), 2);
    }

    #[test]
    fn emit_handles_wide_functions_via_semi_canonical_forms() {
        // Functions with more than five variables take the semi-canonical
        // path; the emitted structure must still match the function exactly.
        let mut db = NpnDatabase::new();
        for seed in 0..10u64 {
            let n = 6 + (seed as usize % 2);
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
            let mut f = TruthTable::zeros(n);
            for i in 0..f.num_bits() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                f.set_bit(i, state & 1 == 1);
            }
            let mut host = Network::new(NetworkKind::Mixed);
            let leaves = host.add_inputs(n);
            let out = db.emit(&mut host, &f, &leaves, NetworkKind::Aig, SynthesisStrategy::SopFactor);
            host.add_output(out);
            assert_eq!(output_truth_tables(&host)[0], f, "seed {seed}");
        }
    }

    #[test]
    fn constants_bypass_cache() {
        let mut db = NpnDatabase::new();
        let mut host = Network::new(NetworkKind::Mixed);
        let xs = host.add_inputs(2);
        let s = db.emit(
            &mut host,
            &TruthTable::ones(2),
            &xs,
            NetworkKind::Aig,
            SynthesisStrategy::SopFactor,
        );
        assert!(s.is_const1());
        assert!(db.is_empty());
    }
}
