//! Sum-of-products extraction (irredundant SOP) and simple algebraic
//! factoring.
//!
//! These form the *area-oriented* synthesis strategies of the multi-strategy
//! structural choice algorithm (Algorithm 2, lines 9–13): non-critical nodes
//! are re-expressed as factored SOPs, which tend to minimise literal count and
//! therefore mapped area.

use mch_logic::{Network, Signal, TruthTable};

/// A product term over the function's variables.
///
/// Bit `i` of `mask` indicates variable `i` appears in the cube; the matching
/// bit of `polarity` gives its phase (1 = positive literal).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Cube {
    /// Variables present in the cube.
    pub mask: u32,
    /// Phase of each present variable.
    pub polarity: u32,
}

impl Cube {
    /// The cube containing no literals (tautology).
    pub fn tautology() -> Self {
        Cube { mask: 0, polarity: 0 }
    }

    /// Number of literals in the cube.
    pub fn literal_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Adds a literal of `var` with the given phase.
    pub fn with_literal(mut self, var: usize, positive: bool) -> Self {
        self.mask |= 1 << var;
        if positive {
            self.polarity |= 1 << var;
        } else {
            self.polarity &= !(1 << var);
        }
        self
    }

    /// Evaluates the cube's characteristic function as a truth table.
    pub fn truth_table(&self, num_vars: usize) -> TruthTable {
        let mut t = TruthTable::ones(num_vars);
        for v in 0..num_vars {
            if self.mask & (1 << v) != 0 {
                let var = TruthTable::var(num_vars, v);
                let lit = if self.polarity & (1 << v) != 0 { var } else { var.not() };
                t = t.and(&lit);
            }
        }
        t
    }
}

/// Computes an irredundant sum-of-products cover of `function` using the
/// Minato–Morreale recursive ISOP procedure.
///
/// The returned cubes cover exactly the on-set of the function.
pub fn isop(function: &TruthTable) -> Vec<Cube> {
    let mut cover = Vec::new();
    isop_rec(function, function, function.num_vars(), &mut cover);
    cover
}

/// Recursive ISOP. `lower ⊆ f ⊆ upper`; returns the cover's characteristic
/// function and appends cubes to `out`.
fn isop_rec(lower: &TruthTable, upper: &TruthTable, num_vars: usize, out: &mut Vec<Cube>) -> TruthTable {
    if lower.is_const0() {
        return TruthTable::zeros(lower.num_vars());
    }
    if upper.is_const1() {
        out.push(Cube::tautology());
        return TruthTable::ones(lower.num_vars());
    }
    // Pick the lowest variable in the support of either bound.
    let var = (0..num_vars)
        .find(|&v| !lower.is_independent_of(v) || !upper.is_independent_of(v))
        .expect("non-constant function has a support variable");
    let l0 = lower.cofactor0(var);
    let l1 = lower.cofactor1(var);
    let u0 = upper.cofactor0(var);
    let u1 = upper.cofactor1(var);

    // Cubes that must contain the negative literal of `var`.
    let mut neg_cubes = Vec::new();
    let c0 = isop_rec(&l0.and(&u1.not()), &u0, num_vars, &mut neg_cubes);
    // Cubes that must contain the positive literal of `var`.
    let mut pos_cubes = Vec::new();
    let c1 = isop_rec(&l1.and(&u0.not()), &u1, num_vars, &mut pos_cubes);
    // Remaining minterms, covered without the variable.
    let l2 = l0.and(&c0.not()).or(&l1.and(&c1.not()));
    let mut free_cubes = Vec::new();
    let c2 = isop_rec(&l2, &u0.and(&u1), num_vars, &mut free_cubes);

    for c in neg_cubes {
        out.push(c.with_literal(var, false));
    }
    for c in pos_cubes {
        out.push(c.with_literal(var, true));
    }
    out.extend(free_cubes);

    let x = TruthTable::var(lower.num_vars(), var);
    x.not().and(&c0).or(&x.and(&c1)).or(&c2)
}

/// Verifies that a cube cover implements `function` exactly.
pub fn cover_implements(cubes: &[Cube], function: &TruthTable) -> bool {
    let mut acc = TruthTable::zeros(function.num_vars());
    for c in cubes {
        acc = acc.or(&c.truth_table(function.num_vars()));
    }
    acc == *function
}

/// Counts the literals of a cover (the classical area proxy).
pub fn literal_count(cubes: &[Cube]) -> u32 {
    cubes.iter().map(Cube::literal_count).sum()
}

/// Emits a factored form of the cube cover into `network`, reading variable
/// `i` from `leaves[i]`, and returns the output signal.
///
/// Factoring is algebraic: the most frequent literal is divided out
/// recursively; cube-free covers fall back to a balanced OR of cube ANDs.
pub fn emit_factored(network: &mut Network, cubes: &[Cube], leaves: &[Signal]) -> Signal {
    if cubes.is_empty() {
        return network.constant(false);
    }
    if cubes.iter().any(|c| c.mask == 0) {
        return network.constant(true);
    }
    // Find the most frequent literal (variable, phase).
    let mut best: Option<(usize, bool, usize)> = None;
    for v in 0..leaves.len() {
        for phase in [false, true] {
            let count = cubes
                .iter()
                .filter(|c| c.mask & (1 << v) != 0 && (c.polarity >> v) & 1 == phase as u32)
                .count();
            if count >= 2 && best.is_none_or(|(_, _, n)| count > n) {
                best = Some((v, phase, count));
            }
        }
    }
    match best {
        Some((var, phase, _)) => {
            let lit = leaves[var].xor_complement(!phase);
            let (with, without): (Vec<Cube>, Vec<Cube>) = cubes.iter().partition(|c| {
                c.mask & (1 << var) != 0 && (c.polarity >> var) & 1 == phase as u32
            });
            // Remove the divided literal from the quotient cubes.
            let quotient: Vec<Cube> = with
                .iter()
                .map(|c| Cube {
                    mask: c.mask & !(1 << var),
                    polarity: c.polarity & !(1 << var),
                })
                .collect();
            let q = emit_factored(network, &quotient, leaves);
            let divided = network.and(lit, q);
            if without.is_empty() {
                divided
            } else {
                let rest = emit_factored(network, &without, leaves);
                network.or(divided, rest)
            }
        }
        None => {
            // No sharing: balanced OR of cube ANDs.
            let terms: Vec<Signal> = cubes
                .iter()
                .map(|c| {
                    let lits: Vec<Signal> = (0..leaves.len())
                        .filter(|&v| c.mask & (1 << v) != 0)
                        .map(|v| leaves[v].xor_complement((c.polarity >> v) & 1 == 0))
                        .collect();
                    network.and_reduce(&lits)
                })
                .collect();
            network.or_reduce(&terms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{output_truth_tables, Network, NetworkKind};

    fn random_function(num_vars: usize, seed: u64) -> TruthTable {
        // Small deterministic pseudo-random function generator.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut t = TruthTable::zeros(num_vars);
        for i in 0..t.num_bits() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            t.set_bit(i, state & 1 == 1);
        }
        t
    }

    #[test]
    fn isop_covers_exactly() {
        for vars in 1..=5 {
            for seed in 0..8 {
                let f = random_function(vars, seed);
                let cubes = isop(&f);
                assert!(cover_implements(&cubes, &f), "vars={vars} seed={seed}");
            }
        }
    }

    #[test]
    fn isop_of_constants() {
        assert!(isop(&TruthTable::zeros(3)).is_empty());
        let taut = isop(&TruthTable::ones(3));
        assert_eq!(taut.len(), 1);
        assert_eq!(taut[0].literal_count(), 0);
    }

    #[test]
    fn isop_of_simple_gates_is_minimal() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(isop(&a.and(&b)).len(), 1);
        assert_eq!(isop(&a.or(&b)).len(), 2);
        assert_eq!(isop(&a.xor(&b)).len(), 2);
        assert_eq!(literal_count(&isop(&a.xor(&b))), 4);
    }

    #[test]
    fn factored_emission_preserves_function() {
        for vars in 2..=5 {
            for seed in 0..6 {
                let f = random_function(vars, 100 + seed);
                let cubes = isop(&f);
                let mut n = Network::new(NetworkKind::Aig);
                let leaves = n.add_inputs(vars);
                let out = emit_factored(&mut n, &cubes, &leaves);
                n.add_output(out);
                let tts = output_truth_tables(&n);
                assert_eq!(tts[0], f, "vars={vars} seed={seed}");
            }
        }
    }

    #[test]
    fn factoring_shares_common_literal() {
        // f = a&b | a&c | a&d should factor as a & (b | c | d): 4 gates max.
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        let f = a.and(&b).or(&a.and(&c)).or(&a.and(&d));
        let cubes = isop(&f);
        let mut n = Network::new(NetworkKind::Aig);
        let leaves = n.add_inputs(4);
        let out = emit_factored(&mut n, &cubes, &leaves);
        n.add_output(out);
        assert!(n.gate_count() <= 4, "got {} gates", n.gate_count());
        assert_eq!(output_truth_tables(&n)[0], f);
    }

    #[test]
    fn cube_truth_table() {
        let cube = Cube::tautology().with_literal(0, true).with_literal(2, false);
        let t = cube.truth_table(3);
        let a = TruthTable::var(3, 0);
        let c = TruthTable::var(3, 2);
        assert_eq!(t, a.and(&c.not()));
    }
}
