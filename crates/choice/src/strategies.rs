//! The synthesis-strategy library used by the multi-strategy structural
//! choice algorithm (Algorithm 2).
//!
//! A strategy is a way of re-synthesising a small Boolean function into a
//! candidate structure; paired with a target representation it produces a
//! structurally distinct but functionally equivalent cone that the choice
//! network can offer to the mapper.

use crate::dsd::emit_decomposed;
use crate::sop::{emit_factored, isop};
use mch_logic::{ClaimLog, GateKind, Network, NetworkKind, ShardedStrash, Signal, TruthTable};

/// How a candidate function is re-synthesised.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SynthesisStrategy {
    /// Top-down disjoint-support / Shannon decomposition. Exposes shallow XOR
    /// and MUX tops — the *level-oriented* strategy of the paper.
    Decompose,
    /// Irredundant SOP extraction followed by algebraic factoring. Minimises
    /// literals — the *area-oriented* strategy of the paper.
    SopFactor,
}

/// A (strategy, target representation) pair.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct StrategyEntry {
    /// The resynthesis method.
    pub strategy: SynthesisStrategy,
    /// The representation style the candidate is emitted in.
    pub kind: NetworkKind,
}

/// The synthesis-strategy library (`lib` in Algorithms 1 and 2).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StrategyLibrary {
    entries: Vec<StrategyEntry>,
}

impl StrategyLibrary {
    /// Creates a library from explicit entries.
    pub fn new(entries: Vec<StrategyEntry>) -> Self {
        StrategyLibrary { entries }
    }

    /// Level-oriented strategies (decomposition) in each requested style.
    pub fn level_oriented(kinds: &[NetworkKind]) -> Self {
        StrategyLibrary {
            entries: kinds
                .iter()
                .map(|&kind| StrategyEntry {
                    strategy: SynthesisStrategy::Decompose,
                    kind,
                })
                .collect(),
        }
    }

    /// Area-oriented strategies (SOP factoring) in each requested style.
    pub fn area_oriented(kinds: &[NetworkKind]) -> Self {
        StrategyLibrary {
            entries: kinds
                .iter()
                .map(|&kind| StrategyEntry {
                    strategy: SynthesisStrategy::SopFactor,
                    kind,
                })
                .collect(),
        }
    }

    /// The entries of the library.
    pub fn entries(&self) -> &[StrategyEntry] {
        &self.entries
    }

    /// Returns `true` if the library holds no strategies.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Synthesises `function` as a standalone network of the given representation
/// using `strategy`. The network has one primary input per variable (in
/// order) and a single primary output.
pub fn synthesize(
    function: &TruthTable,
    kind: NetworkKind,
    strategy: SynthesisStrategy,
) -> Network {
    let mut net = Network::new(kind);
    let leaves = net.add_inputs(function.num_vars());
    let out = match strategy {
        SynthesisStrategy::Decompose => emit_decomposed(&mut net, function, &leaves),
        SynthesisStrategy::SopFactor => {
            let cubes = isop(function);
            emit_factored(&mut net, &cubes, &leaves)
        }
    };
    net.add_output(out);
    net
}

/// Reference to a value inside a [`GateRecipe`]: the constant-false rail, a
/// leaf slot, or the result of an earlier recipe op — plus a complement flag.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RecipeRef {
    slot: RecipeSlot,
    complement: bool,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum RecipeSlot {
    Const0,
    Leaf(u16),
    Op(u16),
}

impl RecipeRef {
    /// The constant-false reference.
    pub const CONST0: RecipeRef = RecipeRef {
        slot: RecipeSlot::Const0,
        complement: false,
    };

    /// The constant-true reference.
    pub const CONST1: RecipeRef = RecipeRef {
        slot: RecipeSlot::Const0,
        complement: true,
    };

    /// A reference to leaf slot `i`.
    pub fn leaf(i: usize) -> RecipeRef {
        RecipeRef {
            slot: RecipeSlot::Leaf(i as u16),
            complement: false,
        }
    }
}

impl std::ops::Not for RecipeRef {
    type Output = RecipeRef;
    fn not(self) -> RecipeRef {
        RecipeRef {
            slot: self.slot,
            complement: !self.complement,
        }
    }
}

/// A detached candidate subnetwork: a straight-line program of primitive gate
/// *calls* over numbered leaf slots.
///
/// A recipe records the exact sequence of [`Network::and2`] /
/// [`Network::xor2`] / [`Network::maj3`] calls some construction would make —
/// not the folded structure those calls produce — so
/// [`commit`](GateRecipe::commit) replaying it against a real network
/// performs the *same* primitive calls with the same (resolved) arguments
/// and therefore triggers the same constant folds and structural-hash hits
/// the direct construction would. That makes recipes safe to build on worker
/// threads detached from any network: the plan is pure, all shared-state
/// effects happen at commit, and committing recipes in a fixed order
/// reproduces the serial construction byte for byte.
///
/// The MCH construction uses [`GateRecipe::styled`] for the one-to-one phase
/// of Algorithm 1: one template per (representation, gate kind), committed
/// per original gate over its mapped fanins.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GateRecipe {
    arity: usize,
    ops: Vec<(GateKind, [RecipeRef; 3])>,
    out: RecipeRef,
}

impl GateRecipe {
    /// The template that re-emits one `gate` of the original network in the
    /// style of representation `kind` using only raw primitives, exactly as
    /// the MCH one-to-one mapping does (the target network is mixed, so
    /// every primitive is allowed).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not a logic gate (`And2`, `Xor2` or `Maj3`).
    pub fn styled(kind: NetworkKind, gate: GateKind) -> GateRecipe {
        let mut b = RecipeBuilder::default();
        let l0 = RecipeRef::leaf(0);
        let l1 = RecipeRef::leaf(1);
        let out = match gate {
            GateKind::And2 => b.s_and(kind, l0, l1),
            GateKind::Xor2 => b.s_xor(kind, l0, l1),
            GateKind::Maj3 => b.s_maj(kind, l0, l1, RecipeRef::leaf(2)),
            _ => panic!("styled recipes exist only for logic gates"),
        };
        GateRecipe {
            arity: gate.arity(),
            ops: b.ops,
            out,
        }
    }

    /// Number of leaf slots the recipe reads.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of recorded primitive calls.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Replays the recorded call sequence into `target`, binding leaf slot
    /// `i` to `leaves[i]`, and returns the recipe's output signal.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len()` differs from [`arity`](GateRecipe::arity).
    pub fn commit(&self, target: &mut Network, leaves: &[Signal]) -> Signal {
        assert_eq!(leaves.len(), self.arity, "one signal per leaf slot");
        let mut emitted: Vec<Signal> = Vec::with_capacity(self.ops.len());
        for &(kind, refs) in &self.ops {
            let sig = match kind {
                GateKind::And2 => {
                    let (a, b) = (
                        resolve(refs[0], leaves, &emitted),
                        resolve(refs[1], leaves, &emitted),
                    );
                    target.and2(a, b)
                }
                GateKind::Xor2 => {
                    let (a, b) = (
                        resolve(refs[0], leaves, &emitted),
                        resolve(refs[1], leaves, &emitted),
                    );
                    target.xor2(a, b)
                }
                GateKind::Maj3 => {
                    let (a, b, c) = (
                        resolve(refs[0], leaves, &emitted),
                        resolve(refs[1], leaves, &emitted),
                        resolve(refs[2], leaves, &emitted),
                    );
                    target.maj3(a, b, c)
                }
                _ => unreachable!("recipes record only logic-gate calls"),
            };
            emitted.push(sig);
        }
        resolve(self.out, leaves, &emitted)
    }

    /// The claim-side twin of [`commit`](GateRecipe::commit): replays the
    /// recorded call sequence against a [`ShardedStrash`] instead of a
    /// network, for worker threads participating in a commit batch.
    ///
    /// The returned signal may be provisional; together with `log` it is
    /// resolved by the coordinator through `Network::link_claims` /
    /// `Network::resolve_claim`. Because the claim builders apply the same
    /// folds as the network builders, linking in serial order reproduces
    /// [`commit`](GateRecipe::commit)'s effect byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len()` differs from [`arity`](GateRecipe::arity).
    pub fn claim(&self, table: &ShardedStrash, leaves: &[Signal], log: &mut ClaimLog) -> Signal {
        assert_eq!(leaves.len(), self.arity, "one signal per leaf slot");
        let mut emitted: Vec<Signal> = Vec::with_capacity(self.ops.len());
        for &(kind, refs) in &self.ops {
            let sig = match kind {
                GateKind::And2 => {
                    let (a, b) = (
                        resolve(refs[0], leaves, &emitted),
                        resolve(refs[1], leaves, &emitted),
                    );
                    table.claim_and2(a, b, log)
                }
                GateKind::Xor2 => {
                    let (a, b) = (
                        resolve(refs[0], leaves, &emitted),
                        resolve(refs[1], leaves, &emitted),
                    );
                    table.claim_xor2(a, b, log)
                }
                GateKind::Maj3 => {
                    let (a, b, c) = (
                        resolve(refs[0], leaves, &emitted),
                        resolve(refs[1], leaves, &emitted),
                        resolve(refs[2], leaves, &emitted),
                    );
                    table.claim_maj3(a, b, c, log)
                }
                _ => unreachable!("recipes record only logic-gate calls"),
            };
            emitted.push(sig);
        }
        resolve(self.out, leaves, &emitted)
    }
}

fn resolve(r: RecipeRef, leaves: &[Signal], emitted: &[Signal]) -> Signal {
    let base = match r.slot {
        RecipeSlot::Const0 => Signal::CONST0,
        RecipeSlot::Leaf(i) => leaves[i as usize],
        RecipeSlot::Op(i) => emitted[i as usize],
    };
    base.xor_complement(r.complement)
}

/// Records primitive calls as recipe ops; mirrors the styled-emission helper
/// functions of the one-to-one mapping one call per op, with no folding —
/// folding happens when the recipe is committed against a real network.
#[derive(Default)]
struct RecipeBuilder {
    ops: Vec<(GateKind, [RecipeRef; 3])>,
}

impl RecipeBuilder {
    fn push(&mut self, kind: GateKind, fanins: [RecipeRef; 3]) -> RecipeRef {
        self.ops.push((kind, fanins));
        RecipeRef {
            slot: RecipeSlot::Op((self.ops.len() - 1) as u16),
            complement: false,
        }
    }

    fn and2(&mut self, a: RecipeRef, b: RecipeRef) -> RecipeRef {
        self.push(GateKind::And2, [a, b, RecipeRef::CONST0])
    }

    fn xor2(&mut self, a: RecipeRef, b: RecipeRef) -> RecipeRef {
        self.push(GateKind::Xor2, [a, b, RecipeRef::CONST0])
    }

    fn maj3(&mut self, a: RecipeRef, b: RecipeRef, c: RecipeRef) -> RecipeRef {
        self.push(GateKind::Maj3, [a, b, c])
    }

    fn s_and(&mut self, kind: NetworkKind, a: RecipeRef, b: RecipeRef) -> RecipeRef {
        match kind {
            NetworkKind::Mig | NetworkKind::Xmg => self.maj3(a, b, RecipeRef::CONST0),
            _ => self.and2(a, b),
        }
    }

    fn s_or(&mut self, kind: NetworkKind, a: RecipeRef, b: RecipeRef) -> RecipeRef {
        match kind {
            NetworkKind::Mig | NetworkKind::Xmg => self.maj3(a, b, RecipeRef::CONST1),
            _ => !self.and2(!a, !b),
        }
    }

    fn s_xor(&mut self, kind: NetworkKind, a: RecipeRef, b: RecipeRef) -> RecipeRef {
        match kind {
            NetworkKind::Xag | NetworkKind::Xmg | NetworkKind::Mixed => self.xor2(a, b),
            _ => {
                let t = self.s_and(kind, a, !b);
                let e = self.s_and(kind, !a, b);
                self.s_or(kind, t, e)
            }
        }
    }

    fn s_maj(&mut self, kind: NetworkKind, a: RecipeRef, b: RecipeRef, c: RecipeRef) -> RecipeRef {
        match kind {
            NetworkKind::Mig | NetworkKind::Xmg | NetworkKind::Mixed => self.maj3(a, b, c),
            _ => {
                let ab = self.s_and(kind, a, b);
                let aob = self.s_or(kind, a, b);
                let cc = self.s_and(kind, c, aob);
                self.s_or(kind, ab, cc)
            }
        }
    }
}

/// Copies a single-output sub-network into `target`, binding sub-network
/// input `i` to `leaves[i]`, and returns the signal of the sub-network's
/// output inside `target`.
///
/// The copy is structural (`and2`/`xor2`/`maj3` are re-emitted verbatim), so
/// `target` must allow every gate kind used by `sub` — in practice `target`
/// is the mixed choice network, which allows everything.
///
/// # Panics
///
/// Panics if `sub` does not have exactly one output or if the number of
/// leaves differs from its input count.
pub fn import_subnetwork(target: &mut Network, sub: &Network, leaves: &[Signal]) -> Signal {
    assert_eq!(sub.output_count(), 1, "candidate sub-networks have one output");
    assert_eq!(
        leaves.len(),
        sub.input_count(),
        "one leaf signal per sub-network input required"
    );
    let mut map: Vec<Signal> = vec![Signal::CONST0; sub.len()];
    for (i, &pi) in sub.inputs().iter().enumerate() {
        map[pi.index()] = leaves[i];
    }
    for id in sub.gate_ids() {
        let node = sub.node(id);
        let f: Vec<Signal> = node
            .fanins()
            .iter()
            .map(|s| map[s.node().index()].xor_complement(s.is_complement()))
            .collect();
        map[id.index()] = match node.kind() {
            GateKind::And2 => target.and2(f[0], f[1]),
            GateKind::Xor2 => target.xor2(f[0], f[1]),
            GateKind::Maj3 => target.maj3(f[0], f[1], f[2]),
            _ => unreachable!("gate_ids yields only gates"),
        };
    }
    let out = sub.output(0);
    map[out.node().index()].xor_complement(out.is_complement())
}

/// The claim-side twin of [`import_subnetwork`]: replays the copy against a
/// [`ShardedStrash`] so worker threads can probe and reserve nodes without
/// touching the target network.
///
/// The returned signal may be provisional; the coordinator resolves it (and
/// materialises any reserved nodes) by linking `log` through
/// `Network::link_claims` in serial order.
///
/// # Panics
///
/// Panics if `sub` does not have exactly one output or if the number of
/// leaves differs from its input count.
pub fn claim_subnetwork(
    table: &ShardedStrash,
    sub: &Network,
    leaves: &[Signal],
    log: &mut ClaimLog,
) -> Signal {
    assert_eq!(sub.output_count(), 1, "candidate sub-networks have one output");
    assert_eq!(
        leaves.len(),
        sub.input_count(),
        "one leaf signal per sub-network input required"
    );
    let mut map: Vec<Signal> = vec![Signal::CONST0; sub.len()];
    for (i, &pi) in sub.inputs().iter().enumerate() {
        map[pi.index()] = leaves[i];
    }
    for id in sub.gate_ids() {
        let node = sub.node(id);
        let f: Vec<Signal> = node
            .fanins()
            .iter()
            .map(|s| map[s.node().index()].xor_complement(s.is_complement()))
            .collect();
        map[id.index()] = match node.kind() {
            GateKind::And2 => table.claim_and2(f[0], f[1], log),
            GateKind::Xor2 => table.claim_xor2(f[0], f[1], log),
            GateKind::Maj3 => table.claim_maj3(f[0], f[1], f[2], log),
            _ => unreachable!("gate_ids yields only gates"),
        };
    }
    let out = sub.output(0);
    map[out.node().index()].xor_complement(out.is_complement())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::output_truth_tables;

    fn sample_function() -> TruthTable {
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        a.and(&b).or(&c.xor(&d))
    }

    #[test]
    fn synthesize_round_trips_for_all_strategies_and_kinds() {
        let f = sample_function();
        for strategy in [SynthesisStrategy::Decompose, SynthesisStrategy::SopFactor] {
            for kind in NetworkKind::homogeneous() {
                let net = synthesize(&f, kind, strategy);
                assert_eq!(net.kind(), kind);
                assert_eq!(output_truth_tables(&net)[0], f, "{strategy:?} {kind:?}");
            }
        }
    }

    #[test]
    fn strategies_produce_structurally_different_candidates() {
        let f = sample_function();
        let dec = synthesize(&f, NetworkKind::Xag, SynthesisStrategy::Decompose);
        let sop = synthesize(&f, NetworkKind::Aig, SynthesisStrategy::SopFactor);
        // The XAG decomposition finds the XOR top, the AIG SOP must expand it.
        let (_, xor_dec, _) = dec.gate_profile();
        let (_, xor_sop, _) = sop.gate_profile();
        assert!(xor_dec >= 1);
        assert_eq!(xor_sop, 0);
    }

    #[test]
    fn import_binds_leaves_and_preserves_function() {
        let f = sample_function();
        let sub = synthesize(&f, NetworkKind::Xmg, SynthesisStrategy::Decompose);

        let mut host = Network::new(NetworkKind::Mixed);
        let xs = host.add_inputs(4);
        // Bind leaves in reverse order with one complemented to exercise the mapping.
        let leaves = vec![!xs[3], xs[2], xs[1], xs[0]];
        let out = import_subnetwork(&mut host, &sub, &leaves);
        host.add_output(out);

        let expected = {
            // f(!x3, x2, x1, x0) over host inputs x0..x3.
            let x0 = TruthTable::var(4, 0);
            let x1 = TruthTable::var(4, 1);
            let x2 = TruthTable::var(4, 2);
            let x3 = TruthTable::var(4, 3);
            // original: a&b | (c^d) with a=!x3, b=x2, c=x1, d=x0
            x3.not().and(&x2).or(&x1.xor(&x0))
        };
        assert_eq!(output_truth_tables(&host)[0], expected);
    }

    /// The original direct styled-emission helper of the one-to-one mapping,
    /// kept verbatim as the reference semantics for
    /// [`GateRecipe::styled`]/[`GateRecipe::commit`].
    fn emit_styled_reference(
        net: &mut Network,
        kind: NetworkKind,
        gate: GateKind,
        fanins: &[Signal],
    ) -> Signal {
        fn s_and(net: &mut Network, kind: NetworkKind, a: Signal, b: Signal) -> Signal {
            match kind {
                NetworkKind::Mig | NetworkKind::Xmg => net.maj3(a, b, Signal::CONST0),
                _ => net.and2(a, b),
            }
        }
        fn s_or(net: &mut Network, kind: NetworkKind, a: Signal, b: Signal) -> Signal {
            match kind {
                NetworkKind::Mig | NetworkKind::Xmg => net.maj3(a, b, Signal::CONST1),
                _ => !net.and2(!a, !b),
            }
        }
        fn s_xor(net: &mut Network, kind: NetworkKind, a: Signal, b: Signal) -> Signal {
            match kind {
                NetworkKind::Xag | NetworkKind::Xmg | NetworkKind::Mixed => net.xor2(a, b),
                _ => {
                    let t = s_and(net, kind, a, !b);
                    let e = s_and(net, kind, !a, b);
                    s_or(net, kind, t, e)
                }
            }
        }
        fn s_maj(net: &mut Network, kind: NetworkKind, a: Signal, b: Signal, c: Signal) -> Signal {
            match kind {
                NetworkKind::Mig | NetworkKind::Xmg | NetworkKind::Mixed => net.maj3(a, b, c),
                _ => {
                    let ab = s_and(net, kind, a, b);
                    let aob = s_or(net, kind, a, b);
                    let cc = s_and(net, kind, c, aob);
                    s_or(net, kind, ab, cc)
                }
            }
        }
        match gate {
            GateKind::And2 => s_and(net, kind, fanins[0], fanins[1]),
            GateKind::Xor2 => s_xor(net, kind, fanins[0], fanins[1]),
            GateKind::Maj3 => s_maj(net, kind, fanins[0], fanins[1], fanins[2]),
            _ => unreachable!("only gates are emitted"),
        }
    }

    #[test]
    fn styled_recipes_replay_the_direct_emission_exactly() {
        // Every (representation, gate) template, committed over ordinary,
        // complemented, duplicated and constant bindings, must evolve the
        // target network and return the output signal exactly as the direct
        // call sequence does — including the folds and strash hits the
        // bindings trigger.
        let kinds = [
            NetworkKind::Aig,
            NetworkKind::Xag,
            NetworkKind::Mig,
            NetworkKind::Xmg,
            NetworkKind::Mixed,
        ];
        for kind in kinds {
            for gate in [GateKind::And2, GateKind::Xor2, GateKind::Maj3] {
                let template = GateRecipe::styled(kind, gate);
                assert_eq!(template.arity(), gate.arity());
                let host = {
                    let mut h = Network::new(NetworkKind::Mixed);
                    h.add_inputs(3);
                    h
                };
                let xs: Vec<Signal> = host.inputs().iter().map(|n| n.signal()).collect();
                let bindings: Vec<Vec<Signal>> = vec![
                    vec![xs[0], xs[1], xs[2]],
                    vec![!xs[0], xs[1], !xs[2]],
                    vec![xs[0], xs[0], xs[1]],
                    vec![xs[0], !xs[0], xs[1]],
                    vec![Signal::CONST0, xs[1], xs[2]],
                    vec![Signal::CONST1, !xs[1], xs[0]],
                ];
                for binding in &bindings {
                    let fanins = &binding[..gate.arity()];
                    let mut direct = host.clone();
                    let mut replayed = host.clone();
                    let want = emit_styled_reference(&mut direct, kind, gate, fanins);
                    let got = template.commit(&mut replayed, fanins);
                    assert_eq!(want, got, "{kind:?} {gate:?} signal diverged");
                    assert_eq!(direct, replayed, "{kind:?} {gate:?} network diverged");
                }
            }
        }
    }

    #[test]
    fn claimed_recipes_link_to_the_committed_emission() {
        // claim + link must reproduce commit byte for byte: same output
        // signal, same nodes, same strash — for every template and binding,
        // including the fold- and dedup-triggering ones.
        let kinds = [
            NetworkKind::Aig,
            NetworkKind::Xag,
            NetworkKind::Mig,
            NetworkKind::Xmg,
            NetworkKind::Mixed,
        ];
        for kind in kinds {
            for gate in [GateKind::And2, GateKind::Xor2, GateKind::Maj3] {
                let template = GateRecipe::styled(kind, gate);
                let host = {
                    let mut h = Network::new(NetworkKind::Mixed);
                    h.add_inputs(3);
                    h
                };
                let xs: Vec<Signal> = host.inputs().iter().map(|n| n.signal()).collect();
                let bindings: Vec<Vec<Signal>> = vec![
                    vec![xs[0], xs[1], xs[2]],
                    vec![!xs[0], xs[1], !xs[2]],
                    vec![xs[0], xs[0], xs[1]],
                    vec![xs[0], !xs[0], xs[1]],
                    vec![Signal::CONST0, xs[1], xs[2]],
                    vec![Signal::CONST1, !xs[1], xs[0]],
                ];
                for binding in &bindings {
                    let fanins = &binding[..gate.arity()];
                    let mut direct = host.clone();
                    let mut linked = host.clone();
                    let want = template.commit(&mut direct, fanins);

                    let table = linked.begin_commit_batch();
                    let mut log = ClaimLog::new();
                    let out = template.claim(&table, fanins, &mut log);
                    linked.link_claims(&log);
                    let got = linked.resolve_claim(out);
                    linked.end_commit_batch();

                    assert_eq!(want, got, "{kind:?} {gate:?} signal diverged");
                    assert_eq!(direct, linked, "{kind:?} {gate:?} network diverged");
                }
            }
        }
    }

    #[test]
    fn claimed_subnetworks_link_to_the_imported_emission() {
        let f = sample_function();
        let sub = synthesize(&f, NetworkKind::Xmg, SynthesisStrategy::Decompose);

        let host = {
            let mut h = Network::new(NetworkKind::Mixed);
            h.add_inputs(4);
            h
        };
        let xs: Vec<Signal> = host.inputs().iter().map(|n| n.signal()).collect();
        let leaves = vec![!xs[3], xs[2], xs[1], xs[0]];

        let mut direct = host.clone();
        let want = import_subnetwork(&mut direct, &sub, &leaves);
        // A second import is a pure strash replay and must not grow the net.
        let want_again = import_subnetwork(&mut direct, &sub, &leaves);
        assert_eq!(want, want_again);

        let mut linked = host.clone();
        let table = linked.begin_commit_batch();
        let mut log = ClaimLog::new();
        let out = claim_subnetwork(&table, &sub, &leaves, &mut log);
        linked.link_claims(&log);
        let got = linked.resolve_claim(out);
        // Second claim: every probe hits the just-linked reservations, so the
        // resolved signal matches and linking its log is a no-op.
        let mut log2 = ClaimLog::new();
        let out2 = claim_subnetwork(&table, &sub, &leaves, &mut log2);
        linked.link_claims(&log2);
        let got2 = linked.resolve_claim(out2);
        linked.end_commit_batch();

        assert_eq!(want, got, "claimed sub-network output diverged");
        assert_eq!(got, got2, "repeated claim resolved differently");
        assert_eq!(direct, linked, "claimed sub-network host diverged");
    }

    #[test]
    fn strategy_library_constructors() {
        let level = StrategyLibrary::level_oriented(&[NetworkKind::Aig, NetworkKind::Xmg]);
        assert_eq!(level.entries().len(), 2);
        assert!(level
            .entries()
            .iter()
            .all(|e| e.strategy == SynthesisStrategy::Decompose));
        let area = StrategyLibrary::area_oriented(&[NetworkKind::Mig]);
        assert_eq!(area.entries().len(), 1);
        assert!(StrategyLibrary::default().is_empty());
    }
}
