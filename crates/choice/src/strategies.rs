//! The synthesis-strategy library used by the multi-strategy structural
//! choice algorithm (Algorithm 2).
//!
//! A strategy is a way of re-synthesising a small Boolean function into a
//! candidate structure; paired with a target representation it produces a
//! structurally distinct but functionally equivalent cone that the choice
//! network can offer to the mapper.

use crate::dsd::emit_decomposed;
use crate::sop::{emit_factored, isop};
use mch_logic::{GateKind, Network, NetworkKind, Signal, TruthTable};

/// How a candidate function is re-synthesised.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SynthesisStrategy {
    /// Top-down disjoint-support / Shannon decomposition. Exposes shallow XOR
    /// and MUX tops — the *level-oriented* strategy of the paper.
    Decompose,
    /// Irredundant SOP extraction followed by algebraic factoring. Minimises
    /// literals — the *area-oriented* strategy of the paper.
    SopFactor,
}

/// A (strategy, target representation) pair.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct StrategyEntry {
    /// The resynthesis method.
    pub strategy: SynthesisStrategy,
    /// The representation style the candidate is emitted in.
    pub kind: NetworkKind,
}

/// The synthesis-strategy library (`lib` in Algorithms 1 and 2).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StrategyLibrary {
    entries: Vec<StrategyEntry>,
}

impl StrategyLibrary {
    /// Creates a library from explicit entries.
    pub fn new(entries: Vec<StrategyEntry>) -> Self {
        StrategyLibrary { entries }
    }

    /// Level-oriented strategies (decomposition) in each requested style.
    pub fn level_oriented(kinds: &[NetworkKind]) -> Self {
        StrategyLibrary {
            entries: kinds
                .iter()
                .map(|&kind| StrategyEntry {
                    strategy: SynthesisStrategy::Decompose,
                    kind,
                })
                .collect(),
        }
    }

    /// Area-oriented strategies (SOP factoring) in each requested style.
    pub fn area_oriented(kinds: &[NetworkKind]) -> Self {
        StrategyLibrary {
            entries: kinds
                .iter()
                .map(|&kind| StrategyEntry {
                    strategy: SynthesisStrategy::SopFactor,
                    kind,
                })
                .collect(),
        }
    }

    /// The entries of the library.
    pub fn entries(&self) -> &[StrategyEntry] {
        &self.entries
    }

    /// Returns `true` if the library holds no strategies.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Synthesises `function` as a standalone network of the given representation
/// using `strategy`. The network has one primary input per variable (in
/// order) and a single primary output.
pub fn synthesize(
    function: &TruthTable,
    kind: NetworkKind,
    strategy: SynthesisStrategy,
) -> Network {
    let mut net = Network::new(kind);
    let leaves = net.add_inputs(function.num_vars());
    let out = match strategy {
        SynthesisStrategy::Decompose => emit_decomposed(&mut net, function, &leaves),
        SynthesisStrategy::SopFactor => {
            let cubes = isop(function);
            emit_factored(&mut net, &cubes, &leaves)
        }
    };
    net.add_output(out);
    net
}

/// Copies a single-output sub-network into `target`, binding sub-network
/// input `i` to `leaves[i]`, and returns the signal of the sub-network's
/// output inside `target`.
///
/// The copy is structural (`and2`/`xor2`/`maj3` are re-emitted verbatim), so
/// `target` must allow every gate kind used by `sub` — in practice `target`
/// is the mixed choice network, which allows everything.
///
/// # Panics
///
/// Panics if `sub` does not have exactly one output or if the number of
/// leaves differs from its input count.
pub fn import_subnetwork(target: &mut Network, sub: &Network, leaves: &[Signal]) -> Signal {
    assert_eq!(sub.output_count(), 1, "candidate sub-networks have one output");
    assert_eq!(
        leaves.len(),
        sub.input_count(),
        "one leaf signal per sub-network input required"
    );
    let mut map: Vec<Signal> = vec![Signal::CONST0; sub.len()];
    for (i, &pi) in sub.inputs().iter().enumerate() {
        map[pi.index()] = leaves[i];
    }
    for id in sub.gate_ids() {
        let node = sub.node(id);
        let f: Vec<Signal> = node
            .fanins()
            .iter()
            .map(|s| map[s.node().index()].xor_complement(s.is_complement()))
            .collect();
        map[id.index()] = match node.kind() {
            GateKind::And2 => target.and2(f[0], f[1]),
            GateKind::Xor2 => target.xor2(f[0], f[1]),
            GateKind::Maj3 => target.maj3(f[0], f[1], f[2]),
            _ => unreachable!("gate_ids yields only gates"),
        };
    }
    let out = sub.output(0);
    map[out.node().index()].xor_complement(out.is_complement())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::output_truth_tables;

    fn sample_function() -> TruthTable {
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        a.and(&b).or(&c.xor(&d))
    }

    #[test]
    fn synthesize_round_trips_for_all_strategies_and_kinds() {
        let f = sample_function();
        for strategy in [SynthesisStrategy::Decompose, SynthesisStrategy::SopFactor] {
            for kind in NetworkKind::homogeneous() {
                let net = synthesize(&f, kind, strategy);
                assert_eq!(net.kind(), kind);
                assert_eq!(output_truth_tables(&net)[0], f, "{strategy:?} {kind:?}");
            }
        }
    }

    #[test]
    fn strategies_produce_structurally_different_candidates() {
        let f = sample_function();
        let dec = synthesize(&f, NetworkKind::Xag, SynthesisStrategy::Decompose);
        let sop = synthesize(&f, NetworkKind::Aig, SynthesisStrategy::SopFactor);
        // The XAG decomposition finds the XOR top, the AIG SOP must expand it.
        let (_, xor_dec, _) = dec.gate_profile();
        let (_, xor_sop, _) = sop.gate_profile();
        assert!(xor_dec >= 1);
        assert_eq!(xor_sop, 0);
    }

    #[test]
    fn import_binds_leaves_and_preserves_function() {
        let f = sample_function();
        let sub = synthesize(&f, NetworkKind::Xmg, SynthesisStrategy::Decompose);

        let mut host = Network::new(NetworkKind::Mixed);
        let xs = host.add_inputs(4);
        // Bind leaves in reverse order with one complemented to exercise the mapping.
        let leaves = vec![!xs[3], xs[2], xs[1], xs[0]];
        let out = import_subnetwork(&mut host, &sub, &leaves);
        host.add_output(out);

        let expected = {
            // f(!x3, x2, x1, x0) over host inputs x0..x3.
            let x0 = TruthTable::var(4, 0);
            let x1 = TruthTable::var(4, 1);
            let x2 = TruthTable::var(4, 2);
            let x3 = TruthTable::var(4, 3);
            // original: a&b | (c^d) with a=!x3, b=x2, c=x1, d=x0
            x3.not().and(&x2).or(&x1.xor(&x0))
        };
        assert_eq!(output_truth_tables(&host)[0], expected);
    }

    #[test]
    fn strategy_library_constructors() {
        let level = StrategyLibrary::level_oriented(&[NetworkKind::Aig, NetworkKind::Xmg]);
        assert_eq!(level.entries().len(), 2);
        assert!(level
            .entries()
            .iter()
            .all(|e| e.strategy == SynthesisStrategy::Decompose));
        let area = StrategyLibrary::area_oriented(&[NetworkKind::Mig]);
        assert_eq!(area.entries().len(), 1);
        assert!(StrategyLibrary::default().is_empty());
    }
}
