//! Flow budgets and the deterministic degradation ladder.
//!
//! A [`FlowBudget`] bounds the three resources a pathological circuit can
//! exhaust: wall-clock time, cut-arena memory and resynthesis planning work.
//! Budgets are enforced at **phase boundaries** — never inside a kernel — by
//! degrading the flow configuration down a fixed ladder (see
//! [`plan_degradation`] and `docs/RELIABILITY.md`). Every rung is a pure
//! configuration transformation, so for the size-based caps the degraded
//! flow is exactly as deterministic as the pristine one: the same budget on
//! the same circuit yields byte-identical netlists at every thread count.
//! Only the wall-clock deadline is inherently nondeterministic; it is
//! checked once, between choice construction and mapping, and recorded in
//! the [`DegradationReport`].

use crate::MchConfig;
use mch_choice::StrategyLibrary;
use std::time::Duration;

/// Resource bounds for one flow invocation. `None` everywhere (the
/// [`unlimited`](FlowBudget::unlimited) default) turns all supervision into
/// cheap no-op comparisons at the phase boundaries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowBudget {
    /// Wall-clock deadline for the whole flow. When choice construction
    /// alone exceeds it, the mapping phase falls back to structural cut
    /// ranking with zero area-recovery rounds (the cheapest valid mapping).
    pub deadline: Option<Duration>,
    /// Cap on predicted cut-arena slots (`nodes × cut_limit`), enforced by
    /// halving the cut limit before enumeration — once against the input
    /// network and once against the (deterministically sized) choice
    /// network.
    pub max_cut_arena_slots: Option<usize>,
    /// Cap on the predicted resynthesis planning work
    /// (`gates × candidate cap × strategy entries`, plus the snapshot-view
    /// nodes), enforced by walking the strategy-dropping rungs of the
    /// ladder.
    pub max_resynthesis_candidates: Option<usize>,
}

impl FlowBudget {
    /// No bounds: every phase runs exactly as without budgets.
    pub fn unlimited() -> Self {
        FlowBudget::default()
    }

    /// Returns the same budget with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the same budget with a cut-arena slot cap.
    pub fn with_max_cut_arena_slots(mut self, slots: usize) -> Self {
        self.max_cut_arena_slots = Some(slots);
        self
    }

    /// Returns the same budget with a resynthesis-candidate cap.
    pub fn with_max_resynthesis_candidates(mut self, candidates: usize) -> Self {
        self.max_resynthesis_candidates = Some(candidates);
        self
    }

    /// Whether any bound is set (used by the flows to skip planning work
    /// entirely on the unlimited fast path).
    pub fn is_unlimited(&self) -> bool {
        *self == FlowBudget::default()
    }
}

/// Which strategy library a [`DegradationStep::StrategyDropped`] rung
/// shrank.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StrategyClass {
    /// The area-oriented library (dropped first — area choices are the
    /// volume knob).
    Area,
    /// The level-oriented library (dropped second — critical-path choices
    /// are the quality knob).
    Level,
}

/// One rung of the degradation ladder, in the order it was taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DegradationStep {
    /// The choice-construction or mapper cut limit was halved to fit the
    /// arena slot cap.
    CutLimitShrunk {
        /// Cut limit before the halving.
        from: usize,
        /// Cut limit after the halving (floored at 2).
        to: usize,
    },
    /// The per-node candidate cap was halved to fit the resynthesis cap.
    CandidateCapReduced {
        /// Cap before the halving.
        from: usize,
        /// Cap after the halving (floored at 1).
        to: usize,
    },
    /// The last entry of one strategy library was dropped.
    StrategyDropped {
        /// Which library shrank.
        library: StrategyClass,
        /// Entries remaining in that library afterwards.
        remaining: usize,
    },
    /// Both strategy libraries ran dry: NPN resynthesis is off entirely.
    ResynthesisDisabled,
    /// The graph-mapped snapshot views were dropped from the choice mix.
    SnapshotsDropped,
    /// Cross-mapper fusion was dropped: the ASIC guide pass doubles the cut
    /// work per job, so a fused flow whose predicted guide-pass arena
    /// (`nodes × cut_limit`, on top of the LUT arena) exceeds the slot cap —
    /// or whose deadline already passed — falls back to the plain LUT cover.
    FusionDropped,
    /// The wall-clock deadline passed after choice construction: the mapper
    /// fell back to structural cut ranking with zero area-recovery rounds.
    DeadlineFallback,
}

/// What the budget supervisor did to keep a flow inside its
/// [`FlowBudget`] — empty when nothing was breached. Carried on
/// [`AsicFlowResult`](crate::AsicFlowResult) and
/// [`LutFlowResult`](crate::LutFlowResult); degraded outputs are still full
/// netlists and still equivalence-checked against the input.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// The rungs taken, in order.
    pub steps: Vec<DegradationStep>,
    /// Whether the wall-clock deadline was breached.
    pub deadline_breached: bool,
}

impl DegradationReport {
    /// Whether any degradation happened.
    pub fn degraded(&self) -> bool {
        !self.steps.is_empty() || self.deadline_breached
    }
}

/// Halves `cut_limit` (floor 2) until `nodes × cut_limit` fits `cap`,
/// recording each rung. Shared between the pre-enumeration check on the
/// input network and the pre-mapping check on the choice network — both
/// sizes are deterministic, so so are the rungs.
pub(crate) fn shrink_cut_limit(
    nodes: usize,
    mut cut_limit: usize,
    cap: Option<usize>,
    report: &mut DegradationReport,
) -> usize {
    let Some(cap) = cap else {
        return cut_limit;
    };
    while cut_limit > 2 && nodes.saturating_mul(cut_limit) > cap {
        let to = (cut_limit / 2).max(2);
        report.steps.push(DegradationStep::CutLimitShrunk {
            from: cut_limit,
            to,
        });
        cut_limit = to;
    }
    cut_limit
}

/// Predicted resynthesis planning work for a configuration: every gate may
/// plan up to the candidate cap against every strategy entry, and each
/// snapshot view re-walks the whole network once.
fn candidate_estimate(gate_count: usize, network_len: usize, config: &MchConfig) -> usize {
    let entries = config.mch.level_strategies.entries().len()
        + config.mch.area_strategies.entries().len();
    let resynthesis = gate_count
        .saturating_mul(config.mch.max_candidates_per_node)
        .saturating_mul(entries);
    let snapshots = if config.mix_optimized_snapshots {
        network_len.saturating_mul(config.mch.secondary.len() + 1)
    } else {
        0
    };
    resynthesis.saturating_add(snapshots)
}

/// Applies the size-based rungs of the degradation ladder to `config`,
/// returning the (possibly) degraded configuration and the report of every
/// rung taken. Pure: depends only on the network's node/gate counts, the
/// configuration and the budget — never on timing — so it is deterministic
/// at every thread count.
///
/// Ladder order (fixed; each rung strictly shrinks the estimate, so the walk
/// terminates):
///
/// 1. halve the choice `cut_limit` while the arena estimate exceeds the slot
///    cap (floor 2);
/// 2. while the candidate estimate exceeds the resynthesis cap:
///    halve `max_candidates_per_node` (floor 1), then drop area-strategy
///    entries from the back, then level-strategy entries (recording
///    [`DegradationStep::ResynthesisDisabled`] when both run dry), then the
///    snapshot views.
pub(crate) fn plan_degradation(
    network_len: usize,
    gate_count: usize,
    config: &MchConfig,
    budget: &FlowBudget,
) -> (MchConfig, DegradationReport) {
    let mut config = config.clone();
    let mut report = DegradationReport::default();

    config.mch.cut_limit = shrink_cut_limit(
        network_len,
        config.mch.cut_limit,
        budget.max_cut_arena_slots,
        &mut report,
    );

    if let Some(cap) = budget.max_resynthesis_candidates {
        while candidate_estimate(gate_count, network_len, &config) > cap {
            if config.mch.max_candidates_per_node > 1 {
                let from = config.mch.max_candidates_per_node;
                let to = (from / 2).max(1);
                config.mch.max_candidates_per_node = to;
                report
                    .steps
                    .push(DegradationStep::CandidateCapReduced { from, to });
            } else if !config.mch.area_strategies.is_empty() {
                let mut entries = config.mch.area_strategies.entries().to_vec();
                entries.pop();
                report.steps.push(DegradationStep::StrategyDropped {
                    library: StrategyClass::Area,
                    remaining: entries.len(),
                });
                config.mch.area_strategies = StrategyLibrary::new(entries);
            } else if !config.mch.level_strategies.is_empty() {
                let mut entries = config.mch.level_strategies.entries().to_vec();
                entries.pop();
                report.steps.push(DegradationStep::StrategyDropped {
                    library: StrategyClass::Level,
                    remaining: entries.len(),
                });
                config.mch.level_strategies = StrategyLibrary::new(entries);
                if entries_empty(&config) {
                    report.steps.push(DegradationStep::ResynthesisDisabled);
                }
            } else if config.mix_optimized_snapshots {
                config.mix_optimized_snapshots = false;
                report.steps.push(DegradationStep::SnapshotsDropped);
            } else {
                // Nothing left to shed; the residual estimate is the
                // one-to-one choices, which are linear and always allowed.
                break;
            }
        }
    }
    (config, report)
}

fn entries_empty(config: &MchConfig) -> bool {
    config.mch.level_strategies.is_empty() && config.mch.area_strategies.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_changes_nothing() {
        let config = MchConfig::balanced();
        let (degraded, report) = plan_degradation(1000, 900, &config, &FlowBudget::unlimited());
        assert!(!report.degraded());
        assert_eq!(degraded.mch.cut_limit, config.mch.cut_limit);
        assert_eq!(
            degraded.mch.max_candidates_per_node,
            config.mch.max_candidates_per_node
        );
    }

    #[test]
    fn arena_cap_halves_the_cut_limit_to_its_floor() {
        let config = MchConfig::balanced();
        let budget = FlowBudget::unlimited().with_max_cut_arena_slots(1);
        let (degraded, report) = plan_degradation(1000, 900, &config, &budget);
        assert_eq!(degraded.mch.cut_limit, 2);
        assert!(report
            .steps
            .iter()
            .all(|s| matches!(s, DegradationStep::CutLimitShrunk { .. })));
        assert!(report.degraded());
    }

    #[test]
    fn candidate_cap_walks_the_full_ladder() {
        let config = MchConfig::area_oriented();
        let budget = FlowBudget::unlimited().with_max_resynthesis_candidates(0);
        let (degraded, report) = plan_degradation(1000, 900, &config, &budget);
        assert_eq!(degraded.mch.max_candidates_per_node, 1);
        assert!(degraded.mch.level_strategies.is_empty());
        assert!(degraded.mch.area_strategies.is_empty());
        assert!(!degraded.mix_optimized_snapshots);
        assert!(report.steps.contains(&DegradationStep::ResynthesisDisabled));
        assert!(report.steps.contains(&DegradationStep::SnapshotsDropped));
        // The ladder order is fixed: candidate halvings precede strategy
        // drops, area drops precede level drops.
        let first_strategy = report
            .steps
            .iter()
            .position(|s| matches!(s, DegradationStep::StrategyDropped { .. }));
        let last_cap = report
            .steps
            .iter()
            .rposition(|s| matches!(s, DegradationStep::CandidateCapReduced { .. }));
        if let (Some(s), Some(c)) = (first_strategy, last_cap) {
            assert!(c < s, "cap reductions must precede strategy drops");
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let config = MchConfig::lut_area();
        let budget = FlowBudget::unlimited()
            .with_max_cut_arena_slots(500)
            .with_max_resynthesis_candidates(2000);
        let a = plan_degradation(4321, 4000, &config, &budget);
        let b = plan_degradation(4321, 4000, &config, &budget);
        assert_eq!(a.1, b.1);
        assert_eq!(a.0.mch.cut_limit, b.0.mch.cut_limit);
    }
}
