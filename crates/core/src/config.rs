//! Flow configurations matching the paper's experiment columns.

use mch_choice::MchParams;
use mch_cut::CutCost;
use mch_logic::NetworkKind;
use mch_mapper::{FusionMode, MappingObjective};

/// Configuration of an MCH-based mapping flow.
///
/// The three constructors correspond to the three MCH columns of Table I:
/// balanced (choices from the input AIG only), delay-oriented (AIG + XAG
/// choices, widened critical region) and area-oriented (AIG + XMG choices).
#[derive(Clone, Debug)]
pub struct MchConfig {
    /// Human-readable flow name used in reports.
    pub name: String,
    /// The mapping objective handed to the mapper.
    pub objective: MappingObjective,
    /// How enumerated cuts are ranked before the per-node cut limit truncates
    /// them: depth-first, area-first, hybrid, or the static structural order
    /// (see [`CutCost`]). The presets pick the ranking that matches their
    /// objective; override it to study the ranking in isolation.
    pub cut_ranking: CutCost,
    /// Parameters of the MCH construction (Algorithm 1).
    ///
    /// Flows ignore `mch.threads` and substitute [`threads`](MchConfig::threads)
    /// before building choices; it only matters when this field is passed to
    /// [`mch_choice::build_mch`] directly.
    pub mch: MchParams,
    /// Rounds of the `compress2rs`-like pre-optimization applied before
    /// building choices (the paper prepares Table-I inputs the same way).
    pub pre_optimization_rounds: usize,
    /// Whether the flow additionally mixes whole graph-mapped views of the
    /// design (one per secondary representation) into the choice network, in
    /// addition to the per-node candidates of Algorithm 2.
    pub mix_optimized_snapshots: bool,
    /// Override for the mapper's area-recovery round count (`None` keeps the
    /// mapper default: 2 for ASIC, 3 for LUT). Extra rounds are cheap now
    /// that the covering engine memoises per-node selections — see
    /// `docs/PERFORMANCE.md`.
    pub area_rounds: Option<usize>,
    /// Run the covering engine's exact-area re-selection pass after the
    /// area-flow rounds. Off in every preset: it changes covers, and the
    /// preset quality numbers are pinned.
    pub exact_area: bool,
    /// Worker threads used throughout the flow: choice construction
    /// (cut enumeration plus recipe planning, see [`MchParams::threads`]),
    /// snapshot graph-mapping, and the mapper's level-parallel cut
    /// enumeration and choice transfer (see
    /// [`mch_cut::enumerate_cuts_threaded`]). `1` runs fully serial; every
    /// value produces identical mapping results. The presets default to
    /// [`mch_cut::default_threads`] (the host's core count, overridable
    /// through the `MCH_THREADS` environment variable). This field is
    /// authoritative: flows copy it over [`MchParams::threads`] before
    /// building choices, so setting it (directly or via
    /// [`with_threads`](MchConfig::with_threads), which also syncs
    /// `mch.threads` for direct `build_mch` use) controls every phase.
    pub threads: usize,
    /// Cross-mapper fusion mode for LUT flows (see [`mch_mapper::fusion`]):
    /// an ASIC guide cover's selected cones are injected into / bias the LUT
    /// cover. Off in every preset except [`lut_fusion`](MchConfig::lut_fusion)
    /// — fusion changes covers, and the preset quality numbers are pinned.
    /// Only honoured by the fused LUT flow entry points
    /// (`try_lut_flow_mch_fused`), which carry the cell library the guide
    /// pass needs; ASIC flows and the plain LUT flows ignore it.
    pub fusion: FusionMode,
}

impl MchConfig {
    /// The balanced flow of Table I ("MCH balanced").
    pub fn balanced() -> Self {
        MchConfig {
            name: "MCH balanced".into(),
            objective: MappingObjective::Balanced,
            cut_ranking: MappingObjective::Balanced.default_ranking(),
            mch: MchParams::balanced(),
            pre_optimization_rounds: 2,
            mix_optimized_snapshots: true,
            area_rounds: None,
            exact_area: false,
            threads: mch_cut::default_threads(),
            fusion: FusionMode::Off,
        }
    }

    /// The delay-oriented flow of Table I ("MCH Delay-oriented").
    pub fn delay_oriented() -> Self {
        MchConfig {
            name: "MCH Delay-oriented".into(),
            objective: MappingObjective::Delay,
            cut_ranking: MappingObjective::Delay.default_ranking(),
            mch: MchParams::delay_oriented(),
            pre_optimization_rounds: 2,
            mix_optimized_snapshots: true,
            area_rounds: None,
            exact_area: false,
            threads: mch_cut::default_threads(),
            fusion: FusionMode::Off,
        }
    }

    /// The area-oriented flow of Table I ("MCH Area-oriented").
    pub fn area_oriented() -> Self {
        MchConfig {
            name: "MCH Area-oriented".into(),
            objective: MappingObjective::Area,
            cut_ranking: MappingObjective::Area.default_ranking(),
            mch: MchParams::area_oriented(),
            pre_optimization_rounds: 2,
            mix_optimized_snapshots: true,
            area_rounds: None,
            exact_area: false,
            threads: mch_cut::default_threads(),
            fusion: FusionMode::Off,
        }
    }

    /// Returns the same configuration with an explicit worker-thread count
    /// for choice construction, snapshot graph-mapping and the mapper's
    /// level-parallel cut enumeration and choice transfer.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.mch.threads = self.threads;
        self
    }

    /// Returns the same configuration with an explicit area-recovery round
    /// count (extra rounds are cheap — the covering engine memoises per-node
    /// selections across rounds).
    pub fn with_area_rounds(mut self, rounds: usize) -> Self {
        self.area_rounds = Some(rounds);
        self
    }

    /// Returns the same configuration with the covering engine's exact-area
    /// final pass toggled.
    pub fn with_exact_area(mut self, exact: bool) -> Self {
        self.exact_area = exact;
        self
    }

    /// The FPGA flow of Table II: area-focused 6-LUT mapping over AIG + XMG
    /// mixed choices, with no pre- or post-mapping optimization.
    pub fn lut_area() -> Self {
        MchConfig {
            name: "MCH 6-LUT area".into(),
            objective: MappingObjective::Area,
            cut_ranking: MappingObjective::Area.default_ranking(),
            mch: MchParams::mixed(&[NetworkKind::Xmg]),
            pre_optimization_rounds: 0,
            mix_optimized_snapshots: true,
            area_rounds: None,
            exact_area: false,
            threads: mch_cut::default_threads(),
            fusion: FusionMode::Off,
        }
    }

    /// The cross-mapper fusion flow: [`lut_area`](MchConfig::lut_area) with
    /// the full ASIC-guided fusion pipeline enabled (cone injection + ranking
    /// bias — see [`mch_mapper::fusion`]). Use with the fused LUT entry
    /// points, which take the cell library driving the guide pass.
    pub fn lut_fusion() -> Self {
        MchConfig {
            name: "MCH 6-LUT fusion".into(),
            fusion: FusionMode::Full,
            ..MchConfig::lut_area()
        }
    }

    /// Returns the same configuration with an explicit cross-mapper fusion
    /// mode (see [`mch_mapper::fusion`]; only honoured by the fused LUT flow
    /// entry points).
    pub fn with_fusion(mut self, fusion: FusionMode) -> Self {
        self.fusion = fusion;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_use_expected_objectives() {
        assert_eq!(MchConfig::balanced().objective, MappingObjective::Balanced);
        assert_eq!(MchConfig::delay_oriented().objective, MappingObjective::Delay);
        assert_eq!(MchConfig::area_oriented().objective, MappingObjective::Area);
        assert_eq!(MchConfig::lut_area().objective, MappingObjective::Area);
    }

    #[test]
    fn delay_preset_mixes_xag_and_area_preset_mixes_xmg() {
        assert!(MchConfig::delay_oriented()
            .mch
            .secondary
            .contains(&NetworkKind::Xag));
        assert!(MchConfig::area_oriented()
            .mch
            .secondary
            .contains(&NetworkKind::Xmg));
        assert!(MchConfig::balanced().mch.secondary.is_empty());
    }
}
