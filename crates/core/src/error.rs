//! Structured flow errors and the preflight validation pass.
//!
//! Every fallible flow entry point (`try_asic_flow_*`, `try_lut_flow_*`,
//! [`try_build_mch`](crate::try_build_mch)) funnels its failures into
//! [`FlowError`]: malformed inputs are rejected up front by the `validate_*`
//! functions, and any panic escaping a flow phase — including panics on pool
//! workers — is caught at the flow boundary and surfaced as
//! [`FlowError::WorkerPanic`] with the original payload message. See
//! `docs/RELIABILITY.md` for the full taxonomy.

use mch_logic::{Network, TruthTable};
use mch_techlib::{Library, LutLibrary};
use std::fmt;

/// Why a mapping flow could not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// The input network failed preflight validation (empty outputs,
    /// dangling or forward fanin references).
    InvalidNetwork {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// The technology library failed preflight validation (empty, missing
    /// inverter, non-finite costs, or a non-monotone per-input-count cost
    /// model).
    InvalidLibrary {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A flow phase panicked — on the calling thread or on a pool worker —
    /// and the panic was contained at the flow boundary.
    WorkerPanic {
        /// The original panic payload, rendered as text.
        message: String,
    },
    /// A service job was malformed before any flow ran (an empty sweep, a
    /// nested sweep).
    InvalidJob {
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidNetwork { reason } => write!(f, "invalid network: {reason}"),
            FlowError::InvalidLibrary { reason } => write!(f, "invalid library: {reason}"),
            FlowError::WorkerPanic { message } => {
                write!(f, "flow phase panicked: {message}")
            }
            FlowError::InvalidJob { reason } => write!(f, "invalid job: {reason}"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Renders a caught panic payload as text: `&str` and `String` payloads (the
/// overwhelmingly common cases, including every injected fault) keep their
/// message, anything else gets a placeholder.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Preflight validation of an input network: rejects the malformed shapes a
/// hostile or buggy AIGER/BLIF/Verilog source could produce, so flows fail
/// with a structured error instead of panicking mid-phase.
///
/// Checks: at least one output; every gate fanin and every output points at
/// an existing node; every gate fanin points *backwards* (strictly smaller
/// node id), which in this append-only representation is exactly
/// acyclicity.
pub fn validate_network(network: &Network) -> Result<(), FlowError> {
    let invalid = |reason: String| Err(FlowError::InvalidNetwork { reason });
    if network.output_count() == 0 {
        return invalid("network has no outputs".to_string());
    }
    let len = network.len();
    for id in network.gate_ids() {
        for (slot, fanin) in network.node(id).fanins().iter().enumerate() {
            let target = fanin.node().index();
            if target >= len {
                return invalid(format!(
                    "gate {} fanin {slot} points at node {target}, but the network has only {len} nodes",
                    id.index()
                ));
            }
            if target >= id.index() {
                return invalid(format!(
                    "gate {} fanin {slot} points forward at node {target} (cycle or dangling reference)",
                    id.index()
                ));
            }
        }
    }
    for (i, output) in network.outputs().iter().enumerate() {
        let target = output.node().index();
        if target >= len {
            return invalid(format!(
                "output {i} points at node {target}, but the network has only {len} nodes"
            ));
        }
    }
    Ok(())
}

/// Preflight validation of a standard-cell library.
///
/// Checks: non-empty; contains an inverter (the mappers' phase-repair
/// fallback — [`Library::inverter`] panics without one); every cell cost is
/// finite and non-negative; and the per-input-count cost model is monotone —
/// the cheapest cell at a larger input count is no faster and no smaller
/// than the cheapest cell at a smaller count, which the cut rankings assume.
pub fn validate_library(library: &Library) -> Result<(), FlowError> {
    let invalid = |reason: String| Err(FlowError::InvalidLibrary { reason });
    if library.is_empty() {
        return invalid("library has no cells".to_string());
    }
    let not1 = TruthTable::var(1, 0).not();
    if !library
        .cells()
        .iter()
        .any(|c| c.num_inputs() == 1 && c.function() == &not1)
    {
        return invalid("library has no inverter cell".to_string());
    }
    let mut min_delay = vec![f64::INFINITY; library.max_inputs() + 1];
    let mut min_area = vec![f64::INFINITY; library.max_inputs() + 1];
    for cell in library.cells() {
        if !cell.area().is_finite() || cell.area() < 0.0 {
            return invalid(format!("cell {} has invalid area {}", cell.name(), cell.area()));
        }
        if !cell.delay().is_finite() || cell.delay() < 0.0 {
            return invalid(format!(
                "cell {} has invalid delay {}",
                cell.name(),
                cell.delay()
            ));
        }
        let k = cell.num_inputs();
        min_delay[k] = min_delay[k].min(cell.delay());
        min_area[k] = min_area[k].min(cell.area());
    }
    let mut last: Option<(usize, f64, f64)> = None;
    for k in 0..min_delay.len() {
        if !min_delay[k].is_finite() {
            continue;
        }
        if let Some((prev_k, prev_delay, prev_area)) = last {
            if min_delay[k] < prev_delay || min_area[k] < prev_area {
                return invalid(format!(
                    "cost model is not monotone: best {k}-input cell (delay {}, area {}) undercuts best {prev_k}-input cell (delay {prev_delay}, area {prev_area})",
                    min_delay[k], min_area[k]
                ));
            }
        }
        last = Some((k, min_delay[k], min_area[k]));
    }
    Ok(())
}

/// Preflight validation of a LUT library: the LUT size must fit the cut
/// enumerator and the unit costs must be finite and positive.
pub fn validate_lut_library(lut: &LutLibrary) -> Result<(), FlowError> {
    let invalid = |reason: String| Err(FlowError::InvalidLibrary { reason });
    if !(2..=mch_cut::MAX_CUT_SIZE).contains(&lut.k()) {
        return invalid(format!(
            "LUT size {} outside the supported 2..={} range",
            lut.k(),
            mch_cut::MAX_CUT_SIZE
        ));
    }
    if !lut.area().is_finite() || lut.area() <= 0.0 {
        return invalid(format!("LUT area {} must be finite and positive", lut.area()));
    }
    if !lut.delay().is_finite() || lut.delay() <= 0.0 {
        return invalid(format!(
            "LUT delay {} must be finite and positive",
            lut.delay()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::NetworkKind;
    use mch_techlib::{asap7_lite, Cell};

    #[test]
    fn valid_inputs_pass() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let f = n.and2(a, b);
        n.add_output(f);
        assert_eq!(validate_network(&n), Ok(()));
        assert_eq!(validate_library(&asap7_lite()), Ok(()));
        assert_eq!(validate_lut_library(&LutLibrary::k6()), Ok(()));
        assert_eq!(validate_lut_library(&LutLibrary::k4()), Ok(()));
    }

    #[test]
    fn outputless_network_is_rejected() {
        let mut n = Network::new(NetworkKind::Aig);
        let _ = n.add_input();
        let err = validate_network(&n).expect_err("no outputs");
        assert!(matches!(err, FlowError::InvalidNetwork { .. }));
    }

    #[test]
    fn empty_and_inverterless_libraries_are_rejected() {
        let empty = Library::new("empty");
        assert!(matches!(
            validate_library(&empty),
            Err(FlowError::InvalidLibrary { .. })
        ));
        let mut no_inv = Library::new("no-inverter");
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        no_inv.add_cell(Cell::new("AND2", a.and(&b), 1.0, 10.0));
        assert!(matches!(
            validate_library(&no_inv),
            Err(FlowError::InvalidLibrary { .. })
        ));
    }

    #[test]
    fn non_monotone_library_is_rejected() {
        // A 3-input cell both faster and smaller than the best 1-input cell:
        // the per-input-count cost model is inverted.
        let mut lib = Library::new("inverted-costs");
        lib.add_cell(Cell::new("INV", TruthTable::var(1, 0).not(), 5.0, 50.0));
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        lib.add_cell(Cell::new("AND3", a.and(&b).and(&c), 1.0, 10.0));
        let err = validate_library(&lib).expect_err("non-monotone");
        assert!(matches!(err, FlowError::InvalidLibrary { .. }));
    }

    #[test]
    fn errors_render_their_context() {
        let e = FlowError::WorkerPanic {
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "flow phase panicked: boom");
    }
}
