//! End-to-end mapping flows: the baselines of Table I, the DCH comparison and
//! the MCH-based ASIC/FPGA flows.

use crate::budget::{plan_degradation, shrink_cut_limit, DegradationReport, DegradationStep};
use crate::error::panic_message;
use crate::prepared::{flow_fingerprint, ChoiceKey, PreparedFlow, PreparedFlowCache};
use crate::{validate_library, validate_lut_library, validate_network, FlowBudget, FlowError};
use crate::MchConfig;
use mch_choice::{
    add_snapshot_choices, build_mch, build_mch_with_stats_shared, dch_from_snapshots,
    ChoiceNetwork, MchParams, SharedNpnCache,
};
use mch_cut::{CutCost, WorkerPool};
use mch_logic::{Network, NetworkKind, cec};
use mch_mapper::{
    map_asic, map_lut, AsicMapParams, CellNetlist, FusionMode, LutMapParams, LutNetlist,
    MappingObjective,
};
use mch_opt::{compress2rs_like, compress_round, graph_map};
use mch_techlib::{Library, LutLibrary};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Runs a flow phase with panic containment: any unwind — from the calling
/// thread or rethrown from a pool worker — becomes
/// [`FlowError::WorkerPanic`] carrying the original payload message. The
/// shared pool itself recovers independently (dead workers are respawned
/// lazily, poisoned locks are taken over), so a contained flow leaves the
/// process ready for the next one.
pub(crate) fn contain<T>(f: impl FnOnce() -> T) -> Result<T, FlowError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| FlowError::WorkerPanic {
        message: panic_message(payload.as_ref()),
    })
}

/// Unwraps a fallible flow for the panicking convenience API.
fn unwrap_flow<T>(result: Result<T, FlowError>) -> T {
    match result {
        Ok(value) => value,
        Err(e) => panic!("{e}"),
    }
}

/// The service-owned shared state an MCH flow may read: the output-invisible
/// NPN resynthesis cache and the warm-start [`PreparedFlowCache`]. Solo flows
/// (the public `try_*_with_budget` entry points) run with
/// [`FlowShared::default()`] — no sharing, byte-identical results either way.
#[derive(Clone, Copy, Default)]
pub(crate) struct FlowShared<'a> {
    /// Service-wide NPN resynthesis cache (see [`build_mch_with_stats_shared`]).
    pub(crate) npn: Option<&'a Arc<SharedNpnCache>>,
    /// Service-wide warm-start cache of prepared flows.
    pub(crate) prepared: Option<&'a PreparedFlowCache>,
}

/// Obtains the [`PreparedFlow`] for `(network, post-degradation config)` —
/// from the warm-start cache when one is attached and holds a verified match,
/// built cold otherwise (and offered to the cache for future jobs). Cache
/// faults (injected via the `cache::prepared_hit` / `cache::prepared_insert`
/// failpoints) are contained inside the cache wrappers: the flow silently
/// degrades to the cold path.
fn obtain_prepared(
    network: &Network,
    config: &MchConfig,
    shared: FlowShared<'_>,
) -> Arc<PreparedFlow> {
    let key = ChoiceKey::from_config(config);
    let fingerprint = flow_fingerprint(network, &key);
    if let Some(cache) = shared.prepared {
        if let Some(flow) = cache.lookup_contained(fingerprint, network, &key) {
            return flow;
        }
        let flow = Arc::new(PreparedFlow::build(network, config, key, fingerprint, shared.npn));
        cache.insert_contained(Arc::clone(&flow));
        flow
    } else {
        Arc::new(PreparedFlow::build(network, config, key, fingerprint, shared.npn))
    }
}

/// Builds the mixed choice network for an MCH flow: the per-node candidates of
/// Algorithm 2, optionally augmented with whole graph-mapped views of the
/// design (one per secondary representation).
///
/// The snapshot views are independent reads of the input network, so they are
/// computed concurrently on the process-wide [`WorkerPool`] (one inline on
/// the calling thread, the rest as pool jobs) and committed in a fixed order
/// — the result is identical for every `config.threads` value. Each
/// graph-mapping job runs its internal enumeration serially (the pool's
/// recursion guard), so the pool is never deadlocked by nested phases.
pub(crate) fn build_flow_choices(
    network: &Network,
    config: &MchConfig,
    shared_npn: Option<&Arc<SharedNpnCache>>,
) -> ChoiceNetwork {
    // `config.threads` is authoritative for the whole flow.
    let mut mch_params = config.mch.clone();
    mch_params.threads = config.threads;
    let (mut choices, _) = build_mch_with_stats_shared(network, &mch_params, shared_npn);
    if config.mix_optimized_snapshots {
        // A restructured view in the input's own representation (this is still
        // "based solely on the input AIG" for the balanced flow), plus one
        // graph-mapped view per secondary representation.
        let kinds: Vec<NetworkKind> = std::iter::once(network.kind())
            .chain(config.mch.secondary.iter().copied())
            .collect();
        let mut views: Vec<Option<Network>> = kinds.iter().map(|_| None).collect();
        if config.threads > 1 && kinds.len() > 1 && !WorkerPool::is_worker() {
            let (first, rest) = views.split_at_mut(1);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = rest
                .iter_mut()
                .zip(&kinds[1..])
                .map(|(slot, &kind)| {
                    Box::new(move || {
                        *slot = Some(graph_map(network, kind, config.objective));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            WorkerPool::global().run_with(jobs, || {
                first[0] = Some(graph_map(network, kinds[0], config.objective));
            });
        } else {
            for (slot, &kind) in views.iter_mut().zip(&kinds) {
                *slot = Some(graph_map(network, kind, config.objective));
            }
        }
        for view in views.into_iter().flatten() {
            add_snapshot_choices(&mut choices, &view);
        }
    }
    choices
}

/// Result of an ASIC mapping flow.
#[derive(Clone, Debug)]
pub struct AsicFlowResult {
    /// Name of the flow that produced this result.
    pub flow: String,
    /// The mapped standard-cell netlist.
    pub netlist: CellNetlist,
    /// Total cell area (µm²).
    pub area: f64,
    /// Critical-path delay (ps).
    pub delay: f64,
    /// Flow runtime in seconds (choice construction + mapping).
    pub seconds: f64,
    /// Whether the mapped netlist was verified equivalent to the input.
    pub verified: bool,
    /// What the budget supervisor shed to stay inside the [`FlowBudget`];
    /// empty (not degraded) for unbudgeted and unbreached flows.
    pub degradation: DegradationReport,
}

/// Result of an FPGA (K-LUT) mapping flow.
#[derive(Clone, Debug)]
pub struct LutFlowResult {
    /// Name of the flow that produced this result.
    pub flow: String,
    /// The mapped LUT netlist.
    pub netlist: LutNetlist,
    /// Number of LUTs.
    pub luts: usize,
    /// Number of LUT levels.
    pub levels: u32,
    /// Flow runtime in seconds.
    pub seconds: f64,
    /// Whether the mapped netlist was verified equivalent to the input.
    pub verified: bool,
    /// What the budget supervisor shed to stay inside the [`FlowBudget`];
    /// empty (not degraded) for unbudgeted and unbreached flows.
    pub degradation: DegradationReport,
}

fn finish_asic(
    flow: impl Into<String>,
    input: &Network,
    netlist: CellNetlist,
    library: &Library,
    start: Instant,
    degradation: DegradationReport,
) -> AsicFlowResult {
    let seconds = start.elapsed().as_secs_f64();
    let verified = cec(input, &netlist.to_network(library)).holds();
    AsicFlowResult {
        flow: flow.into(),
        area: netlist.area(library),
        delay: netlist.delay(library),
        netlist,
        seconds,
        verified,
        degradation,
    }
}

fn finish_lut(
    flow: impl Into<String>,
    input: &Network,
    netlist: LutNetlist,
    start: Instant,
    degradation: DegradationReport,
) -> LutFlowResult {
    let seconds = start.elapsed().as_secs_f64();
    let verified = cec(input, &netlist.to_network()).holds();
    LutFlowResult {
        flow: flow.into(),
        luts: netlist.lut_count(),
        levels: netlist.level_count(),
        netlist,
        seconds,
        verified,
        degradation,
    }
}

/// Baseline ASIC flow: map the input network directly (no structural choices),
/// the stand-in for ABC's `&nf` (balanced/delay) and `map -a` (area) columns.
///
/// Panics on invalid inputs; use [`try_asic_flow_baseline`] to get a
/// structured [`FlowError`] instead.
pub fn asic_flow_baseline(
    network: &Network,
    library: &Library,
    objective: MappingObjective,
) -> AsicFlowResult {
    unwrap_flow(try_asic_flow_baseline(network, library, objective))
}

/// Fallible [`asic_flow_baseline`]: validates the inputs up front and
/// contains any phase panic as [`FlowError::WorkerPanic`].
pub fn try_asic_flow_baseline(
    network: &Network,
    library: &Library,
    objective: MappingObjective,
) -> Result<AsicFlowResult, FlowError> {
    validate_network(network)?;
    validate_library(library)?;
    contain(|| {
        let start = Instant::now();
        let netlist = map_asic(
            &ChoiceNetwork::from_network(network),
            library,
            &AsicMapParams::new(objective),
        );
        let name = match objective {
            MappingObjective::Area => "baseline map -a",
            MappingObjective::Delay => "baseline &nf (delay)",
            MappingObjective::Balanced => "baseline &nf",
        };
        finish_asic(name, network, netlist, library, start, DegradationReport::default())
    })
}

/// DCH ASIC flow: structural choices from technology-independent optimization
/// snapshots (the `&dch -m; &nf` / `dch; map -a` columns of Table I).
///
/// Panics on invalid inputs; use [`try_asic_flow_dch`] to get a structured
/// [`FlowError`] instead.
pub fn asic_flow_dch(
    network: &Network,
    library: &Library,
    objective: MappingObjective,
) -> AsicFlowResult {
    unwrap_flow(try_asic_flow_dch(network, library, objective))
}

/// Fallible [`asic_flow_dch`]: validates the inputs up front and contains any
/// phase panic as [`FlowError::WorkerPanic`].
pub fn try_asic_flow_dch(
    network: &Network,
    library: &Library,
    objective: MappingObjective,
) -> Result<AsicFlowResult, FlowError> {
    validate_network(network)?;
    validate_library(library)?;
    contain(|| {
        let start = Instant::now();
        let snap1 = compress_round(network);
        let snap2 = compress2rs_like(&snap1, 2);
        let choices = dch_from_snapshots(network, &[snap1, snap2]);
        let netlist = map_asic(&choices, library, &AsicMapParams::new(objective));
        finish_asic("DCH", network, netlist, library, start, DegradationReport::default())
    })
}

/// The budgeted MCH ASIC flow body. Panics stay containable by the `try_*`
/// wrapper; the degradation ladder itself is pure configuration surgery.
fn asic_flow_mch_impl(
    network: &Network,
    library: &Library,
    config: &MchConfig,
    budget: &FlowBudget,
    shared: FlowShared<'_>,
) -> AsicFlowResult {
    let start = Instant::now();
    let (config, mut report) = plan_degradation(
        network.len(),
        network.gate_count(),
        config,
        budget,
    );
    let prepared = obtain_prepared(network, &config, shared);
    let mut params = AsicMapParams::new(config.objective)
        .with_ranking(config.cut_ranking)
        .with_threads(config.threads)
        .with_exact_area(config.exact_area);
    if let Some(rounds) = config.area_rounds {
        params = params.with_area_rounds(rounds);
    }
    // The choice network is deterministically sized, so this re-check is as
    // reproducible as the pre-enumeration one.
    params.cut_limit = shrink_cut_limit(
        prepared.choices().network().len(),
        params.cut_limit,
        budget.max_cut_arena_slots,
        &mut report,
    );
    if let Some(deadline) = budget.deadline {
        if start.elapsed() >= deadline {
            report.deadline_breached = true;
            report.steps.push(DegradationStep::DeadlineFallback);
            params = params
                .with_ranking(CutCost::Structural)
                .with_area_rounds(0)
                .with_exact_area(false);
        }
    }
    let netlist = prepared.map_asic(library, &params);
    finish_asic(config.name.clone(), network, netlist, library, start, report)
}

/// MCH ASIC flow: mixed structural choices evaluated by the choice-aware
/// mapper (the "MCH balanced / Delay-oriented / Area-oriented" columns).
///
/// The configured [`MchConfig::cut_ranking`] decides which cuts survive the
/// per-node cut limit before the mapper's dynamic programming runs.
///
/// Panics on invalid inputs; use [`try_asic_flow_mch`] to get a structured
/// [`FlowError`] instead.
pub fn asic_flow_mch(
    network: &Network,
    library: &Library,
    config: &MchConfig,
) -> AsicFlowResult {
    unwrap_flow(try_asic_flow_mch(network, library, config))
}

/// Fallible [`asic_flow_mch`]: validates the inputs up front and contains any
/// phase panic as [`FlowError::WorkerPanic`].
pub fn try_asic_flow_mch(
    network: &Network,
    library: &Library,
    config: &MchConfig,
) -> Result<AsicFlowResult, FlowError> {
    try_asic_flow_mch_with_budget(network, library, config, &FlowBudget::unlimited())
}

/// [`try_asic_flow_mch`] under a [`FlowBudget`]: on breach the flow degrades
/// down the deterministic ladder (recorded in the result's
/// [`DegradationReport`]) instead of exhausting the machine — the output is
/// still a complete, equivalence-checked netlist.
pub fn try_asic_flow_mch_with_budget(
    network: &Network,
    library: &Library,
    config: &MchConfig,
    budget: &FlowBudget,
) -> Result<AsicFlowResult, FlowError> {
    try_asic_flow_mch_shared(network, library, config, budget, FlowShared::default())
}

/// [`try_asic_flow_mch_with_budget`] over the service-owned shared state
/// ([`FlowShared`]: NPN cache + warm-start cache) — the per-job entry point
/// of the [`MappingService`](crate::service). Sharing is output-invisible
/// (see [`build_mch_with_stats_shared`] and [`PreparedFlowCache`]).
pub(crate) fn try_asic_flow_mch_shared(
    network: &Network,
    library: &Library,
    config: &MchConfig,
    budget: &FlowBudget,
    shared: FlowShared<'_>,
) -> Result<AsicFlowResult, FlowError> {
    validate_network(network)?;
    validate_library(library)?;
    contain(|| asic_flow_mch_impl(network, library, config, budget, shared))
}

/// Baseline FPGA flow: plain K-LUT mapping of the input network.
///
/// Panics on invalid inputs; use [`try_lut_flow_baseline`] to get a
/// structured [`FlowError`] instead.
pub fn lut_flow_baseline(
    network: &Network,
    lut: &LutLibrary,
    objective: MappingObjective,
) -> LutFlowResult {
    unwrap_flow(try_lut_flow_baseline(network, lut, objective))
}

/// Fallible [`lut_flow_baseline`]: validates the inputs up front and contains
/// any phase panic as [`FlowError::WorkerPanic`].
pub fn try_lut_flow_baseline(
    network: &Network,
    lut: &LutLibrary,
    objective: MappingObjective,
) -> Result<LutFlowResult, FlowError> {
    validate_network(network)?;
    validate_lut_library(lut)?;
    contain(|| {
        let start = Instant::now();
        let netlist = map_lut(
            &ChoiceNetwork::from_network(network),
            lut,
            &LutMapParams::new(objective),
        );
        finish_lut("baseline if", network, netlist, start, DegradationReport::default())
    })
}

/// The budgeted MCH FPGA flow body (see [`asic_flow_mch_impl`]).
fn lut_flow_mch_impl(
    network: &Network,
    lut: &LutLibrary,
    config: &MchConfig,
    budget: &FlowBudget,
    shared: FlowShared<'_>,
) -> LutFlowResult {
    let start = Instant::now();
    let (config, mut report) = plan_degradation(
        network.len(),
        network.gate_count(),
        config,
        budget,
    );
    let prepared = obtain_prepared(network, &config, shared);
    let mut params = LutMapParams::new(config.objective)
        .with_ranking(config.cut_ranking)
        .with_threads(config.threads)
        .with_exact_area(config.exact_area);
    if let Some(rounds) = config.area_rounds {
        params = params.with_area_rounds(rounds);
    }
    params.cut_limit = shrink_cut_limit(
        prepared.choices().network().len(),
        params.cut_limit,
        budget.max_cut_arena_slots,
        &mut report,
    );
    if let Some(deadline) = budget.deadline {
        if start.elapsed() >= deadline {
            report.deadline_breached = true;
            report.steps.push(DegradationStep::DeadlineFallback);
            params = params
                .with_ranking(CutCost::Structural)
                .with_area_rounds(0)
                .with_exact_area(false);
        }
    }
    let netlist = prepared.map_lut(lut, &params);
    finish_lut(config.name.clone(), network, netlist, start, report)
}

/// The budgeted fused MCH FPGA flow body: [`lut_flow_mch_impl`] with the
/// cross-mapper fusion pipeline ([`mch_mapper::fusion`]) ahead of the LUT
/// cover, plus two fusion-specific degradation rungs. Both are
/// deterministic: the arena check depends only on the (deterministically
/// sized) choice network, and the deadline check rides the existing
/// [`DegradationStep::DeadlineFallback`] decision point.
fn lut_flow_mch_fused_impl(
    network: &Network,
    lut: &LutLibrary,
    library: &Library,
    config: &MchConfig,
    budget: &FlowBudget,
    shared: FlowShared<'_>,
) -> LutFlowResult {
    let start = Instant::now();
    let (config, mut report) = plan_degradation(
        network.len(),
        network.gate_count(),
        config,
        budget,
    );
    let prepared = obtain_prepared(network, &config, shared);
    let mut params = LutMapParams::new(config.objective)
        .with_ranking(config.cut_ranking)
        .with_threads(config.threads)
        .with_exact_area(config.exact_area)
        .with_fusion(config.fusion);
    if let Some(rounds) = config.area_rounds {
        params = params.with_area_rounds(rounds);
    }
    params.cut_limit = shrink_cut_limit(
        prepared.choices().network().len(),
        params.cut_limit,
        budget.max_cut_arena_slots,
        &mut report,
    );
    // The ASIC guide pass enumerates a second cut arena of (at most) the same
    // predicted size as the LUT one; when the two together cannot fit the
    // slot cap, fusion is the thing to shed — the plain LUT cover is always
    // a complete, valid result.
    if let Some(cap) = budget.max_cut_arena_slots {
        let both_arenas = prepared
            .choices()
            .network()
            .len()
            .saturating_mul(params.cut_limit)
            .saturating_mul(2);
        if params.fusion.is_enabled() && both_arenas > cap {
            params = params.with_fusion(FusionMode::Off);
            report.steps.push(DegradationStep::FusionDropped);
        }
    }
    if let Some(deadline) = budget.deadline {
        if start.elapsed() >= deadline {
            report.deadline_breached = true;
            if params.fusion.is_enabled() {
                // The guide pass is pure extra work; shed it before falling
                // back to the cheapest valid mapping.
                params = params.with_fusion(FusionMode::Off);
                report.steps.push(DegradationStep::FusionDropped);
            }
            report.steps.push(DegradationStep::DeadlineFallback);
            params = params
                .with_ranking(CutCost::Structural)
                .with_area_rounds(0)
                .with_exact_area(false);
        }
    }
    let netlist = prepared.map_lut_fused(lut, library, &params);
    finish_lut(config.name.clone(), network, netlist, start, report)
}

/// Fused MCH FPGA flow: [`lut_flow_mch`] with ASIC-guided cross-mapper fusion
/// (see [`mch_mapper::fusion`]) — `library` drives the ASIC guide cover whose
/// selected cones are injected into / bias the LUT cover per
/// [`MchConfig::fusion`]. With [`FusionMode::Off`] (every preset except
/// [`MchConfig::lut_fusion`]) the output is byte-identical to
/// [`lut_flow_mch`].
///
/// Panics on invalid inputs; use [`try_lut_flow_mch_fused`] to get a
/// structured [`FlowError`] instead.
pub fn lut_flow_mch_fused(
    network: &Network,
    lut: &LutLibrary,
    library: &Library,
    config: &MchConfig,
) -> LutFlowResult {
    unwrap_flow(try_lut_flow_mch_fused(network, lut, library, config))
}

/// Fallible [`lut_flow_mch_fused`]: validates all three inputs up front
/// (network, LUT library, cell library) and contains any phase panic as
/// [`FlowError::WorkerPanic`].
pub fn try_lut_flow_mch_fused(
    network: &Network,
    lut: &LutLibrary,
    library: &Library,
    config: &MchConfig,
) -> Result<LutFlowResult, FlowError> {
    try_lut_flow_mch_fused_with_budget(network, lut, library, config, &FlowBudget::unlimited())
}

/// [`try_lut_flow_mch_fused`] under a [`FlowBudget`]: beyond the shared
/// ladder, fusion itself is a rung — it is dropped
/// ([`DegradationStep::FusionDropped`]) when the guide pass's second cut
/// arena cannot fit the slot cap or the deadline already passed.
pub fn try_lut_flow_mch_fused_with_budget(
    network: &Network,
    lut: &LutLibrary,
    library: &Library,
    config: &MchConfig,
    budget: &FlowBudget,
) -> Result<LutFlowResult, FlowError> {
    try_lut_flow_mch_fused_shared(network, lut, library, config, budget, FlowShared::default())
}

/// [`try_lut_flow_mch_fused_with_budget`] over the service-owned shared
/// state — the per-job entry point of the [`MappingService`](crate::service).
pub(crate) fn try_lut_flow_mch_fused_shared(
    network: &Network,
    lut: &LutLibrary,
    library: &Library,
    config: &MchConfig,
    budget: &FlowBudget,
    shared: FlowShared<'_>,
) -> Result<LutFlowResult, FlowError> {
    validate_network(network)?;
    validate_lut_library(lut)?;
    validate_library(library)?;
    contain(|| lut_flow_mch_fused_impl(network, lut, library, config, budget, shared))
}

/// MCH FPGA flow: K-LUT mapping over a mixed choice network (the Table-II
/// configuration: AIG + XMG, area-focused, no other optimization).
///
/// The configured [`MchConfig::cut_ranking`] decides which cuts survive the
/// per-node cut limit before the mapper's dynamic programming runs.
///
/// Panics on invalid inputs; use [`try_lut_flow_mch`] to get a structured
/// [`FlowError`] instead.
pub fn lut_flow_mch(network: &Network, lut: &LutLibrary, config: &MchConfig) -> LutFlowResult {
    unwrap_flow(try_lut_flow_mch(network, lut, config))
}

/// Fallible [`lut_flow_mch`]: validates the inputs up front and contains any
/// phase panic as [`FlowError::WorkerPanic`].
pub fn try_lut_flow_mch(
    network: &Network,
    lut: &LutLibrary,
    config: &MchConfig,
) -> Result<LutFlowResult, FlowError> {
    try_lut_flow_mch_with_budget(network, lut, config, &FlowBudget::unlimited())
}

/// [`try_lut_flow_mch`] under a [`FlowBudget`] (see
/// [`try_asic_flow_mch_with_budget`]).
pub fn try_lut_flow_mch_with_budget(
    network: &Network,
    lut: &LutLibrary,
    config: &MchConfig,
    budget: &FlowBudget,
) -> Result<LutFlowResult, FlowError> {
    try_lut_flow_mch_shared(network, lut, config, budget, FlowShared::default())
}

/// [`try_lut_flow_mch_with_budget`] over the service-owned shared state —
/// the per-job entry point of the [`MappingService`](crate::service).
pub(crate) fn try_lut_flow_mch_shared(
    network: &Network,
    lut: &LutLibrary,
    config: &MchConfig,
    budget: &FlowBudget,
    shared: FlowShared<'_>,
) -> Result<LutFlowResult, FlowError> {
    validate_network(network)?;
    validate_lut_library(lut)?;
    contain(|| lut_flow_mch_impl(network, lut, config, budget, shared))
}

/// Fallible [`build_mch`](mch_choice::build_mch): validates the network up
/// front and contains any panic from choice construction (including pool
/// workers) as [`FlowError::WorkerPanic`].
pub fn try_build_mch(
    network: &Network,
    params: &MchParams,
) -> Result<ChoiceNetwork, FlowError> {
    validate_network(network)?;
    contain(|| build_mch(network, params))
}

/// Applies the `compress2rs`-like pre-optimization the paper uses to prepare
/// the Table-I inputs.
pub fn prepare_input(network: &Network, rounds: usize) -> Network {
    if rounds == 0 {
        network.clone()
    } else {
        compress2rs_like(network, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_benchmarks::demo_adder_gt;
    use mch_logic::{Network, NetworkKind};
    use mch_techlib::asap7_lite;

    fn small_circuit() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "flow-test");
        let a = n.add_inputs(3);
        let b = n.add_inputs(3);
        let zero = n.constant(false);
        let (sum, carry) = mch_benchmarks::words::ripple_add(&mut n, &a, &b, zero);
        for s in sum {
            n.add_output(s);
        }
        n.add_output(carry);
        n
    }

    #[test]
    fn all_asic_flows_verify() {
        let net = small_circuit();
        let lib = asap7_lite();
        let flows = [
            asic_flow_baseline(&net, &lib, MappingObjective::Balanced),
            asic_flow_baseline(&net, &lib, MappingObjective::Area),
            asic_flow_dch(&net, &lib, MappingObjective::Balanced),
            asic_flow_mch(&net, &lib, &MchConfig::balanced()),
            asic_flow_mch(&net, &lib, &MchConfig::delay_oriented()),
            asic_flow_mch(&net, &lib, &MchConfig::area_oriented()),
        ];
        for f in &flows {
            assert!(f.verified, "{} did not verify", f.flow);
            assert!(f.area > 0.0);
            assert!(f.delay > 0.0);
        }
    }

    #[test]
    fn lut_flows_verify_and_report_counts() {
        let net = demo_adder_gt();
        let lut = LutLibrary::k6();
        let base = lut_flow_baseline(&net, &lut, MappingObjective::Area);
        let mch = lut_flow_mch(&net, &lut, &MchConfig::lut_area());
        assert!(base.verified && mch.verified);
        assert!(base.luts >= 1 && mch.luts >= 1);
        assert!(mch.luts <= base.luts, "MCH should not need more LUTs on the demo");
    }

    #[test]
    fn area_rounds_and_exact_area_flow_through_the_config() {
        let net = small_circuit();
        let lib = asap7_lite();
        let lut = LutLibrary::k6();
        let cfg = MchConfig::area_oriented()
            .with_area_rounds(6)
            .with_exact_area(true);
        let asic = asic_flow_mch(&net, &lib, &cfg);
        assert!(asic.verified, "exact-area ASIC flow failed verification");
        let lut_cfg = MchConfig::lut_area().with_area_rounds(6).with_exact_area(true);
        let fpga = lut_flow_mch(&net, &lut, &lut_cfg);
        assert!(fpga.verified, "exact-area LUT flow failed verification");
        // More recovery rounds plus the exact pass must not grow the cover
        // beyond the default flow's.
        let default_fpga = lut_flow_mch(&net, &lut, &MchConfig::lut_area());
        assert!(fpga.luts <= default_fpga.luts);
    }

    #[test]
    fn fused_lut_flow_verifies_and_off_mode_matches_plain() {
        let net = small_circuit();
        let lut = LutLibrary::k6();
        let lib = asap7_lite();
        // Fusion off: the fused entry point is byte-identical to the plain
        // flow (the guide pass never runs).
        let plain = lut_flow_mch(&net, &lut, &MchConfig::lut_area());
        let off = lut_flow_mch_fused(&net, &lut, &lib, &MchConfig::lut_area());
        assert_eq!(plain.netlist, off.netlist);
        // Fusion on: still a verified cover, whatever the mode.
        for mode in [FusionMode::Bias, FusionMode::Inject, FusionMode::Full] {
            let fused = lut_flow_mch_fused(
                &net,
                &lut,
                &lib,
                &MchConfig::lut_fusion().with_fusion(mode),
            );
            assert!(fused.verified, "{mode:?} flow failed verification");
            assert!(fused.luts >= 1);
            assert!(!fused.degradation.degraded());
        }
    }

    #[test]
    fn fusion_is_dropped_when_the_guide_arena_cannot_fit() {
        let net = small_circuit();
        let lut = LutLibrary::k6();
        let lib = asap7_lite();
        // A cap that admits the LUT arena at the cut-limit floor but not a
        // second guide arena: the FusionDropped rung fires, the flow still
        // completes and verifies, and the output matches the unfused flow
        // under the same budget.
        let budget = FlowBudget::unlimited().with_max_cut_arena_slots(400);
        let fused = unwrap_flow(try_lut_flow_mch_fused_with_budget(
            &net,
            &lut,
            &lib,
            &MchConfig::lut_fusion(),
            &budget,
        ));
        assert!(fused.verified);
        assert!(
            fused
                .degradation
                .steps
                .contains(&DegradationStep::FusionDropped),
            "expected FusionDropped, got {:?}",
            fused.degradation.steps
        );
        let plain = unwrap_flow(try_lut_flow_mch_with_budget(
            &net,
            &lut,
            &MchConfig::lut_fusion(),
            &budget,
        ));
        assert_eq!(plain.netlist, fused.netlist);
    }

    #[test]
    fn prepare_input_respects_round_count() {
        let net = small_circuit();
        let unchanged = prepare_input(&net, 0);
        assert_eq!(unchanged.gate_count(), net.gate_count());
        let optimized = prepare_input(&net, 2);
        assert!(optimized.gate_count() <= net.gate_count());
        assert!(cec(&net, &optimized).holds());
    }
}
