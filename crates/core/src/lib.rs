//! The MCH flow facade: ready-to-use ASIC and FPGA mapping flows built on the
//! mixed-structural-choices operator, plus the configurations and reporting
//! helpers used by the experiment harness.
//!
//! This crate is the intended entry point for downstream users: it re-exports
//! the building blocks (networks, choices, mappers, optimization, benchmarks,
//! technology libraries) and wires them into the flows evaluated in the paper.
//!
//! # Example
//!
//! ```
//! use mch_core::{asic_flow_baseline, asic_flow_mch, MchConfig};
//! use mch_core::mapper::MappingObjective;
//! use mch_core::techlib::asap7_lite;
//! use mch_core::benchmarks::demo_adder_gt;
//!
//! let circuit = demo_adder_gt();
//! let library = asap7_lite();
//! let baseline = asic_flow_baseline(&circuit, &library, MappingObjective::Balanced);
//! let mch = asic_flow_mch(&circuit, &library, &MchConfig::balanced());
//! assert!(baseline.verified && mch.verified);
//! // MCH evaluates heterogeneous candidates, so it never loses on both axes.
//! assert!(mch.area <= baseline.area + 1e-9 || mch.delay <= baseline.delay + 1e-9);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod budget;
mod config;
mod error;
mod flow;
mod prepared;
mod report;
pub mod service;

pub use budget::{DegradationReport, DegradationStep, FlowBudget, StrategyClass};
pub use config::MchConfig;
pub use error::{validate_library, validate_lut_library, validate_network, FlowError};
pub use prepared::{PreparedFlow, PreparedFlowCache};
pub use flow::{
    asic_flow_baseline, asic_flow_dch, asic_flow_mch, lut_flow_baseline, lut_flow_mch,
    lut_flow_mch_fused, prepare_input, try_asic_flow_baseline, try_asic_flow_dch,
    try_asic_flow_mch, try_asic_flow_mch_with_budget, try_build_mch, try_lut_flow_baseline,
    try_lut_flow_mch, try_lut_flow_mch_fused, try_lut_flow_mch_fused_with_budget,
    try_lut_flow_mch_with_budget, AsicFlowResult, LutFlowResult,
};
pub use report::{geometric_mean, improvement_percent, FlowMetrics};
pub use service::{Job, JobKind, JobOutput, JobReport, MappingService, ServiceStats};

pub use mch_benchmarks as benchmarks;
pub use mch_choice as choice;
pub use mch_cut as cut;
pub use mch_logic as logic;
pub use mch_mapper as mapper;
pub use mch_opt as opt;
pub use mch_techlib as techlib;

// Convenience re-exports of the most frequently used types.
pub use mch_choice::{build_mch, ChoiceNetwork, MchParams};
pub use mch_cut::CutCost;
pub use mch_logic::{Network, NetworkKind};
pub use mch_mapper::{FusionMode, MappingObjective};
