//! Warm-start artifacts: reusable choice construction and prepared cover
//! state shared across parameter-sweep jobs.
//!
//! An MCH flow spends most of its time on work that does **not** depend on
//! the mapper's per-variant knobs: building the mixed choice network
//! (Algorithm 1 + snapshot views), enumerating and transferring cuts, and
//! enumerating cover candidates (Boolean matching for ASIC targets). A
//! [`PreparedFlow`] captures exactly that params-independent half — the
//! choice network plus, lazily, one [`PreparedCover`] per distinct mapper
//! configuration — so a sweep over `area_rounds` / `exact_area` / rankings
//! pays it once and re-runs only the covering dynamic program per variant.
//!
//! # Keying and correctness
//!
//! A prepared flow is keyed by a [`ChoiceKey`] — the exact subset of
//! [`MchConfig`] that reaches choice construction (objective, snapshot
//! mixing, the [`MchParams`]), with the thread count normalised away because
//! choices are thread-invariant — and addressed by a 64-bit fingerprint
//! folding the network's [`structural_fingerprint`](Network::structural_fingerprint)
//! with the key. Fingerprints are only an index: every cache hit re-verifies
//! **full structural equality** of the stored network and key, so a
//! fingerprint collision degrades to a miss (and a cold build), never to a
//! wrong artifact.
//!
//! Reuse is **byte-invisible**: choice construction and cut/candidate
//! enumeration are deterministic and thread-invariant, so a cached artifact
//! is equal to the one a cold run would build, and the prepared mapper entry
//! points (`mch_mapper::map_*_prepared`) are pinned byte-identical to their
//! one-shot counterparts. A warm-started job therefore produces exactly the
//! bytes of its cold solo run — at every thread count, batch permutation and
//! cache state (`tests/service_warm_start.rs`).
//!
//! # The cache
//!
//! [`PreparedFlowCache`] is a bounded, strict-LRU store of prepared flows
//! with byte-size accounting (`approx_bytes` estimates, cut arenas plus
//! candidate skeletons dominating). Like the service's
//! [`SharedNpnCache`], its *telemetry* (hit/miss/eviction counts, eviction
//! order) depends on scheduling — two racing coordinators may both miss on
//! the same circuit and build twice — but *outputs* never do. Both failpoints
//! (`cache::prepared_hit`, `cache::prepared_insert`) sit at function entry,
//! before any mutation: an injected fault leaves the cache coherent and the
//! affected job falls back to a cold, byte-identical run
//! (`tests/service_faults.rs`).

use crate::config::MchConfig;
use crate::flow::build_flow_choices;
use mch_choice::{ChoiceNetwork, SharedNpnCache};
use mch_cut::CutCost;
use mch_logic::{Fingerprinter, Network};
use mch_mapper::{
    map_asic_prepared, map_lut_fused_prepared, map_lut_prepared, prepare_asic_cover,
    prepare_fusion_guide, prepare_lut_cover, AsicMapParams, CellNetlist, LutCandidate,
    LutMapParams, LutNetlist, MappingObjective, MatchCandidate, PreparedCover,
};
use mch_techlib::{Library, LutLibrary};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The choice-relevant subset of an [`MchConfig`]: exactly the fields that
/// reach [`build_flow_choices`], with `threads` normalised away (choices are
/// thread-invariant, so jobs differing only in thread count share one
/// artifact). Derived from the **post-degradation** config, so a budgeted job
/// that sheds strategies keys on what it actually built.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct ChoiceKey {
    objective: MappingObjective,
    mix_optimized_snapshots: bool,
    mch: mch_choice::MchParams,
}

impl ChoiceKey {
    /// Extracts the key from a (post-degradation) flow config.
    pub(crate) fn from_config(config: &MchConfig) -> Self {
        let mut mch = config.mch.clone();
        mch.threads = 1;
        ChoiceKey {
            objective: config.objective,
            mix_optimized_snapshots: config.mix_optimized_snapshots,
            mch,
        }
    }
}

/// The 64-bit cache index of `(network, choice key)`: the network's
/// structural fingerprint folded with the key's canonical `Debug` rendering.
/// An index only — hits re-verify full equality (see the module docs).
pub(crate) fn flow_fingerprint(network: &Network, key: &ChoiceKey) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.write_u64(network.structural_fingerprint());
    fp.write_str(&format!("{key:?}"));
    fp.finish()
}

/// Rough heap footprint of a network for cache accounting: nodes, outputs
/// and the structural-hash table (~one entry per gate).
fn network_bytes(net: &Network) -> usize {
    net.len() * (std::mem::size_of::<mch_logic::Node>() + 48)
        + std::mem::size_of_val(net.outputs())
}

/// Per-mapper prepared state, keyed by everything its preparation phase
/// reads. `cut_limit` is the **post-`shrink_cut_limit`** value, so budgeted
/// and unbudgeted variants never share a cut set they shouldn't.
struct AsicKey {
    ranking: CutCost,
    cut_limit: usize,
    library: Library,
}

struct LutKey {
    ranking: CutCost,
    cut_limit: usize,
    lut: LutLibrary,
}

/// The fusion guide's cut set is shaped by the LUT objective (it picks the
/// guide's ASIC ranking — see `mch_mapper::prepare_fusion_guide`), not by the
/// LUT ranking.
struct GuideKey {
    objective: MappingObjective,
    cut_limit: usize,
    library: Library,
}

/// Lazily grown prepared cover state of one flow, one entry per distinct
/// mapper configuration seen so far.
#[derive(Default)]
struct PreparedMappers {
    asic: Vec<(AsicKey, Arc<PreparedCover<MatchCandidate>>)>,
    lut: Vec<(LutKey, Arc<PreparedCover<LutCandidate>>)>,
    guide: Vec<(GuideKey, Arc<PreparedCover<MatchCandidate>>)>,
}

/// The reusable, params-independent artifact of one `(network, choice
/// config)` pair: the built choice network plus lazily-built prepared covers
/// per mapper configuration (see the module docs).
///
/// Shareable across threads: the choice network is immutable after
/// construction, and the mapper states grow under an internal mutex — the
/// mutex is only ever taken by flow coordinator threads, never by pool
/// workers, so holding it across a (pool-parallel) preparation cannot
/// deadlock; it merely serialises duplicate builds of the same state.
#[derive(Debug)]
pub struct PreparedFlow {
    network: Network,
    key: ChoiceKey,
    fingerprint: u64,
    choices: ChoiceNetwork,
    mappers: Mutex<PreparedMappers>,
}

impl std::fmt::Debug for PreparedMappers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedMappers")
            .field("asic", &self.asic.len())
            .field("lut", &self.lut.len())
            .field("guide", &self.guide.len())
            .finish()
    }
}

impl PreparedFlow {
    /// Builds the artifact: choice construction (identical to the cold flow
    /// path — [`build_flow_choices`] with the same config and shared NPN
    /// store), mapper states deferred until first use. `config` must be the
    /// post-degradation config `key`/`fingerprint` were derived from.
    pub(crate) fn build(
        network: &Network,
        config: &MchConfig,
        key: ChoiceKey,
        fingerprint: u64,
        shared_npn: Option<&Arc<SharedNpnCache>>,
    ) -> Self {
        let choices = build_flow_choices(network, config, shared_npn);
        PreparedFlow {
            network: network.clone(),
            key,
            fingerprint,
            choices,
            mappers: Mutex::new(PreparedMappers::default()),
        }
    }

    /// The built choice network.
    pub fn choices(&self) -> &ChoiceNetwork {
        &self.choices
    }

    /// The cache index of this artifact: the structural fingerprint of its
    /// `(Network, ChoiceKey)` pair.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Full-equality verification behind every fingerprint match: the stored
    /// network and choice key must equal the requester's exactly.
    pub(crate) fn matches(&self, network: &Network, key: &ChoiceKey) -> bool {
        self.key == *key && self.network == *network
    }

    fn lock_mappers(&self) -> std::sync::MutexGuard<'_, PreparedMappers> {
        self.mappers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The ASIC prepared cover for `(params.cut_ranking, params.cut_limit,
    /// library)`, building it on first use.
    fn asic_state(
        &self,
        library: &Library,
        params: &AsicMapParams,
    ) -> Arc<PreparedCover<MatchCandidate>> {
        let mut mappers = self.lock_mappers();
        if let Some((_, prep)) = mappers.asic.iter().find(|(k, _)| {
            k.ranking == params.cut_ranking && k.cut_limit == params.cut_limit && k.library == *library
        }) {
            return Arc::clone(prep);
        }
        let prep = Arc::new(prepare_asic_cover(&self.choices, library, params));
        mappers.asic.push((
            AsicKey {
                ranking: params.cut_ranking,
                cut_limit: params.cut_limit,
                library: library.clone(),
            },
            Arc::clone(&prep),
        ));
        prep
    }

    fn lut_state(
        &self,
        lut: &LutLibrary,
        params: &LutMapParams,
    ) -> Arc<PreparedCover<LutCandidate>> {
        let mut mappers = self.lock_mappers();
        if let Some((_, prep)) = mappers.lut.iter().find(|(k, _)| {
            k.ranking == params.cut_ranking && k.cut_limit == params.cut_limit && k.lut == *lut
        }) {
            return Arc::clone(prep);
        }
        let prep = Arc::new(prepare_lut_cover(&self.choices, lut, params));
        mappers.lut.push((
            LutKey {
                ranking: params.cut_ranking,
                cut_limit: params.cut_limit,
                lut: *lut,
            },
            Arc::clone(&prep),
        ));
        prep
    }

    fn guide_state(
        &self,
        library: &Library,
        params: &LutMapParams,
    ) -> Arc<PreparedCover<MatchCandidate>> {
        let mut mappers = self.lock_mappers();
        if let Some((_, prep)) = mappers.guide.iter().find(|(k, _)| {
            k.objective == params.objective
                && k.cut_limit == params.cut_limit
                && k.library == *library
        }) {
            return Arc::clone(prep);
        }
        let prep = Arc::new(prepare_fusion_guide(&self.choices, library, params));
        mappers.guide.push((
            GuideKey {
                objective: params.objective,
                cut_limit: params.cut_limit,
                library: library.clone(),
            },
            Arc::clone(&prep),
        ));
        prep
    }

    /// The covering phase of the ASIC flow over this artifact. Byte-identical
    /// to `map_asic(self.choices(), library, params)`.
    pub(crate) fn map_asic(&self, library: &Library, params: &AsicMapParams) -> CellNetlist {
        let prep = self.asic_state(library, params);
        map_asic_prepared(&self.choices, library, &prep, params)
    }

    /// The covering phase of the LUT flow over this artifact. Byte-identical
    /// to `map_lut(self.choices(), lut, params)`.
    pub(crate) fn map_lut(&self, lut: &LutLibrary, params: &LutMapParams) -> LutNetlist {
        let prep = self.lut_state(lut, params);
        map_lut_prepared(&self.choices, lut, &prep, params)
    }

    /// The covering phase of the fused LUT flow over this artifact.
    /// Byte-identical to `map_lut_fused(self.choices(), lut, library,
    /// params)`; with fusion off the guide state is never built.
    pub(crate) fn map_lut_fused(
        &self,
        lut: &LutLibrary,
        library: &Library,
        params: &LutMapParams,
    ) -> LutNetlist {
        if !params.fusion.is_enabled() {
            return self.map_lut(lut, params);
        }
        let lut_prep = self.lut_state(lut, params);
        let guide_prep = self.guide_state(library, params);
        map_lut_fused_prepared(&self.choices, lut, library, params, &lut_prep, &guide_prep)
    }

    /// Approximate heap footprint in bytes: the stored network, the choice
    /// network and every prepared mapper state (cut arenas plus candidate
    /// skeletons — by far the dominant terms).
    pub fn approx_bytes(&self) -> usize {
        let mappers = self.lock_mappers();
        let mapper_bytes: usize = mappers
            .asic
            .iter()
            .map(|(_, p)| p.approx_bytes(MatchCandidate::approx_bytes))
            .chain(
                mappers
                    .lut
                    .iter()
                    .map(|(_, p)| p.approx_bytes(LutCandidate::approx_bytes)),
            )
            .chain(
                mappers
                    .guide
                    .iter()
                    .map(|(_, p)| p.approx_bytes(MatchCandidate::approx_bytes)),
            )
            .sum();
        network_bytes(&self.network)
            + network_bytes(self.choices.network())
            + self.choices.choice_count() * 16
            + mapper_bytes
    }
}

struct CacheEntry {
    fingerprint: u64,
    flow: Arc<PreparedFlow>,
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    entries: Vec<CacheEntry>,
    stamp: u64,
}

/// A bounded, strict-LRU cache of [`PreparedFlow`]s with byte-size
/// accounting (see the module docs).
///
/// Every lookup that matches a fingerprint re-verifies full network + key
/// equality before handing the artifact out; eviction recomputes live byte
/// totals, so an artifact that grew mapper states since insertion is
/// accounted at its current size. The hit/miss/eviction counters are
/// cross-job telemetry: like the shared NPN store's, they depend on
/// scheduling — outputs never do.
#[derive(Debug)]
pub struct PreparedFlowCache {
    max_bytes: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl std::fmt::Debug for CacheInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheInner")
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl PreparedFlowCache {
    /// Default capacity of a service's warm-start cache (256 MiB) — a few
    /// dozen medium circuits' artifacts; see `docs/PERFORMANCE.md` for sizing
    /// guidance.
    pub const DEFAULT_CAPACITY_BYTES: usize = 256 << 20;

    /// Creates a cache holding at most `max_bytes` of estimated artifact
    /// bytes. `0` disables the cache: every lookup misses, nothing is stored.
    pub fn new(max_bytes: usize) -> Self {
        PreparedFlowCache {
            max_bytes,
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Whether the cache stores anything at all (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.max_bytes > 0
    }

    /// The configured capacity in (estimated) bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Number of cached artifacts.
    pub fn entries(&self) -> usize {
        self.lock_inner().entries.len()
    }

    /// Estimated bytes currently held (live recount — artifacts grow as
    /// mapper states are added).
    pub fn bytes(&self) -> usize {
        self.lock_inner()
            .entries
            .iter()
            .map(|e| e.flow.approx_bytes())
            .sum()
    }

    /// Lookups served from the cache since creation (telemetry; scheduling-
    /// dependent, see the type docs).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no verified entry since creation.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Artifacts evicted by the byte bound since creation.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a verified artifact for `(fingerprint, network, key)` and
    /// refreshes its LRU stamp. The `cache::prepared_hit` failpoint fires at
    /// entry, before any state is read or touched.
    pub(crate) fn lookup(
        &self,
        fingerprint: u64,
        network: &Network,
        key: &ChoiceKey,
    ) -> Option<Arc<PreparedFlow>> {
        mch_logic::failpoint!("cache::prepared_hit");
        if !self.is_enabled() {
            return None;
        }
        let mut inner = self.lock_inner();
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some(entry) = inner
            .entries
            .iter_mut()
            .find(|e| e.fingerprint == fingerprint && e.flow.matches(network, key))
        {
            entry.last_used = stamp;
            let flow = Arc::clone(&entry.flow);
            drop(inner);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(flow);
        }
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts an artifact and evicts least-recently-used entries while the
    /// estimated total exceeds the capacity — possibly including the one just
    /// inserted (the caller keeps its `Arc`, so its own job is unaffected).
    /// A duplicate of an already-cached artifact is dropped, keeping the
    /// incumbent. The `cache::prepared_insert` failpoint fires at entry,
    /// before any mutation.
    pub(crate) fn insert(&self, flow: Arc<PreparedFlow>) {
        mch_logic::failpoint!("cache::prepared_insert");
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock_inner();
        if inner
            .entries
            .iter()
            .any(|e| e.fingerprint == flow.fingerprint() && e.flow.matches(&flow.network, &flow.key))
        {
            return;
        }
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.entries.push(CacheEntry {
            fingerprint: flow.fingerprint(),
            flow,
            last_used: stamp,
        });
        loop {
            let total: usize = inner.entries.iter().map(|e| e.flow.approx_bytes()).sum();
            if total <= self.max_bytes || inner.entries.is_empty() {
                break;
            }
            if let Some(lru) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                inner.entries.remove(lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
    }

    /// [`lookup`](Self::lookup) with fault containment: an injected panic
    /// (the `cache::prepared_hit` failpoint) degrades to a miss, and the
    /// caller builds cold — byte-identical output, no error surfaced.
    pub(crate) fn lookup_contained(
        &self,
        fingerprint: u64,
        network: &Network,
        key: &ChoiceKey,
    ) -> Option<Arc<PreparedFlow>> {
        catch_unwind(AssertUnwindSafe(|| self.lookup(fingerprint, network, key)))
            .ok()
            .flatten()
    }

    /// [`insert`](Self::insert) with fault containment: an injected panic
    /// (the `cache::prepared_insert` failpoint) skips the insert — the job
    /// already holds its artifact, only future warm starts are lost.
    pub(crate) fn insert_contained(&self, flow: Arc<PreparedFlow>) {
        let _ = catch_unwind(AssertUnwindSafe(|| self.insert(flow)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_benchmarks::demo_adder_gt;

    fn build_prepared(network: &Network, config: &MchConfig) -> Arc<PreparedFlow> {
        let key = ChoiceKey::from_config(config);
        let fingerprint = flow_fingerprint(network, &key);
        Arc::new(PreparedFlow::build(network, config, key, fingerprint, None))
    }

    #[test]
    fn lookup_hits_on_equal_inputs_and_misses_on_different_keys() {
        let net = demo_adder_gt();
        let config = MchConfig::lut_area();
        let flow = build_prepared(&net, &config);
        let cache = PreparedFlowCache::new(PreparedFlowCache::DEFAULT_CAPACITY_BYTES);
        cache.insert(Arc::clone(&flow));
        assert_eq!(cache.entries(), 1);

        let key = ChoiceKey::from_config(&config);
        let hit = cache
            .lookup(flow_fingerprint(&net, &key), &net, &key)
            .expect("equal inputs must hit");
        assert!(Arc::ptr_eq(&hit, &flow), "the hit must be the stored artifact");

        // A config differing in a choice-relevant field misses...
        let other = ChoiceKey::from_config(&MchConfig::balanced());
        assert!(cache.lookup(flow_fingerprint(&net, &other), &net, &other).is_none());
        // ...but one differing only in thread count normalises to the same key.
        let threaded = ChoiceKey::from_config(&config.clone().with_threads(7));
        assert_eq!(key, threaded);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn duplicate_inserts_keep_the_incumbent() {
        let net = demo_adder_gt();
        let config = MchConfig::lut_area();
        let first = build_prepared(&net, &config);
        let second = build_prepared(&net, &config);
        let cache = PreparedFlowCache::new(PreparedFlowCache::DEFAULT_CAPACITY_BYTES);
        cache.insert(Arc::clone(&first));
        cache.insert(second);
        assert_eq!(cache.entries(), 1);
        let key = ChoiceKey::from_config(&config);
        let hit = cache
            .lookup(flow_fingerprint(&net, &key), &net, &key)
            .expect("hit");
        assert!(Arc::ptr_eq(&hit, &first));
    }

    #[test]
    fn byte_bound_evicts_least_recently_used_first() {
        let net = demo_adder_gt();
        let a = build_prepared(&net, &MchConfig::lut_area());
        let b = build_prepared(&net, &MchConfig::balanced());
        // A capacity that holds exactly one artifact of this size.
        let cache = PreparedFlowCache::new(a.approx_bytes() + b.approx_bytes() / 2);
        cache.insert(Arc::clone(&a));
        cache.insert(Arc::clone(&b));
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.evictions(), 1);
        // `a` (older stamp) was the one evicted.
        let key_b = ChoiceKey::from_config(&MchConfig::balanced());
        assert!(cache.lookup(b.fingerprint(), &net, &key_b).is_some());
        let key_a = ChoiceKey::from_config(&MchConfig::lut_area());
        assert!(cache.lookup(a.fingerprint(), &net, &key_a).is_none());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let net = demo_adder_gt();
        let config = MchConfig::lut_area();
        let flow = build_prepared(&net, &config);
        let cache = PreparedFlowCache::new(0);
        assert!(!cache.is_enabled());
        cache.insert(Arc::clone(&flow));
        assert_eq!((cache.entries(), cache.bytes()), (0, 0));
        let key = ChoiceKey::from_config(&config);
        assert!(cache.lookup(flow.fingerprint(), &net, &key).is_none());
    }

    #[test]
    fn prepared_footprint_grows_with_mapper_state() {
        let net = demo_adder_gt();
        let config = MchConfig::lut_area();
        let flow = build_prepared(&net, &config);
        let before = flow.approx_bytes();
        assert!(before > 0);
        let lut = mch_techlib::LutLibrary::k6();
        let params = LutMapParams::new(config.objective);
        let _ = flow.map_lut(&lut, &params);
        assert!(
            flow.approx_bytes() > before,
            "building the LUT prepared state must grow the accounted footprint"
        );
    }
}
