//! Reporting helpers shared by the experiment harness: per-flow metrics,
//! geometric means and improvement percentages.

/// Metrics of one (benchmark, flow) cell of an experiment table.
#[derive(Clone, PartialEq, Debug)]
pub struct FlowMetrics {
    /// Flow name (e.g. `"MCH balanced"`).
    pub flow: String,
    /// Benchmark name (e.g. `"adder"`).
    pub benchmark: String,
    /// Mapped area (µm² for ASIC, LUT count for FPGA).
    pub area: f64,
    /// Mapped delay (ps for ASIC, LUT levels for FPGA).
    pub delay: f64,
    /// Wall-clock runtime of the flow in seconds.
    pub seconds: f64,
}

/// Geometric mean of a list of positive values (zeroes are clamped to a small
/// epsilon so an occasional zero-delay control circuit does not collapse the
/// mean).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().map(|v| v.max(1e-9).ln()).sum();
    (sum / values.len() as f64).exp()
}

/// Relative improvement of `new` over `baseline`, in percent (positive means
/// `new` is smaller/better).
pub fn improvement_percent(baseline: f64, new: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (baseline - new) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_uniform_values() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn improvement_sign_convention() {
        assert!((improvement_percent(200.0, 150.0) - 25.0).abs() < 1e-12);
        assert!((improvement_percent(100.0, 120.0) + 20.0).abs() < 1e-12);
        assert_eq!(improvement_percent(0.0, 5.0), 0.0);
    }

    #[test]
    fn metrics_struct_is_plain_data() {
        let m = FlowMetrics {
            flow: "MCH balanced".into(),
            benchmark: "adder".into(),
            area: 1.0,
            delay: 2.0,
            seconds: 0.1,
        };
        assert_eq!(m.clone(), m);
    }
}
