//! The batched mapping service: many circuits, one worker pool, one NPN
//! database.
//!
//! A [`MappingService`] is the "mapping farm" front end of the ROADMAP: it
//! accepts a batch of [`Job`]s (network + flow kind + [`MchConfig`] +
//! optional [`FlowBudget`]) and runs them **concurrently** over the shared
//! process-wide [`WorkerPool`]. Each in-flight job gets a coordinator thread
//! that drives the ordinary flow phases; those phases push their tasks onto
//! the pool's shared injector queue, so pool workers steal work *across*
//! circuits — a small job's tasks fill the idle tail of a big job's levels
//! instead of waiting for it to finish.
//!
//! # Determinism
//!
//! Batching is **output-invisible**: every job's result — netlist bytes,
//! metrics, degradation report — is byte-identical to a solo run of that job
//! at the same `config.threads`, whatever the batch composition, submission
//! order, in-flight cap or machine load (`tests/service_determinism.rs`).
//! Two mechanisms make that structural rather than asserted:
//!
//! * all within-job ordering is unchanged — each job runs the exact
//!   plan/claim/commit pipeline of a solo flow, committing in its own
//!   per-job commit order; cross-job interaction happens only through work
//!   stealing, which never reorders a job's own commits;
//! * the jobs share one service-wide [`SharedNpnCache`], but it is a pure
//!   value cache: `synthesize` is a pure function of the NPN class key, so a
//!   class network fetched from the shared store is identical to the one the
//!   job would have synthesised privately, and per-job hit/miss statistics
//!   are counted against the per-job database only.
//!
//! # Fault isolation
//!
//! A panic injected into one job (any `fault-injection` site, including the
//! service's own `service::submit` / `service::job_boundary` failpoints) or
//! a budget breach surfaces as **that job's** [`FlowError`] /
//! `DegradationReport`; sibling jobs in the same batch and every later batch
//! are byte-identical to pristine runs, and the pool stays reusable
//! (`tests/service_faults.rs`, `tests/service_budgets.rs`).
//!
//! # Nested submission
//!
//! Submitting a batch from *inside* a pool worker (a job that spawns a
//! sub-flow) must not deadlock the pool. [`MappingService::run_batch`]
//! checks [`WorkerPool::is_worker`] — the same recursion guard every
//! parallel phase uses — and falls back to running the batch serially inline
//! on the calling worker; the nested jobs' phases then take their own serial
//! fallbacks. Results are identical to a top-level submission.

use crate::flow::{
    contain, try_asic_flow_mch_shared, try_lut_flow_mch_fused_shared, try_lut_flow_mch_shared,
    FlowShared,
};
use crate::prepared::PreparedFlowCache;
use crate::{AsicFlowResult, DegradationReport, FlowBudget, FlowError, LutFlowResult, MchConfig};
use mch_choice::SharedNpnCache;
use mch_cut::WorkerPool;
use mch_logic::Network;
use mch_techlib::{Library, LutLibrary};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Which mapping flow a [`Job`] runs.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// The MCH ASIC flow against a standard-cell library.
    AsicMch(Library),
    /// The MCH K-LUT flow against an FPGA LUT library.
    LutMch(LutLibrary),
    /// The fused MCH K-LUT flow: an ASIC guide cover over the cell library
    /// feeds the LUT cover per [`MchConfig::fusion`] (see
    /// [`mch_mapper::fusion`]). With [`FusionMode::Off`](mch_mapper::FusionMode)
    /// in the config this is byte-identical to [`JobKind::LutMch`].
    LutFusedMch(LutLibrary, Library),
    /// A parameter sweep: the base flow kind run once per variant config over
    /// one circuit, in variant order. The service's warm-start cache
    /// ([`PreparedFlowCache`]) makes the variants after the first reuse the
    /// choice network and cut/candidate enumeration whenever their
    /// choice-relevant config subset matches — every variant's bytes are
    /// still identical to a cold solo run of that variant. Sweeps cannot
    /// nest; the base kind must be one of the three flow kinds.
    Sweep(Box<JobKind>, Vec<MchConfig>),
}

/// One unit of service work: a circuit, the flow to run on it, its
/// configuration and an optional resource budget.
#[derive(Clone, Debug)]
pub struct Job {
    /// Caller-chosen job name, echoed on the [`JobReport`].
    pub name: String,
    /// The input network to map.
    pub network: Network,
    /// Which flow to run.
    pub kind: JobKind,
    /// Flow configuration; `config.threads` is authoritative for the job's
    /// internal phases, exactly as in a solo flow call.
    pub config: MchConfig,
    /// Per-job resource bounds; `None` runs unbudgeted.
    pub budget: Option<FlowBudget>,
}

impl Job {
    /// An MCH ASIC mapping job.
    pub fn asic(
        name: impl Into<String>,
        network: Network,
        library: Library,
        config: MchConfig,
    ) -> Job {
        Job {
            name: name.into(),
            network,
            kind: JobKind::AsicMch(library),
            config,
            budget: None,
        }
    }

    /// An MCH K-LUT mapping job.
    pub fn lut(
        name: impl Into<String>,
        network: Network,
        lut: LutLibrary,
        config: MchConfig,
    ) -> Job {
        Job {
            name: name.into(),
            network,
            kind: JobKind::LutMch(lut),
            config,
            budget: None,
        }
    }

    /// A fused MCH K-LUT mapping job: `library` drives the ASIC guide cover
    /// (see [`JobKind::LutFusedMch`]); `config.fusion` selects the fusion
    /// mode.
    pub fn lut_fused(
        name: impl Into<String>,
        network: Network,
        lut: LutLibrary,
        library: Library,
        config: MchConfig,
    ) -> Job {
        Job {
            name: name.into(),
            network,
            kind: JobKind::LutFusedMch(lut, library),
            config,
            budget: None,
        }
    }

    /// A parameter-sweep job: runs `kind` once per config in `variants`
    /// (in order) over one circuit, reusing the params-independent half of
    /// the flow across variants via the service's warm-start cache. The
    /// job-level `config` field is set to the first variant but is **not**
    /// consulted — the variant list is authoritative. An attached
    /// [`FlowBudget`] applies to every variant independently.
    pub fn sweep(
        name: impl Into<String>,
        network: Network,
        kind: JobKind,
        variants: Vec<MchConfig>,
    ) -> Job {
        let config = variants
            .first()
            .cloned()
            .unwrap_or_else(MchConfig::balanced);
        Job {
            name: name.into(),
            network,
            kind: JobKind::Sweep(Box::new(kind), variants),
            config,
            budget: None,
        }
    }

    /// Returns the same job under a [`FlowBudget`]; on breach the job
    /// degrades through the deterministic ladder instead of failing.
    pub fn with_budget(mut self, budget: FlowBudget) -> Job {
        self.budget = Some(budget);
        self
    }
}

/// A completed job's output: the ordinary flow result of the requested kind.
#[derive(Clone, Debug)]
pub enum JobOutput {
    /// Result of an [`JobKind::AsicMch`] job.
    Asic(AsicFlowResult),
    /// Result of a [`JobKind::LutMch`] job.
    Lut(LutFlowResult),
    /// Result of a [`JobKind::Sweep`] job: one [`JobReport`] per variant, in
    /// variant order, named `<job>#<index>`. Each variant's outcome is
    /// independent — a variant failure does not fail its siblings or the
    /// sweep job itself.
    Sweep(Vec<JobReport>),
}

/// The degradation report of a sweep job as a whole: per-variant degradation
/// lives on the variant results.
static EMPTY_DEGRADATION: DegradationReport = DegradationReport {
    steps: Vec::new(),
    deadline_breached: false,
};

impl JobOutput {
    /// Whether the mapped netlist was verified equivalent to the input; for
    /// a sweep, whether **every** variant succeeded and verified.
    pub fn verified(&self) -> bool {
        match self {
            JobOutput::Asic(r) => r.verified,
            JobOutput::Lut(r) => r.verified,
            JobOutput::Sweep(reports) => reports
                .iter()
                .all(|r| r.outcome.as_ref().is_ok_and(|out| out.verified())),
        }
    }

    /// What the budget supervisor shed to keep the job inside its budget.
    /// A sweep job reports no degradation of its own — inspect the variant
    /// reports in [`JobOutput::as_sweep`] instead.
    pub fn degradation(&self) -> &crate::DegradationReport {
        match self {
            JobOutput::Asic(r) => &r.degradation,
            JobOutput::Lut(r) => &r.degradation,
            JobOutput::Sweep(_) => &EMPTY_DEGRADATION,
        }
    }

    /// The ASIC result, if this was an ASIC job.
    pub fn as_asic(&self) -> Option<&AsicFlowResult> {
        match self {
            JobOutput::Asic(r) => Some(r),
            _ => None,
        }
    }

    /// The LUT result, if this was a LUT job.
    pub fn as_lut(&self) -> Option<&LutFlowResult> {
        match self {
            JobOutput::Lut(r) => Some(r),
            _ => None,
        }
    }

    /// The per-variant reports, if this was a sweep job.
    pub fn as_sweep(&self) -> Option<&[JobReport]> {
        match self {
            JobOutput::Sweep(reports) => Some(reports),
            _ => None,
        }
    }
}

/// The per-job report returned by [`MappingService::run_batch`], in
/// submission order: the job's structured outcome plus its wall time.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job's name, echoed from the [`Job`].
    pub name: String,
    /// The flow result, or this job's own structured error — a failure here
    /// says nothing about sibling jobs.
    pub outcome: Result<JobOutput, FlowError>,
    /// Wall-clock seconds from claim to report (measurement; not
    /// deterministic).
    pub seconds: f64,
}

/// Cumulative service telemetry (see [`MappingService::stats`]).
///
/// The job counters are exact; the shared-NPN numbers are cross-job cache
/// telemetry and depend on interleaving — per-job determinism is carried by
/// the per-job flow results instead.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs that returned `Ok` since the service was created.
    pub jobs_succeeded: usize,
    /// Jobs that returned `Err` since the service was created.
    pub jobs_failed: usize,
    /// Distinct NPN classes in the shared store.
    pub shared_npn_classes: usize,
    /// Class syntheses served from the shared store.
    pub shared_npn_hits: usize,
    /// Class syntheses performed (once per class per process).
    pub shared_npn_misses: usize,
    /// Prepared flows currently held by the warm-start cache.
    pub prepared_entries: usize,
    /// Estimated bytes currently held by the warm-start cache.
    pub prepared_bytes: usize,
    /// Flow preparations served from the warm-start cache.
    pub prepared_hits: usize,
    /// Flow preparations that found no cached artifact.
    pub prepared_misses: usize,
    /// Prepared flows evicted by the warm-start cache's byte bound.
    pub prepared_evictions: usize,
}

/// One slot per submitted job: the input is taken exactly once (guarded by
/// the claim cursor) and the report is published back into the same slot, so
/// reports come out in submission order whatever order jobs finish in.
struct JobSlot {
    job: Option<Job>,
    report: Option<JobReport>,
}

/// A long-lived, batched mapping front end over the process-wide
/// [`WorkerPool`] (see the module docs).
///
/// Create one service per process (or per tenant) and feed it batches; the
/// shared NPN store warms monotonically across batches, so repeated traffic
/// gets faster without ever changing a single output byte.
#[derive(Debug)]
pub struct MappingService {
    npn: Arc<SharedNpnCache>,
    prepared: PreparedFlowCache,
    max_in_flight: usize,
    jobs_succeeded: AtomicUsize,
    jobs_failed: AtomicUsize,
}

impl Default for MappingService {
    fn default() -> Self {
        MappingService::new()
    }
}

impl MappingService {
    /// Creates a service with an empty shared NPN store and no in-flight
    /// cap (every job in a batch gets a coordinator immediately).
    pub fn new() -> Self {
        MappingService {
            npn: Arc::new(SharedNpnCache::new()),
            prepared: PreparedFlowCache::new(PreparedFlowCache::DEFAULT_CAPACITY_BYTES),
            max_in_flight: 0,
            jobs_succeeded: AtomicUsize::new(0),
            jobs_failed: AtomicUsize::new(0),
        }
    }

    /// Returns the same service with at most `cap` jobs in flight at once
    /// (`0` = unlimited). `1` serialises job execution in submission order —
    /// outputs are identical either way; only scheduling changes.
    pub fn with_max_in_flight(mut self, cap: usize) -> Self {
        self.max_in_flight = cap;
        self
    }

    /// Returns the same service with a warm-start cache of `bytes` capacity
    /// (estimated artifact bytes; the default is
    /// [`PreparedFlowCache::DEFAULT_CAPACITY_BYTES`]). `0` disables warm
    /// starts entirely — every job prepares cold. Outputs are identical at
    /// every capacity; only throughput changes.
    pub fn with_prepared_capacity(mut self, bytes: usize) -> Self {
        self.prepared = PreparedFlowCache::new(bytes);
        self
    }

    /// Cumulative service telemetry.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            jobs_succeeded: self.jobs_succeeded.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            shared_npn_classes: self.npn.classes(),
            shared_npn_hits: self.npn.hits(),
            shared_npn_misses: self.npn.misses(),
            prepared_entries: self.prepared.entries(),
            prepared_bytes: self.prepared.bytes(),
            prepared_hits: self.prepared.hits(),
            prepared_misses: self.prepared.misses(),
            prepared_evictions: self.prepared.evictions(),
        }
    }

    /// Runs one job to completion on the calling thread (its internal phases
    /// still use the pool per `config.threads`). Equivalent to a one-job
    /// batch.
    pub fn run(&self, job: Job) -> JobReport {
        self.run_job(job)
    }

    /// Runs a batch of jobs and returns one [`JobReport`] per job, in
    /// submission order.
    ///
    /// Up to the in-flight cap, every job gets a coordinator thread; the
    /// coordinators drive their flows' phases, whose tasks land on the shared
    /// pool injector — that is where cross-circuit work stealing happens.
    /// Each job's outcome is independent: a panic or budget breach in one job
    /// is contained to that job's report.
    ///
    /// Called from inside a pool worker (nested submission), the batch runs
    /// serially inline via the [`WorkerPool::is_worker`] recursion guard —
    /// never deadlocking the pool — with identical results.
    pub fn run_batch(&self, jobs: Vec<Job>) -> Vec<JobReport> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let in_flight = match self.max_in_flight {
            0 => n,
            cap => cap.min(n),
        };
        if in_flight <= 1 || WorkerPool::is_worker() {
            // Serial fallback: submission order, same thread — used for the
            // one-job / capped-to-one cases and for nested submission from a
            // pool worker (see the module docs).
            return jobs.into_iter().map(|job| self.run_job(job)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<JobSlot>> = jobs
            .into_iter()
            .map(|job| {
                Mutex::new(JobSlot {
                    job: Some(job),
                    report: None,
                })
            })
            .collect();
        std::thread::scope(|scope| {
            // The calling thread is one coordinator; spawn the rest. Each
            // coordinator claims job indices off the shared cursor until the
            // batch is drained, so small jobs backfill finished coordinators.
            for _ in 1..in_flight {
                scope.spawn(|| self.drain(&cursor, &slots));
            }
            self.drain(&cursor, &slots);
        });
        slots
            .into_iter()
            .map(|slot| {
                let JobSlot { job, report } = slot
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner);
                // Every claimed slot gets a report (run_job contains all job
                // panics); this fallback only guards slot-level poisoning.
                report.unwrap_or_else(|| JobReport {
                    name: job.map(|j| j.name).unwrap_or_default(),
                    outcome: Err(FlowError::WorkerPanic {
                        message: "job coordinator died before publishing a report".to_string(),
                    }),
                    seconds: 0.0,
                })
            })
            .collect()
    }

    /// Coordinator loop: claim the next unclaimed job, run it, publish its
    /// report into its submission slot.
    fn drain(&self, cursor: &AtomicUsize, slots: &[Mutex<JobSlot>]) {
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = slots.get(i) else {
                return;
            };
            let job = slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .job
                .take();
            let Some(job) = job else { continue };
            let report = self.run_job(job);
            slot.lock().unwrap_or_else(PoisonError::into_inner).report = Some(report);
        }
    }

    /// Runs one job with full containment: every panic — from the job's own
    /// phases, its pool tasks, or the service failpoints — becomes this
    /// job's [`FlowError::WorkerPanic`].
    fn run_job(&self, job: Job) -> JobReport {
        let start = Instant::now();
        let Job {
            name,
            network,
            kind,
            config,
            budget,
        } = job;
        let budget = budget.unwrap_or_else(FlowBudget::unlimited);
        let outcome = contain(|| mch_logic::failpoint!("service::submit"))
            .and_then(|()| self.run_flow(&name, &network, &kind, &config, &budget))
            .and_then(|out| {
                contain(|| mch_logic::failpoint!("service::job_boundary")).map(|()| out)
            });
        let counter = if outcome.is_ok() {
            &self.jobs_succeeded
        } else {
            &self.jobs_failed
        };
        counter.fetch_add(1, Ordering::Relaxed);
        JobReport {
            name,
            outcome,
            seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Dispatches one flow (or a sweep of flows) over the service-owned
    /// shared state. For a sweep the variants run serially on this job's
    /// coordinator, in variant order — the warm-start cache turns the
    /// variants after the first into re-solves of the prepared artifact; each
    /// variant's outcome (including containment of its own panics) is
    /// recorded in its own [`JobReport`].
    fn run_flow(
        &self,
        name: &str,
        network: &Network,
        kind: &JobKind,
        config: &MchConfig,
        budget: &FlowBudget,
    ) -> Result<JobOutput, FlowError> {
        let shared = FlowShared {
            npn: Some(&self.npn),
            prepared: self.prepared.is_enabled().then_some(&self.prepared),
        };
        match kind {
            JobKind::AsicMch(library) => {
                try_asic_flow_mch_shared(network, library, config, budget, shared)
                    .map(JobOutput::Asic)
            }
            JobKind::LutMch(lut) => {
                try_lut_flow_mch_shared(network, lut, config, budget, shared).map(JobOutput::Lut)
            }
            JobKind::LutFusedMch(lut, library) => {
                try_lut_flow_mch_fused_shared(network, lut, library, config, budget, shared)
                    .map(JobOutput::Lut)
            }
            JobKind::Sweep(base, variants) => {
                if matches!(**base, JobKind::Sweep(..)) {
                    return Err(FlowError::InvalidJob {
                        reason: "sweeps cannot nest".to_string(),
                    });
                }
                if variants.is_empty() {
                    return Err(FlowError::InvalidJob {
                        reason: "sweep has no variant configs".to_string(),
                    });
                }
                let mut reports = Vec::with_capacity(variants.len());
                for (i, variant) in variants.iter().enumerate() {
                    let variant_start = Instant::now();
                    let variant_name = format!("{name}#{i}");
                    let outcome = self.run_flow(&variant_name, network, base, variant, budget);
                    reports.push(JobReport {
                        name: variant_name,
                        outcome,
                        seconds: variant_start.elapsed().as_secs_f64(),
                    });
                }
                Ok(JobOutput::Sweep(reports))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_benchmarks::demo_adder_gt;
    use mch_techlib::asap7_lite;

    fn lut_job(name: &str, threads: usize) -> Job {
        Job::lut(
            name,
            demo_adder_gt(),
            LutLibrary::k6(),
            MchConfig::lut_area().with_threads(threads),
        )
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let service = MappingService::new();
        assert!(service.run_batch(Vec::new()).is_empty());
        assert_eq!(service.stats(), ServiceStats::default());
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let service = MappingService::new();
        let jobs: Vec<Job> = (0..4).map(|i| lut_job(&format!("job-{i}"), 2)).collect();
        let reports = service.run_batch(jobs);
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["job-0", "job-1", "job-2", "job-3"]);
        for r in &reports {
            let out = r.outcome.as_ref().expect("job failed");
            assert!(out.verified());
        }
        let stats = service.stats();
        assert_eq!(stats.jobs_succeeded, 4);
        assert_eq!(stats.jobs_failed, 0);
        assert!(stats.shared_npn_classes > 0);
    }

    #[test]
    fn asic_and_lut_jobs_mix_in_one_batch() {
        let service = MappingService::new();
        let reports = service.run_batch(vec![
            Job::asic(
                "asic",
                demo_adder_gt(),
                asap7_lite(),
                MchConfig::balanced().with_threads(2),
            ),
            lut_job("lut", 2),
        ]);
        assert!(reports[0].outcome.as_ref().expect("asic").as_asic().is_some());
        assert!(reports[1].outcome.as_ref().expect("lut").as_lut().is_some());
    }

    #[test]
    fn sweep_variants_match_cold_solo_runs_and_warm_hit() {
        let service = MappingService::new();
        let variants = vec![
            MchConfig::lut_area().with_threads(1),
            MchConfig::lut_area().with_threads(1).with_area_rounds(4),
            MchConfig::lut_area().with_threads(1).with_exact_area(true),
        ];
        let report = service.run(Job::sweep(
            "sweep",
            demo_adder_gt(),
            JobKind::LutMch(LutLibrary::k6()),
            variants.clone(),
        ));
        let out = report.outcome.expect("sweep job failed");
        let reports = out.as_sweep().expect("sweep output");
        assert_eq!(reports.len(), variants.len());
        assert!(out.verified());
        assert!(out.degradation().steps.is_empty());
        let cold = MappingService::new().with_prepared_capacity(0);
        for (i, (variant_report, cfg)) in reports.iter().zip(&variants).enumerate() {
            assert_eq!(variant_report.name, format!("sweep#{i}"));
            let warm = variant_report
                .outcome
                .as_ref()
                .expect("variant failed")
                .as_lut()
                .expect("lut result")
                .clone();
            let solo = cold
                .run(Job::lut("solo", demo_adder_gt(), LutLibrary::k6(), cfg.clone()))
                .outcome
                .expect("solo failed");
            assert_eq!(warm.netlist, solo.as_lut().expect("lut result").netlist);
        }
        let stats = service.stats();
        assert!(
            stats.prepared_hits >= variants.len() - 1,
            "later variants must warm-hit: {stats:?}"
        );
        assert_eq!(cold.stats().prepared_entries, 0);
    }

    #[test]
    fn malformed_sweeps_fail_with_invalid_job() {
        let service = MappingService::new();
        let empty = service.run(Job::sweep(
            "empty",
            demo_adder_gt(),
            JobKind::LutMch(LutLibrary::k6()),
            Vec::new(),
        ));
        assert!(matches!(empty.outcome, Err(FlowError::InvalidJob { .. })));
        let nested_kind = JobKind::Sweep(
            Box::new(JobKind::LutMch(LutLibrary::k6())),
            vec![MchConfig::lut_area()],
        );
        let nested = service.run(Job::sweep(
            "nested",
            demo_adder_gt(),
            nested_kind,
            vec![MchConfig::lut_area()],
        ));
        assert!(matches!(nested.outcome, Err(FlowError::InvalidJob { .. })));
        assert_eq!(service.stats().jobs_failed, 2);
    }

    #[test]
    fn invalid_job_fails_alone() {
        let service = MappingService::new();
        let empty = Network::new(mch_logic::NetworkKind::Aig);
        let reports = service.run_batch(vec![
            lut_job("good", 1),
            Job::lut(
                "bad",
                empty,
                LutLibrary::k6(),
                MchConfig::lut_area().with_threads(1),
            ),
        ]);
        assert!(reports[0].outcome.is_ok());
        assert!(matches!(
            reports[1].outcome,
            Err(FlowError::InvalidNetwork { .. })
        ));
        let stats = service.stats();
        assert_eq!((stats.jobs_succeeded, stats.jobs_failed), (1, 1));
    }
}
