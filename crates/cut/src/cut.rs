//! Cut and cut-set data structures.
//!
//! # Memory layout
//!
//! [`Cut`] stores its leaves *inline* as a fixed `[NodeId; 8]` array plus a
//! length byte — [`CutParams`](crate::CutParams) guarantees `k <= 8`, so the
//! array never overflows and no heap allocation is performed per cut. The
//! cut function is a [`TruthTable`], which is itself inline (a single `u64`)
//! whenever the cut has at most six leaves. A 64-bit leaf *signature*
//! (bit `leaf.index() % 64` set per leaf) rides along for O(1) subset and
//! merge-overflow pre-checks.
//!
//! The upshot: for the default `k = 6` mapping configuration, creating,
//! cloning, merging, comparing and storing cuts allocates nothing; the only
//! heap traffic in the cut layer is the one `Vec<Cut>` backing each node's
//! [`CutSet`].
//!
//! [`LeafBuf`] is the stack buffer used while merging leaf sets; it is also
//! the return type of [`Cut::merge_leaves`].

use mch_logic::{NodeId, TruthTable};
use std::cmp::Ordering;
use std::fmt;

/// Hard upper bound on cut size; `CutParams::new` asserts `k <= 8`.
pub const MAX_CUT_SIZE: usize = 8;

/// Mapping-oriented cost estimates of one cut, computed incrementally during
/// enumeration (see [`enumerate_cuts`](crate::enumerate_cuts)).
///
/// * `arrival` — unit-delay arrival time of the cut root through this cut:
///   `1 + max(leaf arrivals)`, with primary inputs and the constant node at 0.
///   This is the depth the LUT mapper would realise if it covered the root
///   with this cut.
/// * `flow` — ABC-style *area flow*: `1 + Σ flow(leaf) / fanout(leaf)`, a
///   sharing-aware estimate of the area charged to this cut. Fanout counts
///   are estimated over the subject graph before mapping.
///
/// Costs are estimates used for *ranking* cuts when the per-node `cut_limit`
/// truncates the set; the mappers still run their own exact arrival/area-flow
/// dynamic programming over the surviving cuts.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct CutCosts {
    /// Unit-delay arrival of the root through this cut.
    pub arrival: u32,
    /// Area flow (sharing-aware area estimate) of this cut.
    pub flow: f32,
}

impl CutCosts {
    /// Zero cost: used for primary inputs, the constant node and as the
    /// placeholder before enumeration fills in real estimates.
    pub const ZERO: CutCosts = CutCosts {
        arrival: 0,
        flow: 0.0,
    };

    /// The depth-first cost key: arrival, ties broken by area flow. Shared by
    /// the [`Cut`] and enumeration-time proto-cut comparators so the two
    /// ranking paths can never drift apart.
    #[inline]
    pub(crate) fn cmp_depth(&self, other: &CutCosts) -> Ordering {
        self.arrival
            .cmp(&other.arrival)
            .then_with(|| self.flow.total_cmp(&other.flow))
    }

    /// The area-first cost key: area flow, ties broken by arrival.
    #[inline]
    pub(crate) fn cmp_area(&self, other: &CutCosts) -> Ordering {
        self.flow
            .total_cmp(&other.flow)
            .then_with(|| self.arrival.cmp(&other.arrival))
    }
}

/// Per-cut-size implementation cost estimates used by the cost-aware cut
/// rankings: `delay[k]` / `area[k]` approximate the delay and area of
/// covering a `k`-leaf cut with one technology element.
///
/// For K-LUT mapping the [`unit`](CutCostModel::unit) model is *exact*
/// (every cut is one LUT level of one LUT). For ASIC mapping the model is
/// derived from the cell library (cheapest cell per input count), so the
/// depth ranking reflects that wide cells are slower than narrow ones.
/// Index 0 covers degenerate constant cuts.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CutCostModel {
    /// Estimated delay of implementing a `k`-leaf cut, indexed by `k`.
    pub delay: [u32; MAX_CUT_SIZE + 1],
    /// Estimated area of implementing a `k`-leaf cut, indexed by `k`.
    pub area: [f32; MAX_CUT_SIZE + 1],
}

impl CutCostModel {
    /// The unit model: every cut costs one delay unit and one area unit.
    /// Exact for K-LUT mapping; the default for plain enumeration.
    pub fn unit() -> Self {
        CutCostModel {
            delay: [1; MAX_CUT_SIZE + 1],
            area: [1.0; MAX_CUT_SIZE + 1],
        }
    }
}

impl Default for CutCostModel {
    fn default() -> Self {
        CutCostModel::unit()
    }
}

/// How a cut set is ranked before truncation to the per-node cut limit.
///
/// The ranking decides *which* cuts a mapper ever sees: once `cut_limit`
/// truncates a node's cut set, cuts ranked below the limit are gone for good.
/// The static [`Structural`](CutCost::Structural) order keeps the smallest
/// cuts; the cost-aware orders use the [`CutCosts`] estimates so the
/// delay-best and area-best cuts survive truncation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum CutCost {
    /// The legacy static key `(size, leaves)`: smaller cuts first, ties broken
    /// lexicographically. Matches the pre-cost-aware behaviour bit for bit.
    #[default]
    Structural,
    /// Depth-first: `(arrival, flow, size, leaves)` — the unit-delay best cut
    /// is always ranked (and therefore kept) first.
    Depth,
    /// Area-first: `(flow, arrival, size, leaves)` — minimum-area-flow cuts
    /// survive truncation first.
    Area,
    /// Mixed ranking: half of the kept cuts are the depth-best, a quarter are
    /// the best area-flow cuts among the rest, and the remaining slots go to
    /// the structurally smallest cuts — so the mapper's delay pass, its
    /// area-recovery passes, and Boolean matching (which prefers small
    /// support) each see their preferred candidates at the same `cut_limit`.
    Hybrid,
}

/// Orders the first `limit` elements of `items` by the hybrid policy: a
/// depth-sorted prefix (`ceil(limit / 2)` slots), then the best remaining
/// elements under the area order (`ceil(limit / 4)` slots), then the
/// structurally smallest of the rest. Elements past `limit` are left in
/// arbitrary order — callers truncate anyway.
pub(crate) fn hybrid_select<T>(
    items: &mut [T],
    limit: usize,
    mut depth_cmp: impl FnMut(&T, &T) -> Ordering,
    mut area_cmp: impl FnMut(&T, &T) -> Ordering,
    mut structural_cmp: impl FnMut(&T, &T) -> Ordering,
) {
    items.sort_unstable_by(&mut depth_cmp);
    if items.len() <= limit {
        return;
    }
    let depth_slots = limit.div_ceil(2);
    let area_slots = limit.div_ceil(4).min(limit - depth_slots);
    let mut select = |slot: usize, cmp: &mut dyn FnMut(&T, &T) -> Ordering| {
        let mut best = slot;
        for i in slot + 1..items.len() {
            if cmp(&items[i], &items[best]) == Ordering::Less {
                best = i;
            }
        }
        items.swap(slot, best);
    };
    for slot in depth_slots..depth_slots + area_slots {
        select(slot, &mut area_cmp);
    }
    for slot in depth_slots + area_slots..limit {
        select(slot, &mut structural_cmp);
    }
}

/// A fixed-capacity, stack-allocated sorted leaf buffer.
///
/// Used as the merge scratch in cut enumeration and as the leaf view handed
/// to [`Cut::new`]. Dereferences to a `&[NodeId]` of its current length.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct LeafBuf {
    len: u8,
    items: [NodeId; MAX_CUT_SIZE],
}

impl LeafBuf {
    /// Creates an empty buffer.
    #[inline]
    pub fn new() -> Self {
        LeafBuf::default()
    }

    /// Creates a buffer holding the given (sorted) leaves.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CUT_SIZE`] leaves are given.
    pub fn from_slice(leaves: &[NodeId]) -> Self {
        assert!(leaves.len() <= MAX_CUT_SIZE, "too many leaves");
        let mut buf = LeafBuf::new();
        buf.items[..leaves.len()].copy_from_slice(leaves);
        buf.len = leaves.len() as u8;
        buf
    }

    /// The filled prefix as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.items[..self.len as usize]
    }

    /// Number of leaves currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if no leaf is held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a leaf without bounds checking beyond a debug assertion.
    #[inline]
    fn push(&mut self, leaf: NodeId) {
        debug_assert!((self.len as usize) < MAX_CUT_SIZE);
        self.items[self.len as usize] = leaf;
        self.len += 1;
    }

    /// Merges two sorted leaf slices, returning `None` when the union exceeds
    /// `max_size` leaves.
    #[inline]
    pub fn merge(a: &[NodeId], b: &[NodeId], max_size: usize) -> Option<LeafBuf> {
        debug_assert!(max_size <= MAX_CUT_SIZE);
        let mut out = LeafBuf::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if out.len() >= max_size {
                return None;
            }
            let (x, y) = (a[i], b[j]);
            let next = match x.cmp(&y) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    x
                }
                std::cmp::Ordering::Less => {
                    i += 1;
                    x
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    y
                }
            };
            out.push(next);
        }
        let (rest, k) = if i < a.len() { (a, i) } else { (b, j) };
        let remaining = rest.len() - k;
        if out.len() + remaining > max_size {
            return None;
        }
        for &l in &rest[k..] {
            out.push(l);
        }
        Some(out)
    }
}

impl std::ops::Deref for LeafBuf {
    type Target = [NodeId];

    #[inline]
    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

/// A single cut: a set of leaves, the root it belongs to, and the root's
/// function expressed over the leaves.
///
/// The truth table is always given for the *positive polarity* of the root
/// node, with leaf `i` of [`Cut::leaves`] bound to truth-table variable `i`.
/// Leaves are stored inline (`[NodeId; 8]` + length), so a `Cut` with at most
/// six leaves performs no heap allocation at all — see the module docs.
#[derive(Clone, Debug)]
pub struct Cut {
    root: NodeId,
    len: u8,
    leaves: [NodeId; MAX_CUT_SIZE],
    signature: u64,
    function: TruthTable,
    costs: CutCosts,
}

/// 64-bit leaf-set signature: bit `l.index() % 64` per leaf.
#[inline]
fn signature_of(leaves: &[NodeId]) -> u64 {
    leaves.iter().fold(0u64, |acc, l| acc | 1 << (l.index() % 64))
}

/// `true` when the sorted leaf list `a` is a subset of (or equal to) the
/// sorted leaf list `b`, given both lists' signatures.
///
/// The signature subset test rejects most non-subsets in O(1); the exact
/// confirmation is a linear two-pointer scan (cheaper than repeated binary
/// searches at these sizes). Shared by [`Cut::dominates`] and the proto-cut
/// filtering inside `enumerate_cuts`.
#[inline]
pub(crate) fn sorted_leaf_subset(a: &[NodeId], a_sig: u64, b: &[NodeId], b_sig: u64) -> bool {
    if a.len() > b.len() || a_sig & !b_sig != 0 {
        return false;
    }
    let mut j = 0;
    'outer: for &l in a {
        while j < b.len() {
            match b[j].cmp(&l) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

impl Cut {
    /// Creates a cut from its parts. Leaves must already be sorted.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CUT_SIZE`] leaves are given.
    pub fn new(root: NodeId, leaves: &[NodeId], function: TruthTable) -> Self {
        assert!(leaves.len() <= MAX_CUT_SIZE, "too many leaves");
        debug_assert!(leaves.windows(2).all(|w| w[0] < w[1]), "leaves must be sorted");
        debug_assert_eq!(function.num_vars(), leaves.len());
        let mut inline = [NodeId::CONST0; MAX_CUT_SIZE];
        inline[..leaves.len()].copy_from_slice(leaves);
        Cut {
            root,
            len: leaves.len() as u8,
            leaves: inline,
            signature: signature_of(leaves),
            function,
            costs: CutCosts::ZERO,
        }
    }

    /// Creates a cut with explicit mapping-cost estimates attached.
    pub fn with_costs(root: NodeId, leaves: &[NodeId], function: TruthTable, costs: CutCosts) -> Self {
        let mut cut = Cut::new(root, leaves, function);
        cut.costs = costs;
        cut
    }

    /// The trivial cut `{node}` whose function is the projection of its leaf.
    pub fn trivial(node: NodeId) -> Self {
        Cut::new(node, &[node], TruthTable::var(1, 0))
    }

    /// The constant cut (no leaves) rooted at the constant node.
    pub fn constant(node: NodeId) -> Self {
        Cut::new(node, &[], TruthTable::zeros(0))
    }

    /// The node this cut is a cut *of*. For cuts inherited from choice nodes
    /// this is the choice node, not the representative.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The sorted leaf nodes.
    #[inline]
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    #[inline]
    pub fn size(&self) -> usize {
        self.len as usize
    }

    /// The 64-bit leaf-set signature (bit `leaf.index() % 64` per leaf).
    #[inline]
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// The root function over the leaves (positive polarity).
    #[inline]
    pub fn function(&self) -> &TruthTable {
        &self.function
    }

    /// The mapping-cost estimates of this cut (see [`CutCosts`]).
    #[inline]
    pub fn costs(&self) -> CutCosts {
        self.costs
    }

    /// Unit-delay arrival of the root through this cut.
    #[inline]
    pub fn arrival(&self) -> u32 {
        self.costs.arrival
    }

    /// Area flow (sharing-aware area estimate) of this cut.
    #[inline]
    pub fn area_flow(&self) -> f32 {
        self.costs.flow
    }

    /// Overwrites the mapping-cost estimates (used when a cut is transferred
    /// onto another node and its costs must be recomputed in that context).
    #[inline]
    pub fn set_costs(&mut self, costs: CutCosts) {
        self.costs = costs;
    }

    /// Returns a copy of this cut re-rooted at `root` with the function
    /// optionally complemented (used when transferring cuts from choice nodes
    /// to their representatives).
    pub fn reroot(&self, root: NodeId, complement: bool) -> Cut {
        Cut {
            root,
            len: self.len,
            leaves: self.leaves,
            signature: self.signature,
            function: if complement {
                self.function.not()
            } else {
                self.function.clone()
            },
            costs: self.costs,
        }
    }

    /// Compares two cuts by the `(arrival, flow, size, leaves)` depth-first
    /// key.
    #[inline]
    pub(crate) fn cmp_depth(&self, other: &Cut) -> Ordering {
        self.costs
            .cmp_depth(&other.costs)
            .then_with(|| self.cmp_structural(other))
    }

    /// Compares two cuts by the `(flow, arrival, size, leaves)` area-first
    /// key.
    #[inline]
    pub(crate) fn cmp_area(&self, other: &Cut) -> Ordering {
        self.costs
            .cmp_area(&other.costs)
            .then_with(|| self.cmp_structural(other))
    }

    /// Compares two cuts by the static `(size, leaves)` key.
    #[inline]
    pub(crate) fn cmp_structural(&self, other: &Cut) -> Ordering {
        self.size()
            .cmp(&other.size())
            .then_with(|| self.leaves().cmp(other.leaves()))
    }

    /// Returns `true` if this cut is the trivial cut of its root.
    #[inline]
    pub fn is_trivial(&self) -> bool {
        self.len == 1 && self.leaves[0] == self.root
    }

    /// Returns `true` when every leaf of `self` is also a leaf of `other`
    /// (signature-gated subset test: the O(1) signature check rejects most
    /// non-subsets before the exact two-pointer scan).
    #[inline]
    pub fn dominates(&self, other: &Cut) -> bool {
        sorted_leaf_subset(
            self.leaves(),
            self.signature,
            other.leaves(),
            other.signature,
        )
    }

    /// Merges the leaf sets of two cuts into a stack buffer, returning `None`
    /// if the union has more than `max_size` leaves.
    ///
    /// The popcount of the combined signatures lower-bounds the union size,
    /// so clearly oversized merges are rejected in O(1) before the scan.
    #[inline]
    pub fn merge_leaves(a: &Cut, b: &Cut, max_size: usize) -> Option<LeafBuf> {
        if (a.signature | b.signature).count_ones() as usize > max_size {
            return None;
        }
        LeafBuf::merge(a.leaves(), b.leaves(), max_size)
    }
}

impl PartialEq for Cut {
    fn eq(&self, other: &Self) -> bool {
        self.root == other.root
            && self.leaves() == other.leaves()
            && self.function == other.function
    }
}

impl Eq for Cut {}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{{", self.root)?;
        for (i, l) in self.leaves().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// A bounded, dominance-filtered collection of cuts of one node.
#[derive(Clone, Debug, Default)]
pub struct CutSet {
    cuts: Vec<Cut>,
}

impl CutSet {
    /// Creates an empty cut set.
    pub fn new() -> Self {
        CutSet { cuts: Vec::new() }
    }

    /// The cuts, best first (insertion order after filtering and truncation).
    pub fn iter(&self) -> impl Iterator<Item = &Cut> {
        self.cuts.iter()
    }

    /// Number of cuts stored.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Returns `true` if no cut is stored.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// Returns the cut at `index`.
    pub fn get(&self, index: usize) -> Option<&Cut> {
        self.cuts.get(index)
    }

    /// Builds a set from already-filtered cuts with an exactly-sized backing
    /// vector (the choice-transfer path rebuilds arena spans through this).
    pub fn from_cuts(cuts: &[Cut]) -> CutSet {
        let mut owned = Vec::with_capacity(cuts.len());
        owned.extend(cuts.iter().cloned());
        CutSet { cuts: owned }
    }

    /// Consumes the set, returning the backing vector (best-ranked first).
    pub fn into_vec(self) -> Vec<Cut> {
        self.cuts
    }

    /// Adds a cut unless it is dominated by (or equal to) an existing cut;
    /// removes cuts the new one strictly dominates. Returns `true` if the cut
    /// was inserted.
    ///
    /// A single signature-gated pass decides rejection: `c.dominates(&cut)`
    /// covers both the strict-domination and the duplicate-leaves case, so the
    /// two scans the naive formulation needs are fused into one.
    pub fn insert(&mut self, cut: Cut) -> bool {
        if self.cuts.iter().any(|c| c.dominates(&cut)) {
            return false;
        }
        // No existing cut dominates (or equals) the new one, so any cut the
        // new one dominates is strictly larger and must go.
        self.cuts.retain(|c| !cut.dominates(c));
        self.cuts.push(cut);
        true
    }

    /// Appends a cut without any dominance filtering (used when inheriting
    /// choice-node cuts, which must survive even if structurally larger).
    /// Exact duplicates (same root and leaves) are still rejected, with the
    /// signature comparison screening out non-candidates cheaply.
    pub fn push_unchecked(&mut self, cut: Cut) {
        if self.cuts.iter().any(|c| {
            c.signature == cut.signature && c.root == cut.root && c.leaves() == cut.leaves()
        }) {
            return;
        }
        self.cuts.push(cut);
    }

    /// Sorts the cuts by `key` (ascending) and truncates to `limit`, always
    /// keeping the trivial cut of `root` if present.
    pub fn prioritize<K: Ord>(&mut self, limit: usize, mut key: impl FnMut(&Cut) -> K) {
        self.cuts.sort_by_key(|c| key(c));
        self.truncate_keeping_trivial(limit);
    }

    /// The default static priority order — smaller cuts first, ties broken by
    /// the lexicographic leaf order — implemented without the per-comparison
    /// key allocation a `(size, leaves.to_vec())` sort key would incur.
    pub fn prioritize_default(&mut self, limit: usize) {
        self.prioritize_by(limit, CutCost::Structural);
    }

    /// Sorts the cuts by the given [`CutCost`] ranking and truncates to
    /// `limit`, always keeping the trivial cut of the root if present.
    ///
    /// For [`CutCost::Hybrid`] the kept set is a blend: the depth-best half
    /// plus the best area-flow cuts among the rest (see [`CutCost`]).
    pub fn prioritize_by(&mut self, limit: usize, cost: CutCost) {
        match cost {
            CutCost::Structural => self.cuts.sort_unstable_by(Cut::cmp_structural),
            CutCost::Depth => self.cuts.sort_unstable_by(Cut::cmp_depth),
            CutCost::Area => self.cuts.sort_unstable_by(Cut::cmp_area),
            CutCost::Hybrid => hybrid_select(
                &mut self.cuts,
                limit,
                Cut::cmp_depth,
                Cut::cmp_area,
                Cut::cmp_structural,
            ),
        }
        self.truncate_keeping_trivial(limit);
    }

    fn truncate_keeping_trivial(&mut self, limit: usize) {
        if self.cuts.len() > limit {
            let trivial = self.cuts.iter().position(|c| c.is_trivial());
            if let Some(pos) = trivial {
                if pos >= limit {
                    let t = self.cuts.remove(pos);
                    self.cuts.truncate(limit.saturating_sub(1));
                    self.cuts.push(t);
                    return;
                }
            }
            self.cuts.truncate(limit);
        }
    }
}

impl<'a> IntoIterator for &'a CutSet {
    type Item = &'a Cut;
    type IntoIter = std::slice::Iter<'a, Cut>;

    fn into_iter(self) -> Self::IntoIter {
        self.cuts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn trivial_cut_shape() {
        let c = Cut::trivial(node(5));
        assert!(c.is_trivial());
        assert_eq!(c.size(), 1);
        assert_eq!(c.function().num_vars(), 1);
        assert!(c.function().is_inline());
    }

    #[test]
    fn domination() {
        let small = Cut::new(node(9), &[node(1), node(2)], TruthTable::zeros(2));
        let big = Cut::new(node(9), &[node(1), node(2), node(3)], TruthTable::zeros(3));
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        // A cut dominates itself (subset-or-equal semantics).
        assert!(small.dominates(&small));
    }

    #[test]
    fn domination_with_signature_collision() {
        // Leaves 1 and 65 collide in the 64-bit signature; the exact scan
        // must still reject the false subset.
        let a = Cut::new(node(99), &[node(65)], TruthTable::zeros(1));
        let b = Cut::new(node(99), &[node(1), node(2)], TruthTable::zeros(2));
        assert!(!a.dominates(&b));
    }

    #[test]
    fn merge_respects_size_limit() {
        let a = Cut::new(node(9), &[node(1), node(2)], TruthTable::zeros(2));
        let b = Cut::new(node(9), &[node(2), node(3)], TruthTable::zeros(2));
        let merged = Cut::merge_leaves(&a, &b, 4).expect("fits");
        assert_eq!(merged.as_slice(), &[node(1), node(2), node(3)]);
        assert_eq!(Cut::merge_leaves(&a, &b, 2), None);
    }

    #[test]
    fn merge_buf_handles_disjoint_and_contained() {
        let a = [node(1), node(4)];
        let b = [node(2), node(3), node(5)];
        let m = LeafBuf::merge(&a, &b, 8).expect("fits");
        assert_eq!(m.as_slice(), &[node(1), node(2), node(3), node(4), node(5)]);
        let m = LeafBuf::merge(&a, &a, 2).expect("identical sets fit");
        assert_eq!(m.as_slice(), &a);
        assert_eq!(LeafBuf::merge(&a, &b, 4), None);
    }

    #[test]
    fn cut_set_filters_dominated() {
        let mut set = CutSet::new();
        let big = Cut::new(node(9), &[node(1), node(2), node(3)], TruthTable::zeros(3));
        let small = Cut::new(node(9), &[node(1), node(2)], TruthTable::zeros(2));
        assert!(set.insert(big.clone()));
        assert!(set.insert(small.clone()));
        // The dominated bigger cut is removed.
        assert_eq!(set.len(), 1);
        assert_eq!(set.get(0).unwrap().leaves(), small.leaves());
        // Re-inserting the dominated cut is rejected.
        assert!(!set.insert(big));
        // Duplicate leaves are rejected too.
        assert!(!set.insert(small));
    }

    #[test]
    fn prioritize_keeps_trivial_cut() {
        let mut set = CutSet::new();
        set.push_unchecked(Cut::new(node(4), &[node(1), node(2)], TruthTable::zeros(2)));
        set.push_unchecked(Cut::new(node(4), &[node(1), node(3)], TruthTable::zeros(2)));
        set.push_unchecked(Cut::trivial(node(4)));
        set.prioritize_default(2);
        assert_eq!(set.len(), 2);
        assert!(set.iter().any(|c| c.is_trivial()));
    }

    #[test]
    fn prioritize_default_matches_keyed_sort() {
        let cuts = [
            Cut::new(node(9), &[node(2), node(3)], TruthTable::zeros(2)),
            Cut::new(node(9), &[node(1), node(2), node(3)], TruthTable::zeros(3)),
            Cut::new(node(9), &[node(1), node(4)], TruthTable::zeros(2)),
            Cut::trivial(node(9)),
        ];
        let mut a = CutSet::new();
        let mut b = CutSet::new();
        for c in &cuts {
            a.push_unchecked(c.clone());
            b.push_unchecked(c.clone());
        }
        a.prioritize(8, |c| (c.size(), c.leaves().to_vec()));
        b.prioritize_default(8);
        let ka: Vec<_> = a.iter().map(|c| c.leaves().to_vec()).collect();
        let kb: Vec<_> = b.iter().map(|c| c.leaves().to_vec()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn push_unchecked_deduplicates_by_root_and_leaves() {
        let mut set = CutSet::new();
        let c = Cut::new(node(4), &[node(1), node(2)], TruthTable::zeros(2));
        set.push_unchecked(c.clone());
        set.push_unchecked(c.clone());
        assert_eq!(set.len(), 1);
        // Same leaves, different root: kept.
        set.push_unchecked(c.reroot(node(5), false));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn reroot_complements_function() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let cut = Cut::new(node(7), &[node(1), node(2)], a.and(&b));
        let r = cut.reroot(node(9), true);
        assert_eq!(r.root(), node(9));
        assert_eq!(*r.function(), a.and(&b).not());
    }

    #[test]
    fn from_cuts_is_exactly_sized() {
        let cuts: Vec<Cut> = (1..6).map(|i| Cut::trivial(node(i))).collect();
        let set = CutSet::from_cuts(&cuts);
        assert_eq!(set.len(), 5);
        assert!(set.iter().all(|c| c.is_trivial()));
    }
}
