//! Cut and cut-set data structures.

use mch_logic::{NodeId, TruthTable};
use std::fmt;

/// A single cut: a set of leaves, the root it belongs to, and the root's
/// function expressed over the leaves.
///
/// The truth table is always given for the *positive polarity* of the root
/// node, with leaf `i` of [`Cut::leaves`] bound to truth-table variable `i`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cut {
    root: NodeId,
    leaves: Vec<NodeId>,
    signature: u64,
    function: TruthTable,
}

impl Cut {
    /// Creates a cut from its parts. Leaves must already be sorted.
    pub fn new(root: NodeId, leaves: Vec<NodeId>, function: TruthTable) -> Self {
        debug_assert!(leaves.windows(2).all(|w| w[0] < w[1]), "leaves must be sorted");
        debug_assert_eq!(function.num_vars(), leaves.len());
        let signature = leaves.iter().fold(0u64, |acc, l| acc | 1 << (l.index() % 64));
        Cut {
            root,
            leaves,
            signature,
            function,
        }
    }

    /// The trivial cut `{node}` whose function is the projection of its leaf.
    pub fn trivial(node: NodeId) -> Self {
        Cut::new(node, vec![node], TruthTable::var(1, 0))
    }

    /// The constant cut (no leaves) rooted at the constant node.
    pub fn constant(node: NodeId) -> Self {
        Cut::new(node, vec![], TruthTable::zeros(0))
    }

    /// The node this cut is a cut *of*. For cuts inherited from choice nodes
    /// this is the choice node, not the representative.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The sorted leaf nodes.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// The root function over the leaves (positive polarity).
    pub fn function(&self) -> &TruthTable {
        &self.function
    }

    /// Returns a copy of this cut re-rooted at `root` with the function
    /// optionally complemented (used when transferring cuts from choice nodes
    /// to their representatives).
    pub fn reroot(&self, root: NodeId, complement: bool) -> Cut {
        Cut {
            root,
            leaves: self.leaves.clone(),
            signature: self.signature,
            function: if complement {
                self.function.not()
            } else {
                self.function.clone()
            },
        }
    }

    /// Returns `true` if this cut is the trivial cut of its root.
    pub fn is_trivial(&self) -> bool {
        self.leaves.len() == 1 && self.leaves[0] == self.root
    }

    /// Quick signature-based subset pre-check followed by the exact test:
    /// `true` when every leaf of `self` is also a leaf of `other`.
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() {
            return false;
        }
        if self.signature & !other.signature != 0 {
            return false;
        }
        self.leaves.iter().all(|l| other.leaves.binary_search(l).is_ok())
    }

    /// Merges the leaf sets of two cuts, returning `None` if the union has
    /// more than `max_size` leaves.
    pub fn merge_leaves(a: &Cut, b: &Cut, max_size: usize) -> Option<Vec<NodeId>> {
        let mut out = Vec::with_capacity(a.leaves.len() + b.leaves.len());
        let (mut i, mut j) = (0, 0);
        while i < a.leaves.len() || j < b.leaves.len() {
            let next = match (a.leaves.get(i), b.leaves.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            out.push(next);
            if out.len() > max_size {
                return None;
            }
        }
        Some(out)
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{{", self.root)?;
        for (i, l) in self.leaves.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// A bounded, dominance-filtered collection of cuts of one node.
#[derive(Clone, Debug, Default)]
pub struct CutSet {
    cuts: Vec<Cut>,
}

impl CutSet {
    /// Creates an empty cut set.
    pub fn new() -> Self {
        CutSet { cuts: Vec::new() }
    }

    /// The cuts, best first (insertion order after filtering and truncation).
    pub fn iter(&self) -> impl Iterator<Item = &Cut> {
        self.cuts.iter()
    }

    /// Number of cuts stored.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Returns `true` if no cut is stored.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// Returns the cut at `index`.
    pub fn get(&self, index: usize) -> Option<&Cut> {
        self.cuts.get(index)
    }

    /// Adds a cut unless it is dominated by an existing cut; removes cuts the
    /// new one dominates. Returns `true` if the cut was inserted.
    pub fn insert(&mut self, cut: Cut) -> bool {
        if self.cuts.iter().any(|c| c.dominates(&cut) && c.leaves() != cut.leaves()) {
            return false;
        }
        if self.cuts.iter().any(|c| c.leaves() == cut.leaves()) {
            return false;
        }
        self.cuts.retain(|c| !cut.dominates(c) || c.leaves() == cut.leaves());
        self.cuts.push(cut);
        true
    }

    /// Appends a cut without any dominance filtering (used when inheriting
    /// choice-node cuts, which must survive even if structurally larger).
    pub fn push_unchecked(&mut self, cut: Cut) {
        if self.cuts.iter().any(|c| c.leaves() == cut.leaves() && c.root() == cut.root()) {
            return;
        }
        self.cuts.push(cut);
    }

    /// Sorts the cuts by `key` (ascending) and truncates to `limit`, always
    /// keeping the trivial cut of `root` if present.
    pub fn prioritize<K: Ord>(&mut self, limit: usize, mut key: impl FnMut(&Cut) -> K) {
        self.cuts.sort_by_key(|c| key(c));
        if self.cuts.len() > limit {
            let trivial = self.cuts.iter().position(|c| c.is_trivial());
            if let Some(pos) = trivial {
                if pos >= limit {
                    let t = self.cuts.remove(pos);
                    self.cuts.truncate(limit.saturating_sub(1));
                    self.cuts.push(t);
                    return;
                }
            }
            self.cuts.truncate(limit);
        }
    }
}

impl<'a> IntoIterator for &'a CutSet {
    type Item = &'a Cut;
    type IntoIter = std::slice::Iter<'a, Cut>;

    fn into_iter(self) -> Self::IntoIter {
        self.cuts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn trivial_cut_shape() {
        let c = Cut::trivial(node(5));
        assert!(c.is_trivial());
        assert_eq!(c.size(), 1);
        assert_eq!(c.function().num_vars(), 1);
    }

    #[test]
    fn domination() {
        let small = Cut::new(node(9), vec![node(1), node(2)], TruthTable::zeros(2));
        let big = Cut::new(node(9), vec![node(1), node(2), node(3)], TruthTable::zeros(3));
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
    }

    #[test]
    fn merge_respects_size_limit() {
        let a = Cut::new(node(9), vec![node(1), node(2)], TruthTable::zeros(2));
        let b = Cut::new(node(9), vec![node(2), node(3)], TruthTable::zeros(2));
        assert_eq!(
            Cut::merge_leaves(&a, &b, 4),
            Some(vec![node(1), node(2), node(3)])
        );
        assert_eq!(Cut::merge_leaves(&a, &b, 2), None);
    }

    #[test]
    fn cut_set_filters_dominated() {
        let mut set = CutSet::new();
        let big = Cut::new(node(9), vec![node(1), node(2), node(3)], TruthTable::zeros(3));
        let small = Cut::new(node(9), vec![node(1), node(2)], TruthTable::zeros(2));
        assert!(set.insert(big.clone()));
        assert!(set.insert(small.clone()));
        // The dominated bigger cut is removed.
        assert_eq!(set.len(), 1);
        assert_eq!(set.get(0).unwrap().leaves(), small.leaves());
        // Re-inserting the dominated cut is rejected.
        assert!(!set.insert(big));
    }

    #[test]
    fn prioritize_keeps_trivial_cut() {
        let mut set = CutSet::new();
        set.push_unchecked(Cut::new(node(4), vec![node(1), node(2)], TruthTable::zeros(2)));
        set.push_unchecked(Cut::new(node(4), vec![node(1), node(3)], TruthTable::zeros(2)));
        set.push_unchecked(Cut::trivial(node(4)));
        set.prioritize(2, |c| c.size());
        assert_eq!(set.len(), 2);
        assert!(set.iter().any(|c| c.is_trivial()));
    }

    #[test]
    fn reroot_complements_function() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let cut = Cut::new(node(7), vec![node(1), node(2)], a.and(&b));
        let r = cut.reroot(node(9), true);
        assert_eq!(r.root(), node(9));
        assert_eq!(*r.function(), a.and(&b).not());
    }
}
