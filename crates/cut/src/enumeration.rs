//! The priority-cut enumeration algorithm.
//!
//! This is the inner loop of every mapping flow, so it is written to stay off
//! the heap: merged leaf sets live in stack [`LeafBuf`]s, truth tables of
//! `<= 6` variables are single inline words, the proto-cut and final-cut
//! scratch vectors are reused across all nodes, and signature popcounts
//! reject oversized merges before any leaf is touched. All cuts of all nodes
//! live in **one arena** (`Vec<Cut>`) addressed through per-node spans, so a
//! node costs two `u32`s of bookkeeping instead of its own heap vector —
//! deep, narrow circuits (long chains with tiny cut sets) no longer pay a
//! per-node allocation.
//!
//! # Cut costs and ranking
//!
//! Alongside its leaves and function, every enumerated cut carries two
//! mapping-oriented estimates (see [`CutCosts`]): an *arrival* time
//! (`delay(k) + max(leaf arrivals)`) and an ABC-style *area flow*
//! (`area(k) + Σ flow(leaf) / fanout(leaf)`), where `delay`/`area` come from
//! a per-cut-size [`CutCostModel`] (the unit model unless a technology-aware
//! one is supplied via [`enumerate_cuts_with_model`]). Both are computed
//! incrementally while the cross product is built — the leaves' costs are
//! already final when a node is processed because the traversal is
//! topological.
//!
//! [`CutParams::cost`] selects how candidate cuts are ranked before the
//! per-node `cut_limit` truncates them: the static structural order, the
//! depth-first or area-first cost orders, or the hybrid blend. Ranking
//! happens on *proto* cuts, before any truth table is composed, so a better
//! ranking costs nothing on the hot path.

use crate::cut::{hybrid_select, LeafBuf, MAX_CUT_SIZE};
use crate::{Cut, CutCost, CutCostModel, CutCosts, CutSet};
use mch_logic::{GateKind, Network, NodeId, Signal, TruthTable};
use std::cmp::Ordering;

/// Parameters of cut enumeration.
///
/// `cut_size` is the paper's `k` (maximum number of leaves), `cut_limit` the
/// paper's `l` (maximum number of cuts stored per node), and `cost` the
/// ranking that decides which cuts survive the `cut_limit` truncation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CutParams {
    /// Maximum number of leaves per cut (`k`).
    pub cut_size: usize,
    /// Maximum number of cuts kept per node (`l`).
    pub cut_limit: usize,
    /// Ranking applied before truncating each node's cut set to `cut_limit`.
    pub cost: CutCost,
}

impl CutParams {
    /// Creates parameters with the given cut size and per-node cut limit,
    /// using the static [`CutCost::Structural`] ranking.
    ///
    /// # Panics
    ///
    /// Panics if `cut_size` is 0 or greater than 8, or `cut_limit` is 0.
    pub fn new(cut_size: usize, cut_limit: usize) -> Self {
        assert!(
            (1..=MAX_CUT_SIZE).contains(&cut_size),
            "cut size must be in 1..={MAX_CUT_SIZE}"
        );
        assert!(cut_limit >= 1, "at least one cut per node is required");
        // Fanin-cut indices are stored as u16 during enumeration.
        assert!(cut_limit < u16::MAX as usize, "cut limit must fit in 16 bits");
        CutParams {
            cut_size,
            cut_limit,
            cost: CutCost::Structural,
        }
    }

    /// Returns the same parameters with the given cut ranking.
    pub fn with_cost(mut self, cost: CutCost) -> Self {
        self.cost = cost;
        self
    }
}

impl Default for CutParams {
    fn default() -> Self {
        CutParams::new(6, 8)
    }
}

/// All cut sets of a network: one shared cut arena plus a `(start, len)` span
/// per node, with the per-node best arrival/area-flow estimates and the
/// fanout counts the area-flow recurrence divides by.
#[derive(Clone, Debug)]
pub struct NetworkCuts {
    pub(crate) params: CutParams,
    pub(crate) model: CutCostModel,
    pub(crate) arena: Vec<Cut>,
    pub(crate) spans: Vec<(u32, u32)>,
    pub(crate) node_costs: Vec<CutCosts>,
    pub(crate) fanout_est: Vec<f32>,
    pub(crate) wasted: usize,
}

impl NetworkCuts {
    /// The cut set of `node`, best-ranked first.
    pub fn of(&self, node: NodeId) -> &[Cut] {
        let (start, len) = self.spans[node.index()];
        &self.arena[start as usize..(start + len) as usize]
    }

    /// The enumeration parameters used.
    pub fn params(&self) -> CutParams {
        self.params
    }

    /// Total number of cuts over all nodes.
    pub fn total_cuts(&self) -> usize {
        self.spans.iter().map(|&(_, len)| len as usize).sum()
    }

    /// The best (minimum) arrival/area-flow estimates of `node` over its
    /// stored cuts; zero for primary inputs and the constant node.
    pub fn node_costs(&self, node: NodeId) -> CutCosts {
        self.node_costs[node.index()]
    }

    /// Computes the [`CutCosts`] a cut with the given leaves would have when
    /// rooted anywhere above them:
    /// `arrival = delay(k) + max(leaf arrivals)`,
    /// `flow = area(k) + Σ flow(leaf) / fanout(leaf)`,
    /// with `delay`/`area` taken from the enumeration's [`CutCostModel`].
    ///
    /// Used to attach costs to cuts created *outside* enumeration, e.g. the
    /// choice-node cuts the mapper transfers onto representatives.
    pub fn leaf_costs(&self, leaves: &[NodeId]) -> CutCosts {
        proto_costs(leaves, &self.node_costs, &self.fanout_est, &self.model)
    }

    /// Adds `extra` cuts to `node`'s set, deduplicates, re-ranks with `cost`
    /// and truncates to `limit` (the trivial cut is always retained).
    ///
    /// This is the choice-transfer entry point (Algorithm 3, lines 2–8). It is
    /// [`ranked_extension`](NetworkCuts::ranked_extension) followed by
    /// [`commit_extension`](NetworkCuts::commit_extension); the level-parallel
    /// transfer in `mch_mapper` calls the two halves separately so the
    /// read-only ranking can run on worker threads.
    pub fn extend_node(&mut self, node: NodeId, extra: &[Cut], limit: usize, cost: CutCost) {
        if let Some(cuts) = self.ranked_extension(node, extra, limit, cost) {
            self.commit_extension(node, cuts);
        }
    }

    /// Computes — without mutating anything — the cut list
    /// [`extend_node`](NetworkCuts::extend_node) would store for `node`: the
    /// node's current cuts plus `extra`, deduplicated, ranked by `cost` and
    /// truncated to `limit` (the trivial cut is always retained). Returns
    /// `None` when `extra` is empty (nothing to do).
    ///
    /// This is the read-only half of the choice transfer; hand the result to
    /// [`commit_extension`](NetworkCuts::commit_extension) to install it.
    pub fn ranked_extension(
        &self,
        node: NodeId,
        extra: &[Cut],
        limit: usize,
        cost: CutCost,
    ) -> Option<Vec<Cut>> {
        if extra.is_empty() {
            return None;
        }
        let mut set = CutSet::from_cuts(self.of(node));
        for cut in extra {
            set.push_unchecked(cut.clone());
        }
        set.prioritize_by(limit, cost);
        Some(set.into_vec())
    }

    /// Installs a cut list produced by
    /// [`ranked_extension`](NetworkCuts::ranked_extension) for the same
    /// `node`, replacing the node's span and refreshing its best cost
    /// estimates.
    ///
    /// When the new list fits inside the node's existing arena span it is
    /// written in place; only the surplus slots are abandoned. A longer list
    /// is appended at the arena tail and the whole old span becomes waste.
    /// Abandoned slots are tracked in
    /// [`wasted_slots`](NetworkCuts::wasted_slots).
    pub fn commit_extension(&mut self, node: NodeId, cuts: Vec<Cut>) {
        let idx = node.index();
        let (start, old_len) = self.spans[idx];
        let new_len = cuts.len() as u32;
        if new_len <= old_len {
            // Reuse the abandoned span: the new list overwrites its prefix.
            let dst = &mut self.arena[start as usize..(start + new_len) as usize];
            for (slot, cut) in dst.iter_mut().zip(cuts) {
                *slot = cut;
            }
            self.spans[idx] = (start, new_len);
            self.wasted += (old_len - new_len) as usize;
        } else {
            let new_start = self.arena.len() as u32;
            self.arena.extend(cuts);
            self.spans[idx] = (new_start, new_len);
            self.wasted += old_len as usize;
        }
        // Inherited cuts may improve the node's best estimates.
        let mut best = self.node_costs[idx];
        for cut in self.of(node) {
            if cut.is_trivial() {
                continue;
            }
            best.arrival = best.arrival.min(cut.arrival());
            best.flow = best.flow.min(cut.area_flow());
        }
        self.node_costs[idx] = best;
    }

    /// Number of arena slots abandoned by
    /// [`commit_extension`](NetworkCuts::commit_extension) (directly or via
    /// [`extend_node`](NetworkCuts::extend_node)): slots no node's span covers
    /// any more. Plain enumeration never wastes a slot; only representative
    /// nodes whose cut sets grow past their original span leave waste behind.
    /// The `cut_enum_parallel` bench reports this so choice-heavy regressions
    /// are visible.
    pub fn wasted_slots(&self) -> usize {
        self.wasted
    }

    /// Approximate heap footprint of this cut set in bytes: the arena
    /// (including each cut function's heap words), spans, per-node costs and
    /// fanout estimates. Used by the warm-start cache's byte accounting — an
    /// estimate for capacity decisions, not an allocator-exact count.
    pub fn approx_bytes(&self) -> usize {
        let cut_heap: usize = self
            .arena
            .iter()
            .map(|c| c.function().words().len() * 8)
            .sum();
        self.arena.capacity() * std::mem::size_of::<Cut>()
            + cut_heap
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.node_costs.capacity() * std::mem::size_of::<CutCosts>()
            + self.fanout_est.capacity() * std::mem::size_of::<f32>()
    }

    /// Rebuilds the arena densely in node-index order, reclaiming every slot
    /// abandoned by [`commit_extension`](NetworkCuts::commit_extension) and
    /// resetting [`wasted_slots`](NetworkCuts::wasted_slots) to zero.
    ///
    /// Only the internal layout changes: every node's
    /// [`of`](NetworkCuts::of) slice — leaves, functions, ranking and costs —
    /// is byte-identical before and after. Returns the number of slots
    /// reclaimed (zero when the arena is already dense, in which case nothing
    /// is copied). Worth calling after a choice transfer on very
    /// choice-heavy, memory-bound runs; plain enumeration never needs it.
    pub fn compact(&mut self) -> usize {
        let live: usize = self.spans.iter().map(|&(_, len)| len as usize).sum();
        let reclaimed = self.arena.len() - live;
        if reclaimed == 0 {
            self.wasted = 0;
            return 0;
        }
        let mut arena: Vec<Cut> = Vec::with_capacity(live);
        for span in &mut self.spans {
            let (start, len) = *span;
            *span = (arena.len() as u32, len);
            arena.extend_from_slice(&self.arena[start as usize..(start + len) as usize]);
        }
        self.arena = arena;
        self.wasted = 0;
        reclaimed
    }

    /// Returns `true` when `self` and `other` are identical down to the
    /// internal representation: same parameters, cost model, arena layout,
    /// spans, per-cut leaves/functions/costs (floats compared bit-for-bit),
    /// node cost estimates, fanout estimates and waste counter.
    ///
    /// This is deliberately stricter than observational equality over
    /// [`of`](NetworkCuts::of) — the parallel enumeration determinism tests
    /// assert that serial and multi-threaded runs agree byte for byte.
    pub fn identical(&self, other: &NetworkCuts) -> bool {
        fn costs_identical(a: CutCosts, b: CutCosts) -> bool {
            a.arrival == b.arrival && a.flow.to_bits() == b.flow.to_bits()
        }
        fn cut_identical(a: &Cut, b: &Cut) -> bool {
            a == b && a.signature() == b.signature() && costs_identical(a.costs(), b.costs())
        }
        self.params == other.params
            && self.model == other.model
            && self.wasted == other.wasted
            && self.spans == other.spans
            && self.node_costs.len() == other.node_costs.len()
            && self
                .node_costs
                .iter()
                .zip(&other.node_costs)
                .all(|(a, b)| costs_identical(*a, *b))
            && self.fanout_est.len() == other.fanout_est.len()
            && self
                .fanout_est
                .iter()
                .zip(&other.fanout_est)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.arena.len() == other.arena.len()
            && self
                .arena
                .iter()
                .zip(&other.arena)
                .all(|(a, b)| cut_identical(a, b))
    }
}

/// Computes the table of one fanin over the merged leaf ordering, negating it
/// when the fanin edge is complemented. The placement is built with a linear
/// two-pointer scan (both leaf lists are sorted) into a stack array; the
/// remap itself is the mask-doubling "stretch" fast path whenever the merged
/// cut has at most six leaves (see [`TruthTable::remap_vars`]).
#[inline]
fn fanin_table(sig: Signal, cut: &Cut, leaves: &[NodeId]) -> TruthTable {
    let nvars = leaves.len();
    if cut.size() == 0 {
        // Constant cut: the fanin is the constant-false node (possibly seen
        // through a complemented edge).
        return TruthTable::constant(nvars, sig.is_complement());
    }
    let mut placement = [0usize; MAX_CUT_SIZE];
    let mut j = 0;
    for (i, l) in cut.leaves().iter().enumerate() {
        while leaves[j] != *l {
            j += 1;
        }
        placement[i] = j;
    }
    let t = cut.function().remap_vars(nvars, &placement[..cut.size()]);
    if sig.is_complement() {
        t.not()
    } else {
        t
    }
}

/// Computes the function of `root` over the merged `leaves`, given the cut
/// functions of its fanins. No intermediate collections are built; the two or
/// three fanin tables are composed directly.
fn compose_function(
    kind: GateKind,
    fanins: &[Signal],
    fanin_cuts: &[&Cut],
    leaves: &[NodeId],
) -> TruthTable {
    match kind {
        GateKind::And2 => fanin_table(fanins[0], fanin_cuts[0], leaves)
            .and(&fanin_table(fanins[1], fanin_cuts[1], leaves)),
        GateKind::Xor2 => fanin_table(fanins[0], fanin_cuts[0], leaves)
            .xor(&fanin_table(fanins[1], fanin_cuts[1], leaves)),
        GateKind::Maj3 => TruthTable::maj(
            &fanin_table(fanins[0], fanin_cuts[0], leaves),
            &fanin_table(fanins[1], fanin_cuts[1], leaves),
            &fanin_table(fanins[2], fanin_cuts[2], leaves),
        ),
        _ => unreachable!("only gates are composed"),
    }
}

/// A cut candidate before its function is computed: the merged leaves, the
/// signature, the cost estimates, and the indices of the fanin cuts that
/// produced it. Keeping the cross product in this form defers truth-table
/// composition — the expensive step — until after dominance filtering and
/// priority truncation, so only the `cut_limit` surviving cuts per node ever
/// get a function.
#[derive(Copy, Clone)]
struct ProtoCut {
    leaves: LeafBuf,
    signature: u64,
    costs: CutCosts,
    src: [u16; 3],
}

impl ProtoCut {
    #[inline]
    fn cmp_structural(&self, other: &ProtoCut) -> Ordering {
        self.leaves
            .len()
            .cmp(&other.leaves.len())
            .then_with(|| self.leaves.as_slice().cmp(other.leaves.as_slice()))
    }

    #[inline]
    fn cmp_depth(&self, other: &ProtoCut) -> Ordering {
        self.costs
            .cmp_depth(&other.costs)
            .then_with(|| self.cmp_structural(other))
    }

    #[inline]
    fn cmp_area(&self, other: &ProtoCut) -> Ordering {
        self.costs
            .cmp_area(&other.costs)
            .then_with(|| self.cmp_structural(other))
    }
}

/// `true` when leaves of `a` are a subset of (or equal to) leaves of `b`.
#[inline]
fn leaf_subset(a: &ProtoCut, b: &ProtoCut) -> bool {
    crate::cut::sorted_leaf_subset(
        a.leaves.as_slice(),
        a.signature,
        b.leaves.as_slice(),
        b.signature,
    )
}

/// Dominance-filtered insertion into the proto scratch list, mirroring
/// [`CutSet::insert`] semantics on the leaf sets alone. Cost estimates are
/// computed only once a candidate survives the dominance filter, so rejected
/// merges never pay the per-leaf cost loop.
#[allow(clippy::too_many_arguments)]
fn proto_insert(
    protos: &mut Vec<ProtoCut>,
    leaves: LeafBuf,
    signature: u64,
    src: [u16; 3],
    node_costs: &[CutCosts],
    fanout_est: &[f32],
    model: &CutCostModel,
) {
    let cand = ProtoCut {
        leaves,
        signature,
        costs: CutCosts::ZERO,
        src,
    };
    if protos.iter().any(|p| leaf_subset(p, &cand)) {
        return;
    }
    protos.retain(|p| !leaf_subset(&cand, p));
    protos.push(ProtoCut {
        costs: proto_costs(&leaves, node_costs, fanout_est, model),
        ..cand
    });
}

/// Computes a proto cut's cost estimates from its merged leaves: model
/// arrival and area flow over the (final, already-computed) leaf costs.
#[inline]
fn proto_costs(
    leaves: &[NodeId],
    node_costs: &[CutCosts],
    fanout_est: &[f32],
    model: &CutCostModel,
) -> CutCosts {
    let mut arrival = 0u32;
    let mut flow = model.area[leaves.len()];
    for &l in leaves {
        let c = node_costs[l.index()];
        arrival = arrival.max(c.arrival);
        flow += c.flow / fanout_est[l.index()];
    }
    CutCosts {
        arrival: arrival + model.delay[leaves.len()],
        flow,
    }
}

/// Fanout estimates over the subject graph: gate fanins plus output uses,
/// floored at one so the area-flow division never blows up on dead nodes.
pub(crate) fn fanout_estimates(network: &Network) -> Vec<f32> {
    let mut fanout_est = vec![0.0f32; network.len()];
    for id in network.gate_ids() {
        for f in network.node(id).fanins() {
            fanout_est[f.node().index()] += 1.0;
        }
    }
    for o in network.outputs() {
        fanout_est[o.node().index()] += 1.0;
    }
    for v in &mut fanout_est {
        *v = v.max(1.0);
    }
    fanout_est
}

/// Seeds the cut arena and spans with the constant node's cut and the trivial
/// cuts of the primary inputs — the state both the serial and the parallel
/// drivers start from before any gate is processed.
pub(crate) fn seed_arena(network: &Network) -> (Vec<Cut>, Vec<(u32, u32)>) {
    let mut spans = vec![(0u32, 0u32); network.len()];
    let mut arena: Vec<Cut> = Vec::new();
    arena.push(Cut::constant(NodeId::CONST0));
    spans[0] = (0, 1);
    for &pi in network.inputs() {
        spans[pi.index()] = (arena.len() as u32, 1);
        arena.push(Cut::trivial(pi));
    }
    (arena, spans)
}

/// Per-worker scratch of the enumeration kernel: the proto-cut cross-product
/// buffer and the composed final cuts of the node being processed. The
/// backing vectors reach the high-water cross-product size once and are then
/// recycled across all nodes a worker handles.
#[derive(Default)]
pub(crate) struct NodeScratch {
    protos: Vec<ProtoCut>,
    pub(crate) final_cuts: Vec<Cut>,
}

impl NodeScratch {
    pub(crate) fn new() -> Self {
        NodeScratch::default()
    }
}

/// Read-only view of the enumeration state a node's kernel needs: the cut
/// arena, the per-node spans into it and the per-node best cost estimates.
/// Every access the kernel performs through this view is to *fanin* data,
/// i.e. to nodes of strictly smaller topological level — which is what makes
/// processing all nodes of one level in parallel safe.
#[derive(Copy, Clone)]
pub(crate) struct EnumView<'a> {
    pub(crate) arena: &'a [Cut],
    pub(crate) spans: &'a [(u32, u32)],
    pub(crate) node_costs: &'a [CutCosts],
}

/// Enumerates the cut set of one gate: cross product of the fanins' cuts,
/// dominance filter, cost ranking, `cut_limit` truncation, function
/// composition for the survivors and the always-present trivial cut.
///
/// The resulting cuts are left in `scratch.final_cuts` (cleared on entry) and
/// the node's best arrival/area-flow estimates are returned; the caller owns
/// writing both into its arena/spans/costs tables. Shared verbatim by the
/// serial driver ([`enumerate_cuts_with_model`]) and the level-parallel
/// driver ([`crate::enumerate_cuts_threaded`]), so the two cannot drift
/// apart.
pub(crate) fn enumerate_node(
    network: &Network,
    id: NodeId,
    params: &CutParams,
    model: &CutCostModel,
    fanout_est: &[f32],
    view: EnumView<'_>,
    scratch: &mut NodeScratch,
) -> CutCosts {
    let node = network.node(id);
    let fanins = node.fanins();
    let protos = &mut scratch.protos;
    let final_cuts = &mut scratch.final_cuts;
    let arena = view.arena;
    let node_costs = view.node_costs;
    protos.clear();
    final_cuts.clear();
    let span_of = |f: Signal, spans: &[(u32, u32)]| {
        let (s, l) = spans[f.node().index()];
        (s as usize, l as usize)
    };
    match fanins.len() {
        2 => {
            let (sa, la) = span_of(fanins[0], view.spans);
            let (sb, lb) = span_of(fanins[1], view.spans);
            for ia in 0..la {
                let ca = &arena[sa + ia];
                for ib in 0..lb {
                    let cb = &arena[sb + ib];
                    let signature = ca.signature() | cb.signature();
                    if signature.count_ones() as usize > params.cut_size {
                        continue;
                    }
                    let Some(leaves) = LeafBuf::merge(ca.leaves(), cb.leaves(), params.cut_size)
                    else {
                        continue;
                    };
                    proto_insert(
                        protos,
                        leaves,
                        signature,
                        [ia as u16, ib as u16, 0],
                        node_costs,
                        fanout_est,
                        model,
                    );
                }
            }
        }
        3 => {
            let (sa, la) = span_of(fanins[0], view.spans);
            let (sb, lb) = span_of(fanins[1], view.spans);
            let (sc, lc) = span_of(fanins[2], view.spans);
            for ia in 0..la {
                let ca = &arena[sa + ia];
                for ib in 0..lb {
                    let cb = &arena[sb + ib];
                    // O(1) popcount pre-check on the pair before the
                    // linear merge; the partial union is then merged with
                    // each third cut without any dummy-cut clone.
                    let sig_ab = ca.signature() | cb.signature();
                    if sig_ab.count_ones() as usize > params.cut_size {
                        continue;
                    }
                    let Some(ab) = LeafBuf::merge(ca.leaves(), cb.leaves(), params.cut_size)
                    else {
                        continue;
                    };
                    for ic in 0..lc {
                        let cc = &arena[sc + ic];
                        let signature = sig_ab | cc.signature();
                        if signature.count_ones() as usize > params.cut_size {
                            continue;
                        }
                        let Some(leaves) = LeafBuf::merge(&ab, cc.leaves(), params.cut_size)
                        else {
                            continue;
                        };
                        proto_insert(
                            protos,
                            leaves,
                            signature,
                            [ia as u16, ib as u16, ic as u16],
                            node_costs,
                            fanout_est,
                            model,
                        );
                    }
                }
            }
        }
        _ => unreachable!("gates have 2 or 3 fanins"),
    }
    // Rank by the configured cost, then truncate to the per-node limit
    // before any function is composed.
    match params.cost {
        CutCost::Structural => protos.sort_unstable_by(ProtoCut::cmp_structural),
        CutCost::Depth => protos.sort_unstable_by(ProtoCut::cmp_depth),
        CutCost::Area => protos.sort_unstable_by(ProtoCut::cmp_area),
        CutCost::Hybrid => hybrid_select(
            protos,
            params.cut_limit,
            ProtoCut::cmp_depth,
            ProtoCut::cmp_area,
            ProtoCut::cmp_structural,
        ),
    }
    protos.truncate(params.cut_limit);
    // The node's best estimates over the survivors; if the cut size was
    // too tight for any structural cut, fall back to the fanin costs.
    let mut best = CutCosts {
        arrival: u32::MAX,
        flow: f32::INFINITY,
    };
    for p in protos.iter() {
        best.arrival = best.arrival.min(p.costs.arrival);
        best.flow = best.flow.min(p.costs.flow);
    }
    if protos.is_empty() {
        let mut arrival = 0u32;
        let mut flow = model.area[fanins.len()];
        for f in fanins {
            let c = node_costs[f.node().index()];
            arrival = arrival.max(c.arrival);
            flow += c.flow / fanout_est[f.node().index()];
        }
        best = CutCosts {
            arrival: arrival + model.delay[fanins.len()],
            flow,
        };
    }
    // Compose functions for the survivors only.
    for p in protos.iter() {
        let fanin_cut = |i: usize| {
            let (s, _) = span_of(fanins[i], view.spans);
            &arena[s + p.src[i] as usize]
        };
        let f = match fanins.len() {
            2 => compose_function(
                node.kind(),
                fanins,
                &[fanin_cut(0), fanin_cut(1)],
                &p.leaves,
            ),
            _ => compose_function(
                node.kind(),
                fanins,
                &[fanin_cut(0), fanin_cut(1), fanin_cut(2)],
                &p.leaves,
            ),
        };
        final_cuts.push(Cut::with_costs(id, &p.leaves, f, p.costs));
    }
    // The trivial cut is always available as a fallback; it carries the
    // node's best estimates (using it does not change depth or flow).
    let mut trivial = Cut::trivial(id);
    trivial.set_costs(best);
    final_cuts.push(trivial);
    best
}

/// Enumerates priority cuts for every node of `network`.
///
/// Each gate's cut set is built from the cross product of its fanins' cut
/// sets, filtered by dominance, ranked by [`CutParams::cost`], capped at
/// `params.cut_limit` cuts of at most `params.cut_size` leaves, and always
/// contains the node's trivial cut. Truth tables are computed for every
/// stored cut (and only for stored cuts: candidates rejected by dominance or
/// the priority truncation never pay for function composition).
///
/// This is the single-threaded driver; see [`crate::enumerate_cuts_threaded`]
/// for the level-parallel one (which produces identical results).
pub fn enumerate_cuts(network: &Network, params: &CutParams) -> NetworkCuts {
    enumerate_cuts_with_model(network, params, &CutCostModel::unit())
}

/// [`enumerate_cuts`] with an explicit technology cost model for the
/// arrival/area-flow estimates (see [`CutCostModel`]). The ASIC mapper feeds
/// a library-derived model through this entry point so the depth ranking
/// accounts for wide cells being slower than narrow ones.
pub fn enumerate_cuts_with_model(
    network: &Network,
    params: &CutParams,
    model: &CutCostModel,
) -> NetworkCuts {
    let fanout_est = fanout_estimates(network);
    let (mut arena, mut spans) = seed_arena(network);
    let mut node_costs = vec![CutCosts::ZERO; network.len()];
    // One scratch reused across every gate (the parallel driver holds one per
    // worker instead).
    let mut scratch = NodeScratch::new();
    for id in network.gate_ids() {
        let best = enumerate_node(
            network,
            id,
            params,
            model,
            &fanout_est,
            EnumView {
                arena: &arena,
                spans: &spans,
                node_costs: &node_costs,
            },
            &mut scratch,
        );
        node_costs[id.index()] = best;
        spans[id.index()] = (arena.len() as u32, scratch.final_cuts.len() as u32);
        // Same site name as the parallel driver's per-level merge, so chaos
        // schedules targeting arena growth cover the serial path too.
        mch_logic::failpoint!("cut::arena_grow");
        arena.append(&mut scratch.final_cuts);
    }
    NetworkCuts {
        params: *params,
        model: *model,
        arena,
        spans,
        node_costs,
        fanout_est,
        wasted: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{output_truth_tables, Network, NetworkKind};

    fn adder_bit() -> (Network, Signal, Signal) {
        let mut n = Network::new(NetworkKind::Xag);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let (s, co) = n.full_adder(a, b, c);
        n.add_output(s);
        n.add_output(co);
        (n, s, co)
    }

    #[test]
    fn every_gate_has_cuts_and_trivial_fallback() {
        let (n, _, _) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::default());
        for id in n.gate_ids() {
            let set = cuts.of(id);
            assert!(!set.is_empty());
            assert!(set.iter().any(|c| c.is_trivial()));
            for c in set.iter() {
                assert!(c.size() <= 6);
            }
        }
    }

    #[test]
    fn cut_functions_match_simulation() {
        let (n, s, co) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::new(3, 16));
        let tts = output_truth_tables(&n);
        // Find cuts of the output drivers whose leaves are exactly the PIs.
        let pis: Vec<NodeId> = n.inputs().to_vec();
        for (driver, expected) in [(s, &tts[0]), (co, &tts[1])] {
            let set = cuts.of(driver.node());
            let full = set
                .iter()
                .find(|c| c.leaves() == pis.as_slice())
                .expect("PI cut must exist for a 3-input cone");
            let mut f = full.function().clone();
            if driver.is_complement() {
                f = f.not();
            }
            assert_eq!(&f, expected);
        }
    }

    #[test]
    fn cut_limit_is_respected() {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(6);
        let f = n.and_reduce(&xs);
        n.add_output(f);
        let params = CutParams::new(4, 3);
        let cuts = enumerate_cuts(&n, &params);
        for id in n.gate_ids() {
            // limit + the always-present trivial cut
            assert!(cuts.of(id).len() <= params.cut_limit + 1);
        }
    }

    #[test]
    fn majority_cut_function() {
        let mut n = Network::new(NetworkKind::Mig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let m = n.maj3(a, b, !c);
        n.add_output(m);
        let cuts = enumerate_cuts(&n, &CutParams::default());
        let set = cuts.of(m.node());
        let pi_cut = set
            .iter()
            .find(|cut| cut.size() == 3)
            .expect("three-leaf cut exists");
        let tts = output_truth_tables(&n);
        assert_eq!(pi_cut.function(), &tts[0]);
    }

    #[test]
    fn total_cuts_is_consistent() {
        let (n, _, _) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::default());
        let sum: usize = n.node_ids().map(|id| cuts.of(id).len()).sum();
        assert_eq!(sum, cuts.total_cuts());
    }

    #[test]
    fn stored_functions_are_inline_for_small_cuts() {
        let (n, _, _) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::default());
        for id in n.gate_ids() {
            for c in cuts.of(id).iter() {
                assert!(
                    c.function().is_inline(),
                    "k ≤ 6 cut functions must be single-word"
                );
            }
        }
    }

    #[test]
    fn arrivals_match_unit_delay_levels_on_a_chain() {
        // A chain of ANDs: node i has depth i + 1; with a wide-open cut size
        // the best arrival is always 1 (one cut covering the whole cone up to
        // the PIs) once the cone fits in k leaves.
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(4);
        let g1 = n.and2(xs[0], xs[1]);
        let g2 = n.and2(g1, xs[2]);
        let g3 = n.and2(g2, xs[3]);
        n.add_output(g3);
        let cuts = enumerate_cuts(&n, &CutParams::new(4, 8));
        // All cones fit in 4 leaves, so every gate reaches arrival 1.
        for id in [g1.node(), g2.node(), g3.node()] {
            assert_eq!(cuts.node_costs(id).arrival, 1, "node {id}");
        }
        // With k = 2 the chain cannot be compressed: arrivals grow linearly.
        let cuts = enumerate_cuts(&n, &CutParams::new(2, 8));
        assert_eq!(cuts.node_costs(g1.node()).arrival, 1);
        assert_eq!(cuts.node_costs(g2.node()).arrival, 2);
        assert_eq!(cuts.node_costs(g3.node()).arrival, 3);
    }

    #[test]
    fn per_cut_costs_are_consistent_with_leaf_costs() {
        let (n, _, _) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::default());
        for id in n.gate_ids() {
            for c in cuts.of(id).iter() {
                if c.is_trivial() {
                    assert_eq!(c.costs(), cuts.node_costs(id));
                    continue;
                }
                let expect = cuts.leaf_costs(c.leaves());
                assert_eq!(c.arrival(), expect.arrival, "arrival of {c}");
                assert!((c.area_flow() - expect.flow).abs() < 1e-6, "flow of {c}");
            }
        }
    }

    #[test]
    fn depth_ranking_keeps_min_arrival_cut_first() {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(6);
        let f = n.and_reduce(&xs);
        n.add_output(f);
        let params = CutParams::new(4, 2).with_cost(CutCost::Depth);
        let cuts = enumerate_cuts(&n, &params);
        for id in n.gate_ids() {
            let set = cuts.of(id);
            let first = &set[0];
            assert!(
                set.iter().all(|c| first.arrival() <= c.arrival()),
                "first cut of {id} is not arrival-minimal"
            );
        }
    }

    #[test]
    fn hybrid_ranking_keeps_both_depth_and_area_champions() {
        // Build a network wide enough that the cross product exceeds the cut
        // limit, then check that the kept set contains a cut achieving the
        // pre-truncation minimum arrival AND one achieving the minimum flow.
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(8);
        let mut layer: Vec<_> = xs.clone();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(n.and2(pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        n.add_output(layer[0]);
        let limited = CutParams::new(4, 3).with_cost(CutCost::Hybrid);
        let unlimited = CutParams::new(4, 1000).with_cost(CutCost::Hybrid);
        let kept = enumerate_cuts(&n, &limited);
        let all = enumerate_cuts(&n, &unlimited);
        // The roots of both enumerations agree on the reachable optimum.
        let root = layer[0].node();
        let best_arrival = all.of(root).iter().map(Cut::arrival).min().unwrap();
        assert_eq!(
            kept.of(root).iter().map(Cut::arrival).min().unwrap(),
            best_arrival,
            "hybrid truncation lost the depth-best cut"
        );
        let min_flow = |cuts: &[Cut]| {
            cuts.iter()
                .filter(|c| !c.is_trivial())
                .map(Cut::area_flow)
                .fold(f32::INFINITY, f32::min)
        };
        assert_eq!(
            min_flow(kept.of(root)),
            min_flow(all.of(root)),
            "hybrid truncation lost the area-flow-best cut"
        );
    }

    #[test]
    fn commit_extension_reuses_span_and_tracks_waste() {
        let (n, s, _) = adder_bit();
        let mut cuts = enumerate_cuts(&n, &CutParams::default());
        assert_eq!(cuts.wasted_slots(), 0, "plain enumeration wastes nothing");
        let root = s.node();
        let before = cuts.of(root).len();
        assert!(before >= 3, "test needs a few cuts to shrink");
        let pis: Vec<NodeId> = n.inputs().to_vec();
        let pi_cut = Cut::with_costs(root, &pis, TruthTable::zeros(3), cuts.leaf_costs(&pis));

        // Shrink: a tighter limit makes the new list fit inside the existing
        // span, so it is rewritten in place and only the surplus is waste.
        let limit = before - 2;
        cuts.extend_node(root, &[pi_cut], limit, CutCost::Structural);
        let after = cuts.of(root).len();
        assert!(after <= limit);
        assert_eq!(cuts.wasted_slots(), before - after);

        // Same length: extending with an already-present cut rewrites the
        // span in place without any new waste.
        let wasted = cuts.wasted_slots();
        let dup = cuts.of(root)[0].clone();
        let len = cuts.of(root).len();
        cuts.extend_node(root, &[dup], 16, CutCost::Structural);
        assert_eq!(cuts.of(root).len(), len);
        assert_eq!(cuts.wasted_slots(), wasted);

        // Grow: a genuinely new cut pushes the list past the current span,
        // which moves it to the arena tail and abandons the whole old span.
        let single = Cut::with_costs(
            root,
            &pis[..1],
            TruthTable::var(1, 0),
            cuts.leaf_costs(&pis[..1]),
        );
        let cur = cuts.of(root).len();
        cuts.extend_node(root, &[single], 16, CutCost::Structural);
        assert_eq!(cuts.of(root).len(), cur + 1);
        assert_eq!(cuts.wasted_slots(), wasted + cur);
    }

    #[test]
    fn compact_reclaims_waste_and_preserves_cuts() {
        let (n, s, _) = adder_bit();
        let mut cuts = enumerate_cuts(&n, &CutParams::default());
        // A dense arena compacts to itself without copying.
        assert_eq!(cuts.compact(), 0);

        // Create waste: shrink one span in place, then grow it past its slot.
        let root = s.node();
        let pis: Vec<NodeId> = n.inputs().to_vec();
        let pi_cut = Cut::with_costs(root, &pis, TruthTable::zeros(3), cuts.leaf_costs(&pis));
        cuts.extend_node(root, &[pi_cut], cuts.of(root).len() - 2, CutCost::Structural);
        let single = Cut::with_costs(
            root,
            &pis[..1],
            TruthTable::var(1, 0),
            cuts.leaf_costs(&pis[..1]),
        );
        cuts.extend_node(root, &[single], 16, CutCost::Structural);
        let wasted = cuts.wasted_slots();
        assert!(wasted > 0, "the extensions must leave abandoned slots");

        // Snapshot every node's observable cut list, compact, compare.
        let before: Vec<Vec<Cut>> = (0..n.len())
            .map(|i| cuts.of(NodeId::from_index(i)).to_vec())
            .collect();
        let arena_before = cuts.total_cuts() + wasted;
        assert_eq!(cuts.compact(), wasted);
        assert_eq!(cuts.wasted_slots(), 0);
        assert_eq!(cuts.total_cuts() + wasted, arena_before);
        for (i, old) in before.iter().enumerate() {
            let new = cuts.of(NodeId::from_index(i));
            assert_eq!(old.len(), new.len(), "node {i} changed cut count");
            for (a, b) in old.iter().zip(new) {
                assert_eq!(a, b, "node {i} changed a cut");
                assert_eq!(a.costs().arrival, b.costs().arrival);
                assert_eq!(a.costs().flow.to_bits(), b.costs().flow.to_bits());
            }
        }
        // Compacting twice is a no-op.
        assert_eq!(cuts.compact(), 0);
    }

    #[test]
    fn extend_node_reranks_and_respects_limit() {
        let (n, s, _) = adder_bit();
        let mut cuts = enumerate_cuts(&n, &CutParams::default());
        let root = s.node();
        let before = cuts.of(root).len();
        // Fabricate an inherited cut over the PIs.
        let pis: Vec<NodeId> = n.inputs().to_vec();
        let extra = Cut::with_costs(
            root,
            &pis,
            TruthTable::zeros(3),
            cuts.leaf_costs(&pis),
        );
        cuts.extend_node(root, &[extra], 16, CutCost::Structural);
        assert!(cuts.of(root).len() <= 16);
        assert!(cuts.of(root).len() >= before.min(16));
        assert!(cuts.of(root).iter().any(|c| c.is_trivial()));
        // Deduplication: extending with an existing cut is a no-op.
        let dup = cuts.of(root)[0].clone();
        let len = cuts.of(root).len();
        cuts.extend_node(root, &[dup], 16, CutCost::Structural);
        assert_eq!(cuts.of(root).len(), len);
    }
}
