//! The priority-cut enumeration algorithm.
//!
//! This is the inner loop of every mapping flow, so it is written to stay off
//! the heap: merged leaf sets live in stack [`LeafBuf`]s, truth tables of
//! `<= 6` variables are single inline words, the proto-cut and final-cut
//! scratch vectors are reused across all nodes, and signature popcounts
//! reject oversized merges before any leaf is touched. The only per-node
//! allocation is the compact `Vec` that ends up owning the node's final cut
//! list.

use crate::cut::{LeafBuf, MAX_CUT_SIZE};
use crate::{Cut, CutSet};
use mch_logic::{GateKind, Network, NodeId, Signal, TruthTable};

/// Parameters of cut enumeration.
///
/// `cut_size` is the paper's `k` (maximum number of leaves), `cut_limit` the
/// paper's `l` (maximum number of cuts stored per node).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CutParams {
    /// Maximum number of leaves per cut (`k`).
    pub cut_size: usize,
    /// Maximum number of cuts kept per node (`l`).
    pub cut_limit: usize,
}

impl CutParams {
    /// Creates parameters with the given cut size and per-node cut limit.
    ///
    /// # Panics
    ///
    /// Panics if `cut_size` is 0 or greater than 8, or `cut_limit` is 0.
    pub fn new(cut_size: usize, cut_limit: usize) -> Self {
        assert!(
            (1..=MAX_CUT_SIZE).contains(&cut_size),
            "cut size must be in 1..={MAX_CUT_SIZE}"
        );
        assert!(cut_limit >= 1, "at least one cut per node is required");
        // Fanin-cut indices are stored as u16 during enumeration.
        assert!(cut_limit < u16::MAX as usize, "cut limit must fit in 16 bits");
        CutParams { cut_size, cut_limit }
    }
}

impl Default for CutParams {
    fn default() -> Self {
        CutParams::new(6, 8)
    }
}

/// All cut sets of a network, indexed by node.
#[derive(Clone, Debug)]
pub struct NetworkCuts {
    params: CutParams,
    sets: Vec<CutSet>,
}

impl NetworkCuts {
    /// The cut set of `node`.
    pub fn of(&self, node: NodeId) -> &CutSet {
        &self.sets[node.index()]
    }

    /// Mutable access to the cut set of `node` (used by the choice-aware
    /// mapper to transfer cuts from choice nodes, Algorithm 3 lines 2–8).
    pub fn of_mut(&mut self, node: NodeId) -> &mut CutSet {
        &mut self.sets[node.index()]
    }

    /// The enumeration parameters used.
    pub fn params(&self) -> CutParams {
        self.params
    }

    /// Total number of cuts over all nodes.
    pub fn total_cuts(&self) -> usize {
        self.sets.iter().map(CutSet::len).sum()
    }
}

/// Computes the table of one fanin over the merged leaf ordering, negating it
/// when the fanin edge is complemented. The placement is built with a linear
/// two-pointer scan (both leaf lists are sorted) into a stack array, and the
/// remap itself stays on the single-word fast path whenever the merged cut
/// has at most six leaves.
#[inline]
fn fanin_table(sig: Signal, cut: &Cut, leaves: &[NodeId]) -> TruthTable {
    let nvars = leaves.len();
    if cut.size() == 0 {
        // Constant cut: the fanin is the constant-false node (possibly seen
        // through a complemented edge).
        return TruthTable::constant(nvars, sig.is_complement());
    }
    let mut placement = [0usize; MAX_CUT_SIZE];
    let mut j = 0;
    for (i, l) in cut.leaves().iter().enumerate() {
        while leaves[j] != *l {
            j += 1;
        }
        placement[i] = j;
    }
    let t = cut.function().remap_vars(nvars, &placement[..cut.size()]);
    if sig.is_complement() {
        t.not()
    } else {
        t
    }
}

/// Computes the function of `root` over the merged `leaves`, given the cut
/// functions of its fanins. No intermediate collections are built; the two or
/// three fanin tables are composed directly.
fn compose_function(
    kind: GateKind,
    fanins: &[Signal],
    fanin_cuts: &[&Cut],
    leaves: &[NodeId],
) -> TruthTable {
    match kind {
        GateKind::And2 => fanin_table(fanins[0], fanin_cuts[0], leaves)
            .and(&fanin_table(fanins[1], fanin_cuts[1], leaves)),
        GateKind::Xor2 => fanin_table(fanins[0], fanin_cuts[0], leaves)
            .xor(&fanin_table(fanins[1], fanin_cuts[1], leaves)),
        GateKind::Maj3 => TruthTable::maj(
            &fanin_table(fanins[0], fanin_cuts[0], leaves),
            &fanin_table(fanins[1], fanin_cuts[1], leaves),
            &fanin_table(fanins[2], fanin_cuts[2], leaves),
        ),
        _ => unreachable!("only gates are composed"),
    }
}

/// A cut candidate before its function is computed: the merged leaves, the
/// signature, and the indices of the fanin cuts that produced it. Keeping the
/// cross product in this form defers truth-table composition — the expensive
/// step — until after dominance filtering and priority truncation, so only
/// the `cut_limit` surviving cuts per node ever get a function.
#[derive(Copy, Clone)]
struct ProtoCut {
    leaves: LeafBuf,
    signature: u64,
    src: [u16; 3],
}

/// `true` when leaves of `a` are a subset of (or equal to) leaves of `b`.
#[inline]
fn leaf_subset(a: &ProtoCut, b: &ProtoCut) -> bool {
    crate::cut::sorted_leaf_subset(
        a.leaves.as_slice(),
        a.signature,
        b.leaves.as_slice(),
        b.signature,
    )
}

/// Dominance-filtered insertion into the proto scratch list, mirroring
/// [`CutSet::insert`] semantics on the leaf sets alone.
fn proto_insert(protos: &mut Vec<ProtoCut>, cand: ProtoCut) {
    if protos.iter().any(|p| leaf_subset(p, &cand)) {
        return;
    }
    protos.retain(|p| !leaf_subset(&cand, p));
    protos.push(cand);
}

/// Enumerates priority cuts for every node of `network`.
///
/// Each gate's cut set is built from the cross product of its fanins' cut
/// sets, filtered by dominance, capped at `params.cut_limit` cuts of at most
/// `params.cut_size` leaves, and always contains the node's trivial cut.
/// Truth tables are computed for every stored cut (and only for stored cuts:
/// candidates rejected by dominance or the priority truncation never pay for
/// function composition).
pub fn enumerate_cuts(network: &Network, params: &CutParams) -> NetworkCuts {
    let mut sets: Vec<CutSet> = vec![CutSet::new(); network.len()];
    // Constant node and primary inputs.
    sets[0].push_unchecked(Cut::constant(NodeId::CONST0));
    for &pi in network.inputs() {
        sets[pi.index()].push_unchecked(Cut::trivial(pi));
    }
    // Scratch buffers reused across every gate; their backing vectors reach
    // the high-water cross-product size once and are then recycled.
    let mut protos: Vec<ProtoCut> = Vec::new();
    let mut final_cuts: Vec<Cut> = Vec::new();
    for id in network.gate_ids() {
        let node = network.node(id);
        let fanins = node.fanins();
        protos.clear();
        final_cuts.clear();
        match fanins.len() {
            2 => {
                let sa = &sets[fanins[0].node().index()];
                let sb = &sets[fanins[1].node().index()];
                for (ia, ca) in sa.iter().enumerate() {
                    for (ib, cb) in sb.iter().enumerate() {
                        let signature = ca.signature() | cb.signature();
                        if signature.count_ones() as usize > params.cut_size {
                            continue;
                        }
                        let Some(leaves) =
                            LeafBuf::merge(ca.leaves(), cb.leaves(), params.cut_size)
                        else {
                            continue;
                        };
                        proto_insert(
                            &mut protos,
                            ProtoCut {
                                leaves,
                                signature,
                                src: [ia as u16, ib as u16, 0],
                            },
                        );
                    }
                }
            }
            3 => {
                let sa = &sets[fanins[0].node().index()];
                let sb = &sets[fanins[1].node().index()];
                let sc = &sets[fanins[2].node().index()];
                for (ia, ca) in sa.iter().enumerate() {
                    for (ib, cb) in sb.iter().enumerate() {
                        // O(1) popcount pre-check on the pair before the
                        // linear merge; the partial union is then merged with
                        // each third cut without any dummy-cut clone.
                        let sig_ab = ca.signature() | cb.signature();
                        if sig_ab.count_ones() as usize > params.cut_size {
                            continue;
                        }
                        let Some(ab) = LeafBuf::merge(ca.leaves(), cb.leaves(), params.cut_size)
                        else {
                            continue;
                        };
                        for (ic, cc) in sc.iter().enumerate() {
                            let signature = sig_ab | cc.signature();
                            if signature.count_ones() as usize > params.cut_size {
                                continue;
                            }
                            let Some(leaves) = LeafBuf::merge(&ab, cc.leaves(), params.cut_size)
                            else {
                                continue;
                            };
                            proto_insert(
                                &mut protos,
                                ProtoCut {
                                    leaves,
                                    signature,
                                    src: [ia as u16, ib as u16, ic as u16],
                                },
                            );
                        }
                    }
                }
            }
            _ => unreachable!("gates have 2 or 3 fanins"),
        }
        // Priority: smaller cuts first (a simple, robust static order), then
        // truncate to the per-node limit before any function is composed.
        protos.sort_unstable_by(|a, b| {
            a.leaves
                .len()
                .cmp(&b.leaves.len())
                .then_with(|| a.leaves.as_slice().cmp(b.leaves.as_slice()))
        });
        protos.truncate(params.cut_limit);
        // Compose functions for the survivors only.
        for p in &protos {
            let f = match fanins.len() {
                2 => {
                    let ca = sets[fanins[0].node().index()].get(p.src[0] as usize);
                    let cb = sets[fanins[1].node().index()].get(p.src[1] as usize);
                    let (ca, cb) = (ca.expect("source cut"), cb.expect("source cut"));
                    compose_function(node.kind(), fanins, &[ca, cb], &p.leaves)
                }
                _ => {
                    let ca = sets[fanins[0].node().index()].get(p.src[0] as usize);
                    let cb = sets[fanins[1].node().index()].get(p.src[1] as usize);
                    let cc = sets[fanins[2].node().index()].get(p.src[2] as usize);
                    let (ca, cb, cc) = (
                        ca.expect("source cut"),
                        cb.expect("source cut"),
                        cc.expect("source cut"),
                    );
                    compose_function(node.kind(), fanins, &[ca, cb, cc], &p.leaves)
                }
            };
            final_cuts.push(Cut::new(id, &p.leaves, f));
        }
        // The trivial cut is always available as a fallback.
        final_cuts.push(Cut::trivial(id));
        sets[id.index()] = CutSet::from_cuts(&final_cuts);
    }
    NetworkCuts {
        params: *params,
        sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{output_truth_tables, Network, NetworkKind};

    fn adder_bit() -> (Network, Signal, Signal) {
        let mut n = Network::new(NetworkKind::Xag);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let (s, co) = n.full_adder(a, b, c);
        n.add_output(s);
        n.add_output(co);
        (n, s, co)
    }

    #[test]
    fn every_gate_has_cuts_and_trivial_fallback() {
        let (n, _, _) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::default());
        for id in n.gate_ids() {
            let set = cuts.of(id);
            assert!(!set.is_empty());
            assert!(set.iter().any(|c| c.is_trivial()));
            for c in set.iter() {
                assert!(c.size() <= 6);
            }
        }
    }

    #[test]
    fn cut_functions_match_simulation() {
        let (n, s, co) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::new(3, 16));
        let tts = output_truth_tables(&n);
        // Find cuts of the output drivers whose leaves are exactly the PIs.
        let pis: Vec<NodeId> = n.inputs().to_vec();
        for (driver, expected) in [(s, &tts[0]), (co, &tts[1])] {
            let set = cuts.of(driver.node());
            let full = set
                .iter()
                .find(|c| c.leaves() == pis.as_slice())
                .expect("PI cut must exist for a 3-input cone");
            let mut f = full.function().clone();
            if driver.is_complement() {
                f = f.not();
            }
            assert_eq!(&f, expected);
        }
    }

    #[test]
    fn cut_limit_is_respected() {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(6);
        let f = n.and_reduce(&xs);
        n.add_output(f);
        let params = CutParams::new(4, 3);
        let cuts = enumerate_cuts(&n, &params);
        for id in n.gate_ids() {
            // limit + the always-present trivial cut
            assert!(cuts.of(id).len() <= params.cut_limit + 1);
        }
    }

    #[test]
    fn majority_cut_function() {
        let mut n = Network::new(NetworkKind::Mig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let m = n.maj3(a, b, !c);
        n.add_output(m);
        let cuts = enumerate_cuts(&n, &CutParams::default());
        let set = cuts.of(m.node());
        let pi_cut = set
            .iter()
            .find(|cut| cut.size() == 3)
            .expect("three-leaf cut exists");
        let tts = output_truth_tables(&n);
        assert_eq!(pi_cut.function(), &tts[0]);
    }

    #[test]
    fn total_cuts_is_consistent() {
        let (n, _, _) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::default());
        let sum: usize = n.node_ids().map(|id| cuts.of(id).len()).sum();
        assert_eq!(sum, cuts.total_cuts());
    }

    #[test]
    fn stored_functions_are_inline_for_small_cuts() {
        let (n, _, _) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::default());
        for id in n.gate_ids() {
            for c in cuts.of(id).iter() {
                assert!(
                    c.function().is_inline(),
                    "k ≤ 6 cut functions must be single-word"
                );
            }
        }
    }
}
