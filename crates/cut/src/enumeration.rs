//! The priority-cut enumeration algorithm.

use crate::{Cut, CutSet};
use mch_logic::{GateKind, Network, NodeId, Signal, TruthTable};

/// Parameters of cut enumeration.
///
/// `cut_size` is the paper's `k` (maximum number of leaves), `cut_limit` the
/// paper's `l` (maximum number of cuts stored per node).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CutParams {
    /// Maximum number of leaves per cut (`k`).
    pub cut_size: usize,
    /// Maximum number of cuts kept per node (`l`).
    pub cut_limit: usize,
}

impl CutParams {
    /// Creates parameters with the given cut size and per-node cut limit.
    ///
    /// # Panics
    ///
    /// Panics if `cut_size` is 0 or greater than 8, or `cut_limit` is 0.
    pub fn new(cut_size: usize, cut_limit: usize) -> Self {
        assert!((1..=8).contains(&cut_size), "cut size must be in 1..=8");
        assert!(cut_limit >= 1, "at least one cut per node is required");
        CutParams { cut_size, cut_limit }
    }
}

impl Default for CutParams {
    fn default() -> Self {
        CutParams::new(6, 8)
    }
}

/// All cut sets of a network, indexed by node.
#[derive(Clone, Debug)]
pub struct NetworkCuts {
    params: CutParams,
    sets: Vec<CutSet>,
}

impl NetworkCuts {
    /// The cut set of `node`.
    pub fn of(&self, node: NodeId) -> &CutSet {
        &self.sets[node.index()]
    }

    /// Mutable access to the cut set of `node` (used by the choice-aware
    /// mapper to transfer cuts from choice nodes, Algorithm 3 lines 2–8).
    pub fn of_mut(&mut self, node: NodeId) -> &mut CutSet {
        &mut self.sets[node.index()]
    }

    /// The enumeration parameters used.
    pub fn params(&self) -> CutParams {
        self.params
    }

    /// Total number of cuts over all nodes.
    pub fn total_cuts(&self) -> usize {
        self.sets.iter().map(CutSet::len).sum()
    }
}

/// Computes the function of `root` over the merged `leaves`, given the cut
/// functions of its fanins.
fn compose_function(
    kind: GateKind,
    fanins: &[Signal],
    fanin_cuts: &[&Cut],
    leaves: &[NodeId],
) -> TruthTable {
    let nvars = leaves.len();
    let mut tables: Vec<TruthTable> = Vec::with_capacity(fanins.len());
    for (sig, cut) in fanins.iter().zip(fanin_cuts) {
        // Remap the fanin's cut function onto the merged leaf ordering.
        let placement: Vec<usize> = cut
            .leaves()
            .iter()
            .map(|l| leaves.binary_search(l).expect("leaf present in merged cut"))
            .collect();
        let mut t = if cut.size() == 0 {
            // Constant cut: the fanin is the constant-false node.
            TruthTable::zeros(nvars)
        } else {
            cut.function().remap_vars(nvars, &placement)
        };
        if sig.is_complement() {
            t = t.not();
        }
        tables.push(t);
    }
    match kind {
        GateKind::And2 => tables[0].and(&tables[1]),
        GateKind::Xor2 => tables[0].xor(&tables[1]),
        GateKind::Maj3 => TruthTable::maj(&tables[0], &tables[1], &tables[2]),
        _ => unreachable!("only gates are composed"),
    }
}

/// Enumerates priority cuts for every node of `network`.
///
/// Each gate's cut set is built from the cross product of its fanins' cut
/// sets, filtered by dominance, capped at `params.cut_limit` cuts of at most
/// `params.cut_size` leaves, and always contains the node's trivial cut.
/// Truth tables are computed for every stored cut.
pub fn enumerate_cuts(network: &Network, params: &CutParams) -> NetworkCuts {
    let mut sets: Vec<CutSet> = vec![CutSet::new(); network.len()];
    // Constant node and primary inputs.
    sets[0].push_unchecked(Cut::constant(NodeId::CONST0));
    for &pi in network.inputs() {
        sets[pi.index()].push_unchecked(Cut::trivial(pi));
    }
    for id in network.gate_ids() {
        let node = network.node(id);
        let fanins: Vec<Signal> = node.fanins().to_vec();
        let mut set = CutSet::new();

        // Cross product of fanin cut sets.
        let fanin_sets: Vec<&CutSet> = fanins.iter().map(|s| &sets[s.node().index()]).collect();
        match fanins.len() {
            2 => {
                for ca in fanin_sets[0].iter() {
                    for cb in fanin_sets[1].iter() {
                        if let Some(leaves) = Cut::merge_leaves(ca, cb, params.cut_size) {
                            let f = compose_function(node.kind(), &fanins, &[ca, cb], &leaves);
                            set.insert(Cut::new(id, leaves, f));
                        }
                    }
                }
            }
            3 => {
                for ca in fanin_sets[0].iter() {
                    for cb in fanin_sets[1].iter() {
                        let Some(ab) = Cut::merge_leaves(ca, cb, params.cut_size) else {
                            continue;
                        };
                        let ab_cut = Cut::new(id, ab.clone(), TruthTable::zeros(ab.len()));
                        for cc in fanin_sets[2].iter() {
                            if let Some(leaves) =
                                Cut::merge_leaves(&ab_cut, cc, params.cut_size)
                            {
                                let f = compose_function(
                                    node.kind(),
                                    &fanins,
                                    &[ca, cb, cc],
                                    &leaves,
                                );
                                set.insert(Cut::new(id, leaves, f));
                            }
                        }
                    }
                }
            }
            _ => unreachable!("gates have 2 or 3 fanins"),
        }

        // Priority: smaller cuts first (a simple, robust static order).
        set.prioritize(params.cut_limit, |c| (c.size(), c.leaves().to_vec()));
        // The trivial cut is always available as a fallback.
        set.push_unchecked(Cut::trivial(id));
        sets[id.index()] = set;
    }
    NetworkCuts {
        params: *params,
        sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{output_truth_tables, Network, NetworkKind};

    fn adder_bit() -> (Network, Signal, Signal) {
        let mut n = Network::new(NetworkKind::Xag);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let (s, co) = n.full_adder(a, b, c);
        n.add_output(s);
        n.add_output(co);
        (n, s, co)
    }

    #[test]
    fn every_gate_has_cuts_and_trivial_fallback() {
        let (n, _, _) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::default());
        for id in n.gate_ids() {
            let set = cuts.of(id);
            assert!(!set.is_empty());
            assert!(set.iter().any(|c| c.is_trivial()));
            for c in set.iter() {
                assert!(c.size() <= 6);
            }
        }
    }

    #[test]
    fn cut_functions_match_simulation() {
        let (n, s, co) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::new(3, 16));
        let tts = output_truth_tables(&n);
        // Find cuts of the output drivers whose leaves are exactly the PIs.
        let pis: Vec<NodeId> = n.inputs().to_vec();
        for (driver, expected) in [(s, &tts[0]), (co, &tts[1])] {
            let set = cuts.of(driver.node());
            let full = set
                .iter()
                .find(|c| c.leaves() == pis.as_slice())
                .expect("PI cut must exist for a 3-input cone");
            let mut f = full.function().clone();
            if driver.is_complement() {
                f = f.not();
            }
            assert_eq!(&f, expected);
        }
    }

    #[test]
    fn cut_limit_is_respected() {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(6);
        let f = n.and_reduce(&xs);
        n.add_output(f);
        let params = CutParams::new(4, 3);
        let cuts = enumerate_cuts(&n, &params);
        for id in n.gate_ids() {
            // limit + the always-present trivial cut
            assert!(cuts.of(id).len() <= params.cut_limit + 1);
        }
    }

    #[test]
    fn majority_cut_function() {
        let mut n = Network::new(NetworkKind::Mig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let m = n.maj3(a, b, !c);
        n.add_output(m);
        let cuts = enumerate_cuts(&n, &CutParams::default());
        let set = cuts.of(m.node());
        let pi_cut = set
            .iter()
            .find(|cut| cut.size() == 3)
            .expect("three-leaf cut exists");
        let tts = output_truth_tables(&n);
        assert_eq!(pi_cut.function(), &tts[0]);
    }

    #[test]
    fn total_cuts_is_consistent() {
        let (n, _, _) = adder_bit();
        let cuts = enumerate_cuts(&n, &CutParams::default());
        let sum: usize = n.node_ids().map(|id| cuts.of(id).len()).sum();
        assert_eq!(sum, cuts.total_cuts());
    }
}
