//! The pre-optimization, heap-allocating cut enumeration, kept as a living
//! baseline.
//!
//! This module preserves the original `Vec`-based data structures the crate
//! shipped with before the zero-allocation rewrite: leaves in a `Vec<NodeId>`,
//! truth tables in a `Vec<u64>` regardless of size, a `(size, leaves.to_vec())`
//! sort key that clones per comparison, and the per-pair dummy-cut clone in
//! the 3-fanin path. It exists for two reasons:
//!
//! 1. the `cut_enum` benchmark measures the new hot path *against* this
//!    implementation, so the recorded speedup always refers to a runnable
//!    baseline rather than a git archaeology exercise;
//! 2. the property-based tests cross-check the inline enumeration against
//!    this reference semantics cut-for-cut.
//!
//! Nothing in the mapping flows uses this module.

use crate::CutParams;
use mch_logic::{GateKind, Network, NodeId, Signal};

/// Heap-allocated truth table: always a `Vec<u64>`, as before the inline
/// small-table representation existed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LegacyTable {
    num_vars: usize,
    words: Vec<u64>,
}

fn words_for(num_vars: usize) -> usize {
    if num_vars <= 6 {
        1
    } else {
        1 << (num_vars - 6)
    }
}

fn mask_for(num_vars: usize) -> u64 {
    if num_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << num_vars)) - 1
    }
}

impl LegacyTable {
    /// The constant-false function.
    pub fn zeros(num_vars: usize) -> Self {
        LegacyTable {
            num_vars,
            words: vec![0; words_for(num_vars)],
        }
    }

    /// The projection of variable `var`.
    pub fn var(num_vars: usize, var: usize) -> Self {
        let mut t = LegacyTable::zeros(num_vars);
        for i in 0..t.num_bits() {
            if i & (1 << var) != 0 {
                t.set_bit(i, true);
            }
        }
        t
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of minterms.
    pub fn num_bits(&self) -> usize {
        1 << self.num_vars
    }

    /// The raw backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value at minterm `index`.
    pub fn bit(&self, index: usize) -> bool {
        (self.words[index >> 6] >> (index & 63)) & 1 == 1
    }

    /// Sets the value at minterm `index`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        if value {
            self.words[index >> 6] |= 1u64 << (index & 63);
        } else {
            self.words[index >> 6] &= !(1u64 << (index & 63));
        }
    }

    fn mask(&mut self) {
        if self.num_vars < 6 {
            self.words[0] &= mask_for(self.num_vars);
        }
    }

    fn zip(&self, other: &LegacyTable, op: impl Fn(u64, u64) -> u64) -> LegacyTable {
        let mut t = LegacyTable {
            num_vars: self.num_vars,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| op(a, b))
                .collect(),
        };
        t.mask();
        t
    }

    /// Bitwise AND.
    pub fn and(&self, other: &LegacyTable) -> LegacyTable {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &LegacyTable) -> LegacyTable {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &LegacyTable) -> LegacyTable {
        self.zip(other, |a, b| a ^ b)
    }

    /// Complement.
    pub fn not(&self) -> LegacyTable {
        let mut t = LegacyTable {
            num_vars: self.num_vars,
            words: self.words.iter().map(|w| !w).collect(),
        };
        t.mask();
        t
    }

    /// Three-input majority.
    pub fn maj(a: &LegacyTable, b: &LegacyTable, c: &LegacyTable) -> LegacyTable {
        a.and(b).or(&a.and(c)).or(&b.and(c))
    }

    /// Minterm-by-minterm variable remapping (the original implementation).
    pub fn remap_vars(&self, new_num_vars: usize, placement: &[usize]) -> LegacyTable {
        let mut t = LegacyTable::zeros(new_num_vars);
        for i in 0..t.num_bits() {
            let mut old = 0usize;
            for (ov, &nv) in placement.iter().enumerate() {
                if i & (1 << nv) != 0 {
                    old |= 1 << ov;
                }
            }
            t.set_bit(i, self.bit(old));
        }
        t
    }
}

/// A cut with heap-allocated leaves — the original representation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LegacyCut {
    root: NodeId,
    leaves: Vec<NodeId>,
    signature: u64,
    function: LegacyTable,
}

impl LegacyCut {
    /// Creates a cut from its parts. Leaves must already be sorted.
    pub fn new(root: NodeId, leaves: Vec<NodeId>, function: LegacyTable) -> Self {
        let signature = leaves.iter().fold(0u64, |acc, l| acc | 1 << (l.index() % 64));
        LegacyCut {
            root,
            leaves,
            signature,
            function,
        }
    }

    /// The trivial cut of `node`.
    pub fn trivial(node: NodeId) -> Self {
        LegacyCut::new(node, vec![node], LegacyTable::var(1, 0))
    }

    /// The constant cut.
    pub fn constant(node: NodeId) -> Self {
        LegacyCut::new(node, vec![], LegacyTable::zeros(0))
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The sorted leaves.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// The cut function.
    pub fn function(&self) -> &LegacyTable {
        &self.function
    }

    /// Whether this is the trivial cut of its root.
    pub fn is_trivial(&self) -> bool {
        self.leaves.len() == 1 && self.leaves[0] == self.root
    }

    /// Subset test via per-leaf binary search (the original formulation).
    pub fn dominates(&self, other: &LegacyCut) -> bool {
        if self.leaves.len() > other.leaves.len() {
            return false;
        }
        if self.signature & !other.signature != 0 {
            return false;
        }
        self.leaves.iter().all(|l| other.leaves.binary_search(l).is_ok())
    }

    /// Merges two leaf sets into a fresh `Vec`, the original allocation-heavy
    /// formulation.
    pub fn merge_leaves(a: &LegacyCut, b: &LegacyCut, max_size: usize) -> Option<Vec<NodeId>> {
        let mut out = Vec::with_capacity(a.leaves.len() + b.leaves.len());
        let (mut i, mut j) = (0, 0);
        while i < a.leaves.len() || j < b.leaves.len() {
            let next = match (a.leaves.get(i), b.leaves.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            out.push(next);
            if out.len() > max_size {
                return None;
            }
        }
        Some(out)
    }
}

/// The original two-scan, full-slice-comparing cut set.
#[derive(Clone, Debug, Default)]
pub struct LegacyCutSet {
    cuts: Vec<LegacyCut>,
}

impl LegacyCutSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        LegacyCutSet::default()
    }

    /// Iterates over the stored cuts.
    pub fn iter(&self) -> impl Iterator<Item = &LegacyCut> {
        self.cuts.iter()
    }

    /// Number of cuts stored.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Returns `true` if no cut is stored.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// Dominance-filtered insertion with the original two separate scans.
    pub fn insert(&mut self, cut: LegacyCut) -> bool {
        if self
            .cuts
            .iter()
            .any(|c| c.dominates(&cut) && c.leaves() != cut.leaves())
        {
            return false;
        }
        if self.cuts.iter().any(|c| c.leaves() == cut.leaves()) {
            return false;
        }
        self.cuts
            .retain(|c| !cut.dominates(c) || c.leaves() == cut.leaves());
        self.cuts.push(cut);
        true
    }

    /// Unfiltered append with full-slice duplicate comparison.
    pub fn push_unchecked(&mut self, cut: LegacyCut) {
        if self
            .cuts
            .iter()
            .any(|c| c.leaves() == cut.leaves() && c.root() == cut.root())
        {
            return;
        }
        self.cuts.push(cut);
    }

    /// The original sort-and-truncate with a cloning sort key.
    pub fn prioritize<K: Ord>(&mut self, limit: usize, mut key: impl FnMut(&LegacyCut) -> K) {
        self.cuts.sort_by_key(|c| key(c));
        if self.cuts.len() > limit {
            let trivial = self.cuts.iter().position(|c| c.is_trivial());
            if let Some(pos) = trivial {
                if pos >= limit {
                    let t = self.cuts.remove(pos);
                    self.cuts.truncate(limit.saturating_sub(1));
                    self.cuts.push(t);
                    return;
                }
            }
            self.cuts.truncate(limit);
        }
    }
}

/// All legacy cut sets of a network, indexed by node.
#[derive(Clone, Debug)]
pub struct LegacyNetworkCuts {
    sets: Vec<LegacyCutSet>,
}

impl LegacyNetworkCuts {
    /// The cut set of `node`.
    pub fn of(&self, node: NodeId) -> &LegacyCutSet {
        &self.sets[node.index()]
    }

    /// Total number of cuts over all nodes.
    pub fn total_cuts(&self) -> usize {
        self.sets.iter().map(LegacyCutSet::len).sum()
    }
}

fn compose_function(
    kind: GateKind,
    fanins: &[Signal],
    fanin_cuts: &[&LegacyCut],
    leaves: &[NodeId],
) -> LegacyTable {
    let nvars = leaves.len();
    let mut tables: Vec<LegacyTable> = Vec::with_capacity(fanins.len());
    for (sig, cut) in fanins.iter().zip(fanin_cuts) {
        let placement: Vec<usize> = cut
            .leaves()
            .iter()
            .map(|l| leaves.binary_search(l).expect("leaf present in merged cut"))
            .collect();
        let mut t = if cut.size() == 0 {
            LegacyTable::zeros(nvars)
        } else {
            cut.function().remap_vars(nvars, &placement)
        };
        if sig.is_complement() {
            t = t.not();
        }
        tables.push(t);
    }
    match kind {
        GateKind::And2 => tables[0].and(&tables[1]),
        GateKind::Xor2 => tables[0].xor(&tables[1]),
        GateKind::Maj3 => LegacyTable::maj(&tables[0], &tables[1], &tables[2]),
        _ => unreachable!("only gates are composed"),
    }
}

/// The original priority-cut enumeration, byte-for-byte in behavior: fresh
/// allocations per node, per merge, per sort comparison and per 3-fanin pair.
pub fn legacy_enumerate_cuts(network: &Network, params: &CutParams) -> LegacyNetworkCuts {
    let mut sets: Vec<LegacyCutSet> = vec![LegacyCutSet::new(); network.len()];
    sets[0].push_unchecked(LegacyCut::constant(NodeId::CONST0));
    for &pi in network.inputs() {
        sets[pi.index()].push_unchecked(LegacyCut::trivial(pi));
    }
    for id in network.gate_ids() {
        let node = network.node(id);
        let fanins: Vec<Signal> = node.fanins().to_vec();
        let mut set = LegacyCutSet::new();

        let fanin_sets: Vec<&LegacyCutSet> =
            fanins.iter().map(|s| &sets[s.node().index()]).collect();
        match fanins.len() {
            2 => {
                for ca in fanin_sets[0].iter() {
                    for cb in fanin_sets[1].iter() {
                        if let Some(leaves) = LegacyCut::merge_leaves(ca, cb, params.cut_size) {
                            let f = compose_function(node.kind(), &fanins, &[ca, cb], &leaves);
                            set.insert(LegacyCut::new(id, leaves, f));
                        }
                    }
                }
            }
            3 => {
                for ca in fanin_sets[0].iter() {
                    for cb in fanin_sets[1].iter() {
                        let Some(ab) = LegacyCut::merge_leaves(ca, cb, params.cut_size) else {
                            continue;
                        };
                        let ab_cut = LegacyCut::new(id, ab.clone(), LegacyTable::zeros(ab.len()));
                        for cc in fanin_sets[2].iter() {
                            if let Some(leaves) =
                                LegacyCut::merge_leaves(&ab_cut, cc, params.cut_size)
                            {
                                let f = compose_function(
                                    node.kind(),
                                    &fanins,
                                    &[ca, cb, cc],
                                    &leaves,
                                );
                                set.insert(LegacyCut::new(id, leaves, f));
                            }
                        }
                    }
                }
            }
            _ => unreachable!("gates have 2 or 3 fanins"),
        }

        set.prioritize(params.cut_limit, |c| (c.size(), c.leaves().to_vec()));
        set.push_unchecked(LegacyCut::trivial(id));
        sets[id.index()] = set;
    }
    LegacyNetworkCuts { sets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_cuts, CutParams};
    use mch_logic::{Network, NetworkKind};

    #[test]
    fn legacy_matches_inline_on_full_adder() {
        let mut n = Network::new(NetworkKind::Xag);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let (s, co) = n.full_adder(a, b, c);
        n.add_output(s);
        n.add_output(co);
        let params = CutParams::new(4, 8);
        let old = legacy_enumerate_cuts(&n, &params);
        let new = enumerate_cuts(&n, &params);
        assert_eq!(old.total_cuts(), new.total_cuts());
        for id in n.node_ids() {
            for (x, y) in new.of(id).iter().zip(old.of(id).iter()) {
                assert_eq!(x.leaves(), y.leaves());
                assert_eq!(x.function().words(), y.function().words());
                assert_eq!(x.root(), y.root());
            }
        }
    }
}
