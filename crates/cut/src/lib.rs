//! Priority-cut enumeration for logic networks.
//!
//! A *cut* of node `n` is a set of leaf nodes such that every path from the
//! primary inputs to `n` crosses a leaf. Cut-based technology mapping
//! (both ASIC and K-LUT) evaluates covering the cone between a node and a
//! cut's leaves with one library cell or LUT; the quality of mapping therefore
//! depends directly on which cuts are enumerated. This crate implements the
//! classical priority-cut algorithm (Mishchenko et al., ICCAD'07) with
//! per-node cut limits and on-the-fly truth-table computation, which is the
//! machinery required by Algorithms 1 and 3 of the MCH paper.
//!
//! # Example
//!
//! ```
//! use mch_cut::{enumerate_cuts, CutParams};
//! use mch_logic::{Network, NetworkKind};
//!
//! let mut aig = Network::new(NetworkKind::Aig);
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let c = aig.add_input();
//! let ab = aig.and2(a, b);
//! let abc = aig.and2(ab, c);
//! aig.add_output(abc);
//!
//! let cuts = enumerate_cuts(&aig, &CutParams::new(4, 8));
//! // The 3-input AND cone is found as a single cut of the output node.
//! let best = cuts.of(abc.node());
//! assert!(best.iter().any(|cut| cut.leaves().len() == 3));
//! ```

#![warn(missing_docs)]

mod cut;
mod enumeration;
pub mod legacy;
pub mod parallel;

pub use cut::{Cut, CutCost, CutCostModel, CutCosts, CutSet, LeafBuf, MAX_CUT_SIZE};
pub use enumeration::{enumerate_cuts, enumerate_cuts_with_model, CutParams, NetworkCuts};
pub use legacy::{legacy_enumerate_cuts, LegacyNetworkCuts};
pub use parallel::{default_threads, enumerate_cuts_threaded, level_parallel, WorkerPool};
