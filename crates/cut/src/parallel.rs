//! Level-parallel cut enumeration on a dependency-free scoped worker pool.
//!
//! Priority-cut enumeration is embarrassingly parallel *within* a topological
//! level: a gate's cut set depends only on its fanins' cut sets, and every
//! fanin sits at a strictly smaller level. This module exploits exactly that
//! structure:
//!
//! 1. [`mch_logic::levelize`] groups the gates by level;
//! 2. a small worker pool — plain [`std::thread::scope`] threads, no external
//!    dependencies — is spawned once and fed one level at a time through
//!    [`std::sync::mpsc`] channels ([`level_parallel`] is the generic
//!    harness);
//! 3. each worker runs the same per-node kernel as the serial driver
//!    (`enumerate_node`) over a contiguous, id-ordered shard of the level,
//!    with its own `ProtoCut`/`LeafBuf` scratch, reading the already-complete
//!    lower levels through a shared [`RwLock`];
//! 4. the coordinator merges the shards back in chunk order (which is node-id
//!    order within the level) before releasing the next level.
//!
//! # Determinism
//!
//! Worker output order is fixed by node id: shards are contiguous id-ordered
//! slices and results are committed in shard order, so the cuts of every node
//! are exactly the ones the serial driver computes, ranked identically. After
//! the last level the arena is canonicalized into the serial driver's layout
//! (constant node, then primary inputs, then gates in id order), which makes
//! a parallel [`NetworkCuts`] **byte-identical** to a serial one — see
//! [`NetworkCuts::identical`] and the determinism tests. Thread count, core
//! count and scheduling cannot change the result.
//!
//! # When to use `threads = 1`
//!
//! `threads = 1` (or a network whose widest level is below the sharding
//! threshold) selects the serial driver unchanged — no pool, no locks, no
//! extra allocation. Prefer it for small networks, for latency-sensitive
//! single-circuit calls where the pool's startup cost (a few thread spawns
//! plus one channel round-trip per level) is comparable to the enumeration
//! itself, and when an outer loop already parallelizes across circuits.

use crate::enumeration::{
    enumerate_node, fanout_estimates, seed_arena, EnumView, NodeScratch,
};
use crate::{enumerate_cuts_with_model, Cut, CutCostModel, CutCosts, CutParams, NetworkCuts};
use mch_logic::{levelize, Network, NodeId};
use std::num::NonZeroUsize;
use std::sync::{mpsc, RwLock};

/// Smallest level (or representative batch) worth sharding across the pool;
/// anything narrower runs inline on the coordinating thread, which keeps
/// deep, narrow circuits from paying one channel round-trip per tiny level.
pub(crate) const MIN_PARALLEL_LEVEL: usize = 16;

/// Chunks handed out per worker and level when a level is sharded. The
/// assignment is static (chunk `c` goes to worker `c % threads` up front, no
/// stealing), but consecutive chunks land on *different* workers, so a
/// contiguous id region of expensive nodes (wide cross products cluster that
/// way) is spread across the pool instead of serializing on one worker.
const CHUNKS_PER_WORKER: usize = 4;

/// The default worker count for parallel cut enumeration: the `MCH_THREADS`
/// environment variable when set to a positive integer (this is how CI runs
/// the whole test suite serially and multi-threaded), otherwise
/// [`std::thread::available_parallelism`], floored at 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// One unit of work handed to a pool worker: chunk `chunk` of level `level`,
/// covering `items[start..end]` of that level's slice.
struct Task {
    chunk: usize,
    level: usize,
    start: usize,
    end: usize,
}

/// Runs `work` over every item of every level, levels strictly in order,
/// items of one level sharded across a scoped worker pool of `threads`
/// threads — the level-synchronized harness behind
/// [`enumerate_cuts_threaded`] and the choice-transfer sharding in
/// `mch_mapper`.
///
/// * `init` builds one per-worker scratch value (called once per worker, plus
///   once on the coordinator for inline levels);
/// * `work` maps a contiguous, order-preserving shard of a level to one
///   result (it runs concurrently with other shards of the *same* level, so
///   it must only read state written by earlier levels — wrap shared state in
///   a [`RwLock`] and take a read lock per shard);
/// * `commit` receives each level's results **in shard order** (which
///   preserves item order) after all of that level's shards finished, and is
///   the only place that may write shared state.
///
/// Levels shorter than `min_shard` — and everything, when `threads <= 1` or
/// no level reaches `min_shard` — run inline on the coordinating thread in
/// the very same order, so the observable commit sequence is independent of
/// the thread count. Empty levels are skipped.
///
/// # Panics
///
/// A panic inside `work` is caught on the worker, forwarded to the
/// coordinator and re-raised there with its original payload, so callers
/// observe it like a plain serial panic.
pub fn level_parallel<T, S, R>(
    levels: &[Vec<T>],
    threads: usize,
    min_shard: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, &[T]) -> R + Sync,
    mut commit: impl FnMut(Vec<R>),
) where
    T: Sync,
    R: Send,
{
    let min_shard = min_shard.max(2);
    let widest = levels.iter().map(Vec::len).max().unwrap_or(0);
    if threads <= 1 || widest < min_shard {
        let mut scratch = init();
        for level in levels {
            if level.is_empty() {
                continue;
            }
            let result = work(&mut scratch, level);
            commit(vec![result]);
        }
        return;
    }

    let init = &init;
    let work = &work;
    std::thread::scope(|scope| {
        // Results travel as `thread::Result` so a panicking worker reports
        // its payload through the channel instead of leaving the coordinator
        // blocked until the timeout; the coordinator resumes the panic with
        // its original payload immediately.
        let (result_tx, result_rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        let mut task_txs: Vec<mpsc::Sender<Task>> = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<Task>();
            task_txs.push(tx);
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                let mut scratch = init();
                while let Ok(task) = rx.recv() {
                    let shard = &levels[task.level][task.start..task.end];
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || work(&mut scratch, shard),
                    ));
                    let died = result.is_err();
                    if result_tx.send((task.chunk, result)).is_err() || died {
                        break;
                    }
                }
            });
        }
        drop(result_tx);

        // The coordinator's own scratch, for levels too narrow to shard.
        let mut inline_scratch: Option<S> = None;
        for (level_index, level) in levels.iter().enumerate() {
            if level.is_empty() {
                continue;
            }
            if level.len() < min_shard {
                let scratch = inline_scratch.get_or_insert_with(init);
                let result = work(scratch, level);
                commit(vec![result]);
                continue;
            }
            let chunk_size = level
                .len()
                .div_ceil(threads * CHUNKS_PER_WORKER)
                .max(min_shard / 2);
            let chunk_count = level.len().div_ceil(chunk_size);
            for chunk in 0..chunk_count {
                let start = chunk * chunk_size;
                let end = (start + chunk_size).min(level.len());
                let task = Task {
                    chunk,
                    level: level_index,
                    start,
                    end,
                };
                if task_txs[chunk % threads].send(task).is_err() {
                    // A worker only hangs up after forwarding a panic; its
                    // payload is already queued on the result channel (the
                    // send happens before the hangup) — find and re-raise it
                    // rather than masking it with a generic message.
                    raise_forwarded_panic(&result_rx);
                }
            }
            let mut results: Vec<Option<R>> = (0..chunk_count).map(|_| None).collect();
            for _ in 0..chunk_count {
                // Plain blocking recv: a worker cannot vanish silently — a
                // panic inside `work` is caught and forwarded, and if every
                // worker somehow exited, all senders drop and recv errors.
                let (chunk, result) = result_rx
                    .recv()
                    .expect("every pool worker exited without reporting a shard");
                match result {
                    Ok(r) => results[chunk] = Some(r),
                    // Re-raise the worker's panic on the coordinator with its
                    // original payload (the scope would otherwise surface it
                    // only at join).
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            commit(
                results
                    .into_iter()
                    .map(|r| r.expect("every chunk index reports exactly once"))
                    .collect(),
            );
        }
        // Closing the task channels lets the workers drain and exit before
        // the scope joins them.
        drop(task_txs);
    });
}

/// Scans the result channel for a forwarded worker panic and re-raises it
/// with its original payload; called when a task send fails, which can only
/// happen after a worker panicked and hung up. Panics with a generic message
/// if no payload is found (should be unreachable).
fn raise_forwarded_panic<R>(result_rx: &mpsc::Receiver<(usize, std::thread::Result<R>)>) -> ! {
    while let Ok((_, result)) = result_rx.try_recv() {
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }
    panic!("pool worker exited while the coordinator was dispatching");
}

/// Mutable enumeration state shared between the coordinator and the pool:
/// workers take read locks while processing a level, the coordinator takes
/// the write lock to merge each finished level.
struct EnumState {
    arena: Vec<Cut>,
    spans: Vec<(u32, u32)>,
    node_costs: Vec<CutCosts>,
}

/// One worker's result for one shard: per node the id, how many cuts it
/// stored and its best cost estimates, plus all those cuts concatenated in
/// node order.
struct ShardCuts {
    nodes: Vec<(NodeId, u32, CutCosts)>,
    cuts: Vec<Cut>,
}

/// [`enumerate_cuts_with_model`] sharded over `threads` workers, one
/// topological level at a time.
///
/// The result is byte-identical to the serial driver's — same cuts, same
/// ranking, same costs, same arena layout (see the module docs on
/// determinism). `threads = 1` (and any network whose widest level is too
/// narrow to shard) *is* the serial driver; `threads = 0` is treated as 1.
/// Use [`default_threads`] to follow the host's core count.
pub fn enumerate_cuts_threaded(
    network: &Network,
    params: &CutParams,
    model: &CutCostModel,
    threads: usize,
) -> NetworkCuts {
    if threads <= 1 {
        return enumerate_cuts_with_model(network, params, model);
    }
    let levels = levelize(network);
    if levels.max_width() < MIN_PARALLEL_LEVEL {
        return enumerate_cuts_with_model(network, params, model);
    }
    let fanout_est = fanout_estimates(network);
    let (arena, spans) = seed_arena(network);
    let shared = RwLock::new(EnumState {
        arena,
        spans,
        node_costs: vec![CutCosts::ZERO; network.len()],
    });
    level_parallel(
        levels.as_slices(),
        threads,
        MIN_PARALLEL_LEVEL,
        NodeScratch::new,
        |scratch: &mut NodeScratch, shard: &[NodeId]| {
            let state = shared.read().expect("enumeration state poisoned");
            let mut out = ShardCuts {
                nodes: Vec::with_capacity(shard.len()),
                cuts: Vec::new(),
            };
            for &id in shard {
                let best = enumerate_node(
                    network,
                    id,
                    params,
                    model,
                    &fanout_est,
                    EnumView {
                        arena: &state.arena,
                        spans: &state.spans,
                        node_costs: &state.node_costs,
                    },
                    scratch,
                );
                out.nodes.push((id, scratch.final_cuts.len() as u32, best));
                out.cuts.append(&mut scratch.final_cuts);
            }
            out
        },
        |shards: Vec<ShardCuts>| {
            let mut state = shared.write().expect("enumeration state poisoned");
            for mut shard in shards {
                let mut start = state.arena.len() as u32;
                state.arena.append(&mut shard.cuts);
                for (id, len, best) in shard.nodes {
                    state.spans[id.index()] = (start, len);
                    state.node_costs[id.index()] = best;
                    start += len;
                }
            }
        },
    );
    let state = shared
        .into_inner()
        .expect("enumeration state poisoned");
    canonicalize(network, params, model, state, fanout_est)
}

/// Rewrites the level-major arena the parallel driver builds into the serial
/// driver's layout — constant node, primary inputs, then gates in ascending
/// id order — so serial and parallel enumerations are indistinguishable even
/// through the internal representation. One O(total cuts) copy, a small
/// constant fraction of enumeration time.
fn canonicalize(
    network: &Network,
    params: &CutParams,
    model: &CutCostModel,
    state: EnumState,
    fanout_est: Vec<f32>,
) -> NetworkCuts {
    let EnumState {
        arena: level_arena,
        spans: level_spans,
        node_costs,
    } = state;
    let mut arena: Vec<Cut> = Vec::with_capacity(level_arena.len());
    let mut spans = vec![(0u32, 0u32); network.len()];
    let ids = std::iter::once(NodeId::CONST0)
        .chain(network.inputs().iter().copied())
        .chain(network.gate_ids());
    for id in ids {
        let (start, len) = level_spans[id.index()];
        spans[id.index()] = (arena.len() as u32, len);
        arena.extend_from_slice(&level_arena[start as usize..(start + len) as usize]);
    }
    NetworkCuts {
        params: *params,
        model: *model,
        arena,
        spans,
        node_costs,
        fanout_est,
        wasted: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{Network, NetworkKind, Prng, Signal};

    /// A wide, layered random network (every level far above the sharding
    /// threshold) — small enough for tests, wide enough that the pool
    /// genuinely shards.
    fn wide_network(seed: u64, kind: NetworkKind) -> Network {
        let mut rng = Prng::seed_from_u64(seed);
        let mut net = Network::new(kind);
        let mut layer: Vec<Signal> = net.add_inputs(48);
        for _ in 0..6 {
            let mut next = Vec::new();
            for _ in 0..48 {
                let a = layer[rng.gen_range(0..layer.len())];
                let b = layer[rng.gen_range(0..layer.len())];
                let a = a.xor_complement(rng.gen_bool(0.4));
                let b = b.xor_complement(rng.gen_bool(0.4));
                let s = match rng.gen_range(0..3) {
                    0 => net.and(a, b),
                    1 => net.or(a, b),
                    _ => net.xor(a, b),
                };
                next.push(s);
            }
            layer = next;
        }
        for &s in layer.iter().take(16) {
            net.add_output(s);
        }
        net
    }

    #[test]
    fn parallel_is_byte_identical_to_serial() {
        for kind in [NetworkKind::Aig, NetworkKind::Xag, NetworkKind::Mig] {
            let net = wide_network(0xD5, kind);
            let params = CutParams::new(6, 8);
            let serial = enumerate_cuts_with_model(&net, &params, &CutCostModel::unit());
            for threads in [2, 3, 4, 8] {
                let parallel =
                    enumerate_cuts_threaded(&net, &params, &CutCostModel::unit(), threads);
                assert!(
                    serial.identical(&parallel),
                    "{kind:?} with {threads} threads diverged from serial"
                );
            }
        }
    }

    #[test]
    fn one_thread_is_the_serial_path() {
        let net = wide_network(0x11, NetworkKind::Aig);
        let params = CutParams::default();
        let serial = enumerate_cuts_with_model(&net, &params, &CutCostModel::unit());
        for threads in [0, 1] {
            let same = enumerate_cuts_threaded(&net, &params, &CutCostModel::unit(), threads);
            assert!(serial.identical(&same));
        }
    }

    #[test]
    fn narrow_networks_fall_back_to_serial() {
        // A chain: every level has one node, far below the shard threshold.
        let mut net = Network::new(NetworkKind::Aig);
        let xs = net.add_inputs(4);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = net.and(acc, x);
        }
        net.add_output(acc);
        let params = CutParams::default();
        let serial = enumerate_cuts_with_model(&net, &params, &CutCostModel::unit());
        let parallel = enumerate_cuts_threaded(&net, &params, &CutCostModel::unit(), 8);
        assert!(serial.identical(&parallel));
    }

    #[test]
    fn level_parallel_commits_in_item_order() {
        // Four levels of unequal width; the concatenated commit order must be
        // exactly the level-major item order regardless of thread count.
        let levels: Vec<Vec<u32>> = vec![
            (0..40).collect(),
            (40..41).collect(),
            vec![],
            (41..120).collect(),
        ];
        let expect: Vec<u32> = levels.iter().flatten().copied().collect();
        for threads in [1, 2, 4, 7] {
            let seen = std::sync::Mutex::new(Vec::new());
            level_parallel(
                &levels,
                threads,
                8,
                || (),
                |_, shard: &[u32]| shard.to_vec(),
                |results| {
                    let mut seen = seen.lock().unwrap();
                    for r in results {
                        seen.extend(r);
                    }
                },
            );
            assert_eq!(*seen.lock().unwrap(), expect, "threads = {threads}");
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates_with_its_payload() {
        let levels: Vec<Vec<u32>> = vec![(0..64).collect()];
        let caught = std::panic::catch_unwind(|| {
            level_parallel(
                &levels,
                4,
                8,
                || (),
                |_, shard: &[u32]| {
                    if shard.contains(&63) {
                        panic!("worker exploded on purpose");
                    }
                    shard.len()
                },
                |_| {},
            );
        });
        let payload = caught.expect_err("the worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default();
        assert_eq!(msg, "worker exploded on purpose");
    }
}
