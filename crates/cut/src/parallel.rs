//! Level-parallel cut enumeration and the process-wide worker pool behind it.
//!
//! Priority-cut enumeration is embarrassingly parallel *within* a topological
//! level: a gate's cut set depends only on its fanins' cut sets, and every
//! fanin sits at a strictly smaller level. This module exploits exactly that
//! structure:
//!
//! 1. [`mch_logic::levelize`] groups the gates by level;
//! 2. shard work is executed on the lazily-spawned, process-wide
//!    [`WorkerPool`] — plain [`std::thread`] workers fed through a shared
//!    injector queue, no external dependencies — so repeated enumeration
//!    calls (and the other phases that reuse the pool: choice transfer in
//!    `mch_mapper`, choice-recipe planning in `mch_choice`, snapshot
//!    graph-mapping in `mch_core`) pay the thread-spawn cost once per
//!    process instead of once per call;
//! 3. each worker runs the same per-node kernel as the serial driver
//!    (`enumerate_node`) over contiguous, id-ordered shards pulled from a
//!    per-call task queue, with its own `ProtoCut`/`LeafBuf` scratch, reading
//!    the already-complete lower levels through a shared [`RwLock`];
//! 4. the coordinator merges the shards back in chunk order (which is node-id
//!    order within the level) before releasing the next level.
//!
//! [`level_parallel`] is the generic level-synchronized harness; it is public
//! precisely so other crates can shard their own per-level (or single-batch)
//! work on the same pool.
//!
//! # Determinism
//!
//! Worker output order is fixed by node id: shards are contiguous id-ordered
//! slices and results are committed in shard order, so the cuts of every node
//! are exactly the ones the serial driver computes, ranked identically. After
//! the last level the arena is canonicalized into the serial driver's layout
//! (constant node, then primary inputs, then gates in id order), which makes
//! a parallel [`NetworkCuts`] **byte-identical** to a serial one — see
//! [`NetworkCuts::identical`] and the determinism tests. Thread count, core
//! count and scheduling cannot change the result.
//!
//! # When to use `threads = 1`
//!
//! `threads = 1` (or a network whose widest level is below the sharding
//! threshold) selects the serial driver unchanged — no pool, no locks, no
//! extra allocation. Prefer it for small networks, for latency-sensitive
//! single-circuit calls where the per-call coordination cost (one task-queue
//! round-trip per level) is comparable to the enumeration itself, and when an
//! outer loop already parallelizes across circuits.

use crate::enumeration::{
    enumerate_node, fanout_estimates, seed_arena, EnumView, NodeScratch,
};
use crate::{enumerate_cuts_with_model, Cut, CutCostModel, CutCosts, CutParams, NetworkCuts};
use mch_logic::{levelize, Network, NodeId};
use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock, PoisonError, RwLock};

/// Recovers a mutex/rwlock guard from a poisoned lock.
///
/// Every lock in this module protects state that is either always consistent
/// (the job queue: panicking jobs are wrapped, so a queue operation itself
/// never unwinds mid-update) or discarded wholesale when a phase unwinds (the
/// enumeration arena), so the poison flag carries no information here beyond
/// "some other thread panicked once" — which fault containment explicitly
/// must survive.
macro_rules! recover {
    ($lock:expr) => {
        $lock.unwrap_or_else(PoisonError::into_inner)
    };
}

/// Smallest level (or representative batch) worth sharding across the pool;
/// anything narrower runs inline on the coordinating thread, which keeps
/// deep, narrow circuits from paying one task-queue round-trip per tiny
/// level.
pub(crate) const MIN_PARALLEL_LEVEL: usize = 16;

/// Chunks handed out per worker and level when a level is sharded. Chunks are
/// pushed to the shared task queue in order and pulled by whichever worker is
/// free, so a contiguous id region of expensive nodes (wide cross products
/// cluster that way) is spread across the pool instead of serializing on one
/// worker.
const CHUNKS_PER_WORKER: usize = 4;

/// The default worker count for parallel cut enumeration: the `MCH_THREADS`
/// environment variable when set to a positive integer (this is how CI runs
/// the whole test suite serially and multi-threaded), otherwise
/// [`std::thread::available_parallelism`], floored at 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// The process-wide worker pool
// ---------------------------------------------------------------------------

/// A boxed unit of work queued on the pool (already lifetime-erased; see the
/// safety comment in [`WorkerPool::run_with`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    ready: Condvar,
    /// Live worker threads — decremented by [`WorkerToken`] when a worker
    /// exits for any reason (shutdown, or an injected death), consulted by
    /// [`WorkerPool::ensure_workers`] to respawn lazily.
    live: AtomicUsize,
    /// Monotonic id source for worker thread names.
    next_name: AtomicUsize,
}

/// Held for a worker thread's whole life; the `Drop` impl keeps the live
/// count honest even when the worker dies by unwinding (e.g. through the
/// `pool::worker` failpoint), so the next `run_with` knows to respawn.
struct WorkerToken(Arc<PoolShared>);

impl Drop for WorkerToken {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Completion latch shared between one [`WorkerPool::run_with`] call and the
/// jobs it submitted: counts outstanding jobs and stores the first panic
/// payload observed on a worker.
struct RunState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

static GLOBAL_POOL: OnceLock<WorkerPool> = OnceLock::new();

/// A dependency-free pool of long-lived worker threads fed through a shared
/// injector queue.
///
/// The [`global`](WorkerPool::global) pool is spawned lazily, sized by
/// [`default_threads`] (read once, at first use), and lives for the rest of
/// the process — this is the ROADMAP's "process-wide pool": every
/// level-parallel phase of every flow reuses the same threads instead of
/// spawning a fresh scope per enumeration call. Dedicated pools from
/// [`with_workers`](WorkerPool::with_workers) shut their threads down on
/// drop.
///
/// The only execution primitive is [`run_with`](WorkerPool::run_with): borrow
/// jobs onto the workers while a coordinating closure runs on the calling
/// thread, with a hard completion barrier before the call returns. Higher
/// level schedules ([`level_parallel`]) are built on top of it.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns a dedicated pool with `workers` threads (floored at 1). The
    /// threads exit when the pool is dropped. Prefer
    /// [`global`](WorkerPool::global) unless you need an isolated pool (e.g.
    /// in tests).
    pub fn with_workers(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            live: AtomicUsize::new(0),
            next_name: AtomicUsize::new(0),
        });
        let pool = WorkerPool { shared, workers };
        pool.ensure_workers();
        pool
    }

    /// Respawns worker threads up to the pool's configured size. Called at
    /// the start of every coordinated run so a worker killed by an injected
    /// fault is replaced lazily, on the next phase that needs it. Spawn
    /// failures are tolerated: the coordinator help-drains the job queue
    /// itself (see [`run_with`](WorkerPool::run_with)), so forward progress
    /// never depends on a successful spawn.
    fn ensure_workers(&self) {
        loop {
            let live = self.shared.live.load(Ordering::Acquire);
            if live >= self.workers {
                return;
            }
            if self
                .shared
                .live
                .compare_exchange(live, live + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let shared = Arc::clone(&self.shared);
            let id = self.shared.next_name.fetch_add(1, Ordering::Relaxed);
            let spawned = std::thread::Builder::new()
                .name(format!("mch-pool-{id}"))
                .spawn(move || {
                    let token = WorkerToken(Arc::clone(&shared));
                    worker_main(&shared, token);
                })
                .is_ok();
            if !spawned {
                self.shared.live.fetch_sub(1, Ordering::AcqRel);
                return;
            }
        }
    }

    /// The process-wide pool, spawned on first use with
    /// [`default_threads`] workers. Its threads idle on a condvar between
    /// phases and are never joined.
    pub fn global() -> &'static WorkerPool {
        GLOBAL_POOL.get_or_init(|| WorkerPool::with_workers(default_threads()))
    }

    /// Number of worker threads in this pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Returns `true` when the calling thread is a pool worker.
    ///
    /// Used as a recursion guard: parallel phases invoked *from* a pool
    /// worker (e.g. a graph-mapping job that internally enumerates cuts) must
    /// run serially instead of submitting nested jobs and blocking a worker
    /// on work the exhausted pool can never schedule.
    pub fn is_worker() -> bool {
        IS_POOL_WORKER.with(Cell::get)
    }

    /// Runs `main` on the calling thread while `jobs` run on the pool
    /// workers; returns only after `main` *and every job* completed.
    ///
    /// Jobs may borrow data from the caller's stack (anything outliving the
    /// `run_with` call): the completion barrier guarantees the borrows end
    /// before the call returns, even when `main` or a job panics. A panic in
    /// `main` is re-raised after the barrier; otherwise the first job panic
    /// is re-raised, with its original payload.
    ///
    /// Jobs must not block waiting for `main` to make progress after `main`
    /// unwinds — a coordinating `main` that feeds jobs through a queue must
    /// close that queue on unwind (see the close-on-drop guard in
    /// [`level_parallel`]). When called *from* a pool worker everything runs
    /// inline on the calling thread (jobs first, then `main`) to keep an
    /// exhausted pool from deadlocking on nested phases.
    pub fn run_with<'env>(
        &self,
        jobs: Vec<Box<dyn FnOnce() + Send + 'env>>,
        main: impl FnOnce(),
    ) {
        if jobs.is_empty() {
            main();
            return;
        }
        if Self::is_worker() {
            let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
            for job in jobs {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                    mch_logic::failpoint!("pool::dispatch");
                    job()
                })) {
                    first_panic.get_or_insert(payload);
                }
            }
            let main_result = catch_unwind(AssertUnwindSafe(main));
            if let Err(payload) = main_result {
                resume_unwind(payload);
            }
            if let Some(payload) = first_panic {
                resume_unwind(payload);
            }
            return;
        }
        self.ensure_workers();
        let state = Arc::new(RunState {
            remaining: Mutex::new(jobs.len()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut queue = recover!(self.shared.queue.lock());
            for job in jobs {
                let state = Arc::clone(&state);
                let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                        mch_logic::failpoint!("pool::dispatch");
                        job()
                    })) {
                        let mut slot = recover!(state.panic.lock());
                        slot.get_or_insert(payload);
                    }
                    let mut remaining = recover!(state.remaining.lock());
                    *remaining -= 1;
                    if *remaining == 0 {
                        state.done.notify_all();
                    }
                });
                // SAFETY: the job borrows data living at least `'env` (the
                // duration of this call). The barrier below waits for every
                // job to finish — on the success path and on every unwind
                // path — before `run_with` returns, so the erased borrows
                // can never outlive the data they point into. The wrapper
                // catches job panics, so a worker always reaches the latch
                // decrement.
                let wrapped: Job = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(wrapped)
                };
                queue.jobs.push_back(wrapped);
            }
            self.shared.ready.notify_all();
        }
        let main_result = catch_unwind(AssertUnwindSafe(main));
        self.help_drain(&state);
        if let Err(payload) = main_result {
            resume_unwind(payload);
        }
        let job_panic = recover!(state.panic.lock()).take();
        if let Some(payload) = job_panic {
            resume_unwind(payload);
        }
    }

    /// The completion barrier of [`run_with`](WorkerPool::run_with): blocks
    /// until every submitted job finished, *helping* — the coordinator keeps
    /// pulling queued jobs and running them inline whenever its own latch is
    /// still open. Every job popped from the queue reaches its latch
    /// decrement (the panic-catching wrapper guarantees it), so this loop
    /// terminates even if every worker thread is dead: whatever is still
    /// queued, the coordinator executes itself. Stolen jobs may belong to a
    /// *different* concurrent run; running them here is harmless (they
    /// decrement their own latch) and can only speed that run up.
    fn help_drain(&self, state: &RunState) {
        loop {
            if *recover!(state.remaining.lock()) == 0 {
                return;
            }
            let job = recover!(self.shared.queue.lock()).jobs.pop_front();
            match job {
                Some(job) => {
                    // The coordinator acts as a pool worker for the duration
                    // of a stolen job: jobs may assert `is_worker()`, and the
                    // recursion guard must steer any nested phase inside the
                    // job onto the serial path exactly as on a real worker.
                    // (Stolen jobs are panic-wrapped, so no unwind can leak
                    // the flag.)
                    IS_POOL_WORKER.with(|flag| flag.set(true));
                    job();
                    IS_POOL_WORKER.with(|flag| flag.set(false));
                }
                None => {
                    // Nothing left to steal: every outstanding job is being
                    // executed by someone who will decrement the latch.
                    let mut remaining = recover!(state.remaining.lock());
                    while *remaining > 0 {
                        remaining = recover!(state.done.wait(remaining));
                    }
                    return;
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Every `run_with` waits for its jobs, so the queue is empty here;
        // raising the flag wakes the idle workers and they exit.
        recover!(self.shared.queue.lock()).shutdown = true;
        self.shared.ready.notify_all();
    }
}

fn worker_main(shared: &PoolShared, _token: WorkerToken) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        // Injected worker death happens strictly *between* jobs: a popped
        // job always reaches its latch decrement, so killing a worker here
        // can delay a run (until the coordinator steals the queued jobs or a
        // replacement spawns) but can never strand one.
        mch_logic::failpoint!("pool::worker");
        let job = {
            let mut queue = recover!(shared.queue.lock());
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = recover!(shared.ready.wait(queue));
            }
        };
        match job {
            // Submitted jobs are panic-wrapped by `run_with`, so this call
            // cannot unwind and the worker survives any job.
            Some(job) => job(),
            None => return,
        }
    }
}

// ---------------------------------------------------------------------------
// The level-synchronized harness
// ---------------------------------------------------------------------------

/// One unit of work pulled by a pool worker: chunk `chunk` of level `level`,
/// covering `items[start..end]` of that level's slice.
struct Task {
    chunk: usize,
    level: usize,
    start: usize,
    end: usize,
}

/// A closeable FIFO feeding level shards to the worker loops of one
/// [`level_parallel`] call. Shared pulling (instead of a static worker →
/// chunk assignment) keeps every schedule deadlock-free even when the pool
/// has fewer free workers than the requested thread count: whichever loops
/// actually run drain all tasks.
struct TaskQueue {
    state: Mutex<TaskQueueState>,
    ready: Condvar,
}

struct TaskQueueState {
    tasks: VecDeque<Task>,
    closed: bool,
}

impl TaskQueue {
    fn new() -> TaskQueue {
        TaskQueue {
            state: Mutex::new(TaskQueueState {
                tasks: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push_all(&self, tasks: impl Iterator<Item = Task>) {
        let mut state = recover!(self.state.lock());
        state.tasks.extend(tasks);
        self.ready.notify_all();
    }

    /// Blocks until a task is available or the queue is closed. A closed
    /// queue returns `None` immediately, discarding any leftover tasks (which
    /// only exist when the coordinator unwound mid-level).
    fn pop(&self) -> Option<Task> {
        let mut state = recover!(self.state.lock());
        loop {
            if state.closed {
                return None;
            }
            if let Some(task) = state.tasks.pop_front() {
                return Some(task);
            }
            state = recover!(self.ready.wait(state));
        }
    }

    /// Non-blocking pop, used by the coordinator to help execute its own
    /// level when some (or all) pool workers are dead or busy elsewhere.
    fn try_pop(&self) -> Option<Task> {
        let mut state = recover!(self.state.lock());
        if state.closed {
            return None;
        }
        state.tasks.pop_front()
    }

    fn close(&self) {
        recover!(self.state.lock()).closed = true;
        self.ready.notify_all();
    }
}

/// Closes the task queue when dropped, releasing the worker loops — on the
/// normal path after the last level, and on the unwind path when the
/// coordinator re-raises a forwarded worker panic.
struct CloseOnDrop<'a>(&'a TaskQueue);

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Runs `work` over every item of every level, levels strictly in order,
/// items of one level sharded across `threads` worker loops scheduled on the
/// process-wide [`WorkerPool`] — the level-synchronized harness behind
/// [`enumerate_cuts_threaded`], the choice transfer in `mch_mapper` and the
/// choice-recipe planning in `mch_choice`. A single flat batch is simply one
/// level (`&[items]`).
///
/// * `init` builds one per-worker scratch value (called once per worker loop,
///   plus once on the coordinator for inline levels);
/// * `work` maps a contiguous, order-preserving shard of a level to one
///   result (it runs concurrently with other shards of the *same* level, so
///   it must only read state written by earlier levels — wrap shared state in
///   a [`RwLock`] and take a read lock per shard);
/// * `commit` receives each level's results **in shard order** (which
///   preserves item order) after all of that level's shards finished, and is
///   the only place that may write shared state.
///
/// Levels shorter than `min_shard` — and everything, when `threads <= 1`, no
/// level reaches `min_shard`, or the caller already *is* a pool worker (see
/// [`WorkerPool::is_worker`]) — run inline on the coordinating thread in the
/// very same order, so the observable commit sequence is independent of the
/// thread count. Empty levels are skipped.
///
/// # Panics
///
/// A panic inside `work` is caught on the worker, forwarded to the
/// coordinator and re-raised there with its original payload, so callers
/// observe it like a plain serial panic.
pub fn level_parallel<T, S, R>(
    levels: &[Vec<T>],
    threads: usize,
    min_shard: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, &[T]) -> R + Sync,
    mut commit: impl FnMut(Vec<R>),
) where
    T: Sync,
    R: Send,
{
    let min_shard = min_shard.max(2);
    let widest = levels.iter().map(Vec::len).max().unwrap_or(0);
    if threads <= 1 || widest < min_shard || WorkerPool::is_worker() {
        let mut scratch = init();
        for level in levels {
            if level.is_empty() {
                continue;
            }
            let result = work(&mut scratch, level);
            commit(vec![result]);
        }
        return;
    }

    let init = &init;
    let work = &work;
    let queue = TaskQueue::new();
    let queue = &queue;
    // Results travel as `thread::Result` so a panicking worker reports its
    // payload through the channel instead of leaving the coordinator blocked;
    // the coordinator resumes the panic with its original payload.
    let (result_tx, result_rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
        .map(|_| {
            let result_tx = result_tx.clone();
            Box::new(move || {
                let mut scratch = init();
                while let Some(task) = queue.pop() {
                    let shard = &levels[task.level][task.start..task.end];
                    let result =
                        catch_unwind(AssertUnwindSafe(|| work(&mut scratch, shard)));
                    let died = result.is_err();
                    if result_tx.send((task.chunk, result)).is_err() || died {
                        break;
                    }
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    drop(result_tx);

    WorkerPool::global().run_with(jobs, move || {
        let _close = CloseOnDrop(queue);
        // The coordinator's own scratch, for levels too narrow to shard.
        let mut inline_scratch: Option<S> = None;
        for (level_index, level) in levels.iter().enumerate() {
            if level.is_empty() {
                continue;
            }
            if level.len() < min_shard {
                let scratch = inline_scratch.get_or_insert_with(init);
                let result = work(scratch, level);
                commit(vec![result]);
                continue;
            }
            let chunk_size = level
                .len()
                .div_ceil(threads * CHUNKS_PER_WORKER)
                .max(min_shard / 2);
            let chunk_count = level.len().div_ceil(chunk_size);
            queue.push_all((0..chunk_count).map(|chunk| {
                let start = chunk * chunk_size;
                Task {
                    chunk,
                    level: level_index,
                    start,
                    end: (start + chunk_size).min(level.len()),
                }
            }));
            let mut results: Vec<Option<R>> = (0..chunk_count).map(|_| None).collect();
            let mut collected = 0;
            // The coordinator helps execute its own level: it competes with
            // the worker loops for queued shards and runs them inline. This
            // makes the level's completion unconditional — even if every
            // pool worker is dead (injected faults) and the worker-loop jobs
            // never run, the coordinator drains all shards itself. Shard
            // results are identical regardless of which thread computed
            // them, so commit order (chunk index) still fixes the output.
            while let Some(task) = queue.try_pop() {
                let scratch = inline_scratch.get_or_insert_with(init);
                let shard = &levels[task.level][task.start..task.end];
                match catch_unwind(AssertUnwindSafe(|| work(scratch, shard))) {
                    Ok(r) => {
                        results[task.chunk] = Some(r);
                        collected += 1;
                    }
                    Err(payload) => resume_unwind(payload),
                }
            }
            while collected < chunk_count {
                // Every shard not executed above was popped by a live worker
                // loop, whose panic-catching body always reports — a panic
                // inside `work` is caught and forwarded (buffered payloads
                // are delivered before a disconnect error), so a plain
                // blocking recv cannot hang.
                let (chunk, result) = result_rx
                    .recv()
                    .expect("every pool worker exited without reporting a shard");
                match result {
                    Ok(r) => {
                        results[chunk] = Some(r);
                        collected += 1;
                    }
                    // Re-raise the worker's panic on the coordinator with its
                    // original payload; the close-on-drop guard releases the
                    // remaining worker loops.
                    Err(payload) => resume_unwind(payload),
                }
            }
            commit(
                results
                    .into_iter()
                    .map(|r| r.expect("every chunk index reports exactly once"))
                    .collect(),
            );
        }
        // `_close` drops here, closing the task queue so the worker loops
        // drain and exit before `run_with`'s completion barrier.
    });
}

// ---------------------------------------------------------------------------
// Parallel cut enumeration on the harness
// ---------------------------------------------------------------------------

/// Mutable enumeration state shared between the coordinator and the pool:
/// workers take read locks while processing a level, the coordinator takes
/// the write lock to merge each finished level.
struct EnumState {
    arena: Vec<Cut>,
    spans: Vec<(u32, u32)>,
    node_costs: Vec<CutCosts>,
}

/// One worker's result for one shard: per node the id, how many cuts it
/// stored and its best cost estimates, plus all those cuts concatenated in
/// node order.
struct ShardCuts {
    nodes: Vec<(NodeId, u32, CutCosts)>,
    cuts: Vec<Cut>,
}

/// [`enumerate_cuts_with_model`] sharded over `threads` workers, one
/// topological level at a time.
///
/// The result is byte-identical to the serial driver's — same cuts, same
/// ranking, same costs, same arena layout (see the module docs on
/// determinism). `threads = 1` (and any network whose widest level is too
/// narrow to shard) *is* the serial driver; `threads = 0` is treated as 1.
/// Use [`default_threads`] to follow the host's core count.
pub fn enumerate_cuts_threaded(
    network: &Network,
    params: &CutParams,
    model: &CutCostModel,
    threads: usize,
) -> NetworkCuts {
    if threads <= 1 || WorkerPool::is_worker() {
        return enumerate_cuts_with_model(network, params, model);
    }
    let levels = levelize(network);
    if levels.max_width() < MIN_PARALLEL_LEVEL {
        return enumerate_cuts_with_model(network, params, model);
    }
    let fanout_est = fanout_estimates(network);
    let (arena, spans) = seed_arena(network);
    let shared = RwLock::new(EnumState {
        arena,
        spans,
        node_costs: vec![CutCosts::ZERO; network.len()],
    });
    level_parallel(
        levels.as_slices(),
        threads,
        MIN_PARALLEL_LEVEL,
        NodeScratch::new,
        |scratch: &mut NodeScratch, shard: &[NodeId]| {
            let state = recover!(shared.read());
            let mut out = ShardCuts {
                nodes: Vec::with_capacity(shard.len()),
                cuts: Vec::new(),
            };
            for &id in shard {
                let best = enumerate_node(
                    network,
                    id,
                    params,
                    model,
                    &fanout_est,
                    EnumView {
                        arena: &state.arena,
                        spans: &state.spans,
                        node_costs: &state.node_costs,
                    },
                    scratch,
                );
                out.nodes.push((id, scratch.final_cuts.len() as u32, best));
                out.cuts.append(&mut scratch.final_cuts);
            }
            out
        },
        |shards: Vec<ShardCuts>| {
            mch_logic::failpoint!("cut::arena_grow");
            let mut state = recover!(shared.write());
            for mut shard in shards {
                let mut start = state.arena.len() as u32;
                state.arena.append(&mut shard.cuts);
                for (id, len, best) in shard.nodes {
                    state.spans[id.index()] = (start, len);
                    state.node_costs[id.index()] = best;
                    start += len;
                }
            }
        },
    );
    let state = shared.into_inner().unwrap_or_else(PoisonError::into_inner);
    canonicalize(network, params, model, state, fanout_est)
}

/// Rewrites the level-major arena the parallel driver builds into the serial
/// driver's layout — constant node, primary inputs, then gates in ascending
/// id order — so serial and parallel enumerations are indistinguishable even
/// through the internal representation. One O(total cuts) copy, a small
/// constant fraction of enumeration time.
fn canonicalize(
    network: &Network,
    params: &CutParams,
    model: &CutCostModel,
    state: EnumState,
    fanout_est: Vec<f32>,
) -> NetworkCuts {
    let EnumState {
        arena: level_arena,
        spans: level_spans,
        node_costs,
    } = state;
    let mut arena: Vec<Cut> = Vec::with_capacity(level_arena.len());
    let mut spans = vec![(0u32, 0u32); network.len()];
    let ids = std::iter::once(NodeId::CONST0)
        .chain(network.inputs().iter().copied())
        .chain(network.gate_ids());
    for id in ids {
        let (start, len) = level_spans[id.index()];
        spans[id.index()] = (arena.len() as u32, len);
        arena.extend_from_slice(&level_arena[start as usize..(start + len) as usize]);
    }
    NetworkCuts {
        params: *params,
        model: *model,
        arena,
        spans,
        node_costs,
        fanout_est,
        wasted: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{Network, NetworkKind, Prng, Signal};

    /// A wide, layered random network (every level far above the sharding
    /// threshold) — small enough for tests, wide enough that the pool
    /// genuinely shards.
    fn wide_network(seed: u64, kind: NetworkKind) -> Network {
        let mut rng = Prng::seed_from_u64(seed);
        let mut net = Network::new(kind);
        let mut layer: Vec<Signal> = net.add_inputs(48);
        for _ in 0..6 {
            let mut next = Vec::new();
            for _ in 0..48 {
                let a = layer[rng.gen_range(0..layer.len())];
                let b = layer[rng.gen_range(0..layer.len())];
                let a = a.xor_complement(rng.gen_bool(0.4));
                let b = b.xor_complement(rng.gen_bool(0.4));
                let s = match rng.gen_range(0..3) {
                    0 => net.and(a, b),
                    1 => net.or(a, b),
                    _ => net.xor(a, b),
                };
                next.push(s);
            }
            layer = next;
        }
        for &s in layer.iter().take(16) {
            net.add_output(s);
        }
        net
    }

    #[test]
    fn parallel_is_byte_identical_to_serial() {
        for kind in [NetworkKind::Aig, NetworkKind::Xag, NetworkKind::Mig] {
            let net = wide_network(0xD5, kind);
            let params = CutParams::new(6, 8);
            let serial = enumerate_cuts_with_model(&net, &params, &CutCostModel::unit());
            for threads in [2, 3, 4, 8] {
                let parallel =
                    enumerate_cuts_threaded(&net, &params, &CutCostModel::unit(), threads);
                assert!(
                    serial.identical(&parallel),
                    "{kind:?} with {threads} threads diverged from serial"
                );
            }
        }
    }

    #[test]
    fn one_thread_is_the_serial_path() {
        let net = wide_network(0x11, NetworkKind::Aig);
        let params = CutParams::default();
        let serial = enumerate_cuts_with_model(&net, &params, &CutCostModel::unit());
        for threads in [0, 1] {
            let same = enumerate_cuts_threaded(&net, &params, &CutCostModel::unit(), threads);
            assert!(serial.identical(&same));
        }
    }

    #[test]
    fn narrow_networks_fall_back_to_serial() {
        // A chain: every level has one node, far below the shard threshold.
        let mut net = Network::new(NetworkKind::Aig);
        let xs = net.add_inputs(4);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = net.and(acc, x);
        }
        net.add_output(acc);
        let params = CutParams::default();
        let serial = enumerate_cuts_with_model(&net, &params, &CutCostModel::unit());
        let parallel = enumerate_cuts_threaded(&net, &params, &CutCostModel::unit(), 8);
        assert!(serial.identical(&parallel));
    }

    #[test]
    fn level_parallel_commits_in_item_order() {
        // Four levels of unequal width; the concatenated commit order must be
        // exactly the level-major item order regardless of thread count.
        let levels: Vec<Vec<u32>> = vec![
            (0..40).collect(),
            (40..41).collect(),
            vec![],
            (41..120).collect(),
        ];
        let expect: Vec<u32> = levels.iter().flatten().copied().collect();
        for threads in [1, 2, 4, 7] {
            let seen = std::sync::Mutex::new(Vec::new());
            level_parallel(
                &levels,
                threads,
                8,
                || (),
                |_, shard: &[u32]| shard.to_vec(),
                |results| {
                    let mut seen = seen.lock().unwrap();
                    for r in results {
                        seen.extend(r);
                    }
                },
            );
            assert_eq!(*seen.lock().unwrap(), expect, "threads = {threads}");
        }
    }

    #[test]
    fn level_parallel_reuses_the_pool_across_phases() {
        // Two back-to-back phases on the same (global) pool: the second phase
        // must behave exactly like the first — the pool survives a phase.
        let levels: Vec<Vec<u32>> = vec![(0..64).collect()];
        for _phase in 0..2 {
            let sum = std::sync::Mutex::new(0u64);
            level_parallel(
                &levels,
                4,
                8,
                || (),
                |_, shard: &[u32]| shard.iter().map(|&x| x as u64).sum::<u64>(),
                |results: Vec<u64>| *sum.lock().unwrap() += results.iter().sum::<u64>(),
            );
            assert_eq!(*sum.lock().unwrap(), (0..64).sum::<u64>());
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates_with_its_payload() {
        let levels: Vec<Vec<u32>> = vec![(0..64).collect()];
        let caught = std::panic::catch_unwind(|| {
            level_parallel(
                &levels,
                4,
                8,
                || (),
                |_, shard: &[u32]| {
                    if shard.contains(&63) {
                        panic!("worker exploded on purpose");
                    }
                    shard.len()
                },
                |_| {},
            );
        });
        let payload = caught.expect_err("the worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default();
        assert_eq!(msg, "worker exploded on purpose");
    }

    #[test]
    fn run_with_executes_borrowed_jobs_and_main() {
        let pool = WorkerPool::with_workers(2);
        let mut slots = [0u32; 4];
        let mut main_ran = false;
        {
            let (head, tail) = slots.split_at_mut(1);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = tail
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || *slot = i as u32 + 2) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_with(jobs, || {
                head[0] = 1;
                main_ran = true;
            });
        }
        assert!(main_ran);
        assert_eq!(slots, [1, 2, 3, 4]);
    }

    #[test]
    fn run_with_propagates_job_panics_after_the_barrier() {
        let pool = WorkerPool::with_workers(2);
        let done = std::sync::Mutex::new(0usize);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                .map(|i| {
                    let done = &done;
                    Box::new(move || {
                        if i == 1 {
                            panic!("job exploded on purpose");
                        }
                        *done.lock().unwrap() += 1;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_with(jobs, || {});
        }));
        let payload = caught.expect_err("the job panic must reach the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job exploded on purpose");
        // The barrier ran: the surviving jobs completed before the panic
        // surfaced.
        assert_eq!(*done.lock().unwrap(), 2);
    }

    #[test]
    fn run_with_from_a_worker_runs_inline() {
        let pool = WorkerPool::with_workers(1);
        let nested_ok = std::sync::Mutex::new(false);
        {
            let nested_ok = &nested_ok;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(move || {
                assert!(WorkerPool::is_worker());
                // A nested run_with from inside a pool worker must not
                // deadlock the single-threaded pool.
                let mut inner = [0u8; 2];
                let (a, b) = inner.split_at_mut(1);
                WorkerPool::global().run_with(
                    vec![Box::new(|| b[0] = 2) as Box<dyn FnOnce() + Send + '_>],
                    || a[0] = 1,
                );
                assert_eq!(inner, [1, 2]);
                *nested_ok.lock().unwrap() = true;
            })];
            pool.run_with(jobs, || assert!(!WorkerPool::is_worker()));
        }
        assert!(*nested_ok.lock().unwrap());
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.workers() >= 1);
    }

    #[test]
    fn global_pool_survives_a_panicked_job() {
        // A panicking job on the process-wide pool must fail only its own
        // run: the pool stays usable, immediately, for ordinary work.
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            WorkerPool::global().run_with(
                vec![Box::new(|| panic!("poison attempt")) as Box<dyn FnOnce() + Send + '_>],
                || {},
            );
        }));
        assert!(caught.is_err(), "the job panic must surface to the caller");
        let levels: Vec<Vec<u32>> = vec![(0..64).collect()];
        let sum = std::sync::Mutex::new(0u64);
        level_parallel(
            &levels,
            4,
            8,
            || (),
            |_, shard: &[u32]| shard.iter().map(|&x| x as u64).sum::<u64>(),
            |results: Vec<u64>| *sum.lock().unwrap() += results.iter().sum::<u64>(),
        );
        assert_eq!(*sum.lock().unwrap(), (0..64).sum::<u64>());
    }

    #[test]
    fn repeated_job_panics_do_not_degrade_the_pool() {
        let pool = WorkerPool::with_workers(2);
        for round in 0..8 {
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run_with(
                    vec![
                        Box::new(move || panic!("round {round}")) as Box<dyn FnOnce() + Send + '_>
                    ],
                    || {},
                );
            }));
            assert!(caught.is_err());
            // Between panics the pool still completes normal work.
            let mut slot = 0u32;
            {
                let slot = &mut slot;
                pool.run_with(
                    vec![Box::new(move || *slot = round + 1) as Box<dyn FnOnce() + Send + '_>],
                    || {},
                );
            }
            assert_eq!(slot, round + 1);
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn coordinator_completes_runs_with_dead_workers_and_respawns() {
        use mch_logic::failpoint;
        // Serialize against other fault-injection tests in this binary.
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = recover!(GATE.lock());
        let pool = WorkerPool::with_workers(2);
        // Silence the expected worker-death panics for the duration.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with(failpoint::PANIC_PREFIX));
            if !injected {
                eprintln!("{info}");
            }
        }));
        // Kill both workers at their next between-jobs check, then give them
        // a reason to wake up: the run's jobs. The coordinator must finish
        // the run by help-draining even with zero live workers.
        failpoint::arm_exact("pool::worker", &[0, 1]);
        let mut slots = [0u32; 3];
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .map(|slot| Box::new(move || *slot = 7) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            pool.run_with(jobs, || {});
        }
        failpoint::disarm();
        std::panic::set_hook(prev_hook);
        assert_eq!(slots, [7, 7, 7]);
        // Wait for the dying workers' tokens to drop, then a fresh run must
        // respawn workers lazily and still work.
        for _ in 0..100 {
            if pool.shared.live.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut after = 0u32;
        {
            let after = &mut after;
            pool.run_with(
                vec![Box::new(move || *after = 9) as Box<dyn FnOnce() + Send + '_>],
                || {},
            );
        }
        assert_eq!(after, 9);
        assert!(pool.shared.live.load(Ordering::Acquire) >= 1);
    }
}
