//! Regression test: MIG networks express AND/OR as majorities with constant
//! fanins, so the composed cut function must honor the complement bit on a
//! constant-cut fanin edge (OR = Maj(a, b, const1)).

use mch_cut::{enumerate_cuts, legacy_enumerate_cuts, CutParams};
use mch_logic::{Network, NetworkKind};

#[test]
fn mig_with_constant_fanins_matches_legacy() {
    let mut n = Network::new(NetworkKind::Mig);
    let a = n.add_input();
    let b = n.add_input();
    let c = n.add_input();
    let d = n.add_input();
    let ab = n.or(a, b);   // Maj(a, b, const1)
    let cd = n.and(c, d);  // Maj(c, d, const0)
    let m1 = n.maj3(ab, cd, c);
    let m2 = n.maj3(m1, !cd, d);
    n.add_output(m2);
    let params = CutParams::new(4, 8);
    let old = legacy_enumerate_cuts(&n, &params);
    let new = enumerate_cuts(&n, &params);
    for id in n.node_ids() {
        let (x_set, y_set) = (new.of(id), old.of(id));
        assert_eq!(x_set.len(), y_set.len(), "cut count at {id}");
        for (x, y) in x_set.iter().zip(y_set.iter()) {
            assert_eq!(x.leaves(), y.leaves(), "leaves at {id}");
            assert_eq!(
                x.function().words(),
                y.function().words(),
                "function at {id}, cut {x}"
            );
        }
    }
}
