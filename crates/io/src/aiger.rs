//! ASCII AIGER (`aag`) reading and writing.
//!
//! The ASCII AIGER format is the lingua franca of AIG-based tools (ABC,
//! mockturtle, the EPFL benchmark distribution). Only the combinational
//! subset is supported: latches are rejected.

use mch_logic::{Network, NetworkKind, Signal};
use std::fmt;

/// Error produced while parsing an ASCII AIGER file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseAigerError {
    message: String,
    line: usize,
}

impl ParseAigerError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        ParseAigerError {
            message: message.into(),
            line,
        }
    }

    /// 1-based line number at which parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAigerError {}

/// Parses an ASCII AIGER (`aag`) description into an AIG [`Network`].
///
/// # Errors
///
/// Returns [`ParseAigerError`] for malformed headers, latches (sequential
/// AIGER is not supported), out-of-range literals or truncated files.
pub fn read_aiger(text: &str) -> Result<Network, ParseAigerError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseAigerError::new("empty file", 1))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 6 || fields[0] != "aag" {
        return Err(ParseAigerError::new(
            "header must be 'aag M I L O A'",
            1,
        ));
    }
    let parse = |s: &str, what: &str, line: usize| -> Result<usize, ParseAigerError> {
        s.parse()
            .map_err(|_| ParseAigerError::new(format!("invalid {what} '{s}'"), line))
    };
    let max_var = parse(fields[1], "maximum variable index", 1)?;
    let num_inputs = parse(fields[2], "input count", 1)?;
    let num_latches = parse(fields[3], "latch count", 1)?;
    let num_outputs = parse(fields[4], "output count", 1)?;
    let num_ands = parse(fields[5], "AND count", 1)?;
    if num_latches != 0 {
        return Err(ParseAigerError::new(
            "sequential AIGER (latches) is not supported",
            1,
        ));
    }
    // The header counts are untrusted: every declared object occupies at
    // least one byte of body text, so counts beyond the file size are lies —
    // reject them before sizing any allocation after them.
    if max_var > text.len() {
        return Err(ParseAigerError::new(
            format!("maximum variable index {max_var} exceeds the file size"),
            1,
        ));
    }
    if num_inputs.saturating_add(num_ands) > max_var {
        return Err(ParseAigerError::new(
            format!(
                "{num_inputs} inputs + {num_ands} ANDs need more variables than the declared maximum {max_var}"
            ),
            1,
        ));
    }
    if num_outputs > text.len() {
        return Err(ParseAigerError::new(
            format!("output count {num_outputs} exceeds the file size"),
            1,
        ));
    }

    let mut net = Network::new(NetworkKind::Aig);
    // literal -> signal map, indexed by variable.
    let mut map: Vec<Option<Signal>> = vec![None; max_var + 1];
    map[0] = Some(Signal::CONST0);

    let mut input_literals = Vec::with_capacity(num_inputs);
    for _ in 0..num_inputs {
        let (idx, line) = lines
            .next()
            .ok_or_else(|| ParseAigerError::new("missing input line", 0))?;
        let lit: usize = parse(line.trim(), "input literal", idx + 1)?;
        if !lit.is_multiple_of(2) || lit < 2 || lit / 2 > max_var {
            return Err(ParseAigerError::new("invalid input literal", idx + 1));
        }
        if map[lit / 2].is_some() {
            return Err(ParseAigerError::new(
                format!("variable {} defined twice", lit / 2),
                idx + 1,
            ));
        }
        let s = net.add_input();
        map[lit / 2] = Some(s);
        input_literals.push(lit);
    }

    let mut output_literals = Vec::with_capacity(num_outputs);
    for _ in 0..num_outputs {
        let (idx, line) = lines
            .next()
            .ok_or_else(|| ParseAigerError::new("missing output line", 0))?;
        let lit: usize = parse(line.trim(), "output literal", idx + 1)?;
        if lit / 2 > max_var {
            return Err(ParseAigerError::new("output literal out of range", idx + 1));
        }
        output_literals.push(lit);
    }

    // AND gates: they may reference later-defined variables only in malformed
    // files (AIGER requires topological order), which we reject.
    for _ in 0..num_ands {
        let (idx, line) = lines
            .next()
            .ok_or_else(|| ParseAigerError::new("missing AND line", 0))?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(ParseAigerError::new("AND line must have three literals", idx + 1));
        }
        let lhs: usize = parse(parts[0], "AND output literal", idx + 1)?;
        let rhs0: usize = parse(parts[1], "AND fanin literal", idx + 1)?;
        let rhs1: usize = parse(parts[2], "AND fanin literal", idx + 1)?;
        if !lhs.is_multiple_of(2) || lhs < 2 || lhs / 2 > max_var {
            return Err(ParseAigerError::new("invalid AND output literal", idx + 1));
        }
        if map[lhs / 2].is_some() {
            return Err(ParseAigerError::new(
                format!("variable {} defined twice", lhs / 2),
                idx + 1,
            ));
        }
        let resolve = |lit: usize, line: usize| -> Result<Signal, ParseAigerError> {
            let var = lit / 2;
            let base = map
                .get(var)
                .copied()
                .flatten()
                .ok_or_else(|| ParseAigerError::new(format!("literal {lit} used before definition"), line))?;
            Ok(base.xor_complement(lit % 2 == 1))
        };
        let a = resolve(rhs0, idx + 1)?;
        let b = resolve(rhs1, idx + 1)?;
        map[lhs / 2] = Some(net.and2(a, b));
    }

    for (i, lit) in output_literals.into_iter().enumerate() {
        let base = map[lit / 2].ok_or_else(|| {
            ParseAigerError::new(format!("output {i} references undefined literal {lit}"), 0)
        })?;
        net.add_output(base.xor_complement(lit % 2 == 1));
    }
    Ok(net)
}

/// Serialises a network as ASCII AIGER (`aag`).
///
/// Non-AND gates (XOR, MAJ) are decomposed into ANDs on the fly, so any
/// representation can be exported; the output is always a pure AIG.
pub fn write_aiger(network: &Network) -> String {
    // Re-express the network as an AIG first (handles XOR/MAJ nodes).
    let aig = mch_logic::convert(network, NetworkKind::Aig);
    // Assign AIGER variables: inputs first, then gates in topological order.
    let mut var_of: Vec<usize> = vec![0; aig.len()];
    let mut next_var = 1;
    for &pi in aig.inputs() {
        var_of[pi.index()] = next_var;
        next_var += 1;
    }
    for id in aig.gate_ids() {
        var_of[id.index()] = next_var;
        next_var += 1;
    }
    let literal = |s: Signal| -> usize {
        if s.node().is_const() {
            s.is_complement() as usize
        } else {
            var_of[s.node().index()] * 2 + s.is_complement() as usize
        }
    };

    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} 0 {} {}\n",
        next_var - 1,
        aig.input_count(),
        aig.output_count(),
        aig.gate_count()
    ));
    for &pi in aig.inputs() {
        out.push_str(&format!("{}\n", var_of[pi.index()] * 2));
    }
    for &o in aig.outputs() {
        out.push_str(&format!("{}\n", literal(o)));
    }
    for id in aig.gate_ids() {
        let node = aig.node(id);
        let f = node.fanins();
        out.push_str(&format!(
            "{} {} {}\n",
            var_of[id.index()] * 2,
            literal(f[0]),
            literal(f[1])
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{cec, output_truth_tables};

    #[test]
    fn round_trip_preserves_function() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let x = n.xor(a, b);
        let y = n.and2(x, !c);
        n.add_output(y);
        n.add_output(!x);
        let text = write_aiger(&n);
        let back = read_aiger(&text).unwrap();
        assert_eq!(back.input_count(), 3);
        assert_eq!(back.output_count(), 2);
        assert!(cec(&n, &back).holds());
    }

    #[test]
    fn xmg_networks_are_exported_as_aigs() {
        let mut n = Network::new(NetworkKind::Xmg);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let m = n.maj3(a, b, c);
        n.add_output(m);
        let back = read_aiger(&write_aiger(&n)).unwrap();
        assert!(cec(&n, &back).holds());
        assert_eq!(output_truth_tables(&back)[0].as_u64(), 0xE8);
    }

    #[test]
    fn parses_handwritten_example() {
        // Half adder from the AIGER documentation style.
        let text = "aag 4 2 0 2 1\n2\n4\n6\n7\n6 2 4\n";
        let net = read_aiger(text).unwrap();
        assert_eq!(net.input_count(), 2);
        assert_eq!(net.output_count(), 2);
        let tts = output_truth_tables(&net);
        assert_eq!(tts[0].as_u64(), 0x8); // and
        assert_eq!(tts[1].as_u64(), 0x7); // nand
    }

    #[test]
    fn constants_in_outputs() {
        let mut n = Network::new(NetworkKind::Aig);
        let _ = n.add_input();
        n.add_output(Signal::CONST1);
        let back = read_aiger(&write_aiger(&n)).unwrap();
        assert_eq!(output_truth_tables(&back)[0].count_ones(), 2);
    }

    #[test]
    fn errors_on_malformed_input() {
        assert!(read_aiger("").is_err());
        assert!(read_aiger("aig 1 1 0 1 0\n2\n2\n").is_err());
        assert!(read_aiger("aag 1 1 1 1 0\n2\n0\n2\n").is_err());
        assert!(read_aiger("aag 3 1 0 1 1\n2\n6\n6 2 9999\n").is_err());
        let err = read_aiger("aag 1 2 0 0 0\n2\n").unwrap_err();
        assert!(err.to_string().contains("line"));
    }
}
