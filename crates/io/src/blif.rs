//! BLIF (Berkeley Logic Interchange Format) writers.

use mch_logic::{GateKind, Network, NodeId, Signal};
use mch_mapper::{LutNetlist, NetRef};
use std::fmt::Write as _;

fn node_name(network: &Network, node: NodeId) -> String {
    if node.is_const() {
        "const0".to_string()
    } else if network.is_input(node) {
        let idx = network
            .inputs()
            .iter()
            .position(|&n| n == node)
            .expect("input is registered");
        format!("pi{idx}")
    } else {
        format!("n{}", node.index())
    }
}

/// Serialises a logic network as BLIF.
///
/// Every gate becomes a `.names` cover (ANDs and XORs as two-input covers,
/// majorities as three-input covers); complemented edges are expressed in the
/// cover rows, so the output loads into any BLIF-reading tool unchanged.
pub fn write_blif(network: &Network) -> String {
    let mut out = String::new();
    let model = if network.name().is_empty() { "top" } else { network.name() };
    let _ = writeln!(out, ".model {model}");
    let inputs: Vec<String> = (0..network.input_count()).map(|i| format!("pi{i}")).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = (0..network.output_count()).map(|i| format!("po{i}")).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    let _ = writeln!(out, ".names const0");

    for id in network.gate_ids() {
        let node = network.node(id);
        let fanins: Vec<String> = node
            .fanins()
            .iter()
            .map(|s| node_name(network, s.node()))
            .collect();
        let name = node_name(network, id);
        let _ = writeln!(out, ".names {} {}", fanins.join(" "), name);
        let phase = |s: &Signal, bit: bool| -> char {
            let v = bit ^ s.is_complement();
            if v {
                '1'
            } else {
                '0'
            }
        };
        match node.kind() {
            GateKind::And2 => {
                let f = node.fanins();
                let _ = writeln!(out, "{}{} 1", phase(&f[0], true), phase(&f[1], true));
            }
            GateKind::Xor2 => {
                let f = node.fanins();
                let _ = writeln!(out, "{}{} 1", phase(&f[0], true), phase(&f[1], false));
                let _ = writeln!(out, "{}{} 1", phase(&f[0], false), phase(&f[1], true));
            }
            GateKind::Maj3 => {
                let f = node.fanins();
                // Majority = at least two true: enumerate the four on-set cubes.
                let _ = writeln!(out, "{}{}- 1", phase(&f[0], true), phase(&f[1], true));
                let _ = writeln!(out, "{}-{} 1", phase(&f[0], true), phase(&f[2], true));
                let _ = writeln!(out, "-{}{} 1", phase(&f[1], true), phase(&f[2], true));
            }
            _ => unreachable!("gate_ids yields only gates"),
        }
    }
    for (i, o) in network.outputs().iter().enumerate() {
        let driver = node_name(network, o.node());
        let _ = writeln!(out, ".names {} po{}", driver, i);
        let _ = writeln!(out, "{} 1", if o.is_complement() { '0' } else { '1' });
    }
    let _ = writeln!(out, ".end");
    out
}

fn net_ref_name(r: &NetRef) -> String {
    match r {
        NetRef::Const(false) => "const0".into(),
        NetRef::Const(true) => "const1".into(),
        NetRef::Input(i) => format!("pi{i}"),
        NetRef::Gate(i) => format!("lut{i}"),
    }
}

/// Serialises a mapped K-LUT netlist as BLIF (`.names` covers carry the
/// complete LUT truth tables).
pub fn write_lut_blif(netlist: &LutNetlist) -> String {
    let mut out = String::new();
    let model = if netlist.name().is_empty() { "top" } else { netlist.name() };
    let _ = writeln!(out, ".model {model}");
    let inputs: Vec<String> = (0..netlist.input_count()).map(|i| format!("pi{i}")).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = (0..netlist.outputs().len()).map(|i| format!("po{i}")).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    let _ = writeln!(out, ".names const0");
    let _ = writeln!(out, ".names const1");
    let _ = writeln!(out, "1");

    for (i, lut) in netlist.luts().iter().enumerate() {
        let fanins: Vec<String> = lut.fanins.iter().map(net_ref_name).collect();
        let _ = writeln!(out, ".names {} lut{}", fanins.join(" "), i);
        let k = lut.function.num_vars();
        for minterm in 0..lut.function.num_bits() {
            if lut.function.bit(minterm) {
                let cube: String = (0..k)
                    .map(|v| if minterm & (1 << v) != 0 { '1' } else { '0' })
                    .collect();
                let _ = writeln!(out, "{cube} 1");
            }
        }
    }
    for (i, o) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, ".names {} po{}", net_ref_name(o), i);
        let _ = writeln!(out, "1 1");
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::ChoiceNetwork;
    use mch_logic::NetworkKind;
    use mch_mapper::{map_lut, LutMapParams, MappingObjective};
    use mch_techlib::LutLibrary;

    fn sample() -> Network {
        let mut n = Network::with_name(NetworkKind::Xmg, "blif_sample");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let m = n.maj3(a, b, !c);
        let x = n.xor2(m, a);
        n.add_output(x);
        n.add_output(!m);
        n
    }

    #[test]
    fn network_blif_has_model_ios_and_gates() {
        let text = write_blif(&sample());
        assert!(text.starts_with(".model blif_sample"));
        assert!(text.contains(".inputs pi0 pi1 pi2"));
        assert!(text.contains(".outputs po0 po1"));
        assert!(text.contains(".names"));
        assert!(text.trim_end().ends_with(".end"));
        // One cover line set per gate plus output buffers.
        assert!(text.matches(".names").count() >= 4);
    }

    #[test]
    fn lut_blif_lists_every_lut() {
        let net = sample();
        let mapped = map_lut(
            &ChoiceNetwork::from_network(&net),
            &LutLibrary::k6(),
            &LutMapParams::new(MappingObjective::Area),
        );
        let text = write_lut_blif(&mapped);
        assert!(text.contains(".model blif_sample"));
        assert!(
            text.matches("lut").count() > 0,
            "LUT instances must be named"
        );
        assert!(text.trim_end().ends_with(".end"));
    }
}
