//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! The reader accepts the combinational single-output-cover subset that
//! [`write_blif`] and [`write_lut_blif`] emit (plus `-` don't-cares and
//! `#` comments) and is hardened against untrusted input: every malformed
//! shape returns [`ParseBlifError`], never a panic.

use mch_logic::{GateKind, Network, NetworkKind, NodeId, Signal};
use mch_mapper::{LutNetlist, NetRef};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Error produced while parsing a BLIF file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseBlifError {
    message: String,
    line: usize,
}

impl ParseBlifError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        ParseBlifError {
            message: message.into(),
            line,
        }
    }

    /// 1-based line number at which parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseBlifError {}

/// One `.names` block under construction: the cover signature plus its
/// accumulated on-set cubes.
struct Cover {
    inputs: Vec<String>,
    output: String,
    cubes: Vec<Vec<Option<bool>>>,
    line: usize,
}

/// Parses the combinational subset of BLIF into an AIG [`Network`].
///
/// Supported: `.model`, `.inputs`, `.outputs`, single-output `.names` covers
/// with on-set rows (`1`/`0`/`-` columns), `#` comments, `\` line
/// continuations and `.end`. Covers must be in topological order (defined
/// before use), which every tool-written BLIF satisfies.
///
/// # Errors
///
/// Returns [`ParseBlifError`] for sequential constructs (`.latch`,
/// `.gate`, `.subckt`), off-set covers, redefined or undefined signals,
/// cube-width mismatches and truncated files.
pub fn read_blif(text: &str) -> Result<Network, ParseBlifError> {
    // Logical lines: strip comments, honour trailing-backslash continuation.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let no_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let (continued, body) = match no_comment.trim_end().strip_suffix('\\') {
            Some(body) => (true, body),
            None => (false, no_comment),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(body);
                if continued {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((idx + 1, body.to_string()));
                } else if !body.trim().is_empty() {
                    logical.push((idx + 1, body.to_string()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    let mut model = String::new();
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut covers: Vec<Cover> = Vec::new();
    let mut current: Option<Cover> = None;

    for (line, body) in logical {
        let tokens: Vec<&str> = body.split_whitespace().collect();
        let Some(&head) = tokens.first() else {
            continue;
        };
        if head.starts_with('.') {
            if let Some(cover) = current.take() {
                covers.push(cover);
            }
            match head {
                ".model" => model = tokens.get(1).unwrap_or(&"").to_string(),
                ".inputs" => input_names.extend(tokens[1..].iter().map(|s| s.to_string())),
                ".outputs" => output_names.extend(tokens[1..].iter().map(|s| s.to_string())),
                ".names" => {
                    let Some((output, inputs)) = tokens[1..].split_last() else {
                        return Err(ParseBlifError::new(".names needs an output signal", line));
                    };
                    current = Some(Cover {
                        inputs: inputs.iter().map(|s| s.to_string()).collect(),
                        output: output.to_string(),
                        cubes: Vec::new(),
                        line,
                    });
                }
                ".end" => break,
                other => {
                    return Err(ParseBlifError::new(
                        format!("unsupported construct '{other}' (combinational covers only)"),
                        line,
                    ));
                }
            }
            continue;
        }
        // A cube row of the open cover.
        let Some(cover) = current.as_mut() else {
            return Err(ParseBlifError::new(
                format!("cover row '{body}' outside a .names block"),
                line,
            ));
        };
        let (cube_text, value) = if cover.inputs.is_empty() {
            // Constant cover: the single column is the output value.
            ("", *tokens.first().unwrap_or(&""))
        } else {
            if tokens.len() != 2 {
                return Err(ParseBlifError::new(
                    "cover row must be '<cube> <value>'",
                    line,
                ));
            }
            (tokens[0], tokens[1])
        };
        if value != "1" {
            return Err(ParseBlifError::new(
                format!("only on-set covers are supported, got output value '{value}'"),
                line,
            ));
        }
        if cube_text.chars().count() != cover.inputs.len() {
            return Err(ParseBlifError::new(
                format!(
                    "cube '{cube_text}' has {} columns for {} inputs",
                    cube_text.chars().count(),
                    cover.inputs.len()
                ),
                line,
            ));
        }
        let mut cube = Vec::with_capacity(cover.inputs.len());
        for c in cube_text.chars() {
            cube.push(match c {
                '1' => Some(true),
                '0' => Some(false),
                '-' => None,
                other => {
                    return Err(ParseBlifError::new(
                        format!("invalid cube column '{other}'"),
                        line,
                    ));
                }
            });
        }
        cover.cubes.push(cube);
    }
    if let Some(cover) = current.take() {
        covers.push(cover);
    }

    let mut net = Network::with_name(NetworkKind::Aig, model);
    let mut signals: HashMap<String, Signal> = HashMap::new();
    for name in &input_names {
        let s = net.add_input();
        if signals.insert(name.clone(), s).is_some() {
            return Err(ParseBlifError::new(format!("input '{name}' declared twice"), 1));
        }
    }
    for cover in covers {
        let mut terms: Vec<Signal> = Vec::with_capacity(cover.inputs.len());
        for name in &cover.inputs {
            let Some(&s) = signals.get(name) else {
                return Err(ParseBlifError::new(
                    format!("signal '{name}' used before definition"),
                    cover.line,
                ));
            };
            terms.push(s);
        }
        // Sum of products: AND the cube literals, OR the cubes. An empty
        // cover is constant 0, an empty cube is constant 1.
        let mut sum = Signal::CONST0;
        for cube in &cover.cubes {
            let mut product = !Signal::CONST0;
            for (term, phase) in terms.iter().zip(cube) {
                if let Some(phase) = phase {
                    product = net.and2(product, term.xor_complement(!phase));
                }
            }
            sum = net.or(sum, product);
        }
        if signals.insert(cover.output.clone(), sum).is_some() {
            return Err(ParseBlifError::new(
                format!("signal '{}' defined twice", cover.output),
                cover.line,
            ));
        }
    }
    for name in &output_names {
        let Some(&s) = signals.get(name) else {
            return Err(ParseBlifError::new(format!("output '{name}' is undefined"), 1));
        };
        net.add_output(s);
    }
    Ok(net)
}

fn node_name(network: &Network, node: NodeId) -> String {
    if node.is_const() {
        "const0".to_string()
    } else if network.is_input(node) {
        // Inputs are registered at creation; fall back to the node name so a
        // hypothetically unregistered input degrades to a dangling wire
        // instead of a panic.
        match network.inputs().iter().position(|&n| n == node) {
            Some(idx) => format!("pi{idx}"),
            None => format!("n{}", node.index()),
        }
    } else {
        format!("n{}", node.index())
    }
}

/// Serialises a logic network as BLIF.
///
/// Every gate becomes a `.names` cover (ANDs and XORs as two-input covers,
/// majorities as three-input covers); complemented edges are expressed in the
/// cover rows, so the output loads into any BLIF-reading tool unchanged.
pub fn write_blif(network: &Network) -> String {
    let mut out = String::new();
    let model = if network.name().is_empty() { "top" } else { network.name() };
    let _ = writeln!(out, ".model {model}");
    let inputs: Vec<String> = (0..network.input_count()).map(|i| format!("pi{i}")).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = (0..network.output_count()).map(|i| format!("po{i}")).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    let _ = writeln!(out, ".names const0");

    for id in network.gate_ids() {
        let node = network.node(id);
        let fanins: Vec<String> = node
            .fanins()
            .iter()
            .map(|s| node_name(network, s.node()))
            .collect();
        let name = node_name(network, id);
        let _ = writeln!(out, ".names {} {}", fanins.join(" "), name);
        let phase = |s: &Signal, bit: bool| -> char {
            let v = bit ^ s.is_complement();
            if v {
                '1'
            } else {
                '0'
            }
        };
        match node.kind() {
            GateKind::And2 => {
                let f = node.fanins();
                let _ = writeln!(out, "{}{} 1", phase(&f[0], true), phase(&f[1], true));
            }
            GateKind::Xor2 => {
                let f = node.fanins();
                let _ = writeln!(out, "{}{} 1", phase(&f[0], true), phase(&f[1], false));
                let _ = writeln!(out, "{}{} 1", phase(&f[0], false), phase(&f[1], true));
            }
            GateKind::Maj3 => {
                let f = node.fanins();
                // Majority = at least two true: enumerate the four on-set cubes.
                let _ = writeln!(out, "{}{}- 1", phase(&f[0], true), phase(&f[1], true));
                let _ = writeln!(out, "{}-{} 1", phase(&f[0], true), phase(&f[2], true));
                let _ = writeln!(out, "-{}{} 1", phase(&f[1], true), phase(&f[2], true));
            }
            _ => unreachable!("gate_ids yields only gates"),
        }
    }
    for (i, o) in network.outputs().iter().enumerate() {
        let driver = node_name(network, o.node());
        let _ = writeln!(out, ".names {} po{}", driver, i);
        let _ = writeln!(out, "{} 1", if o.is_complement() { '0' } else { '1' });
    }
    let _ = writeln!(out, ".end");
    out
}

fn net_ref_name(r: &NetRef) -> String {
    match r {
        NetRef::Const(false) => "const0".into(),
        NetRef::Const(true) => "const1".into(),
        NetRef::Input(i) => format!("pi{i}"),
        NetRef::Gate(i) => format!("lut{i}"),
    }
}

/// Serialises a mapped K-LUT netlist as BLIF (`.names` covers carry the
/// complete LUT truth tables).
pub fn write_lut_blif(netlist: &LutNetlist) -> String {
    let mut out = String::new();
    let model = if netlist.name().is_empty() { "top" } else { netlist.name() };
    let _ = writeln!(out, ".model {model}");
    let inputs: Vec<String> = (0..netlist.input_count()).map(|i| format!("pi{i}")).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = (0..netlist.outputs().len()).map(|i| format!("po{i}")).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    let _ = writeln!(out, ".names const0");
    let _ = writeln!(out, ".names const1");
    let _ = writeln!(out, "1");

    for (i, lut) in netlist.luts().iter().enumerate() {
        let fanins: Vec<String> = lut.fanins.iter().map(net_ref_name).collect();
        let _ = writeln!(out, ".names {} lut{}", fanins.join(" "), i);
        let k = lut.function.num_vars();
        for minterm in 0..lut.function.num_bits() {
            if lut.function.bit(minterm) {
                let cube: String = (0..k)
                    .map(|v| if minterm & (1 << v) != 0 { '1' } else { '0' })
                    .collect();
                let _ = writeln!(out, "{cube} 1");
            }
        }
    }
    for (i, o) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, ".names {} po{}", net_ref_name(o), i);
        let _ = writeln!(out, "1 1");
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::ChoiceNetwork;
    use mch_logic::NetworkKind;
    use mch_mapper::{map_lut, LutMapParams, MappingObjective};
    use mch_techlib::LutLibrary;

    fn sample() -> Network {
        let mut n = Network::with_name(NetworkKind::Xmg, "blif_sample");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let m = n.maj3(a, b, !c);
        let x = n.xor2(m, a);
        n.add_output(x);
        n.add_output(!m);
        n
    }

    #[test]
    fn network_blif_has_model_ios_and_gates() {
        let text = write_blif(&sample());
        assert!(text.starts_with(".model blif_sample"));
        assert!(text.contains(".inputs pi0 pi1 pi2"));
        assert!(text.contains(".outputs po0 po1"));
        assert!(text.contains(".names"));
        assert!(text.trim_end().ends_with(".end"));
        // One cover line set per gate plus output buffers.
        assert!(text.matches(".names").count() >= 4);
    }

    #[test]
    fn network_blif_round_trips() {
        use mch_logic::cec;
        let n = sample();
        let back = read_blif(&write_blif(&n)).unwrap();
        assert_eq!(back.input_count(), n.input_count());
        assert_eq!(back.output_count(), n.output_count());
        assert_eq!(back.name(), n.name());
        assert!(cec(&n, &back).holds());
    }

    #[test]
    fn lut_blif_round_trips() {
        use mch_logic::cec;
        let net = sample();
        let mapped = map_lut(
            &ChoiceNetwork::from_network(&net),
            &LutLibrary::k6(),
            &LutMapParams::new(MappingObjective::Area),
        );
        let back = read_blif(&write_lut_blif(&mapped)).unwrap();
        assert!(cec(&net, &back).holds());
    }

    #[test]
    fn reader_rejects_malformed_text() {
        assert!(read_blif(".model x\n.latch a b\n").is_err());
        assert!(read_blif(".model x\n.inputs a\n.names a a\n1 1\n.names a y\n1 1\n").is_err());
        assert!(read_blif(".model x\n.inputs a\n.names b y\n1 1\n").is_err());
        assert!(read_blif(".model x\n.inputs a\n.names a y\n11 1\n").is_err());
        assert!(read_blif(".model x\n.inputs a\n.names a y\n0 0\n").is_err());
        assert!(read_blif(".model x\n.outputs y\n").is_err());
        assert!(read_blif("stray row\n").is_err());
    }

    #[test]
    fn lut_blif_lists_every_lut() {
        let net = sample();
        let mapped = map_lut(
            &ChoiceNetwork::from_network(&net),
            &LutLibrary::k6(),
            &LutMapParams::new(MappingObjective::Area),
        );
        let text = write_lut_blif(&mapped);
        assert!(text.contains(".model blif_sample"));
        assert!(
            text.matches("lut").count() > 0,
            "LUT instances must be named"
        );
        assert!(text.trim_end().ends_with(".end"));
    }
}
