//! File-format support for the MCH workspace.
//!
//! * [`read_aiger`] / [`write_aiger`] — the ASCII AIGER (`aag`) exchange
//!   format used by the EPFL benchmark distribution and ABC;
//! * [`write_blif`] — BLIF output of logic networks (for consumption by other
//!   synthesis tools);
//! * [`write_lut_blif`] — BLIF output of mapped K-LUT netlists;
//! * [`write_verilog`] — structural Verilog of mapped standard-cell netlists.
//!
//! # Example
//!
//! ```
//! use mch_io::{read_aiger, write_aiger};
//! use mch_logic::{cec, Network, NetworkKind};
//!
//! let mut aig = Network::new(NetworkKind::Aig);
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let f = aig.and2(a, b);
//! aig.add_output(!f);
//!
//! let text = write_aiger(&aig);
//! let back = read_aiger(&text)?;
//! assert!(cec(&aig, &back).holds());
//! # Ok::<(), mch_io::ParseAigerError>(())
//! ```

mod aiger;
mod blif;
mod verilog;

pub use aiger::{read_aiger, write_aiger, ParseAigerError};
pub use blif::{write_blif, write_lut_blif};
pub use verilog::write_verilog;
