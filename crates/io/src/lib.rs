//! File-format support for the MCH workspace.
//!
//! * [`read_aiger`] / [`write_aiger`] — the ASCII AIGER (`aag`) exchange
//!   format used by the EPFL benchmark distribution and ABC;
//! * [`read_blif`] / [`write_blif`] — BLIF input/output of logic networks
//!   (for exchange with other synthesis tools);
//! * [`write_lut_blif`] — BLIF output of mapped K-LUT netlists;
//! * [`read_verilog`] / [`write_verilog`] — structural Verilog of mapped
//!   standard-cell netlists.
//!
//! All readers consume **untrusted** text: malformed input of any shape —
//! including random mutations of valid files — returns the format's
//! structured error and never panics or makes an attacker-sized
//! allocation (`tests/parser_robustness.rs` fuzzes this property).
//!
//! # Example
//!
//! ```
//! use mch_io::{read_aiger, write_aiger};
//! use mch_logic::{cec, Network, NetworkKind};
//!
//! let mut aig = Network::new(NetworkKind::Aig);
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let f = aig.and2(a, b);
//! aig.add_output(!f);
//!
//! let text = write_aiger(&aig);
//! let back = read_aiger(&text)?;
//! assert!(cec(&aig, &back).holds());
//! # Ok::<(), mch_io::ParseAigerError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod aiger;
mod blif;
mod verilog;

pub use aiger::{read_aiger, write_aiger, ParseAigerError};
pub use blif::{read_blif, write_blif, write_lut_blif, ParseBlifError};
pub use verilog::{read_verilog, write_verilog, ParseVerilogError};
