//! Structural Verilog output for mapped standard-cell netlists.

use mch_mapper::{CellNetlist, NetRef};
use mch_techlib::Library;
use std::fmt::Write as _;

fn wire_name(r: &NetRef) -> String {
    match r {
        NetRef::Const(false) => "1'b0".into(),
        NetRef::Const(true) => "1'b1".into(),
        NetRef::Input(i) => format!("pi{i}"),
        NetRef::Gate(i) => format!("n{i}"),
    }
}

/// Serialises a mapped standard-cell netlist as structural Verilog.
///
/// Each mapped gate becomes one cell instance with positional pin connections
/// `(.A(..), .B(..), …, .Y(out))`; the module interface uses `pi<i>` / `po<i>`
/// port names matching the BLIF writer.
pub fn write_verilog(netlist: &CellNetlist, library: &Library) -> String {
    let mut out = String::new();
    let module = if netlist.name().is_empty() { "top" } else { netlist.name() };
    let inputs: Vec<String> = (0..netlist.input_count()).map(|i| format!("pi{i}")).collect();
    let outputs: Vec<String> = (0..netlist.output_count()).map(|i| format!("po{i}")).collect();
    let mut ports = inputs.clone();
    ports.extend(outputs.iter().cloned());
    let _ = writeln!(out, "module {module} ({});", ports.join(", "));
    if !inputs.is_empty() {
        let _ = writeln!(out, "  input {};", inputs.join(", "));
    }
    if !outputs.is_empty() {
        let _ = writeln!(out, "  output {};", outputs.join(", "));
    }
    if netlist.gate_count() > 0 {
        let wires: Vec<String> = (0..netlist.gate_count()).map(|i| format!("n{i}")).collect();
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }
    let pin_names = ["A", "B", "C", "D", "E", "F", "G", "H"];
    for (i, gate) in netlist.gates().iter().enumerate() {
        let cell = library.cell(gate.cell);
        let mut conns: Vec<String> = gate
            .fanins
            .iter()
            .enumerate()
            .map(|(p, f)| format!(".{}({})", pin_names[p], wire_name(f)))
            .collect();
        conns.push(format!(".Y(n{i})"));
        let _ = writeln!(out, "  {} g{} ({});", cell.name(), i, conns.join(", "));
    }
    for (i, o) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, "  assign po{} = {};", i, wire_name(o));
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::ChoiceNetwork;
    use mch_logic::{Network, NetworkKind};
    use mch_mapper::{map_asic, AsicMapParams, MappingObjective};
    use mch_techlib::asap7_lite;

    #[test]
    fn verilog_lists_cells_and_ports() {
        let mut n = Network::with_name(NetworkKind::Aig, "vtest");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let f = n.and2(a, b);
        let g = n.or(f, c);
        n.add_output(g);
        n.add_output(!f);
        let lib = asap7_lite();
        let mapped = map_asic(
            &ChoiceNetwork::from_network(&n),
            &lib,
            &AsicMapParams::new(MappingObjective::Area),
        );
        let text = write_verilog(&mapped, &lib);
        assert!(text.starts_with("module vtest"));
        assert!(text.contains("input pi0, pi1, pi2;"));
        assert!(text.contains("output po0, po1;"));
        assert!(text.contains("assign po0"));
        assert!(text.trim_end().ends_with("endmodule"));
        // Every mapped gate appears as exactly one instance (named g<i>).
        let instances = text.lines().filter(|l| l.contains(".Y(")).count();
        assert_eq!(instances, mapped.gate_count());
    }

    #[test]
    fn constant_outputs_use_literals() {
        let lib = asap7_lite();
        let mut nl = mch_mapper::CellNetlist::new("c", 1);
        nl.push_output(NetRef::Const(true));
        let text = write_verilog(&nl, &lib);
        assert!(text.contains("assign po0 = 1'b1;"));
    }
}
