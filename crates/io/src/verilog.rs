//! Structural Verilog reading and writing for mapped standard-cell netlists.
//!
//! The reader accepts the flat gate-level subset that [`write_verilog`]
//! emits and is hardened against untrusted input: every malformed shape
//! returns [`ParseVerilogError`], never a panic.

use mch_mapper::{CellNetlist, NetRef};
use mch_techlib::Library;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Error produced while parsing a structural Verilog file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseVerilogError {
    message: String,
}

impl ParseVerilogError {
    fn new(message: impl Into<String>) -> Self {
        ParseVerilogError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseVerilogError {}

/// Resolves a net token against the declared wires and constants.
fn resolve_net(
    nets: &HashMap<String, NetRef>,
    token: &str,
) -> Result<NetRef, ParseVerilogError> {
    match token {
        "1'b0" => Ok(NetRef::Const(false)),
        "1'b1" => Ok(NetRef::Const(true)),
        name => nets
            .get(name)
            .copied()
            .ok_or_else(|| ParseVerilogError::new(format!("net '{name}' used before definition"))),
    }
}

/// Parses the flat structural subset of Verilog back into a
/// [`CellNetlist`], resolving instances against `library` by cell name.
///
/// Supported: one `module` with `input`/`output`/`wire` declarations, cell
/// instances with named pin connections (`.A(net), …, .Y(out)`), constant
/// nets `1'b0`/`1'b1`, `assign` output buffers and `//` comments. Instances
/// must appear in topological order (fanins before use), which every
/// tool-written netlist satisfies.
///
/// # Errors
///
/// Returns [`ParseVerilogError`] for unknown cells, pin-count mismatches,
/// undefined or redefined nets and truncated files.
pub fn read_verilog(text: &str, library: &Library) -> Result<CellNetlist, ParseVerilogError> {
    // Strip comments, then split statements on ';' ('module ... );' headers
    // keep their port list inside one statement).
    let stripped: String = text
        .lines()
        .map(|l| match l.find("//") {
            Some(pos) => &l[..pos],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n");

    let mut module_name: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut output_assigns: Vec<(String, String)> = Vec::new();
    let mut declared_outputs: Vec<String> = Vec::new();
    // (cell, [(pin, net)]) in instantiation order.
    let mut instances: Vec<(String, Vec<(String, String)>)> = Vec::new();

    for raw in stripped.split(';') {
        let stmt = raw.trim();
        if stmt.is_empty() || stmt == "endmodule" || stmt.ends_with("endmodule") {
            // A trailing 'endmodule' has no ';'; it may share the final
            // fragment with whitespace only.
            if stmt
                .strip_suffix("endmodule")
                .is_some_and(|rest| !rest.trim().is_empty())
            {
                return Err(ParseVerilogError::new(format!(
                    "unparsed text before endmodule: '{stmt}'"
                )));
            }
            continue;
        }
        let (head, rest) = stmt.split_once(char::is_whitespace).unwrap_or((stmt, ""));
        match head {
            "module" => {
                let name = rest
                    .split(['(', ' ', '\n', '\t'])
                    .find(|s| !s.trim().is_empty())
                    .unwrap_or("top");
                module_name = Some(name.trim().to_string());
            }
            "input" => inputs.extend(
                rest.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty()),
            ),
            "output" => declared_outputs.extend(
                rest.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty()),
            ),
            "wire" => {}
            "assign" => {
                let Some((lhs, rhs)) = rest.split_once('=') else {
                    return Err(ParseVerilogError::new(format!(
                        "assign without '=': '{stmt}'"
                    )));
                };
                output_assigns.push((lhs.trim().to_string(), rhs.trim().to_string()));
            }
            cell_name => {
                // A cell instance: `CELL inst (.PIN(net), ...)`.
                let Some(open) = rest.find('(') else {
                    return Err(ParseVerilogError::new(format!(
                        "instance '{stmt}' has no connection list"
                    )));
                };
                let Some(close) = rest.rfind(')') else {
                    return Err(ParseVerilogError::new(format!(
                        "instance '{stmt}' has an unterminated connection list"
                    )));
                };
                if close < open {
                    return Err(ParseVerilogError::new(format!(
                        "instance '{stmt}' has a malformed connection list"
                    )));
                }
                let mut pins = Vec::new();
                for conn in rest[open + 1..close].split(',') {
                    let conn = conn.trim();
                    if conn.is_empty() {
                        continue;
                    }
                    let parsed = conn
                        .strip_prefix('.')
                        .and_then(|c| c.split_once('('))
                        .and_then(|(pin, net)| {
                            net.strip_suffix(')').map(|n| (pin.trim(), n.trim()))
                        });
                    let Some((pin, net)) = parsed else {
                        return Err(ParseVerilogError::new(format!(
                            "malformed pin connection '{conn}'"
                        )));
                    };
                    pins.push((pin.to_string(), net.to_string()));
                }
                instances.push((cell_name.to_string(), pins));
            }
        }
    }

    let Some(module_name) = module_name else {
        return Err(ParseVerilogError::new("no module declaration found"));
    };
    let mut netlist = CellNetlist::new(module_name, inputs.len());
    let mut nets: HashMap<String, NetRef> = HashMap::new();
    for (i, name) in inputs.iter().enumerate() {
        if nets.insert(name.clone(), NetRef::Input(i)).is_some() {
            return Err(ParseVerilogError::new(format!(
                "input '{name}' declared twice"
            )));
        }
    }
    for (cell_name, pins) in instances {
        let Some(cell_id) = library.find_cell(&cell_name) else {
            return Err(ParseVerilogError::new(format!(
                "cell '{cell_name}' is not in library '{}'",
                library.name()
            )));
        };
        let num_inputs = library.cell(cell_id).num_inputs();
        let mut fanins: Vec<Option<NetRef>> = vec![None; num_inputs];
        let mut out_net: Option<String> = None;
        for (pin, net) in pins {
            if pin == "Y" {
                out_net = Some(net);
                continue;
            }
            let slot = pin
                .bytes()
                .next()
                .filter(|_| pin.len() == 1)
                .map(|b| b.wrapping_sub(b'A') as usize);
            let Some(slot) = slot.filter(|&s| s < num_inputs) else {
                return Err(ParseVerilogError::new(format!(
                    "cell '{cell_name}' has no input pin '{pin}'"
                )));
            };
            if fanins[slot].is_some() {
                return Err(ParseVerilogError::new(format!(
                    "pin '{pin}' of '{cell_name}' connected twice"
                )));
            }
            fanins[slot] = Some(resolve_net(&nets, &net)?);
        }
        let fanins: Vec<NetRef> = fanins
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| {
                ParseVerilogError::new(format!("instance of '{cell_name}' leaves a pin open"))
            })?;
        let Some(out_net) = out_net else {
            return Err(ParseVerilogError::new(format!(
                "instance of '{cell_name}' has no .Y output connection"
            )));
        };
        let gate = netlist.push_gate(cell_id, fanins);
        if nets.insert(out_net.clone(), gate).is_some() {
            return Err(ParseVerilogError::new(format!(
                "net '{out_net}' driven twice"
            )));
        }
    }
    for (lhs, rhs) in &output_assigns {
        if !declared_outputs.iter().any(|o| o == lhs) {
            return Err(ParseVerilogError::new(format!(
                "assign target '{lhs}' is not a declared output"
            )));
        }
        netlist.push_output(resolve_net(&nets, rhs)?);
    }
    if netlist.output_count() != declared_outputs.len() {
        return Err(ParseVerilogError::new(format!(
            "{} outputs declared but {} assigned",
            declared_outputs.len(),
            netlist.output_count()
        )));
    }
    Ok(netlist)
}

fn wire_name(r: &NetRef) -> String {
    match r {
        NetRef::Const(false) => "1'b0".into(),
        NetRef::Const(true) => "1'b1".into(),
        NetRef::Input(i) => format!("pi{i}"),
        NetRef::Gate(i) => format!("n{i}"),
    }
}

/// Serialises a mapped standard-cell netlist as structural Verilog.
///
/// Each mapped gate becomes one cell instance with positional pin connections
/// `(.A(..), .B(..), …, .Y(out))`; the module interface uses `pi<i>` / `po<i>`
/// port names matching the BLIF writer.
pub fn write_verilog(netlist: &CellNetlist, library: &Library) -> String {
    let mut out = String::new();
    let module = if netlist.name().is_empty() { "top" } else { netlist.name() };
    let inputs: Vec<String> = (0..netlist.input_count()).map(|i| format!("pi{i}")).collect();
    let outputs: Vec<String> = (0..netlist.output_count()).map(|i| format!("po{i}")).collect();
    let mut ports = inputs.clone();
    ports.extend(outputs.iter().cloned());
    let _ = writeln!(out, "module {module} ({});", ports.join(", "));
    if !inputs.is_empty() {
        let _ = writeln!(out, "  input {};", inputs.join(", "));
    }
    if !outputs.is_empty() {
        let _ = writeln!(out, "  output {};", outputs.join(", "));
    }
    if netlist.gate_count() > 0 {
        let wires: Vec<String> = (0..netlist.gate_count()).map(|i| format!("n{i}")).collect();
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }
    let pin_names = ["A", "B", "C", "D", "E", "F", "G", "H"];
    for (i, gate) in netlist.gates().iter().enumerate() {
        let cell = library.cell(gate.cell);
        let mut conns: Vec<String> = gate
            .fanins
            .iter()
            .enumerate()
            .map(|(p, f)| format!(".{}({})", pin_names[p], wire_name(f)))
            .collect();
        conns.push(format!(".Y(n{i})"));
        let _ = writeln!(out, "  {} g{} ({});", cell.name(), i, conns.join(", "));
    }
    for (i, o) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, "  assign po{} = {};", i, wire_name(o));
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::ChoiceNetwork;
    use mch_logic::{Network, NetworkKind};
    use mch_mapper::{map_asic, AsicMapParams, MappingObjective};
    use mch_techlib::asap7_lite;

    #[test]
    fn verilog_lists_cells_and_ports() {
        let mut n = Network::with_name(NetworkKind::Aig, "vtest");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let f = n.and2(a, b);
        let g = n.or(f, c);
        n.add_output(g);
        n.add_output(!f);
        let lib = asap7_lite();
        let mapped = map_asic(
            &ChoiceNetwork::from_network(&n),
            &lib,
            &AsicMapParams::new(MappingObjective::Area),
        );
        let text = write_verilog(&mapped, &lib);
        assert!(text.starts_with("module vtest"));
        assert!(text.contains("input pi0, pi1, pi2;"));
        assert!(text.contains("output po0, po1;"));
        assert!(text.contains("assign po0"));
        assert!(text.trim_end().ends_with("endmodule"));
        // Every mapped gate appears as exactly one instance (named g<i>).
        let instances = text.lines().filter(|l| l.contains(".Y(")).count();
        assert_eq!(instances, mapped.gate_count());
    }

    #[test]
    fn verilog_round_trips() {
        use mch_logic::cec;
        let mut n = Network::with_name(NetworkKind::Aig, "vround");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let f = n.and2(a, !b);
        let g = n.xor(f, c);
        n.add_output(g);
        n.add_output(!f);
        let lib = asap7_lite();
        let mapped = map_asic(
            &ChoiceNetwork::from_network(&n),
            &lib,
            &AsicMapParams::new(MappingObjective::Balanced),
        );
        let back = read_verilog(&write_verilog(&mapped, &lib), &lib).unwrap();
        assert_eq!(back.input_count(), mapped.input_count());
        assert_eq!(back.gate_count(), mapped.gate_count());
        assert_eq!(back.output_count(), mapped.output_count());
        assert!(cec(&n, &back.to_network(&lib)).holds());
    }

    #[test]
    fn reader_rejects_malformed_text() {
        let lib = asap7_lite();
        assert!(read_verilog("", &lib).is_err());
        assert!(read_verilog("module m (); NOPE g0 (.A(pi0), .Y(n0)); endmodule", &lib).is_err());
        assert!(read_verilog(
            "module m (po0);\n output po0;\n assign po0 = nowhere;\nendmodule",
            &lib
        )
        .is_err());
        assert!(read_verilog(
            "module m (pi0, po0);\n input pi0;\n output po0;\nendmodule",
            &lib
        )
        .is_err());
    }

    #[test]
    fn constant_outputs_use_literals() {
        let lib = asap7_lite();
        let mut nl = mch_mapper::CellNetlist::new("c", 1);
        nl.push_output(NetRef::Const(true));
        let text = write_verilog(&nl, &lib);
        assert!(text.contains("assign po0 = 1'b1;"));
    }
}
