//! Seeded malformed-input property test for the mch_io parsers.
//!
//! Valid AIGER/BLIF/Verilog files are generated from random networks, then
//! mutated byte-wise (replacements, truncations, duplications) under a fixed
//! seed. Every mutant must come back as `Ok` or a structured `Err` — a panic
//! in any parser fails the test. The pristine files must round-trip.

use mch_choice::ChoiceNetwork;
use mch_io::{read_aiger, read_blif, read_verilog, write_aiger, write_blif, write_lut_blif, write_verilog};
use mch_logic::{cec, Network, NetworkKind, Prng, Signal};
use mch_mapper::{map_asic, map_lut, AsicMapParams, LutMapParams, MappingObjective};
use mch_techlib::{asap7_lite, Library, LutLibrary};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A random connected multi-output network with AND/XOR/MAJ structure.
fn random_network(rng: &mut Prng, gates: usize) -> Network {
    let mut n = Network::with_name(NetworkKind::Mixed, "fuzz");
    let num_inputs = 3 + rng.gen_range(0..5);
    let inputs = n.add_inputs(num_inputs);
    let mut pool: Vec<Signal> = inputs.clone();
    pool.push(n.constant(false));
    for _ in 0..gates {
        let pick = |rng: &mut Prng, pool: &[Signal]| {
            let s = pool[rng.gen_range(0..pool.len())];
            if rng.gen_bool(0.3) {
                !s
            } else {
                s
            }
        };
        let a = pick(rng, &pool);
        let b = pick(rng, &pool);
        let c = pick(rng, &pool);
        let g = match rng.gen_range(0..3) {
            0 => n.and2(a, b),
            1 => n.xor2(a, b),
            _ => n.maj3(a, b, c),
        };
        pool.push(g);
    }
    for _ in 0..3 {
        let o = pool[rng.gen_range(0..pool.len())];
        n.add_output(if rng.gen_bool(0.5) { !o } else { o });
    }
    n
}

/// Applies one seeded mutation to a byte buffer: replace, truncate, insert
/// or duplicate a random span.
fn mutate(rng: &mut Prng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        bytes.push(rng.next_u64() as u8);
        return;
    }
    match rng.gen_range(0..4) {
        0 => {
            // Replace a random byte with a random byte.
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.next_u64() as u8;
        }
        1 => {
            // Truncate at a random point.
            let at = rng.gen_range(0..bytes.len());
            bytes.truncate(at);
        }
        2 => {
            // Insert a random byte (often digits/whitespace to stress the
            // numeric paths).
            let at = rng.gen_range(0..bytes.len() + 1);
            let b = match rng.gen_range(0..3) {
                0 => b'0' + (rng.next_u64() % 10) as u8,
                1 => b' ',
                _ => rng.next_u64() as u8,
            };
            bytes.insert(at, b);
        }
        _ => {
            // Duplicate a random line somewhere else.
            let text = String::from_utf8_lossy(bytes).into_owned();
            let lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let line = lines[rng.gen_range(0..lines.len())].to_string();
                let at = rng.gen_range(0..bytes.len());
                let mut insertion = line.into_bytes();
                insertion.push(b'\n');
                bytes.splice(at..at, insertion);
            }
        }
    }
}

/// Fuzzes one parser: every mutant of `pristine` must parse without
/// panicking. Returns how many mutants still parsed successfully (useful as
/// a sanity signal that the corpus isn't trivially broken).
fn fuzz<T>(seed: u64, pristine: &str, parse: impl Fn(&str) -> Option<T>) -> usize {
    let mut rng = Prng::seed_from_u64(seed);
    let mut survivors = 0;
    for round in 0..200 {
        let mut bytes = pristine.as_bytes().to_vec();
        // Escalating mutation count: early rounds are near-valid (deep
        // parser paths), late rounds are heavily corrupted.
        for _ in 0..=(round / 20) {
            mutate(&mut rng, &mut bytes);
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let outcome = catch_unwind(AssertUnwindSafe(|| parse(&text).is_some()));
        match outcome {
            Ok(parsed) => survivors += usize::from(parsed),
            Err(_) => panic!(
                "parser panicked on mutant (seed {seed}, round {round}):\n{text}"
            ),
        }
    }
    survivors
}

fn corpus(seed: u64) -> (Network, Library) {
    let mut rng = Prng::seed_from_u64(seed);
    (random_network(&mut rng, 40), asap7_lite())
}

#[test]
fn aiger_reader_never_panics_on_mutated_input() {
    for seed in 0..5 {
        let (net, _) = corpus(seed);
        let pristine = write_aiger(&net);
        let back = read_aiger(&pristine).expect("pristine AIGER must parse");
        assert!(cec(&net, &back).holds(), "pristine AIGER must round-trip");
        fuzz(seed ^ 0xA16E5, &pristine, |t| read_aiger(t).ok());
    }
}

#[test]
fn blif_reader_never_panics_on_mutated_input() {
    for seed in 0..5 {
        let (net, _) = corpus(seed);
        let pristine = write_blif(&net);
        let back = read_blif(&pristine).expect("pristine BLIF must parse");
        assert!(cec(&net, &back).holds(), "pristine BLIF must round-trip");
        fuzz(seed ^ 0xB11F, &pristine, |t| read_blif(t).ok());
    }
}

#[test]
fn lut_blif_reader_never_panics_on_mutated_input() {
    let (net, _) = corpus(99);
    let mapped = map_lut(
        &ChoiceNetwork::from_network(&net),
        &LutLibrary::k6(),
        &LutMapParams::new(MappingObjective::Area),
    );
    let pristine = write_lut_blif(&mapped);
    let back = read_blif(&pristine).expect("pristine LUT BLIF must parse");
    assert!(cec(&net, &back).holds(), "pristine LUT BLIF must round-trip");
    fuzz(0x1B11F, &pristine, |t| read_blif(t).ok());
}

#[test]
fn verilog_reader_never_panics_on_mutated_input() {
    for seed in 0..5 {
        let (net, lib) = corpus(seed);
        let mapped = map_asic(
            &ChoiceNetwork::from_network(&net),
            &lib,
            &AsicMapParams::new(MappingObjective::Balanced),
        );
        let pristine = write_verilog(&mapped, &lib);
        let back = read_verilog(&pristine, &lib).expect("pristine Verilog must parse");
        assert!(
            cec(&net, &back.to_network(&lib)).holds(),
            "pristine Verilog must round-trip"
        );
        fuzz(seed ^ 0x7E71106, &pristine, |t| read_verilog(t, &lib).ok());
    }
}

#[test]
fn header_count_lies_are_rejected_without_allocating() {
    // A 30-byte file claiming 10^15 variables must fail fast on the count
    // check, not attempt a petabyte allocation.
    assert!(read_aiger("aag 1000000000000000 1 0 1 0\n2\n2\n").is_err());
    assert!(read_aiger("aag 4 1000000000000000 0 1 0\n2\n2\n").is_err());
    assert!(read_aiger("aag 4 1 0 1000000000000000 0\n2\n2\n").is_err());
    assert!(read_aiger("aag 4 1 0 1 1000000000000000\n2\n2\n").is_err());
}
