//! One-to-one mapping between logic representations.
//!
//! Converting a network re-emits every gate through the polymorphic builders
//! of the target representation (Algorithm 1, line 1 of the paper): an AND in
//! a MIG target becomes `MAJ(a, b, 0)`, an XOR in an AIG target becomes its
//! three-AND decomposition, and so on. The function of every primary output is
//! preserved exactly.

use crate::{GateKind, Network, NetworkKind, Signal};

/// Converts `network` into the `target` representation.
///
/// The conversion walks the nodes in topological order and rebuilds each gate
/// with primitives legal in `target`. Structural hashing in the target network
/// may merge gates, so the result can be smaller than the source.
///
/// # Example
///
/// ```
/// use mch_logic::{convert, Network, NetworkKind, cec};
///
/// let mut aig = Network::new(NetworkKind::Aig);
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let c = aig.add_input();
/// let f = aig.and2(a, b);
/// let g = aig.and2(f, c);
/// aig.add_output(g);
///
/// let mig = convert(&aig, NetworkKind::Mig);
/// assert_eq!(mig.kind(), NetworkKind::Mig);
/// assert!(cec(&aig, &mig).holds());
/// ```
pub fn convert(network: &Network, target: NetworkKind) -> Network {
    let mut out = Network::with_name(target, network.name().to_string());
    let mut map: Vec<Signal> = vec![Signal::CONST0; network.len()];
    for &pi in network.inputs() {
        map[pi.index()] = out.add_input();
    }
    for id in network.gate_ids() {
        let node = network.node(id);
        let f: Vec<Signal> = node
            .fanins()
            .iter()
            .map(|s| map[s.node().index()].xor_complement(s.is_complement()))
            .collect();
        map[id.index()] = match node.kind() {
            GateKind::And2 => out.and(f[0], f[1]),
            GateKind::Xor2 => out.xor(f[0], f[1]),
            GateKind::Maj3 => out.maj(f[0], f[1], f[2]),
            _ => unreachable!("gate_ids yields only gates"),
        };
    }
    for &o in network.outputs() {
        let s = map[o.node().index()].xor_complement(o.is_complement());
        out.add_output(s);
    }
    out
}

/// Converts a network into each of the four homogeneous representations.
///
/// Convenience used by the Figure-1 experiment, which maps the same circuit as
/// AIG, XAG, MIG and XMG and compares the mapped area and delay.
pub fn convert_to_all(network: &Network) -> Vec<Network> {
    NetworkKind::homogeneous()
        .into_iter()
        .map(|k| convert(network, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cec, Network, NetworkKind};

    fn sample() -> Network {
        let mut n = Network::new(NetworkKind::Xag);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let d = n.add_input();
        let x = n.xor2(a, b);
        let y = n.and2(c, d);
        let z = n.and2(x, !y);
        let w = n.xor2(z, c);
        n.add_output(w);
        n.add_output(!z);
        n
    }

    #[test]
    fn conversion_preserves_function_for_all_targets() {
        let src = sample();
        for target in NetworkKind::homogeneous() {
            let converted = convert(&src, target);
            assert_eq!(converted.kind(), target);
            assert!(cec(&src, &converted).holds(), "mismatch for {target}");
        }
    }

    #[test]
    fn aig_target_contains_only_ands() {
        let aig = convert(&sample(), NetworkKind::Aig);
        let (_, xor, maj) = aig.gate_profile();
        assert_eq!(xor, 0);
        assert_eq!(maj, 0);
    }

    #[test]
    fn mig_target_contains_only_majorities() {
        let mig = convert(&sample(), NetworkKind::Mig);
        let (and, xor, _) = mig.gate_profile();
        assert_eq!(and, 0);
        assert_eq!(xor, 0);
    }

    #[test]
    fn xmg_keeps_xors_native() {
        let xmg = convert(&sample(), NetworkKind::Xmg);
        let (and, xor, _) = xmg.gate_profile();
        assert_eq!(and, 0);
        assert!(xor >= 1);
    }

    #[test]
    fn round_trip_preserves_function() {
        let src = sample();
        let mig = convert(&src, NetworkKind::Mig);
        let back = convert(&mig, NetworkKind::Xag);
        assert!(cec(&src, &back).holds());
    }

    #[test]
    fn convert_to_all_yields_four_networks() {
        let all = convert_to_all(&sample());
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|n| cec(n, &sample()).holds()));
    }
}
