//! Deterministic, seeded fault injection for chaos testing.
//!
//! This module only exists when the `fault-injection` feature is enabled; in
//! normal builds the [`failpoint!`](crate::failpoint!) macro expands to
//! nothing, so instrumented sites cost zero cycles and zero code size.
//!
//! A *failpoint* is a named site in the pipeline (`"pool::dispatch"`,
//! `"npn::commit"`, …). When the registry is armed, every passage through a
//! site increments that site's hit counter and decides — purely from the
//! `(seed, name, hit index)` triple — whether to panic with a recognisable
//! `fault injected: …` payload. Because the decision depends only on how many
//! times *that* name has fired and not on global interleaving, the **set** of
//! firing `(name, k)` pairs is identical across thread schedules, which is
//! what makes chaos runs reproducible.
//!
//! Two arming modes:
//!
//! * [`arm`] — probabilistic: each `(name, k)` fires when a splitmix-style
//!   hash of the triple falls below `density`.
//! * [`arm_exact`] — surgical: fire exactly at the listed hit indices of one
//!   named site, leaving every other site untouched.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

/// The payload prefix of every injected panic; tests and panic hooks use it
/// to distinguish injected faults from genuine bugs.
pub const PANIC_PREFIX: &str = "fault injected";

enum Mode {
    Disarmed,
    /// Fire `(name, k)` when `hash(seed, name, k)` maps below `density`.
    Seeded { seed: u64, density: f64 },
    /// Fire only the listed hit indices (0-based) of one named site.
    Exact { name: String, indices: Vec<u64> },
}

struct Registry {
    mode: Mode,
    hits: HashMap<String, u64>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            mode: Mode::Disarmed,
            hits: HashMap::new(),
        })
    })
}

/// splitmix64 finalizer — a cheap, high-quality bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn triple_hash(seed: u64, name: &str, k: u64) -> u64 {
    let mut h = mix(seed);
    for b in name.as_bytes() {
        h = mix(h ^ u64::from(*b));
    }
    mix(h ^ k)
}

/// Arm every failpoint probabilistically: the `k`-th passage through site
/// `name` panics when `hash(seed, name, k)` falls below `density` (0.0 never,
/// 1.0 always). Resets all hit counters.
pub fn arm(seed: u64, density: f64) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.mode = Mode::Seeded { seed, density };
    reg.hits.clear();
}

/// Arm exactly the listed 0-based hit indices of one named site; all other
/// sites stay inert. Resets all hit counters.
pub fn arm_exact(name: &str, indices: &[u64]) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.mode = Mode::Exact {
        name: name.to_string(),
        indices: indices.to_vec(),
    };
    reg.hits.clear();
}

/// Disarm all failpoints and clear hit counters.
pub fn disarm() {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.mode = Mode::Disarmed;
    reg.hits.clear();
}

/// How many times site `name` has been passed since the last (re)arm.
pub fn hit_count(name: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.hits.get(name).copied().unwrap_or(0)
}

/// Record a passage through site `name` and panic if the armed schedule says
/// this `(name, k)` pair fires. The registry lock is released *before* the
/// panic so the registry itself can never be poisoned by its own faults.
pub fn hit(name: &str) {
    let fire = {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let k = reg.hits.entry(name.to_string()).or_insert(0);
        let this = *k;
        *k += 1;
        match &reg.mode {
            Mode::Disarmed => None,
            Mode::Seeded { seed, density } => {
                let h = triple_hash(*seed, name, this);
                // Top 53 bits → uniform in [0, 1).
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                (u < *density).then_some(this)
            }
            Mode::Exact {
                name: armed,
                indices,
            } => (armed == name && indices.contains(&this)).then_some(this),
        }
    };
    if let Some(k) = fire {
        panic!("{PANIC_PREFIX}: {name} (hit {k})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedule_is_deterministic() {
        assert_eq!(triple_hash(7, "a", 0), triple_hash(7, "a", 0));
        assert_ne!(triple_hash(7, "a", 0), triple_hash(7, "a", 1));
        assert_ne!(triple_hash(7, "a", 0), triple_hash(8, "a", 0));
        assert_ne!(triple_hash(7, "a", 0), triple_hash(7, "b", 0));
    }
}
