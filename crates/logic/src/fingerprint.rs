//! Deterministic structural fingerprints.
//!
//! The warm-start layer of `mch_core` keys prepared flow artifacts by a
//! 64-bit fingerprint of `(network, choice-relevant config)`. The
//! requirements are modest but strict:
//!
//! * **deterministic across processes and platforms** — the fingerprint is a
//!   pure fold over the written words, with no `std::hash` randomization and
//!   no pointer-dependent state, so it can be stored, logged and compared
//!   across runs;
//! * **order-sensitive** — `write(a); write(b)` and `write(b); write(a)`
//!   differ, because node order is semantically meaningful in an append-only
//!   network;
//! * **collision-tolerant consumers** — 64 bits cannot rule out collisions,
//!   so every cache keyed by a fingerprint verifies full equality on hit
//!   (a collision degrades to a miss, never to a wrong artifact).
//!
//! The mixer is the splitmix64 finalizer already used by [`crate::Prng`],
//! applied per written word over a running state, with the write count folded
//! into [`Fingerprinter::finish`] to separate prefixes from their
//! extensions.

use crate::{Network, Signal};

/// The splitmix64 finalizer: a fixed 64-bit permutation with strong
/// avalanche behaviour (identical to the [`crate::Prng`] seed expansion).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An order-sensitive 64-bit fingerprint fold (see the module docs).
///
/// Not a `std::hash::Hasher`: the std trait makes no cross-process stability
/// promise, and this type exists precisely to make one.
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    state: u64,
    count: u64,
}

impl Fingerprinter {
    /// Creates a fresh fingerprinter (golden-ratio initial state).
    pub fn new() -> Self {
        Fingerprinter {
            state: 0x9E37_79B9_7F4A_7C15,
            count: 0,
        }
    }

    /// Folds one word into the state.
    #[inline]
    pub fn write_u64(&mut self, value: u64) {
        self.count = self.count.wrapping_add(1);
        // Mix the value first so sparse inputs (small integers) diffuse, then
        // chain through the running state; the add keeps the chain position
        // significant even for repeated values.
        self.state = mix(self.state.wrapping_add(mix(value.wrapping_add(self.count))));
    }

    /// Folds a byte string: its length, then its bytes in 8-byte words
    /// (zero-padded tail), so `"ab" + "c"` and `"a" + "bc"` differ.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Folds a UTF-8 string (see [`Fingerprinter::write_bytes`]).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The fingerprint of everything written so far.
    ///
    /// Folds the write count in, so a fingerprint is never a valid
    /// continuation state of a shorter write sequence.
    pub fn finish(&self) -> u64 {
        mix(self.state ^ self.count)
    }
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Network {
    /// A deterministic structural fingerprint of this network: name, kind,
    /// input count, every node's `(kind, fanin literals)` in id order, and
    /// the output literals.
    ///
    /// Two networks compare [`PartialEq`]-equal exactly when they were built
    /// as the same node-for-node structure, and the fingerprint folds the
    /// same fields, so equal networks always fingerprint equal — including
    /// permuted-but-identical constructions, which strashing normalises to
    /// the same node vector before this function ever sees them. The
    /// converse holds only statistically (64 bits); cache consumers verify
    /// equality on fingerprint hits.
    ///
    /// The name is included deliberately: emitted netlists embed it, so two
    /// same-structure different-name networks must not share cached flow
    /// artifacts. Derived per-node attributes (levels, fanout counts) are
    /// not folded — they are functions of the hashed structure.
    pub fn structural_fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_str(self.name());
        fp.write_u64(self.kind() as u64);
        fp.write_u64(self.input_count() as u64);
        fp.write_u64(self.len() as u64);
        for id in self.node_ids() {
            let node = self.node(id);
            fp.write_u64(node.kind() as u64);
            for f in node.fanins() {
                fp.write_u64(f.literal() as u64);
            }
        }
        fp.write_u64(self.outputs().len() as u64);
        for o in self.outputs() {
            fp.write_u64(o.literal() as u64);
        }
        fp.finish()
    }
}

/// Convenience: fingerprints one signal literal (used by tests and the core
/// cache key builder).
pub fn fingerprint_signal(fp: &mut Fingerprinter, s: Signal) {
    fp.write_u64(s.literal() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkKind;

    #[test]
    fn word_order_and_prefixes_matter() {
        let mut ab = Fingerprinter::new();
        ab.write_u64(1);
        ab.write_u64(2);
        let mut ba = Fingerprinter::new();
        ba.write_u64(2);
        ba.write_u64(1);
        assert_ne!(ab.finish(), ba.finish());

        let mut a = Fingerprinter::new();
        a.write_u64(1);
        assert_ne!(a.finish(), ab.finish());
        // A fold is deterministic: same writes, same fingerprint.
        let mut ab2 = Fingerprinter::new();
        ab2.write_u64(1);
        ab2.write_u64(2);
        assert_eq!(ab.finish(), ab2.finish());
    }

    #[test]
    fn byte_strings_fold_with_their_boundaries() {
        let mut split_one = Fingerprinter::new();
        split_one.write_str("ab");
        split_one.write_str("c");
        let mut split_two = Fingerprinter::new();
        split_two.write_str("a");
        split_two.write_str("bc");
        assert_ne!(split_one.finish(), split_two.finish());
    }

    fn and_tree() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "fp-test");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let ab = n.and2(a, b);
        let abc = n.and2(ab, c);
        n.add_output(abc);
        n
    }

    #[test]
    fn equal_networks_fingerprint_equal() {
        assert_eq!(
            and_tree().structural_fingerprint(),
            and_tree().structural_fingerprint()
        );
    }

    #[test]
    fn permuted_but_identical_constructions_fingerprint_equal() {
        // Strashing sorts commutative fanins, so and2(b, a) produces the
        // same node vector as and2(a, b) — and therefore the same
        // fingerprint.
        let build = |swap: bool| {
            let mut n = Network::with_name(NetworkKind::Aig, "fp-perm");
            let a = n.add_input();
            let b = n.add_input();
            let g = if swap { n.and2(b, a) } else { n.and2(a, b) };
            n.add_output(g);
            n
        };
        assert_eq!(build(false), build(true));
        assert_eq!(
            build(false).structural_fingerprint(),
            build(true).structural_fingerprint()
        );
    }

    #[test]
    fn structural_mutations_change_the_fingerprint() {
        let base = and_tree().structural_fingerprint();

        // Extra gate feeding a new output.
        let mut extra = and_tree();
        let x = extra.input(0);
        let y = extra.input(2);
        let g = extra.and2(x, y);
        extra.add_output(g);
        assert_ne!(base, extra.structural_fingerprint());

        // Complemented output.
        let mut flipped = and_tree();
        let o = flipped.output(0);
        flipped.replace_output(0, !o);
        assert_ne!(base, flipped.structural_fingerprint());

        // Different name, same structure.
        let mut renamed = and_tree();
        renamed.set_name("fp-test-2");
        assert_ne!(base, renamed.structural_fingerprint());

        // Different output selection.
        let mut rewired = and_tree();
        let first_input = rewired.input(0);
        rewired.replace_output(0, first_input);
        assert_ne!(base, rewired.structural_fingerprint());
    }
}
