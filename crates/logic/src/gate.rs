//! Gate primitives and node storage for the supported logic representations.

use crate::Signal;
use std::fmt;

/// The primitive Boolean function computed by a node.
///
/// The four heterogeneous representations used by the MCH paper are all built
/// from these primitives:
///
/// * **AIG** — [`GateKind::And2`] only,
/// * **XAG** — [`GateKind::And2`] + [`GateKind::Xor2`],
/// * **MIG** — [`GateKind::Maj3`] only (AND/OR are majorities with a constant),
/// * **XMG** — [`GateKind::Maj3`] + [`GateKind::Xor2`],
/// * **mixed choice networks** — any of the above side by side.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// The constant-false node (node 0 of every network).
    Const,
    /// A primary input.
    Input,
    /// Two-input AND.
    And2,
    /// Two-input XOR.
    Xor2,
    /// Three-input majority.
    Maj3,
}

impl GateKind {
    /// Number of fanins a node of this kind carries.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Const | GateKind::Input => 0,
            GateKind::And2 | GateKind::Xor2 => 2,
            GateKind::Maj3 => 3,
        }
    }

    /// Returns `true` for kinds that represent a logic gate (not PI/constant).
    pub fn is_gate(self) -> bool {
        matches!(self, GateKind::And2 | GateKind::Xor2 | GateKind::Maj3)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Const => "const0",
            GateKind::Input => "input",
            GateKind::And2 => "and",
            GateKind::Xor2 => "xor",
            GateKind::Maj3 => "maj",
        };
        f.write_str(s)
    }
}

/// The logic representation a network is declared to use.
///
/// The declared kind restricts which primitives the polymorphic builders in
/// [`crate::Network`] may emit; [`NetworkKind::Mixed`] allows every primitive
/// and is the representation used by choice networks.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum NetworkKind {
    /// And-Inverter Graph.
    #[default]
    Aig,
    /// Xor-And Graph.
    Xag,
    /// Majority-Inverter Graph.
    Mig,
    /// Xor-Majority Graph.
    Xmg,
    /// Heterogeneous network mixing all primitives (used for choice networks).
    Mixed,
}

impl NetworkKind {
    /// Returns `true` if nodes of `gate` may appear in networks of this kind.
    pub fn allows(self, gate: GateKind) -> bool {
        match gate {
            GateKind::Const | GateKind::Input => true,
            GateKind::And2 => matches!(
                self,
                NetworkKind::Aig | NetworkKind::Xag | NetworkKind::Mixed
            ),
            GateKind::Xor2 => matches!(
                self,
                NetworkKind::Xag | NetworkKind::Xmg | NetworkKind::Mixed
            ),
            GateKind::Maj3 => matches!(
                self,
                NetworkKind::Mig | NetworkKind::Xmg | NetworkKind::Mixed
            ),
        }
    }

    /// All concrete (non-mixed) representations.
    pub fn homogeneous() -> [NetworkKind; 4] {
        [
            NetworkKind::Aig,
            NetworkKind::Xag,
            NetworkKind::Mig,
            NetworkKind::Xmg,
        ]
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetworkKind::Aig => "AIG",
            NetworkKind::Xag => "XAG",
            NetworkKind::Mig => "MIG",
            NetworkKind::Xmg => "XMG",
            NetworkKind::Mixed => "Mixed",
        };
        f.write_str(s)
    }
}

/// A single node of a [`crate::Network`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Node {
    kind: GateKind,
    fanins: [Signal; 3],
    level: u32,
    fanout_count: u32,
}

impl Node {
    pub(crate) fn new(kind: GateKind, fanins: [Signal; 3], level: u32) -> Self {
        Node {
            kind,
            fanins,
            level,
            fanout_count: 0,
        }
    }

    /// The primitive computed by this node.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin signals, in normalized order (`arity()` of them are valid).
    #[inline]
    pub fn fanins(&self) -> &[Signal] {
        &self.fanins[..self.kind.arity()]
    }

    /// Logic level (distance from the primary inputs).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of network nodes and primary outputs referencing this node.
    #[inline]
    pub fn fanout_count(&self) -> u32 {
        self.fanout_count
    }

    /// Returns `true` for AND/XOR/MAJ nodes.
    #[inline]
    pub fn is_gate(&self) -> bool {
        self.kind.is_gate()
    }

    /// Returns `true` for primary-input nodes.
    #[inline]
    pub fn is_input(&self) -> bool {
        self.kind == GateKind::Input
    }

    pub(crate) fn bump_fanout(&mut self) {
        self.fanout_count += 1;
    }

    pub(crate) fn drop_fanout(&mut self) {
        debug_assert!(self.fanout_count > 0);
        self.fanout_count -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(GateKind::Const.arity(), 0);
        assert_eq!(GateKind::Input.arity(), 0);
        assert_eq!(GateKind::And2.arity(), 2);
        assert_eq!(GateKind::Xor2.arity(), 2);
        assert_eq!(GateKind::Maj3.arity(), 3);
    }

    #[test]
    fn kind_permissions() {
        assert!(NetworkKind::Aig.allows(GateKind::And2));
        assert!(!NetworkKind::Aig.allows(GateKind::Xor2));
        assert!(!NetworkKind::Aig.allows(GateKind::Maj3));
        assert!(NetworkKind::Xag.allows(GateKind::Xor2));
        assert!(NetworkKind::Mig.allows(GateKind::Maj3));
        assert!(!NetworkKind::Mig.allows(GateKind::And2));
        assert!(NetworkKind::Xmg.allows(GateKind::Xor2));
        assert!(NetworkKind::Xmg.allows(GateKind::Maj3));
        for g in [GateKind::And2, GateKind::Xor2, GateKind::Maj3] {
            assert!(NetworkKind::Mixed.allows(g));
        }
    }

    #[test]
    fn every_kind_allows_structural_nodes() {
        for k in NetworkKind::homogeneous() {
            assert!(k.allows(GateKind::Const));
            assert!(k.allows(GateKind::Input));
        }
    }
}
