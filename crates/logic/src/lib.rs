//! Multi-representation logic networks for the MCH reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`Network`] — an append-only, structurally hashed DAG supporting AND,
//!   XOR and MAJ primitives, covering AIG, XAG, MIG, XMG and mixed networks;
//! * [`TruthTable`] and NPN classification ([`npn_canonical`]);
//! * traversal helpers (fanouts, TFI/TFO, [`mffc`], [`critical_path_nodes`],
//!   topological [`levelize`] grouping);
//! * word-parallel simulation and equivalence checking ([`cec`]);
//! * one-to-one conversion between representations ([`convert`]).
//!
//! # Example
//!
//! ```
//! use mch_logic::{cec, convert, Network, NetworkKind};
//!
//! // Build a 2-bit comparator as an AIG…
//! let mut aig = Network::new(NetworkKind::Aig);
//! let a = aig.add_inputs(2);
//! let b = aig.add_inputs(2);
//! let hi = aig.and(a[1], !b[1]);
//! let eq_hi = aig.xnor(a[1], b[1]);
//! let lo = aig.and(a[0], !b[0]);
//! let lo_win = aig.and(eq_hi, lo);
//! let gt = aig.or(hi, lo_win);
//! aig.add_output(gt);
//!
//! // …and view the very same function as an XMG.
//! let xmg = convert(&aig, NetworkKind::Xmg);
//! assert!(cec(&aig, &xmg).holds());
//! ```

#![warn(missing_docs)]

#[cfg(feature = "fault-injection")]
pub mod failpoint;

mod convert;
mod fingerprint;
mod gate;
mod network;
mod npn;
mod rng;
mod signal;
mod simulate;
mod stats;
mod strash;
mod traversal;
mod truth;

pub use convert::{convert, convert_to_all};
pub use fingerprint::{fingerprint_signal, Fingerprinter};
pub use gate::{GateKind, NetworkKind, Node};
pub use network::Network;
pub use npn::{npn_apply_inverse, npn_canonical, npn_semi_canonical, NpnCanonical, NpnTransform};
pub use rng::Prng;
pub use signal::{NodeId, Signal};
pub use strash::{ClaimLog, ShardedStrash, StrashKey};
pub use simulate::{
    cec, equivalent_exhaustive, equivalent_random, output_truth_tables, simulate, simulate_nodes, Equivalence,
};
pub use stats::NetworkStats;
pub use traversal::{
    critical_path_nodes, levelize, mffc, transitive_fanin, transitive_fanout, Fanouts, Levels,
    Mffc,
};
pub use truth::TruthTable;

/// Mark a named fault-injection site.
///
/// With the `fault-injection` feature enabled in the **invoking** crate the
/// macro calls `failpoint::hit`, which may panic according to the armed
/// schedule; without it the macro expands to nothing, so production builds
/// pay zero cost. Crates hosting failpoints must forward their own
/// `fault-injection` feature to `mch_logic/fault-injection`.
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {{
        #[cfg(feature = "fault-injection")]
        $crate::failpoint::hit($name);
    }};
}
