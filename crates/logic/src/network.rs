//! The central logic-network data structure.
//!
//! A [`Network`] is a directed acyclic graph of [`Node`]s built from the
//! primitives in [`GateKind`]. Nodes are append-only and always created after
//! their fanins, so node-id order is a topological order. Structural hashing
//! removes duplicated gates at construction time and simple Boolean rules
//! (constant propagation, idempotence, complementation) are applied eagerly.

use crate::strash::{ClaimLog, ShardedStrash, Slot, StrashKey};
use crate::{GateKind, NetworkKind, Node, NodeId, Signal};
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel for "reservation not linked yet" in a batch's provisional map.
const UNLINKED: NodeId = NodeId::from_index(u32::MAX as usize);

/// State of an active commit batch (see [`Network::begin_commit_batch`]).
///
/// Only the coordinator thread touches `map` and `deferred`; workers interact
/// with the batch exclusively through the shared [`ShardedStrash`].
#[derive(Debug)]
struct BatchState {
    /// The sharded table workers claim against.
    table: Arc<ShardedStrash>,
    /// Provisional index → final node id (or [`UNLINKED`]).
    map: Vec<NodeId>,
    /// Final keys of nodes created while their bucket held a reservation;
    /// folded into the plain strash when the batch ends.
    deferred: Vec<(StrashKey, NodeId)>,
}

/// Looks a provisional index up in a batch's link map.
fn map_lookup(map: &[NodeId], provisional: u32) -> Option<NodeId> {
    match map.get(provisional as usize) {
        Some(&id) if id != UNLINKED => Some(id),
        _ => None,
    }
}

/// Records `provisional → id` in a batch's link map, growing it on demand.
fn map_record(map: &mut Vec<NodeId>, provisional: u32, id: NodeId) {
    let index = provisional as usize;
    if map.len() <= index {
        map.resize(index + 1, UNLINKED);
    }
    map[index] = id;
}

/// A multi-representation combinational logic network.
///
/// # Example
///
/// ```
/// use mch_logic::{Network, NetworkKind};
///
/// let mut aig = Network::new(NetworkKind::Aig);
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.or(a, b);
/// aig.add_output(f);
/// assert_eq!(aig.gate_count(), 1);
/// assert_eq!(aig.depth(), 1);
/// ```
#[derive(Debug)]
pub struct Network {
    name: String,
    kind: NetworkKind,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<Signal>,
    strash: HashMap<StrashKey, NodeId>,
    batch: Option<BatchState>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        debug_assert!(
            self.batch.is_none(),
            "cloning mid-commit-batch would lose in-flight reservations"
        );
        Network {
            name: self.name.clone(),
            kind: self.kind,
            nodes: self.nodes.clone(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            strash: match &self.batch {
                Some(batch) => batch.table.committed_snapshot(),
                None => self.strash.clone(),
            },
            batch: None,
        }
    }
}

/// Structural equality over name, kind, nodes, inputs and outputs. The
/// strash table is a pure function of the node vector (one canonical key per
/// gate), so it carries no extra information and is not compared.
impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.kind == other.kind
            && self.nodes == other.nodes
            && self.inputs == other.inputs
            && self.outputs == other.outputs
    }
}

impl Eq for Network {}

impl Network {
    /// Creates an empty network of the given representation.
    pub fn new(kind: NetworkKind) -> Self {
        let mut nodes = Vec::with_capacity(64);
        nodes.push(Node::new(GateKind::Const, [Signal::CONST0; 3], 0));
        Network {
            name: String::new(),
            kind,
            nodes,
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
            batch: None,
        }
    }

    /// Creates an empty, named network of the given representation.
    pub fn with_name(kind: NetworkKind, name: impl Into<String>) -> Self {
        let mut n = Network::new(kind);
        n.name = name.into();
        n
    }

    /// The network's name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the network.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The declared logic representation.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    // ------------------------------------------------------------------
    // Structure queries
    // ------------------------------------------------------------------

    /// Total number of nodes, including the constant and the primary inputs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the network contains no gates and no inputs.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.inputs.is_empty()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (AND/XOR/MAJ nodes).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_gate()).count()
    }

    /// Logic depth: the maximum level over all primary outputs.
    pub fn depth(&self) -> u32 {
        self.outputs
            .iter()
            .map(|s| self.level(s.node()))
            .max()
            .unwrap_or(0)
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Logic level of a node.
    pub fn level(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].level()
    }

    /// Fanout count (references from gates and primary outputs).
    pub fn fanout_count(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].fanout_count()
    }

    /// The primary inputs, in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The `i`-th primary input as a signal.
    pub fn input(&self, i: usize) -> Signal {
        self.inputs[i].signal()
    }

    /// The primary outputs, in creation order.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// The `i`-th primary output signal.
    pub fn output(&self, i: usize) -> Signal {
        self.outputs[i]
    }

    /// Iterates over every node id in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over the ids of gate nodes (AND/XOR/MAJ) in topological order.
    pub fn gate_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_gate())
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Returns `true` if `id` refers to a primary input.
    pub fn is_input(&self, id: NodeId) -> bool {
        self.nodes[id.index()].is_input()
    }

    /// Returns `true` if `id` is the constant node.
    pub fn is_const(&self, id: NodeId) -> bool {
        id.is_const()
    }

    /// Returns `true` if `id` refers to a gate node.
    pub fn is_gate(&self, id: NodeId) -> bool {
        self.nodes[id.index()].is_gate()
    }

    /// Per-gate-kind counts `(and, xor, maj)`.
    pub fn gate_profile(&self) -> (usize, usize, usize) {
        let mut and = 0;
        let mut xor = 0;
        let mut maj = 0;
        for n in &self.nodes {
            match n.kind() {
                GateKind::And2 => and += 1,
                GateKind::Xor2 => xor += 1,
                GateKind::Maj3 => maj += 1,
                _ => {}
            }
        }
        (and, xor, maj)
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a primary input and returns its (positive) signal.
    pub fn add_input(&mut self) -> Signal {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node::new(GateKind::Input, [Signal::CONST0; 3], 0));
        self.inputs.push(id);
        id.signal()
    }

    /// Adds `n` primary inputs and returns their signals.
    pub fn add_inputs(&mut self, n: usize) -> Vec<Signal> {
        (0..n).map(|_| self.add_input()).collect()
    }

    /// Declares `signal` as a primary output.
    pub fn add_output(&mut self, signal: Signal) {
        self.nodes[signal.node().index()].bump_fanout();
        self.outputs.push(signal);
    }

    /// Replaces the `i`-th primary output with `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replace_output(&mut self, i: usize, signal: Signal) {
        let old = self.outputs[i];
        self.nodes[old.node().index()].drop_fanout();
        self.nodes[signal.node().index()].bump_fanout();
        self.outputs[i] = signal;
    }

    /// Returns the constant signal of the requested value.
    pub fn constant(&self, value: bool) -> Signal {
        if value {
            Signal::CONST1
        } else {
            Signal::CONST0
        }
    }

    fn push_gate(&mut self, kind: GateKind, fanins: [Signal; 3]) -> Signal {
        if self.batch.is_some() {
            return self.push_gate_batched(kind, fanins);
        }
        if let Some(&id) = self.strash.get(&(kind, fanins)) {
            return id.signal();
        }
        let id = append_node(&mut self.nodes, kind, fanins);
        self.strash.insert((kind, fanins), id);
        id.signal()
    }

    /// The strash probe-or-create while a commit batch is active: probes the
    /// sharded table under one shard lock so concurrent worker claims observe
    /// the bucket transition atomically. Reservations are honoured — a
    /// reserved key resolves through the provisional map, creating the node
    /// here if no claim record was linked yet (the serial creation point).
    fn push_gate_batched(&mut self, kind: GateKind, fanins: [Signal; 3]) -> Signal {
        let Network { nodes, batch, .. } = self;
        let BatchState { table, map, deferred } =
            batch.as_mut().expect("caller checked the batch");
        let mut shard = table.lock_shard(kind, &fanins);
        let id = match shard.entry((kind, fanins)) {
            std::collections::hash_map::Entry::Occupied(e) => match *e.get() {
                Slot::Committed(id) => id,
                Slot::Reserved(p) => match map_lookup(map, p) {
                    Some(id) => id,
                    None => {
                        let id = append_node(nodes, kind, fanins);
                        map_record(map, p, id);
                        deferred.push(((kind, fanins), id));
                        id
                    }
                },
            },
            std::collections::hash_map::Entry::Vacant(v) => {
                let id = append_node(nodes, kind, fanins);
                v.insert(Slot::Committed(id));
                id
            }
        };
        id.signal()
    }

    fn assert_allowed(&self, gate: GateKind) {
        assert!(
            self.kind.allows(gate),
            "gate kind {gate} is not allowed in a {} network",
            self.kind
        );
    }

    /// Creates a raw two-input AND node (after simplification and hashing).
    ///
    /// # Panics
    ///
    /// Panics if the network kind does not allow AND nodes.
    pub fn and2(&mut self, a: Signal, b: Signal) -> Signal {
        // Boolean simplifications that avoid creating a node.
        if a == b {
            return a;
        }
        if a == !b || a.is_const0() || b.is_const0() {
            return Signal::CONST0;
        }
        if a.is_const1() {
            return b;
        }
        if b.is_const1() {
            return a;
        }
        self.assert_allowed(GateKind::And2);
        let (a, b) = if a.literal() <= b.literal() { (a, b) } else { (b, a) };
        self.push_gate(GateKind::And2, [a, b, Signal::CONST0])
    }

    /// Creates a raw two-input XOR node (after simplification and hashing).
    ///
    /// Complemented fanins are normalized onto the output edge.
    ///
    /// # Panics
    ///
    /// Panics if the network kind does not allow XOR nodes.
    pub fn xor2(&mut self, a: Signal, b: Signal) -> Signal {
        if a == b {
            return Signal::CONST0;
        }
        if a == !b {
            return Signal::CONST1;
        }
        if a.is_const0() {
            return b;
        }
        if a.is_const1() {
            return !b;
        }
        if b.is_const0() {
            return a;
        }
        if b.is_const1() {
            return !a;
        }
        self.assert_allowed(GateKind::Xor2);
        let out_compl = a.is_complement() ^ b.is_complement();
        let (a, b) = (a.abs(), b.abs());
        let (a, b) = if a.literal() <= b.literal() { (a, b) } else { (b, a) };
        self.push_gate(GateKind::Xor2, [a, b, Signal::CONST0])
            .xor_complement(out_compl)
    }

    /// Creates a raw three-input majority node (after simplification and hashing).
    ///
    /// The majority's self-duality is used to keep at most one complemented
    /// fanin in the stored node.
    ///
    /// # Panics
    ///
    /// Panics if the network kind does not allow MAJ nodes.
    pub fn maj3(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        // Majority simplification rules.
        if a == b || a == c {
            return a;
        }
        if b == c {
            return b;
        }
        if a == !b {
            return c;
        }
        if a == !c {
            return b;
        }
        if b == !c {
            return a;
        }
        self.assert_allowed(GateKind::Maj3);
        let mut fanins = [a, b, c];
        let complemented = fanins.iter().filter(|s| s.is_complement()).count();
        let out_compl = complemented >= 2;
        if out_compl {
            for f in &mut fanins {
                *f = !*f;
            }
        }
        fanins.sort_by_key(|s| s.literal());
        self.push_gate(GateKind::Maj3, fanins).xor_complement(out_compl)
    }

    // ------------------------------------------------------------------
    // Polymorphic builders (respect the declared representation)
    // ------------------------------------------------------------------

    /// Logical AND using the primitives allowed by the network kind.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        match self.kind {
            NetworkKind::Mig | NetworkKind::Xmg => self.maj3(a, b, Signal::CONST0),
            _ => self.and2(a, b),
        }
    }

    /// Logical OR using the primitives allowed by the network kind.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        match self.kind {
            NetworkKind::Mig | NetworkKind::Xmg => self.maj3(a, b, Signal::CONST1),
            _ => !self.and2(!a, !b),
        }
    }

    /// Logical NAND.
    pub fn nand(&mut self, a: Signal, b: Signal) -> Signal {
        !self.and(a, b)
    }

    /// Logical NOR.
    pub fn nor(&mut self, a: Signal, b: Signal) -> Signal {
        !self.or(a, b)
    }

    /// Logical XOR using the primitives allowed by the network kind.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        match self.kind {
            NetworkKind::Xag | NetworkKind::Xmg | NetworkKind::Mixed => self.xor2(a, b),
            _ => {
                let t = self.and(a, !b);
                let e = self.and(!a, b);
                self.or(t, e)
            }
        }
    }

    /// Logical XNOR.
    pub fn xnor(&mut self, a: Signal, b: Signal) -> Signal {
        !self.xor(a, b)
    }

    /// Three-input majority using the primitives allowed by the network kind.
    pub fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        match self.kind {
            NetworkKind::Mig | NetworkKind::Xmg | NetworkKind::Mixed => self.maj3(a, b, c),
            _ => {
                let ab = self.and(a, b);
                let or_ab = self.or(a, b);
                let c_or = self.and(c, or_ab);
                self.or(ab, c_or)
            }
        }
    }

    /// Multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: Signal, t: Signal, e: Signal) -> Signal {
        match self.kind {
            NetworkKind::Mig | NetworkKind::Xmg => {
                // mux(s, t, e) = maj(and(s, t), !s, e) is 3 nodes; prefer the
                // classical 2-AND/1-OR decomposition expressed with majorities.
                let a = self.and(sel, t);
                let b = self.and(!sel, e);
                self.or(a, b)
            }
            _ => {
                let a = self.and(sel, t);
                let b = self.and(!sel, e);
                self.or(a, b)
            }
        }
    }

    /// If-then-else, an alias for [`Network::mux`].
    pub fn ite(&mut self, cond: Signal, then: Signal, els: Signal) -> Signal {
        self.mux(cond, then, els)
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: Signal, b: Signal) -> (Signal, Signal) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: Signal, b: Signal, cin: Signal) -> (Signal, Signal) {
        let sum_ab = self.xor(a, b);
        let sum = self.xor(sum_ab, cin);
        let carry = self.maj(a, b, cin);
        (sum, carry)
    }

    /// N-ary AND reduction over `signals` (returns constant true when empty).
    pub fn and_reduce(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_balanced(signals, Signal::CONST1, Self::and)
    }

    /// N-ary OR reduction over `signals` (returns constant false when empty).
    pub fn or_reduce(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_balanced(signals, Signal::CONST0, Self::or)
    }

    /// N-ary XOR reduction over `signals` (returns constant false when empty).
    pub fn xor_reduce(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_balanced(signals, Signal::CONST0, Self::xor)
    }

    fn reduce_balanced(
        &mut self,
        signals: &[Signal],
        empty: Signal,
        mut op: impl FnMut(&mut Self, Signal, Signal) -> Signal,
    ) -> Signal {
        match signals.len() {
            0 => empty,
            1 => signals[0],
            _ => {
                let mut layer: Vec<Signal> = signals.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        if pair.len() == 2 {
                            next.push(op(self, pair[0], pair[1]));
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    // ------------------------------------------------------------------
    // Rebuilding
    // ------------------------------------------------------------------

    /// Rebuilds the network keeping only nodes reachable from the outputs.
    ///
    /// Node structure is copied verbatim (no re-decomposition); structural
    /// hashing may still merge duplicated gates. Returns the cleaned network.
    pub fn cleanup(&self) -> Network {
        let mut out = Network::with_name(self.kind, self.name.clone());
        let mut map: Vec<Option<Signal>> = vec![None; self.nodes.len()];
        map[0] = Some(Signal::CONST0);
        for &pi in &self.inputs {
            map[pi.index()] = Some(out.add_input());
        }
        // Mark reachable nodes.
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|s| s.node()).collect();
        while let Some(n) = stack.pop() {
            if reachable[n.index()] {
                continue;
            }
            reachable[n.index()] = true;
            for f in self.nodes[n.index()].fanins() {
                if !reachable[f.node().index()] {
                    stack.push(f.node());
                }
            }
        }
        for id in self.node_ids() {
            if !reachable[id.index()] || !self.nodes[id.index()].is_gate() {
                continue;
            }
            let node = &self.nodes[id.index()];
            let f: Vec<Signal> = node
                .fanins()
                .iter()
                .map(|s| map[s.node().index()].expect("fanin precedes node").xor_complement(s.is_complement()))
                .collect();
            let new = match node.kind() {
                GateKind::And2 => out.and2(f[0], f[1]),
                GateKind::Xor2 => out.xor2(f[0], f[1]),
                GateKind::Maj3 => out.maj3(f[0], f[1], f[2]),
                _ => unreachable!("only gates are copied"),
            };
            map[id.index()] = Some(new);
        }
        for &o in &self.outputs {
            let s = map[o.node().index()].expect("output driver is reachable");
            out.add_output(s.xor_complement(o.is_complement()));
        }
        out
    }

    // ------------------------------------------------------------------
    // Concurrent commit batches (reserve-then-link)
    // ------------------------------------------------------------------

    /// Starts a commit batch: moves the strash into a shared
    /// [`ShardedStrash`] and returns the handle workers claim against.
    ///
    /// While a batch is active, worker threads may concurrently claim gates
    /// through the returned table (producing [`ClaimLog`]s) while this —
    /// coordinator-owned — network keeps working normally: direct builder
    /// calls ([`Network::and2`] …) probe the same table and interoperate
    /// with in-flight reservations, so serial fallback paths stay correct
    /// mid-batch. Node ids are only ever assigned by the coordinator, in
    /// call/link order, which keeps the layout byte-identical to a fully
    /// serial construction.
    ///
    /// # Panics
    ///
    /// Panics if a batch is already active.
    pub fn begin_commit_batch(&mut self) -> Arc<ShardedStrash> {
        assert!(self.batch.is_none(), "commit batch already active");
        let table = Arc::new(ShardedStrash::from_map(std::mem::take(&mut self.strash)));
        let handle = Arc::clone(&table);
        self.batch = Some(BatchState {
            table,
            map: Vec::new(),
            deferred: Vec::new(),
        });
        handle
    }

    /// Returns `true` while a commit batch is active.
    pub fn in_commit_batch(&self) -> bool {
        self.batch.is_some()
    }

    /// Ends the active commit batch: discards unlinked reservations (claims
    /// a budget cap rejected) and folds the committed buckets back into the
    /// plain serial strash. The final table is exactly the one a serial
    /// construction of the same nodes would hold.
    ///
    /// # Panics
    ///
    /// Panics if no batch is active.
    pub fn end_commit_batch(&mut self) {
        let batch = self.batch.take().expect("no active commit batch");
        self.strash = batch.table.drain_committed();
        for (key, id) in batch.deferred {
            self.strash.insert(key, id);
        }
    }

    /// Links one claim log into the network, in record order (the coordinator
    /// half of the reserve-then-link protocol).
    ///
    /// The first record naming a reservation creates its node — at the id the
    /// serial walk would have assigned — after remapping provisional fanins
    /// to final ids and re-sorting on final literals; later records (from any
    /// log) resolve onto it. Logs must be linked in serial emission order.
    ///
    /// # Panics
    ///
    /// Panics if no batch is active, or if a record references a provisional
    /// fanin that no earlier record created (impossible for logs produced by
    /// claim emission and linked in order).
    pub fn link_claims(&mut self, log: &ClaimLog) {
        for rec in &log.records {
            crate::failpoint!("strash::link");
            let Network { kind, nodes, batch, .. } = self;
            let BatchState { table, map, deferred } =
                batch.as_mut().expect("link_claims requires an active batch");
            if map_lookup(map, rec.provisional).is_some() {
                continue; // an earlier log already materialised this node
            }
            debug_assert!(kind.allows(rec.kind));
            let arity = rec.kind.arity();
            let mut fanins = rec.fanins;
            for f in &mut fanins[..arity] {
                if ShardedStrash::is_provisional(*f) {
                    let id = map_lookup(map, ShardedStrash::provisional_index(*f))
                        .expect("claim fanins link before their dependents");
                    *f = id.signal().xor_complement(f.is_complement());
                }
            }
            fanins[..arity].sort_by_key(|s| s.literal());
            let mut shard = table.lock_shard(rec.kind, &fanins);
            let id = match shard.entry((rec.kind, fanins)) {
                std::collections::hash_map::Entry::Occupied(e) => match *e.get() {
                    Slot::Committed(id) => id,
                    Slot::Reserved(q) => match map_lookup(map, q) {
                        Some(id) => id,
                        None => {
                            // The bucket keeps its reservation (claims in
                            // flight must observe a stable representation);
                            // the final key is folded in at batch end.
                            let id = append_node(nodes, rec.kind, fanins);
                            map_record(map, q, id);
                            deferred.push(((rec.kind, fanins), id));
                            id
                        }
                    },
                },
                std::collections::hash_map::Entry::Vacant(v) => {
                    let id = append_node(nodes, rec.kind, fanins);
                    v.insert(Slot::Committed(id));
                    id
                }
            };
            drop(shard);
            map_record(map, rec.provisional, id);
        }
    }

    /// Resolves a claim-emission result to a final signal: provisional
    /// results map through the batch's link table (their log must have been
    /// linked), concrete signals pass through unchanged.
    ///
    /// # Panics
    ///
    /// Panics on a provisional signal when no batch is active or its
    /// reservation was never linked.
    pub fn resolve_claim(&self, signal: Signal) -> Signal {
        if !ShardedStrash::is_provisional(signal) {
            return signal;
        }
        let batch = self.batch.as_ref().expect("no active commit batch");
        let id = map_lookup(&batch.map, ShardedStrash::provisional_index(signal))
            .expect("claim must be linked before resolution");
        id.signal().xor_complement(signal.is_complement())
    }
}

/// Appends a node (level computation + fanout bumps), without touching any
/// strash. Shared by the serial and batched gate-creation paths.
fn append_node(nodes: &mut Vec<Node>, kind: GateKind, fanins: [Signal; 3]) -> NodeId {
    let level = 1 + fanins[..kind.arity()]
        .iter()
        .map(|s| nodes[s.node().index()].level())
        .max()
        .unwrap_or(0);
    let id = NodeId::from_index(nodes.len());
    nodes.push(Node::new(kind, fanins, level));
    for s in &fanins[..kind.arity()] {
        nodes[s.node().index()].bump_fanout();
    }
    id
}

impl Default for Network {
    fn default() -> Self {
        Network::new(NetworkKind::Aig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_hashing_merges_duplicates() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let x = n.and2(a, b);
        let y = n.and2(b, a);
        assert_eq!(x, y);
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn and_simplifications() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        assert_eq!(n.and2(a, a), a);
        assert_eq!(n.and2(a, !a), Signal::CONST0);
        assert_eq!(n.and2(a, Signal::CONST1), a);
        assert_eq!(n.and2(a, Signal::CONST0), Signal::CONST0);
        assert_eq!(n.gate_count(), 0);
    }

    #[test]
    fn xor_normalizes_complements() {
        let mut n = Network::new(NetworkKind::Xag);
        let a = n.add_input();
        let b = n.add_input();
        let x = n.xor2(a, b);
        let y = n.xor2(!a, b);
        assert_eq!(x, !y);
        assert_eq!(n.gate_count(), 1);
        assert_eq!(n.xor2(a, a), Signal::CONST0);
        assert_eq!(n.xor2(a, !a), Signal::CONST1);
        assert_eq!(n.xor2(a, Signal::CONST1), !a);
    }

    #[test]
    fn maj_simplifications_and_duality() {
        let mut n = Network::new(NetworkKind::Mig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        assert_eq!(n.maj3(a, a, c), a);
        assert_eq!(n.maj3(a, !a, c), c);
        let m = n.maj3(a, b, c);
        let dual = n.maj3(!a, !b, !c);
        assert_eq!(dual, !m);
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn mig_uses_majorities_for_and_or() {
        let mut n = Network::new(NetworkKind::Mig);
        let a = n.add_input();
        let b = n.add_input();
        let f = n.and(a, b);
        let g = n.or(a, b);
        n.add_output(f);
        n.add_output(g);
        let (and, xor, maj) = n.gate_profile();
        assert_eq!((and, xor), (0, 0));
        assert_eq!(maj, 2);
    }

    #[test]
    #[should_panic(expected = "not allowed")]
    fn aig_rejects_raw_xor() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let _ = n.xor2(a, b);
    }

    #[test]
    fn aig_xor_decomposes_into_ands() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let x = n.xor(a, b);
        n.add_output(x);
        let (and, xor, maj) = n.gate_profile();
        assert_eq!(xor, 0);
        assert_eq!(maj, 0);
        assert_eq!(and, 3);
        assert_eq!(n.depth(), 2);
    }

    #[test]
    fn levels_and_depth() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let ab = n.and2(a, b);
        let abc = n.and2(ab, c);
        n.add_output(abc);
        assert_eq!(n.level(ab.node()), 1);
        assert_eq!(n.level(abc.node()), 2);
        assert_eq!(n.depth(), 2);
    }

    #[test]
    fn fanout_counting() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let ab = n.and2(a, b);
        let ac = n.and2(ab, c);
        n.add_output(ab);
        n.add_output(ac);
        assert_eq!(n.fanout_count(ab.node()), 2);
        assert_eq!(n.fanout_count(a.node()), 1);
        n.replace_output(0, ac);
        assert_eq!(n.fanout_count(ab.node()), 1);
    }

    #[test]
    fn cleanup_removes_dangling_gates() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let used = n.and2(a, b);
        let _unused = n.and2(a, !b);
        n.add_output(used);
        assert_eq!(n.gate_count(), 2);
        let clean = n.cleanup();
        assert_eq!(clean.gate_count(), 1);
        assert_eq!(clean.input_count(), 2);
        assert_eq!(clean.output_count(), 1);
    }

    #[test]
    fn reductions_are_balanced() {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(8);
        let all = n.and_reduce(&xs);
        n.add_output(all);
        assert_eq!(n.depth(), 3);
        assert_eq!(n.gate_count(), 7);
    }

    #[test]
    fn full_adder_counts() {
        let mut n = Network::new(NetworkKind::Xmg);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let (s, co) = n.full_adder(a, b, c);
        n.add_output(s);
        n.add_output(co);
        let (_, xor, maj) = n.gate_profile();
        assert_eq!(xor, 2);
        assert_eq!(maj, 1);
    }
}
