//! NPN classification of small Boolean functions.
//!
//! Two functions belong to the same NPN class when one can be obtained from
//! the other by Negating inputs, Permuting inputs and/or Negating the output.
//! The MCH resynthesis strategies use the canonical representative as the key
//! of their candidate-structure caches so that every function of a class is
//! synthesised only once.

use crate::TruthTable;

/// The transformation that maps a function onto its NPN canonical form.
///
/// Applying `perm`, then `input_neg`, then `output_neg` to the original
/// function yields the canonical function (see [`TruthTable::transform`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NpnTransform {
    /// New variable `i` reads old variable `perm[i]`.
    pub perm: Vec<usize>,
    /// Bit `i` set means canonical input `i` is the complement of the source.
    pub input_neg: u32,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transformation over `num_vars` variables.
    pub fn identity(num_vars: usize) -> Self {
        NpnTransform {
            perm: (0..num_vars).collect(),
            input_neg: 0,
            output_neg: false,
        }
    }
}

/// Result of canonicalising a function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NpnCanonical {
    /// The canonical representative of the NPN class.
    pub representative: TruthTable,
    /// The transformation such that `function.transform(...) == representative`.
    pub transform: NpnTransform,
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            rec(items, k + 1, out);
            items.swap(k, i);
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    rec(&mut items, 0, &mut out);
    out
}

/// Computes the exact NPN canonical form of a function with at most five
/// variables by exhaustive search over all transformations.
///
/// The canonical representative is the lexicographically smallest truth table
/// reachable within the NPN class.
///
/// # Panics
///
/// Panics if the function has more than five variables (the search space grows
/// as `2 * n! * 2^n`; use [`npn_semi_canonical`] for larger functions).
pub fn npn_canonical(function: &TruthTable) -> NpnCanonical {
    let n = function.num_vars();
    assert!(n <= 5, "exact NPN canonicalisation supports at most 5 variables");
    let mut best: Option<NpnCanonical> = None;
    for perm in permutations(n) {
        for input_neg in 0..(1u32 << n) {
            for output_neg in [false, true] {
                let candidate = function.transform(&perm, input_neg, output_neg);
                let better = match &best {
                    None => true,
                    Some(b) => candidate < b.representative,
                };
                if better {
                    best = Some(NpnCanonical {
                        representative: candidate,
                        transform: NpnTransform {
                            perm: perm.clone(),
                            input_neg,
                            output_neg,
                        },
                    });
                }
            }
        }
    }
    best.expect("at least the identity transformation was evaluated")
}

/// Computes a semi-canonical NPN form for functions of any supported size.
///
/// The result is canonical only with respect to output polarity and a
/// cofactor-count-based variable ordering heuristic, which is sufficient for
/// use as a cache key (functions in the same semi-canonical bucket are later
/// verified explicitly).
pub fn npn_semi_canonical(function: &TruthTable) -> NpnCanonical {
    let n = function.num_vars();
    if n <= 5 {
        return npn_canonical(function);
    }
    // Output polarity: make the off-set at least as large as the on-set.
    let ones = function.count_ones() as usize;
    let output_neg = ones > function.num_bits() / 2;
    let mut t = if output_neg { function.not() } else { function.clone() };
    // Input polarity: prefer the polarity whose positive cofactor has fewer ones.
    let mut input_neg_original = 0u32;
    for v in 0..n {
        let c1 = t.cofactor1(v).count_ones();
        let c0 = t.cofactor0(v).count_ones();
        if c1 > c0 {
            input_neg_original |= 1 << v;
            t = t.flip_var(v);
        }
    }
    // Variable order: sort by (cofactor-one count, index) for stability.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (t.cofactor1(v).count_ones(), v));
    // Express the result through `TruthTable::transform` semantics (permute,
    // then flip variables *in the permuted domain*, then complement the
    // output), so that `function.transform(perm, input_neg, output_neg)`
    // reproduces the representative exactly.
    let mut input_neg = 0u32;
    for (new_var, &old_var) in order.iter().enumerate() {
        if input_neg_original & (1 << old_var) != 0 {
            input_neg |= 1 << new_var;
        }
    }
    let transform = NpnTransform {
        perm: order,
        input_neg,
        output_neg,
    };
    let representative = function.transform(&transform.perm, transform.input_neg, transform.output_neg);
    NpnCanonical {
        representative,
        transform,
    }
}

/// Applies the inverse of `transform` to `table`.
///
/// If `canonical = function.transform(perm, neg, out)`, then
/// `npn_apply_inverse(&canonical, &transform) == function`.
pub fn npn_apply_inverse(table: &TruthTable, transform: &NpnTransform) -> TruthTable {
    let n = table.num_vars();
    let mut t = if transform.output_neg { table.not() } else { table.clone() };
    for v in 0..n {
        if transform.input_neg & (1 << v) != 0 {
            t = t.flip_var(v);
        }
    }
    // Invert the permutation: canonical var i reads original var perm[i], so the
    // original var perm[i] must read canonical var i.
    let mut inverse = vec![0usize; n];
    for (i, &p) in transform.perm.iter().enumerate() {
        inverse[p] = i;
    }
    t.permute(&inverse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_class_members_share_representative() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let and = a.and(&b);
        let or = a.or(&b);
        let nand = and.not();
        let r1 = npn_canonical(&and).representative;
        let r2 = npn_canonical(&or).representative;
        let r3 = npn_canonical(&nand).representative;
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
    }

    #[test]
    fn xor_is_in_its_own_class() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let xor = a.xor(&b);
        let and = a.and(&b);
        assert_ne!(
            npn_canonical(&xor).representative,
            npn_canonical(&and).representative
        );
        assert_eq!(
            npn_canonical(&xor).representative,
            npn_canonical(&xor.not()).representative
        );
    }

    #[test]
    fn transform_reproduces_representative() {
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 2);
        let d = TruthTable::var(4, 3);
        let f = a.and(&b).or(&c.xor(&d));
        let canon = npn_canonical(&f);
        let redone = f.transform(
            &canon.transform.perm,
            canon.transform.input_neg,
            canon.transform.output_neg,
        );
        assert_eq!(redone, canon.representative);
    }

    #[test]
    fn inverse_round_trips() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = TruthTable::maj(&a, &b, &c).xor(&a);
        let canon = npn_canonical(&f);
        let back = npn_apply_inverse(&canon.representative, &canon.transform);
        assert_eq!(back, f);
    }

    #[test]
    fn count_of_two_var_npn_classes() {
        // There are exactly 4 NPN classes of 2-variable functions:
        // constants, single variable, AND-like, XOR-like.
        let mut reps = std::collections::HashSet::new();
        for bits in 0..16u64 {
            let f = TruthTable::from_u64(2, bits);
            reps.insert(npn_canonical(&f).representative);
        }
        assert_eq!(reps.len(), 4);
    }

    #[test]
    fn semi_canonical_consistent_for_equal_functions() {
        let a = TruthTable::var(7, 0);
        let b = TruthTable::var(7, 5);
        let f = a.and(&b);
        let g = b.and(&a);
        assert_eq!(
            npn_semi_canonical(&f).representative,
            npn_semi_canonical(&g).representative
        );
    }

    #[test]
    fn semi_canonical_transform_invariant_holds() {
        // The representative must equal function.transform(perm, neg, out) and
        // the inverse must round-trip, including for functions above the
        // exact-canonicalisation limit (> 5 variables).
        for seed in 0..20u64 {
            let n = 6 + (seed as usize % 3);
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(3);
            let mut f = TruthTable::zeros(n);
            for i in 0..f.num_bits() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                f.set_bit(i, state & 1 == 1);
            }
            let canon = npn_semi_canonical(&f);
            let redone = f.transform(
                &canon.transform.perm,
                canon.transform.input_neg,
                canon.transform.output_neg,
            );
            assert_eq!(redone, canon.representative, "seed {seed}");
            let back = npn_apply_inverse(&canon.representative, &canon.transform);
            assert_eq!(back, f, "inverse round-trip, seed {seed}");
        }
    }
}
