//! A small, deterministic pseudo-random number generator.
//!
//! The workspace is intentionally dependency-free, so the few places that
//! need randomness (random benchmark generation, simulation patterns,
//! signature-based equivalence detection) share this xoshiro256** generator
//! seeded through splitmix64. It is *not* cryptographically secure; it only
//! needs to be fast, well distributed and fully reproducible from a `u64`
//! seed.

/// A seeded xoshiro256** pseudo-random number generator.
///
/// # Example
///
/// ```
/// use mch_logic::Prng;
///
/// let mut a = Prng::seed_from_u64(42);
/// let mut b = Prng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.gen_range(0..10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Prng {
    state: [u64; 4],
}

impl Prng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with splitmix64 so that similar seeds produce
        // unrelated initial states.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Prng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut n = [s0, s1, s2, s3];
        n[2] ^= n[0];
        n[3] ^= n[1];
        n[1] ^= n[2];
        n[0] ^= n[3];
        n[2] ^= t;
        n[3] = n[3].rotate_left(45);
        self.state = n;
        result
    }

    /// A uniformly distributed value in `range` (which must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range requires a non-empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small spans used here (< 2^32).
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn bool_probability_roughly_matches() {
        let mut rng = Prng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
