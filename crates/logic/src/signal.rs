//! Node identifiers and complemented edges ("signals").
//!
//! The representation follows the AIGER / ABC literal convention: a [`Signal`]
//! packs a [`NodeId`] together with a complementation bit in a single `u32`,
//! so edges of the directed acyclic graph are cheap to copy and compare.

use std::fmt;

/// Index of a node inside a [`crate::Network`].
///
/// Node `0` is always the constant-false node; primary inputs and gates follow
/// in creation order. Because gates are only ever appended after their fanins,
/// ascending node-id order is a valid topological order.
///
/// # Example
///
/// ```
/// use mch_logic::NodeId;
/// let n = NodeId::from_index(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-false node present in every network.
    pub const CONST0: NodeId = NodeId(0);

    /// Creates a node id from a raw index.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the constant-false node.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 == 0
    }

    /// Returns the positive-polarity signal pointing at this node.
    #[inline]
    pub fn signal(self) -> Signal {
        Signal::new(self, false)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A possibly-complemented edge pointing at a node.
///
/// Internally encoded as `node_index << 1 | complement`, mirroring the AIGER
/// literal encoding. [`Signal::CONST0`] and [`Signal::CONST1`] are the two
/// polarities of node 0.
///
/// # Example
///
/// ```
/// use mch_logic::{NodeId, Signal};
/// let s = Signal::new(NodeId::from_index(5), true);
/// assert_eq!(s.node().index(), 5);
/// assert!(s.is_complement());
/// assert_eq!((!s).node().index(), 5);
/// assert!(!(!s).is_complement());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Signal(u32);

impl Signal {
    /// The constant-false signal.
    pub const CONST0: Signal = Signal(0);
    /// The constant-true signal.
    pub const CONST1: Signal = Signal(1);

    /// Creates a signal from a node and a complement flag.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Self {
        Signal(node.0 << 1 | complement as u32)
    }

    /// Creates a signal from its raw literal encoding (`index * 2 + compl`).
    #[inline]
    pub fn from_literal(literal: u32) -> Self {
        Signal(literal)
    }

    /// Returns the raw literal encoding.
    #[inline]
    pub fn literal(self) -> u32 {
        self.0
    }

    /// Returns the node this signal points at.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Returns `true` if the edge is complemented.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the same signal with the complement bit cleared.
    #[inline]
    pub fn abs(self) -> Signal {
        Signal(self.0 & !1)
    }

    /// Returns this signal complemented iff `complement` is true.
    #[inline]
    pub fn xor_complement(self, complement: bool) -> Signal {
        Signal(self.0 ^ complement as u32)
    }

    /// Returns `true` if this signal is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node().is_const()
    }

    /// Returns `true` if this is exactly the constant-false signal.
    #[inline]
    pub fn is_const0(self) -> bool {
        self == Signal::CONST0
    }

    /// Returns `true` if this is exactly the constant-true signal.
    #[inline]
    pub fn is_const1(self) -> bool {
        self == Signal::CONST1
    }
}

impl std::ops::Not for Signal {
    type Output = Signal;

    #[inline]
    fn not(self) -> Signal {
        Signal(self.0 ^ 1)
    }
}

impl From<NodeId> for Signal {
    fn from(node: NodeId) -> Signal {
        node.signal()
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!{}", self.node())
        } else {
            write!(f, "{}", self.node())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_node_zero() {
        assert_eq!(Signal::CONST0.node(), NodeId::CONST0);
        assert_eq!(Signal::CONST1.node(), NodeId::CONST0);
        assert!(!Signal::CONST0.is_complement());
        assert!(Signal::CONST1.is_complement());
        assert!(Signal::CONST0.is_const0());
        assert!(Signal::CONST1.is_const1());
    }

    #[test]
    fn complement_round_trip() {
        let s = Signal::new(NodeId::from_index(7), false);
        assert_eq!(!!s, s);
        assert_ne!(!s, s);
        assert_eq!((!s).abs(), s.abs());
    }

    #[test]
    fn literal_encoding_matches_aiger() {
        let s = Signal::new(NodeId::from_index(4), true);
        assert_eq!(s.literal(), 9);
        assert_eq!(Signal::from_literal(9), s);
    }

    #[test]
    fn xor_complement_flag() {
        let s = Signal::new(NodeId::from_index(2), false);
        assert_eq!(s.xor_complement(true), !s);
        assert_eq!(s.xor_complement(false), s);
    }

    #[test]
    fn display_formats() {
        let s = Signal::new(NodeId::from_index(3), true);
        assert_eq!(format!("{s}"), "!n3");
        assert_eq!(format!("{}", !s), "n3");
    }
}
