//! Bit-parallel simulation and combinational equivalence checking.
//!
//! This module is the reproduction's stand-in for ABC's `cec` command: small
//! networks are checked exhaustively, larger ones with high-volume randomized
//! simulation (see `DESIGN.md`, substitution table).

use crate::{GateKind, Network, TruthTable};
use crate::rng::Prng;

/// Outcome of an equivalence check.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Equivalence {
    /// The networks were proven equivalent by exhaustive simulation.
    Equivalent,
    /// No mismatch was found by randomized simulation (not a proof).
    ProbablyEquivalent,
    /// A counterexample distinguishing the networks was found.
    NotEquivalent,
    /// The interfaces differ (input or output counts do not match).
    InterfaceMismatch,
}

impl Equivalence {
    /// `true` for [`Equivalence::Equivalent`] and
    /// [`Equivalence::ProbablyEquivalent`].
    pub fn holds(self) -> bool {
        matches!(self, Equivalence::Equivalent | Equivalence::ProbablyEquivalent)
    }
}

/// Simulates the network on word-parallel input patterns and returns the
/// value words of **every node** (indexed by node id).
///
/// `patterns[i]` holds the stimulus words of primary input `i`; all inputs
/// must have the same number of words. Node values are in positive polarity;
/// complemented output edges are *not* applied (use [`simulate`] for that).
///
/// # Panics
///
/// Panics if the number of pattern rows differs from the input count or the
/// rows have inconsistent lengths.
pub fn simulate_nodes(network: &Network, patterns: &[Vec<u64>]) -> Vec<Vec<u64>> {
    assert_eq!(
        patterns.len(),
        network.input_count(),
        "one pattern row per primary input required"
    );
    // A zero-input network has no pattern rows but its constants still need
    // one word of stimulus; otherwise every node value collapses to an empty
    // vector and downstream truth-table reconstruction has nothing to read.
    let words = patterns.first().map_or(1, Vec::len);
    for row in patterns {
        assert_eq!(row.len(), words, "inconsistent pattern widths");
    }
    let mut values: Vec<Vec<u64>> = vec![vec![0; words]; network.len()];
    for (i, &pi) in network.inputs().iter().enumerate() {
        values[pi.index()] = patterns[i].clone();
    }
    for id in network.gate_ids() {
        let node = network.node(id);
        let read = |sig: crate::Signal, w: usize, values: &Vec<Vec<u64>>| -> u64 {
            let v = values[sig.node().index()][w];
            if sig.is_complement() {
                !v
            } else {
                v
            }
        };
        let fanins = node.fanins().to_vec();
        let mut out = vec![0u64; words];
        for (w, slot) in out.iter_mut().enumerate() {
            *slot = match node.kind() {
                GateKind::And2 => read(fanins[0], w, &values) & read(fanins[1], w, &values),
                GateKind::Xor2 => read(fanins[0], w, &values) ^ read(fanins[1], w, &values),
                GateKind::Maj3 => {
                    let a = read(fanins[0], w, &values);
                    let b = read(fanins[1], w, &values);
                    let c = read(fanins[2], w, &values);
                    (a & b) | (a & c) | (b & c)
                }
                _ => unreachable!("gate_ids yields only gates"),
            };
        }
        values[id.index()] = out;
    }
    values
}

/// Simulates the network on word-parallel input patterns.
///
/// `patterns[i]` holds the stimulus words of primary input `i`; all inputs
/// must have the same number of words. Returns one vector of words per
/// primary output (complemented output edges are applied).
///
/// # Panics
///
/// Panics if the number of pattern rows differs from the input count or the
/// rows have inconsistent lengths.
pub fn simulate(network: &Network, patterns: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let values = simulate_nodes(network, patterns);
    let words = patterns.first().map_or(1, Vec::len);
    network
        .outputs()
        .iter()
        .map(|out| {
            (0..words)
                .map(|w| {
                    let v = values[out.node().index()][w];
                    if out.is_complement() {
                        !v
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect()
}

/// Computes the complete truth table of every primary output.
///
/// # Panics
///
/// Panics if the network has more than 16 primary inputs.
pub fn output_truth_tables(network: &Network) -> Vec<TruthTable> {
    let n = network.input_count();
    assert!(n <= 16, "exhaustive truth tables limited to 16 inputs");
    let patterns: Vec<Vec<u64>> = (0..n)
        .map(|i| TruthTable::var(n.max(6), i).words().to_vec())
        .collect();
    let outputs = simulate(network, &patterns);
    outputs
        .into_iter()
        .map(|words| {
            let full = TruthTable::from_words(n.max(6), words);
            if n >= 6 {
                full
            } else {
                // Shrink the 6-variable simulation down to the real input count.
                let mut t = TruthTable::zeros(n);
                for i in 0..t.num_bits() {
                    t.set_bit(i, full.bit(i));
                }
                t
            }
        })
        .collect()
}

/// Checks equivalence by exhaustive simulation (up to 16 inputs).
pub fn equivalent_exhaustive(a: &Network, b: &Network) -> Equivalence {
    if a.input_count() != b.input_count() || a.output_count() != b.output_count() {
        return Equivalence::InterfaceMismatch;
    }
    if output_truth_tables(a) == output_truth_tables(b) {
        Equivalence::Equivalent
    } else {
        Equivalence::NotEquivalent
    }
}

/// Checks equivalence with `words * 64` random input patterns.
pub fn equivalent_random(a: &Network, b: &Network, words: usize, seed: u64) -> Equivalence {
    if a.input_count() != b.input_count() || a.output_count() != b.output_count() {
        return Equivalence::InterfaceMismatch;
    }
    let mut rng = Prng::seed_from_u64(seed);
    let patterns: Vec<Vec<u64>> = (0..a.input_count())
        .map(|_| (0..words).map(|_| rng.next_u64()).collect())
        .collect();
    let ra = simulate(a, &patterns);
    let rb = simulate(b, &patterns);
    if ra == rb {
        Equivalence::ProbablyEquivalent
    } else {
        Equivalence::NotEquivalent
    }
}

/// Combinational equivalence check: exhaustive when the interface is small
/// enough, randomized otherwise.
///
/// This is the check applied after every transformation in the experiment
/// harness (the paper uses ABC's `cec`).
pub fn cec(a: &Network, b: &Network) -> Equivalence {
    if a.input_count() != b.input_count() || a.output_count() != b.output_count() {
        return Equivalence::InterfaceMismatch;
    }
    if a.input_count() <= 14 {
        equivalent_exhaustive(a, b)
    } else {
        equivalent_random(a, b, 64, 0xC0FFEE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NetworkKind};

    fn xor_aig() -> Network {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let x = n.xor(a, b);
        n.add_output(x);
        n
    }

    fn xor_xag() -> Network {
        let mut n = Network::new(NetworkKind::Xag);
        let a = n.add_input();
        let b = n.add_input();
        let x = n.xor2(a, b);
        n.add_output(x);
        n
    }

    #[test]
    fn simulation_computes_xor() {
        let n = xor_aig();
        let out = simulate(&n, &[vec![0b1100], vec![0b1010]]);
        assert_eq!(out[0][0] & 0xF, 0b0110);
    }

    #[test]
    fn truth_tables_of_outputs() {
        let n = xor_aig();
        let tts = output_truth_tables(&n);
        assert_eq!(tts.len(), 1);
        assert_eq!(tts[0].as_u64(), 0x6);
    }

    #[test]
    fn equivalent_across_representations() {
        assert_eq!(equivalent_exhaustive(&xor_aig(), &xor_xag()), Equivalence::Equivalent);
        assert!(cec(&xor_aig(), &xor_xag()).holds());
    }

    #[test]
    fn detects_non_equivalence() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let x = n.and2(a, b);
        n.add_output(x);
        assert_eq!(cec(&xor_aig(), &n), Equivalence::NotEquivalent);
        assert_eq!(
            equivalent_random(&xor_aig(), &n, 4, 1),
            Equivalence::NotEquivalent
        );
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        n.add_output(a);
        assert_eq!(cec(&xor_aig(), &n), Equivalence::InterfaceMismatch);
    }

    #[test]
    fn majority_network_simulates_correctly() {
        let mut n = Network::new(NetworkKind::Mig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let m = n.maj3(a, b, c);
        n.add_output(m);
        let tts = output_truth_tables(&n);
        assert_eq!(tts[0].as_u64(), 0xE8);
    }

    #[test]
    fn zero_input_networks_simulate_their_constants() {
        let mut n = Network::new(NetworkKind::Aig);
        n.add_output(n.constant(true));
        n.add_output(n.constant(false));
        let tts = output_truth_tables(&n);
        assert_eq!(tts.len(), 2);
        assert_eq!(tts[0], TruthTable::constant(0, true));
        assert_eq!(tts[1], TruthTable::constant(0, false));
        assert_eq!(cec(&n, &n.clone()), Equivalence::Equivalent);

        let mut flipped = Network::new(NetworkKind::Aig);
        flipped.add_output(flipped.constant(false));
        flipped.add_output(flipped.constant(true));
        assert_eq!(cec(&n, &flipped), Equivalence::NotEquivalent);
    }

    #[test]
    fn complemented_outputs_are_honoured() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let x = n.and2(a, b);
        n.add_output(!x);
        let tts = output_truth_tables(&n);
        assert_eq!(tts[0].as_u64(), 0x7);
    }
}
