//! Compact summaries of networks for reporting.

use crate::{Network, NetworkKind};
use std::fmt;

/// A summary of a network's size and shape.
///
/// # Example
///
/// ```
/// use mch_logic::{Network, NetworkKind, NetworkStats};
///
/// let mut n = Network::with_name(NetworkKind::Aig, "demo");
/// let a = n.add_input();
/// let b = n.add_input();
/// let f = n.and2(a, b);
/// n.add_output(f);
/// let stats = NetworkStats::of(&n);
/// assert_eq!(stats.gates, 1);
/// assert_eq!(stats.depth, 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetworkStats {
    /// Network name.
    pub name: String,
    /// Declared representation.
    pub kind: NetworkKind,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of logic gates.
    pub gates: usize,
    /// Logic depth.
    pub depth: u32,
    /// Number of AND nodes.
    pub and_gates: usize,
    /// Number of XOR nodes.
    pub xor_gates: usize,
    /// Number of MAJ nodes.
    pub maj_gates: usize,
}

impl NetworkStats {
    /// Gathers the statistics of `network`.
    pub fn of(network: &Network) -> Self {
        let (and_gates, xor_gates, maj_gates) = network.gate_profile();
        NetworkStats {
            name: network.name().to_string(),
            kind: network.kind(),
            inputs: network.input_count(),
            outputs: network.output_count(),
            gates: network.gate_count(),
            depth: network.depth(),
            and_gates,
            xor_gates,
            maj_gates,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: i/o = {}/{}, gates = {} (and {}, xor {}, maj {}), depth = {}",
            if self.name.is_empty() { "<unnamed>" } else { &self.name },
            self.kind,
            self.inputs,
            self.outputs,
            self.gates,
            self.and_gates,
            self.xor_gates,
            self.maj_gates,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NetworkKind};

    #[test]
    fn stats_count_gate_kinds() {
        let mut n = Network::with_name(NetworkKind::Xmg, "t");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let x = n.xor2(a, b);
        let m = n.maj3(a, b, c);
        let y = n.xor2(x, m);
        n.add_output(y);
        let s = NetworkStats::of(&n);
        assert_eq!(s.gates, 3);
        assert_eq!(s.xor_gates, 2);
        assert_eq!(s.maj_gates, 1);
        assert_eq!(s.and_gates, 0);
        assert_eq!(s.depth, 2);
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 1);
    }

    #[test]
    fn display_contains_name_and_kind() {
        let n = Network::with_name(NetworkKind::Aig, "adder");
        let text = NetworkStats::of(&n).to_string();
        assert!(text.contains("adder"));
        assert!(text.contains("AIG"));
    }
}
