//! Lock-striped concurrent structural hashing for parallel choice commit.
//!
//! The serial [`Network`](crate::Network) deduplicates gates through a single
//! `HashMap<(GateKind, [Signal; 3]), NodeId>` — a shared-state walk that
//! forces every gate emission through one thread. [`ShardedStrash`] shards
//! that table into lock-striped buckets so many workers can *claim* gates
//! concurrently while a coordinator *links* them into the node vector in a
//! fixed serial order.
//!
//! # The reserve-then-link protocol
//!
//! A commit batch proceeds in two passes:
//!
//! 1. **Claim (workers, concurrent).** A worker emits a candidate cone by
//!    replaying its gates through [`ShardedStrash::claim_and2`] /
//!    [`claim_xor2`](ShardedStrash::claim_xor2) /
//!    [`claim_maj3`](ShardedStrash::claim_maj3). Each claim locks exactly one
//!    shard, applies the same Boolean folds as the serial builders and either
//!    hits a committed node, joins an existing *reservation*, or reserves a
//!    fresh **provisional id** from an atomic cursor. Every provisional
//!    outcome appends a [`ClaimLog`] record so that *any* log containing the
//!    reservation can later materialise the node.
//! 2. **Link (coordinator, serial order).** The coordinator replays claim
//!    logs in exactly the order the serial construction would have emitted
//!    them (`Network::link_claims`). The first record touching a reservation
//!    creates the node — at precisely the node id the serial walk would have
//!    assigned — and every later record resolves to it.
//!
//! # Why the output stays canonical
//!
//! * A bucket entry makes at most **one transition** per batch
//!   (vacant → reserved, or vacant → committed): reservations are never
//!   overwritten while the batch runs. Every claimant of a key therefore
//!   observes the *same* representation for the life of the batch, so the
//!   equality and complement checks inside the Boolean folds decide exactly
//!   as the serial builders would on the final signals.
//! * Claim keys are canonicalized by sorting fanins on their (provisional or
//!   concrete) literals, which is representation-consistent within a batch;
//!   the link pass re-sorts on **final** literals before storing the node, so
//!   the stored fanin order is byte-identical to the serial layout.
//! * Node ids are assigned only by the link pass, in serial emission order,
//!   so the committed node vector — ids, fanin order, levels, fanout counts —
//!   matches the serial build byte for byte at every thread count.
//!
//! Provisional ids never escape a batch: they live above
//! [`ShardedStrash::PROVISIONAL_BASE`] in the node-index space and are
//! resolved (or discarded, for candidates a budget cap rejected) before
//! `Network::end_commit_batch` folds the surviving buckets back into the
//! plain serial table.

use crate::{GateKind, NodeId, Signal};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The canonical structural-hash key: a gate kind plus its normalized fanins
/// (unused fanin slots padded with constant-false).
pub type StrashKey = (GateKind, [Signal; 3]);

/// A bucket entry: either a node that exists in the network, or a
/// reservation that the link pass has yet to materialise.
#[derive(Copy, Clone, Debug)]
pub(crate) enum Slot {
    /// The key resolved to a real node.
    Committed(NodeId),
    /// The key is claimed under the given provisional index.
    Reserved(u32),
}

/// An entry of a [`ClaimLog`]: one reservation this claim sequence depends
/// on, with the canonical claim-representation fanins that describe how to
/// build the node.
#[derive(Copy, Clone, Debug)]
pub(crate) struct ClaimRecord {
    pub(crate) provisional: u32,
    pub(crate) kind: GateKind,
    pub(crate) fanins: [Signal; 3],
}

/// The ordered reservation trail of one claim-side emission.
///
/// Workers thread a log through their [`ShardedStrash::claim_and2`]-family
/// calls; the coordinator later replays it with `Network::link_claims`.
/// Records appear in emission order, and a record's provisional fanins are
/// always resolved by earlier records of the same log (or by logs linked
/// earlier), so a single in-order replay suffices.
#[derive(Clone, Debug, Default)]
pub struct ClaimLog {
    pub(crate) records: Vec<ClaimRecord>,
}

impl ClaimLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ClaimLog::default()
    }

    /// Number of reservation records in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no claim in this log reserved a provisional node.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Forgets all records, keeping the allocation.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// Number of lock stripes. A power of two so shard selection is a mask; 64
/// stripes keep contention negligible for every realistic worker count while
/// the per-table footprint stays small.
const SHARD_COUNT: usize = 64;

/// splitmix64 finalizer — a cheap, high-quality bit mixer used for shard
/// selection (deliberately independent of the per-shard `HashMap` hasher).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn key_hash(kind: GateKind, fanins: &[Signal; 3]) -> u64 {
    let tag: u64 = match kind {
        GateKind::Const => 0,
        GateKind::Input => 1,
        GateKind::And2 => 2,
        GateKind::Xor2 => 3,
        GateKind::Maj3 => 4,
    };
    let mut h = mix(tag);
    for s in fanins {
        h = mix(h ^ u64::from(s.literal()));
    }
    h
}

/// A lock-striped concurrent structural-hash table (see the module docs for
/// the reserve-then-link protocol it implements).
///
/// All lock acquisitions recover from poisoning: a worker that dies inside a
/// claim (e.g. under fault injection) leaves its shard usable for everyone
/// else, so a poisoned shard can never deadlock the batch.
pub struct ShardedStrash {
    shards: Box<[Mutex<HashMap<StrashKey, Slot>>]>,
    cursor: AtomicU32,
}

impl ShardedStrash {
    /// First node index used for provisional ids. Real node ids stay below
    /// this (the [`Signal`] literal packing bounds indices to `2^31`, and a
    /// batch may reserve up to `2^30` provisionals above the base).
    pub const PROVISIONAL_BASE: u32 = 1 << 30;

    /// Creates an empty table.
    pub fn new() -> Self {
        ShardedStrash::from_map(HashMap::new())
    }

    /// Builds the table from a serial strash map (all entries committed).
    pub(crate) fn from_map(map: HashMap<StrashKey, NodeId>) -> Self {
        let mut shards: Vec<HashMap<StrashKey, Slot>> =
            (0..SHARD_COUNT).map(|_| HashMap::new()).collect();
        for ((kind, fanins), id) in map {
            shards[Self::shard_of(kind, &fanins)].insert((kind, fanins), Slot::Committed(id));
        }
        ShardedStrash {
            shards: shards.into_iter().map(Mutex::new).collect(),
            cursor: AtomicU32::new(0),
        }
    }

    /// Number of lock stripes the table is split into.
    pub fn shard_count() -> usize {
        SHARD_COUNT
    }

    /// The stripe a canonical key lives in. Deterministic (an internal
    /// splitmix-style mix over kind and fanin literals, independent of the
    /// std `HashMap` hasher), which lets tests build adversarial key sets
    /// that all collide into a single bucket.
    pub fn shard_of(kind: GateKind, fanins: &[Signal; 3]) -> usize {
        (key_hash(kind, fanins) as usize) & (SHARD_COUNT - 1)
    }

    /// Returns `true` if `signal` points at a provisional (reserved, not yet
    /// linked) node rather than a real one.
    pub fn is_provisional(signal: Signal) -> bool {
        signal.node().index() >= Self::PROVISIONAL_BASE as usize
    }

    pub(crate) fn provisional_index(signal: Signal) -> u32 {
        debug_assert!(Self::is_provisional(signal));
        signal.node().index() as u32 - Self::PROVISIONAL_BASE
    }

    fn provisional_signal(index: u32) -> Signal {
        Signal::new(
            NodeId::from_index((Self::PROVISIONAL_BASE + index) as usize),
            false,
        )
    }

    /// Locks the stripe holding `key`-shaped entries, recovering from
    /// poisoning.
    pub(crate) fn lock_shard(
        &self,
        kind: GateKind,
        fanins: &[Signal; 3],
    ) -> MutexGuard<'_, HashMap<StrashKey, Slot>> {
        self.shards[Self::shard_of(kind, fanins)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Total number of committed entries (locks every shard; diagnostic use).
    pub fn committed_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .filter(|v| matches!(v, Slot::Committed(_)))
                    .count()
            })
            .sum()
    }

    /// Drains every committed entry back into a serial strash map, dropping
    /// all remaining reservations. Called when a commit batch ends.
    pub(crate) fn drain_committed(&self) -> HashMap<StrashKey, NodeId> {
        let mut out = HashMap::new();
        for shard in self.shards.iter() {
            let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (key, slot) in map.drain() {
                if let Slot::Committed(id) = slot {
                    out.insert(key, id);
                }
            }
        }
        out
    }

    /// Snapshot of the committed entries without draining (used by
    /// `Network::clone` while no batch is active, and by tests).
    pub(crate) fn committed_snapshot(&self) -> HashMap<StrashKey, NodeId> {
        let mut out = HashMap::new();
        for shard in self.shards.iter() {
            let map = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (key, slot) in map.iter() {
                if let Slot::Committed(id) = slot {
                    out.insert(*key, *id);
                }
            }
        }
        out
    }

    /// The core claim: probe-or-reserve one canonical key under its shard
    /// lock. `fanins` must already be normalized (folds applied, sorted).
    fn claim_gate(&self, kind: GateKind, fanins: [Signal; 3], log: &mut ClaimLog) -> Signal {
        let mut shard = self.lock_shard(kind, &fanins);
        // Deliberately inside the critical section: an injected panic here
        // poisons the shard, which is exactly the failure mode the chaos
        // suite must prove harmless.
        crate::failpoint!("strash::shard_claim");
        match shard.entry((kind, fanins)) {
            std::collections::hash_map::Entry::Occupied(e) => match *e.get() {
                Slot::Committed(id) => id.signal(),
                Slot::Reserved(p) => {
                    log.records.push(ClaimRecord {
                        provisional: p,
                        kind,
                        fanins,
                    });
                    Self::provisional_signal(p)
                }
            },
            std::collections::hash_map::Entry::Vacant(v) => {
                let p = self.cursor.fetch_add(1, Ordering::Relaxed);
                assert!(
                    p < Self::PROVISIONAL_BASE,
                    "commit batch exhausted the provisional id space"
                );
                v.insert(Slot::Reserved(p));
                log.records.push(ClaimRecord {
                    provisional: p,
                    kind,
                    fanins,
                });
                Self::provisional_signal(p)
            }
        }
    }

    /// Claims a two-input AND. Applies exactly the Boolean folds of
    /// [`Network::and2`](crate::Network::and2); the fanins may be concrete
    /// signals or provisional results of earlier claims.
    pub fn claim_and2(&self, a: Signal, b: Signal, log: &mut ClaimLog) -> Signal {
        if a == b {
            return a;
        }
        if a == !b || a.is_const0() || b.is_const0() {
            return Signal::CONST0;
        }
        if a.is_const1() {
            return b;
        }
        if b.is_const1() {
            return a;
        }
        let (a, b) = if a.literal() <= b.literal() { (a, b) } else { (b, a) };
        self.claim_gate(GateKind::And2, [a, b, Signal::CONST0], log)
    }

    /// Claims a two-input XOR, normalizing complemented fanins onto the
    /// output edge exactly like [`Network::xor2`](crate::Network::xor2).
    pub fn claim_xor2(&self, a: Signal, b: Signal, log: &mut ClaimLog) -> Signal {
        if a == b {
            return Signal::CONST0;
        }
        if a == !b {
            return Signal::CONST1;
        }
        if a.is_const0() {
            return b;
        }
        if a.is_const1() {
            return !b;
        }
        if b.is_const0() {
            return a;
        }
        if b.is_const1() {
            return !a;
        }
        let out_compl = a.is_complement() ^ b.is_complement();
        let (a, b) = (a.abs(), b.abs());
        let (a, b) = if a.literal() <= b.literal() { (a, b) } else { (b, a) };
        self.claim_gate(GateKind::Xor2, [a, b, Signal::CONST0], log)
            .xor_complement(out_compl)
    }

    /// Claims a three-input majority with the self-duality normalization of
    /// [`Network::maj3`](crate::Network::maj3).
    pub fn claim_maj3(&self, a: Signal, b: Signal, c: Signal, log: &mut ClaimLog) -> Signal {
        if a == b || a == c {
            return a;
        }
        if b == c {
            return b;
        }
        if a == !b {
            return c;
        }
        if a == !c {
            return b;
        }
        if b == !c {
            return a;
        }
        let mut fanins = [a, b, c];
        let complemented = fanins.iter().filter(|s| s.is_complement()).count();
        let out_compl = complemented >= 2;
        if out_compl {
            for f in &mut fanins {
                *f = !*f;
            }
        }
        fanins.sort_by_key(|s| s.literal());
        self.claim_gate(GateKind::Maj3, fanins, log)
            .xor_complement(out_compl)
    }
}

impl Default for ShardedStrash {
    fn default() -> Self {
        ShardedStrash::new()
    }
}

impl std::fmt::Debug for ShardedStrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStrash")
            .field("shards", &SHARD_COUNT)
            .field("reserved_cursor", &self.cursor.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NetworkKind, Prng};
    use std::sync::Arc;

    /// One random gate request over a pool of available signals.
    #[derive(Copy, Clone, Debug)]
    enum Op {
        And(usize, usize, bool, bool),
        Xor(usize, usize, bool, bool),
        Maj(usize, usize, usize, bool, bool, bool),
    }

    fn random_ops(seed: u64, inputs: usize, count: usize) -> Vec<Op> {
        let mut rng = Prng::seed_from_u64(seed);
        let mut ops = Vec::with_capacity(count);
        for avail in inputs..inputs + count {
            let pick = |rng: &mut Prng, n: usize| (rng.next_u64() as usize) % n;
            let a = pick(&mut rng, avail);
            let b = pick(&mut rng, avail);
            let ca = rng.next_u64() & 1 == 0;
            let cb = rng.next_u64() & 1 == 0;
            let op = match rng.next_u64() % 3 {
                0 => Op::And(a, b, ca, cb),
                1 => Op::Xor(a, b, ca, cb),
                _ => {
                    let c = pick(&mut rng, avail);
                    Op::Maj(a, b, c, ca, cb, rng.next_u64() & 1 == 0)
                }
            };
            ops.push(op);
        }
        ops
    }

    /// Serial reference: replay the stream through a plain network.
    fn replay_serial(net: &mut Network, pis: &[Signal], ops: &[Op]) -> Vec<Signal> {
        let mut sigs: Vec<Signal> = pis.to_vec();
        for &op in ops {
            let s = match op {
                Op::And(a, b, ca, cb) => {
                    net.and2(sigs[a].xor_complement(ca), sigs[b].xor_complement(cb))
                }
                Op::Xor(a, b, ca, cb) => {
                    net.xor2(sigs[a].xor_complement(ca), sigs[b].xor_complement(cb))
                }
                Op::Maj(a, b, c, ca, cb, cc) => net.maj3(
                    sigs[a].xor_complement(ca),
                    sigs[b].xor_complement(cb),
                    sigs[c].xor_complement(cc),
                ),
            };
            sigs.push(s);
        }
        sigs
    }

    /// Claim-side replay against a sharded table.
    fn replay_claims(
        table: &ShardedStrash,
        pis: &[Signal],
        ops: &[Op],
        log: &mut ClaimLog,
    ) -> Vec<Signal> {
        let mut sigs: Vec<Signal> = pis.to_vec();
        for &op in ops {
            let s = match op {
                Op::And(a, b, ca, cb) => table.claim_and2(
                    sigs[a].xor_complement(ca),
                    sigs[b].xor_complement(cb),
                    log,
                ),
                Op::Xor(a, b, ca, cb) => table.claim_xor2(
                    sigs[a].xor_complement(ca),
                    sigs[b].xor_complement(cb),
                    log,
                ),
                Op::Maj(a, b, c, ca, cb, cc) => table.claim_maj3(
                    sigs[a].xor_complement(ca),
                    sigs[b].xor_complement(cb),
                    sigs[c].xor_complement(cc),
                    log,
                ),
            };
            sigs.push(s);
        }
        sigs
    }

    fn fresh(inputs: usize) -> (Network, Vec<Signal>) {
        let mut net = Network::new(NetworkKind::Mixed);
        let pis = net.add_inputs(inputs);
        (net, pis)
    }

    /// Property: over seeded random gate streams, claim + link deduplicates
    /// identically to the serial HashMap strash — same per-op hit decisions
    /// (observable as identical result signals) and same node count.
    #[test]
    fn claims_deduplicate_identically_to_serial_strash() {
        for seed in 0..24 {
            let inputs = 3 + (seed as usize % 6);
            let ops = random_ops(0x5712A5 + seed, inputs, 120);

            let (mut serial, pis) = fresh(inputs);
            let serial_sigs = replay_serial(&mut serial, &pis, &ops);

            let (mut claimed, pis2) = fresh(inputs);
            assert_eq!(pis, pis2);
            let table = claimed.begin_commit_batch();
            let mut log = ClaimLog::new();
            let claim_sigs = replay_claims(&table, &pis, &ops, &mut log);
            claimed.link_claims(&log);
            let resolved: Vec<Signal> =
                claim_sigs.iter().map(|&s| claimed.resolve_claim(s)).collect();
            claimed.end_commit_batch();

            assert_eq!(resolved, serial_sigs, "seed {seed}");
            assert_eq!(claimed.len(), serial.len(), "seed {seed}");
            assert_eq!(claimed, serial, "seed {seed}");
        }
    }

    /// Forced-collision generator: keys crafted to funnel into one bucket
    /// still deduplicate and link exactly like the serial walk.
    #[test]
    fn colliding_keys_share_one_bucket_and_still_dedup() {
        let inputs = 24;
        let (mut serial, pis) = fresh(inputs);

        // Gather AND pairs whose canonical keys all land in bucket 0.
        let mut pairs: Vec<(Signal, Signal)> = Vec::new();
        for i in 0..inputs {
            for j in (i + 1)..inputs {
                let (a, b) = (pis[i], pis[j]);
                if ShardedStrash::shard_of(GateKind::And2, &[a, b, Signal::CONST0]) == 0 {
                    pairs.push((a, b));
                }
            }
        }
        assert!(
            pairs.len() >= 4,
            "generator found only {} colliding keys",
            pairs.len()
        );

        // Serial reference, with each pair emitted twice (the repeat hits).
        let mut serial_sigs = Vec::new();
        for &(a, b) in &pairs {
            serial_sigs.push(serial.and2(a, b));
            serial_sigs.push(serial.and2(b, a));
        }

        let (mut claimed, _) = fresh(inputs);
        let table = claimed.begin_commit_batch();
        let mut log = ClaimLog::new();
        let mut claim_sigs = Vec::new();
        for &(a, b) in &pairs {
            claim_sigs.push(table.claim_and2(a, b, &mut log));
            claim_sigs.push(table.claim_and2(b, a, &mut log));
        }
        // Each distinct pair reserved once and hit once: two records per pair.
        assert_eq!(log.len(), pairs.len() * 2);
        claimed.link_claims(&log);
        let resolved: Vec<Signal> =
            claim_sigs.iter().map(|&s| claimed.resolve_claim(s)).collect();
        claimed.end_commit_batch();

        assert_eq!(resolved, serial_sigs);
        assert_eq!(claimed, serial);
    }

    /// Concurrency stress: many threads claim overlapping random streams
    /// (including adversarially colliding keys); links replayed in a fixed
    /// order produce the serial network regardless of interleaving.
    #[test]
    fn concurrent_claims_link_to_the_serial_network() {
        let inputs = 8;
        let streams: Vec<Vec<Op>> = (0..8)
            .map(|i| random_ops(0xC0111D + (i / 2), inputs, 80))
            .collect();

        // Serial reference: streams replayed in order.
        let (mut serial, pis) = fresh(inputs);
        for ops in &streams {
            replay_serial(&mut serial, &pis, ops);
        }

        for round in 0..4 {
            let (mut claimed, pis2) = fresh(inputs);
            let table = claimed.begin_commit_batch();
            let logs: Vec<ClaimLog> = std::thread::scope(|scope| {
                let table: &ShardedStrash = &table;
                let handles: Vec<_> = streams
                    .iter()
                    .map(|ops| {
                        let pis = pis2.clone();
                        scope.spawn(move || {
                            let mut log = ClaimLog::new();
                            replay_claims(table, &pis, ops, &mut log);
                            log
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for log in &logs {
                claimed.link_claims(log);
            }
            claimed.end_commit_batch();
            assert_eq!(claimed, serial, "round {round}");
        }
    }

    /// The provisional namespace is disjoint from real node indices and
    /// round-trips through the signal packing.
    #[test]
    fn provisional_signals_are_recognizable() {
        let s = ShardedStrash::provisional_signal(17);
        assert!(ShardedStrash::is_provisional(s));
        assert!(ShardedStrash::is_provisional(!s));
        assert_eq!(ShardedStrash::provisional_index(s), 17);
        assert_eq!(ShardedStrash::provisional_index(!s), 17);
        assert!(!ShardedStrash::is_provisional(Signal::CONST0));
        assert!(!ShardedStrash::is_provisional(
            NodeId::from_index(123_456).signal()
        ));
    }

    /// A panic inside a claim poisons its shard; later claims on the same
    /// shard must recover instead of deadlocking or panicking.
    #[test]
    fn poisoned_shard_stays_usable() {
        let table = Arc::new(ShardedStrash::new());
        let a = NodeId::from_index(1).signal();
        let b = NodeId::from_index(2).signal();

        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = table.lock_shard(GateKind::And2, &[a, b, Signal::CONST0]);
            panic!("die holding the shard lock");
        }));
        assert!(poisoned.is_err());

        // The shard Mutex is now poisoned; a claim through it must succeed.
        let mut log = ClaimLog::new();
        let s = table.claim_and2(a, b, &mut log);
        assert!(ShardedStrash::is_provisional(s));
        assert_eq!(log.len(), 1);
    }
}
