//! Graph traversal utilities: fanouts, transitive fan-in/out cones, MFFCs,
//! critical-path extraction and topological levelization.

use crate::{Network, NodeId};
use std::collections::HashSet;

/// The gate nodes of a network grouped by topological level.
///
/// Level `l` holds every gate whose longest path from the primary inputs has
/// exactly `l` gates on it (the level stored on each [`crate::Node`]); the
/// constant node and the primary inputs (all at level 0) are not included.
/// Within one level the nodes are sorted by id, and because a gate's fanins
/// always have strictly smaller levels, all gates of one level can be
/// processed independently of each other once every earlier level is done —
/// this is the dependency structure the level-parallel cut enumeration in
/// `mch_cut` shards over.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Levels {
    levels: Vec<Vec<NodeId>>,
    gates: usize,
}

impl Levels {
    /// Number of level groups (the maximum gate level of the network).
    /// Valid arguments to [`Levels::level`] are `0..num_levels()`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The gate nodes of the `index`-th group, i.e. the gates whose
    /// topological level is `index + 1` (group 0 holds the level-1 gates,
    /// those fed by primary inputs only). Prefer [`Levels::iter`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_levels()`.
    pub fn level(&self, index: usize) -> &[NodeId] {
        &self.levels[index]
    }

    /// Iterates over the levels in ascending order, shallowest first. Every
    /// gate of the network appears in exactly one yielded slice, and the
    /// fanins of a yielded gate only ever appear in earlier slices (or are
    /// primary inputs / the constant node).
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.levels.iter().map(Vec::as_slice)
    }

    /// The level groups as a slice of id-sorted node lists (ascending level).
    pub fn as_slices(&self) -> &[Vec<NodeId>] {
        &self.levels
    }

    /// Total number of gates across all levels.
    pub fn gate_count(&self) -> usize {
        self.gates
    }

    /// The widest level's node count (0 for a gate-free network). This bounds
    /// how much parallelism level-sharding can extract.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Groups the gate nodes of `network` by topological level (see [`Levels`]).
///
/// Levels are read off the per-node level the network maintains during
/// construction, so this is a single O(n) bucketing pass; iterating gate ids
/// in ascending order keeps every bucket sorted by id without an extra sort.
pub fn levelize(network: &Network) -> Levels {
    let mut levels: Vec<Vec<NodeId>> = Vec::new();
    let mut gates = 0usize;
    for id in network.gate_ids() {
        let level = network.level(id) as usize;
        debug_assert!(level >= 1, "gates sit strictly above the inputs");
        if levels.len() < level {
            levels.resize_with(level, Vec::new);
        }
        levels[level - 1].push(id);
        gates += 1;
    }
    Levels { levels, gates }
}

/// Explicit fanout lists for every node of a network.
///
/// The [`Network`] itself only stores fanout *counts*; this helper materialises
/// the full adjacency in one pass for algorithms that need to walk forward.
#[derive(Clone, Debug)]
pub struct Fanouts {
    lists: Vec<Vec<NodeId>>,
}

impl Fanouts {
    /// Builds the fanout lists of `network`.
    pub fn compute(network: &Network) -> Self {
        let mut lists = vec![Vec::new(); network.len()];
        for id in network.gate_ids() {
            for f in network.node(id).fanins() {
                lists[f.node().index()].push(id);
            }
        }
        Fanouts { lists }
    }

    /// Gate nodes that read `node`.
    pub fn of(&self, node: NodeId) -> &[NodeId] {
        &self.lists[node.index()]
    }
}

/// Collects the transitive fan-in cone of `roots` (the roots themselves are
/// included; constants and primary inputs are included when reached).
pub fn transitive_fanin(network: &Network, roots: &[NodeId]) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        for f in network.node(n).fanins() {
            stack.push(f.node());
        }
    }
    seen
}

/// Collects the transitive fan-out cone of `roots` using precomputed fanouts.
pub fn transitive_fanout(fanouts: &Fanouts, roots: &[NodeId]) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        for &f in fanouts.of(n) {
            stack.push(f);
        }
    }
    seen
}

/// The maximum fanout-free cone of a node.
///
/// The MFFC of `root` is the set of gate nodes whose every path to a primary
/// output passes through `root`; it is the logic that would become dangling if
/// `root` were removed. `max_inputs` bounds the number of cone leaves gathered
/// (the paper's parameter `K`); when the bound is exceeded the cone is
/// truncated at the current frontier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mffc {
    /// The root node of the cone.
    pub root: NodeId,
    /// Gate nodes inside the cone (the root included).
    pub nodes: Vec<NodeId>,
    /// Leaves of the cone (nodes outside it feeding it).
    pub leaves: Vec<NodeId>,
}

impl Mffc {
    /// Number of gates in the cone.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

/// Computes the MFFC of `root` with at most `max_inputs` leaves.
///
/// Uses the classical reference-count simulation: a fanin joins the cone when
/// all of its fanouts are already inside the cone.
pub fn mffc(network: &Network, root: NodeId, max_inputs: usize) -> Mffc {
    let mut inside: HashSet<NodeId> = HashSet::new();
    let mut leaves: Vec<NodeId> = Vec::new();
    if !network.is_gate(root) {
        return Mffc {
            root,
            nodes: vec![],
            leaves: vec![],
        };
    }
    inside.insert(root);
    // Counts how many fanouts of a candidate node are inside the cone.
    let mut frontier: Vec<NodeId> = vec![root];
    let mut nodes = vec![root];
    while let Some(n) = frontier.pop() {
        for f in network.node(n).fanins() {
            let fid = f.node();
            if inside.contains(&fid) || leaves.contains(&fid) {
                continue;
            }
            let contained = network.is_gate(fid)
                && network.fanout_count(fid) > 0
                && (network.fanout_count(fid) as usize)
                    <= count_fanouts_inside(network, fid, &inside);
            if contained {
                inside.insert(fid);
                nodes.push(fid);
                frontier.push(fid);
            } else if !leaves.contains(&fid) {
                leaves.push(fid);
                if leaves.len() > max_inputs {
                    // Too many leaves: stop growing, keep what we have.
                    return Mffc { root, nodes, leaves };
                }
            }
        }
    }
    Mffc { root, nodes, leaves }
}

fn count_fanouts_inside(network: &Network, node: NodeId, inside: &HashSet<NodeId>) -> usize {
    // A node's fanouts are not stored; approximate by checking which inside
    // nodes read it. Cone sizes are small so the scan is cheap.
    inside
        .iter()
        .filter(|&&m| {
            network
                .node(m)
                .fanins()
                .iter()
                .any(|s| s.node() == node)
        })
        .count()
}

/// Collects the critical-path node set used by the MCH construction
/// (Algorithm 1, line 2).
///
/// A primary output is *critical* when the level of its driver is at least
/// `ratio * depth`; the returned set contains every node lying on some path
/// from a critical output back to the primary inputs whose level profile keeps
/// it on a longest path (i.e. nodes whose level equals the maximum level among
/// the fanins of a critical successor).
pub fn critical_path_nodes(network: &Network, ratio: f64) -> HashSet<NodeId> {
    let depth = network.depth();
    let threshold = (depth as f64 * ratio).ceil() as u32;
    let mut critical: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = Vec::new();
    for out in network.outputs() {
        let n = out.node();
        if network.level(n) >= threshold && network.is_gate(n) {
            stack.push(n);
        }
    }
    while let Some(n) = stack.pop() {
        if !critical.insert(n) {
            continue;
        }
        let node = network.node(n);
        let max_level = node
            .fanins()
            .iter()
            .map(|s| network.level(s.node()))
            .max()
            .unwrap_or(0);
        for f in node.fanins() {
            let fid = f.node();
            if network.is_gate(fid) && network.level(fid) == max_level {
                stack.push(fid);
            }
        }
    }
    critical
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NetworkKind};

    fn chain_network() -> Network {
        // f = ((a & b) & c) & d  plus a side output g = a & b
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let d = n.add_input();
        let ab = n.and2(a, b);
        let abc = n.and2(ab, c);
        let abcd = n.and2(abc, d);
        n.add_output(abcd);
        n.add_output(ab);
        n
    }

    #[test]
    fn fanouts_match_fanin_relation() {
        let n = chain_network();
        let fanouts = Fanouts::compute(&n);
        let a = n.inputs()[0];
        assert_eq!(fanouts.of(a).len(), 1);
        let ab = fanouts.of(a)[0];
        assert_eq!(fanouts.of(ab).len(), 1);
    }

    #[test]
    fn tfi_contains_all_ancestors() {
        let n = chain_network();
        let last = n.outputs()[0].node();
        let cone = transitive_fanin(&n, &[last]);
        // const node not reached; 4 PIs + 3 gates.
        assert_eq!(cone.len(), 7);
    }

    #[test]
    fn tfo_reaches_outputs() {
        let n = chain_network();
        let fanouts = Fanouts::compute(&n);
        let a = n.inputs()[0];
        let cone = transitive_fanout(&fanouts, &[a]);
        assert_eq!(cone.len(), 4); // a, ab, abc, abcd
    }

    #[test]
    fn mffc_excludes_shared_logic() {
        let n = chain_network();
        let abcd = n.outputs()[0].node();
        let cone = mffc(&n, abcd, 8);
        // ab is shared with the second output, so the MFFC of abcd is {abcd, abc}.
        assert_eq!(cone.size(), 2);
        assert!(cone.nodes.contains(&abcd));
    }

    #[test]
    fn mffc_of_single_output_chain_is_whole_chain() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let ab = n.and2(a, b);
        let abc = n.and2(ab, c);
        n.add_output(abc);
        let cone = mffc(&n, abc.node(), 8);
        assert_eq!(cone.size(), 2);
        assert_eq!(cone.leaves.len(), 3);
    }

    #[test]
    fn levelize_groups_gates_by_level() {
        let n = chain_network();
        let levels = levelize(&n);
        // Chain of three ANDs: one gate per level.
        assert_eq!(levels.num_levels(), 3);
        assert_eq!(levels.gate_count(), 3);
        assert_eq!(levels.max_width(), 1);
        for (i, slice) in levels.iter().enumerate() {
            assert_eq!(slice.len(), 1);
            assert_eq!(n.level(slice[0]) as usize, i + 1);
        }
    }

    #[test]
    fn levelize_respects_fanin_order_and_id_sort() {
        // A balanced tree: 4 gates at level 1, 2 at level 2, 1 at level 3.
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(8);
        let mut layer: Vec<_> = xs;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                next.push(n.and2(pair[0], pair[1]));
            }
            layer = next;
        }
        n.add_output(layer[0]);
        let levels = levelize(&n);
        assert_eq!(levels.num_levels(), 3);
        assert_eq!(levels.max_width(), 4);
        let widths: Vec<usize> = levels.iter().map(<[NodeId]>::len).collect();
        assert_eq!(widths, [4, 2, 1]);
        let mut seen: Vec<NodeId> = Vec::new();
        for slice in levels.iter() {
            // Id-sorted within a level.
            assert!(slice.windows(2).all(|w| w[0] < w[1]));
            // Every fanin is a PI or appeared in an earlier level.
            for &id in slice {
                for f in n.node(id).fanins() {
                    assert!(n.is_input(f.node()) || seen.contains(&f.node()));
                }
            }
            seen.extend_from_slice(slice);
        }
        assert_eq!(seen.len(), levels.gate_count());
    }

    #[test]
    fn levelize_of_gate_free_network_is_empty() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        n.add_output(a);
        let levels = levelize(&n);
        assert_eq!(levels.num_levels(), 0);
        assert_eq!(levels.gate_count(), 0);
        assert_eq!(levels.max_width(), 0);
        assert!(levels.iter().next().is_none());
    }

    #[test]
    fn critical_path_follows_deepest_nodes() {
        let n = chain_network();
        let critical = critical_path_nodes(&n, 0.9);
        // Only the deep output chain is critical; it has 3 gates.
        assert_eq!(critical.len(), 3);
        let all = critical_path_nodes(&n, 0.0);
        // Relaxing the ratio admits both outputs' cones.
        assert!(all.len() >= 3);
    }
}
