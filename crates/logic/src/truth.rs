//! Dynamic truth tables for small Boolean functions.
//!
//! [`TruthTable`] stores the function of up to 16 variables as a packed bit
//! vector of `u64` words. Tables are used for cut functions, Boolean matching
//! against library cells, NPN classification and the resynthesis strategies of
//! the MCH operator.
//!
//! # Memory layout
//!
//! Tables over **at most six variables** fit in `2^6 = 64` minterms and are
//! stored *inline* as a single `u64` — no heap allocation is performed for
//! construction, cloning or any Boolean operation on them. Tables over 7–16
//! variables fall back to a heap-allocated word vector of `2^(n-6)` words.
//! The representation is canonical: a table is inline **iff** `num_vars <= 6`,
//! so equality, ordering and hashing never have to normalise between the two
//! forms. This invariant is what lets the cut layer (`mch_cut`) enumerate
//! `k <= 6` cuts with zero allocations per cut.
//!
//! Unused high bits of a partially-filled word are always kept at zero so
//! words can be compared directly.

use std::fmt;
use std::hash::{Hash, Hasher};

const MAX_VARS: usize = 16;

/// Number of variables that fit in the single inline word.
pub const INLINE_VARS: usize = 6;

/// Backing storage: one inline word for `num_vars <= 6`, a heap vector
/// otherwise. The variant is fully determined by `num_vars`.
#[derive(Clone)]
enum Repr {
    Small(u64),
    Big(Vec<u64>),
}

/// A complete truth table over `num_vars` input variables.
///
/// Bit `i` stores the function value for the input assignment whose binary
/// encoding is `i` (variable 0 is the least-significant input). For fewer than
/// six variables only the low `2^num_vars` bits of the single word are used;
/// unused bits are always kept at zero so tables can be compared directly.
///
/// # Example
///
/// ```
/// use mch_logic::TruthTable;
///
/// let a = TruthTable::var(2, 0);
/// let b = TruthTable::var(2, 1);
/// let and = a.and(&b);
/// assert_eq!(and.count_ones(), 1);
/// assert!(and.bit(3));
/// assert!(and.is_inline()); // ≤ 6 vars: single u64, no heap allocation
/// ```
#[derive(Clone)]
pub struct TruthTable {
    num_vars: u8,
    repr: Repr,
}

fn words_for(num_vars: usize) -> usize {
    if num_vars <= INLINE_VARS {
        1
    } else {
        1 << (num_vars - INLINE_VARS)
    }
}

fn mask_for(num_vars: usize) -> u64 {
    if num_vars >= INLINE_VARS {
        u64::MAX
    } else {
        (1u64 << (1 << num_vars)) - 1
    }
}

impl TruthTable {
    /// The constant-false function over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 16`.
    pub fn zeros(num_vars: usize) -> Self {
        assert!(num_vars <= MAX_VARS, "at most {MAX_VARS} variables supported");
        let repr = if num_vars <= INLINE_VARS {
            Repr::Small(0)
        } else {
            Repr::Big(vec![0; words_for(num_vars)])
        };
        TruthTable {
            num_vars: num_vars as u8,
            repr,
        }
    }

    /// The constant-true function over `num_vars` variables.
    pub fn ones(num_vars: usize) -> Self {
        let mut t = TruthTable::zeros(num_vars);
        for w in t.words_mut() {
            *w = u64::MAX;
        }
        t.mask();
        t
    }

    /// The constant function of the given value.
    pub fn constant(num_vars: usize, value: bool) -> Self {
        if value {
            TruthTable::ones(num_vars)
        } else {
            TruthTable::zeros(num_vars)
        }
    }

    /// The projection function of variable `var` over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars` or `num_vars > 16`.
    pub fn var(num_vars: usize, var: usize) -> Self {
        assert!(var < num_vars, "variable index out of range");
        let mut t = TruthTable::zeros(num_vars);
        if var < INLINE_VARS {
            let pattern = VAR_PATTERNS[var];
            for w in t.words_mut() {
                *w = pattern;
            }
        } else {
            let period = 1usize << (var - INLINE_VARS);
            for (i, w) in t.words_mut().iter_mut().enumerate() {
                if (i / period) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t.mask();
        t
    }

    /// Builds a table from raw words (low bit of word 0 is minterm 0).
    ///
    /// # Panics
    ///
    /// Panics if the number of words does not match `num_vars`.
    pub fn from_words(num_vars: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), words_for(num_vars), "wrong number of words");
        let repr = if num_vars <= INLINE_VARS {
            Repr::Small(words[0])
        } else {
            Repr::Big(words)
        };
        let mut t = TruthTable {
            num_vars: num_vars as u8,
            repr,
        };
        t.mask();
        t
    }

    /// Builds a table over `num_vars <= 6` variables from a single word.
    pub fn from_u64(num_vars: usize, bits: u64) -> Self {
        assert!(
            num_vars <= INLINE_VARS,
            "from_u64 supports at most {INLINE_VARS} variables"
        );
        TruthTable {
            num_vars: num_vars as u8,
            repr: Repr::Small(bits & mask_for(num_vars)),
        }
    }

    /// Returns the single-word value of a table with at most six variables.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than six variables.
    #[inline]
    pub fn as_u64(&self) -> u64 {
        match self.repr {
            Repr::Small(w) => w,
            Repr::Big(_) => panic!("as_u64 requires at most {INLINE_VARS} variables"),
        }
    }

    /// Returns `true` if this table is stored inline (no heap allocation),
    /// which holds exactly when `num_vars <= 6`.
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Small(_))
    }

    /// Number of input variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Number of minterms (`2^num_vars`).
    #[inline]
    pub fn num_bits(&self) -> usize {
        1 << self.num_vars
    }

    /// The raw words backing this table.
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Small(w) => std::slice::from_ref(w),
            Repr::Big(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Small(w) => std::slice::from_mut(w),
            Repr::Big(v) => v,
        }
    }

    fn mask(&mut self) {
        if let Repr::Small(w) = &mut self.repr {
            *w &= mask_for(self.num_vars as usize);
        }
    }

    /// Value of the function for the minterm `index`.
    #[inline]
    pub fn bit(&self, index: usize) -> bool {
        debug_assert!(index < self.num_bits(), "minterm index out of range");
        match &self.repr {
            Repr::Small(w) => (w >> index) & 1 == 1,
            Repr::Big(v) => (v[index >> 6] >> (index & 63)) & 1 == 1,
        }
    }

    /// Sets the value of the function for the minterm `index`.
    #[inline]
    pub fn set_bit(&mut self, index: usize, value: bool) {
        debug_assert!(index < self.num_bits(), "minterm index out of range");
        let word = &mut self.words_mut()[index >> 6];
        if value {
            *word |= 1u64 << (index & 63);
        } else {
            *word &= !(1u64 << (index & 63));
        }
    }

    /// Number of minterms where the function is true.
    pub fn count_ones(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// Returns `true` if the function is constant false.
    pub fn is_const0(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Returns `true` if the function is constant true.
    pub fn is_const1(&self) -> bool {
        self.count_ones() as usize == self.num_bits()
    }

    /// Bitwise AND of two tables over the same variables.
    ///
    /// # Panics
    ///
    /// Panics if the tables have different numbers of variables.
    pub fn and(&self, other: &TruthTable) -> TruthTable {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR of two tables over the same variables.
    pub fn or(&self, other: &TruthTable) -> TruthTable {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR of two tables over the same variables.
    pub fn xor(&self, other: &TruthTable) -> TruthTable {
        self.zip(other, |a, b| a ^ b)
    }

    /// Complement of the function.
    pub fn not(&self) -> TruthTable {
        let mut t = match &self.repr {
            Repr::Small(w) => TruthTable {
                num_vars: self.num_vars,
                repr: Repr::Small(!w),
            },
            Repr::Big(v) => TruthTable {
                num_vars: self.num_vars,
                repr: Repr::Big(v.iter().map(|w| !w).collect()),
            },
        };
        t.mask();
        t
    }

    /// Three-input majority of three tables over the same variables.
    pub fn maj(a: &TruthTable, b: &TruthTable, c: &TruthTable) -> TruthTable {
        if let (Repr::Small(x), Repr::Small(y), Repr::Small(z)) = (&a.repr, &b.repr, &c.repr) {
            assert_eq!(a.num_vars, b.num_vars, "variable count mismatch");
            assert_eq!(a.num_vars, c.num_vars, "variable count mismatch");
            return TruthTable {
                num_vars: a.num_vars,
                repr: Repr::Small((x & y) | (x & z) | (y & z)),
            };
        }
        let ab = a.and(b);
        let ac = a.and(c);
        let bc = b.and(c);
        ab.or(&ac).or(&bc)
    }

    /// If-then-else of three tables over the same variables.
    pub fn ite(cond: &TruthTable, then: &TruthTable, els: &TruthTable) -> TruthTable {
        cond.and(then).or(&cond.not().and(els))
    }

    fn zip(&self, other: &TruthTable, op: impl Fn(u64, u64) -> u64) -> TruthTable {
        assert_eq!(self.num_vars, other.num_vars, "variable count mismatch");
        let mut t = match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => TruthTable {
                num_vars: self.num_vars,
                repr: Repr::Small(op(*a, *b)),
            },
            (a, b) => {
                let (a, b) = (repr_words(a), repr_words(b));
                TruthTable {
                    num_vars: self.num_vars,
                    repr: Repr::Big(a.iter().zip(b).map(|(&x, &y)| op(x, y)).collect()),
                }
            }
        };
        t.mask();
        t
    }

    /// Negative cofactor with respect to `var` (result keeps `num_vars` vars).
    pub fn cofactor0(&self, var: usize) -> TruthTable {
        let mut t = self.clone();
        for i in 0..self.num_bits() {
            if i & (1 << var) != 0 {
                t.set_bit(i, self.bit(i & !(1 << var)));
            }
        }
        t
    }

    /// Positive cofactor with respect to `var` (result keeps `num_vars` vars).
    pub fn cofactor1(&self, var: usize) -> TruthTable {
        let mut t = self.clone();
        for i in 0..self.num_bits() {
            if i & (1 << var) == 0 {
                t.set_bit(i, self.bit(i | (1 << var)));
            }
        }
        t
    }

    /// Returns `true` if the function does not depend on `var`.
    pub fn is_independent_of(&self, var: usize) -> bool {
        if let Repr::Small(w) = self.repr {
            // Inline fast path: compare the two cofactor halves directly.
            let mask = VAR_PATTERNS[var] & mask_for(self.num_vars as usize);
            return (w & mask) >> (1 << var) == w & (mask >> (1 << var));
        }
        self.cofactor0(var) == self.cofactor1(var)
    }

    /// The set of variables the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars())
            .filter(|&v| !self.is_independent_of(v))
            .collect()
    }

    /// Shrinks the table onto its support, returning the reduced table and the
    /// support variables (in ascending order) it now ranges over.
    pub fn shrink_to_support(&self) -> (TruthTable, Vec<usize>) {
        let support = self.support();
        let mut t = TruthTable::zeros(support.len());
        for i in 0..t.num_bits() {
            let mut full = 0usize;
            for (new, &old) in support.iter().enumerate() {
                if i & (1 << new) != 0 {
                    full |= 1 << old;
                }
            }
            t.set_bit(i, self.bit(full));
        }
        (t, support)
    }

    /// Re-expresses the table over `new_num_vars` variables, mapping old
    /// variable `i` onto new variable `placement[i]`.
    ///
    /// When the result fits in the inline word (`new_num_vars <= 6`) this
    /// runs the mask-doubling "stretch" algorithm — a handful of shifts/ORs
    /// per moved variable instead of a per-minterm loop (see `remap_u64`).
    /// Larger tables fall back to the generic minterm walk.
    ///
    /// # Panics
    ///
    /// Panics if a placement index is out of range or duplicated.
    pub fn remap_vars(&self, new_num_vars: usize, placement: &[usize]) -> TruthTable {
        assert_eq!(placement.len(), self.num_vars());
        let mut seen = 0u32;
        for &p in placement {
            assert!(p < new_num_vars, "placement out of range");
            assert!(seen & (1 << p) == 0, "duplicate placement");
            seen |= 1 << p;
        }
        if new_num_vars <= INLINE_VARS {
            return TruthTable::from_u64(
                new_num_vars,
                remap_u64(self.as_u64(), placement, new_num_vars),
            );
        }
        let mut t = TruthTable::zeros(new_num_vars);
        for i in 0..t.num_bits() {
            let mut old = 0usize;
            for (ov, &nv) in placement.iter().enumerate() {
                if i & (1 << nv) != 0 {
                    old |= 1 << ov;
                }
            }
            t.set_bit(i, self.bit(old));
        }
        t
    }

    /// Permutes the input variables: new variable `i` reads old variable
    /// `perm[i]`.
    pub fn permute(&self, perm: &[usize]) -> TruthTable {
        assert_eq!(perm.len(), self.num_vars());
        let mut t = TruthTable::zeros(self.num_vars());
        for i in 0..self.num_bits() {
            let mut old = 0usize;
            for (new_var, &old_var) in perm.iter().enumerate() {
                if i & (1 << new_var) != 0 {
                    old |= 1 << old_var;
                }
            }
            t.set_bit(i, self.bit(old));
        }
        t
    }

    /// Complements input variable `var`.
    pub fn flip_var(&self, var: usize) -> TruthTable {
        if let Repr::Small(w) = self.repr {
            let shift = 1usize << var;
            let mask = VAR_PATTERNS[var];
            let flipped = ((w & mask) >> shift) | ((w & !mask) << shift);
            let mut t = TruthTable {
                num_vars: self.num_vars,
                repr: Repr::Small(flipped),
            };
            t.mask();
            return t;
        }
        let mut t = TruthTable::zeros(self.num_vars());
        for i in 0..self.num_bits() {
            t.set_bit(i, self.bit(i ^ (1 << var)));
        }
        t
    }

    /// Applies an input negation mask (bit `i` set means input `i` is
    /// complemented) and optionally complements the output.
    pub fn transform(&self, perm: &[usize], input_neg: u32, output_neg: bool) -> TruthTable {
        let mut t = self.permute(perm);
        for v in 0..self.num_vars() {
            if input_neg & (1 << v) != 0 {
                t = t.flip_var(v);
            }
        }
        if output_neg {
            t = t.not();
        }
        t
    }

    /// Hexadecimal rendering (most-significant minterm first).
    pub fn to_hex(&self) -> String {
        let digits = (self.num_bits().max(4)) / 4;
        let mut s = String::with_capacity(digits);
        for d in (0..digits).rev() {
            let mut nibble = 0u8;
            for b in 0..4 {
                let idx = d * 4 + b;
                if idx < self.num_bits() && self.bit(idx) {
                    nibble |= 1 << b;
                }
            }
            s.push(char::from_digit(nibble as u32, 16).expect("nibble < 16"));
        }
        s
    }
}

/// Projection patterns for the six inline variables: `VAR_PATTERNS[v]` has bit
/// `i` set iff bit `v` of `i` is set.
const VAR_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

fn repr_words(r: &Repr) -> &[u64] {
    match r {
        Repr::Small(w) => std::slice::from_ref(w),
        Repr::Big(v) => v,
    }
}

/// Swaps adjacent variables `v` and `v + 1` of a single-word table.
///
/// Minterms where the two variables agree stay put; minterms with
/// `(v, v+1) = (1, 0)` trade places with their `(0, 1)` counterpart, which
/// sits exactly `2^v` bit positions away. All three groups are selected with
/// masks derived from the projection patterns, so one swap is five bitwise
/// ops — no per-minterm work.
#[inline]
fn swap_adjacent_u64(t: u64, v: usize) -> u64 {
    debug_assert!(v + 1 < INLINE_VARS);
    let pv = VAR_PATTERNS[v];
    let pw = VAR_PATTERNS[v + 1];
    let shift = 1u32 << v;
    (t & !(pv ^ pw)) | ((t & (pv & !pw)) << shift) | ((t & (!pv & pw)) >> shift)
}

/// Remaps a single-word table onto `new_num_vars <= 6` variables, sending old
/// variable `i` to `placement[i]`. Used by the allocation-free cut hot path.
///
/// This is the mask-doubling "stretch" algorithm rather than a per-minterm
/// loop:
///
/// 1. **Stretch** — the `2^k` occupied bits are doubled up to the full word
///    (`t |= t << 2^s` for `s = k..6`), which turns every variable above the
///    current `k` into a don't-care instead of reading as constant zero.
/// 2. **Order** — if `placement` is not already increasing (it always is on
///    the cut hot path, where both leaf lists are sorted), old variables are
///    bubble-sorted by target position; each adjacent transposition is one
///    [`swap_adjacent_u64`] call.
/// 3. **Spread** — variables are moved from their packed slots to their
///    target positions from the top down; the slots crossed on the way up
///    hold only don't-care variables, so each step is again one adjacent
///    swap.
///
/// The result is masked back to `2^new_num_vars` bits. Total cost is a
/// handful of shifts/ORs per variable moved, independent of the number of
/// minterms.
#[inline]
pub(crate) fn remap_u64(table: u64, placement: &[usize], new_num_vars: usize) -> u64 {
    debug_assert!(new_num_vars <= INLINE_VARS);
    debug_assert!(placement.len() <= INLINE_VARS);
    let k = placement.len();
    // 1. Stretch: replicate the occupied span so vars k..6 become don't-care.
    let mut t = table;
    for s in k..INLINE_VARS {
        t |= t << (1u32 << s);
    }
    // 2. Order old variables by target position (no-op for monotone input).
    let mut targets = [0usize; INLINE_VARS];
    targets[..k].copy_from_slice(placement);
    for i in 1..k {
        let mut j = i;
        while j > 0 && targets[j - 1] > targets[j] {
            targets.swap(j - 1, j);
            t = swap_adjacent_u64(t, j - 1);
            j -= 1;
        }
    }
    // 3. Spread top-down: everything between a variable's packed slot and its
    //    target is a don't-care by construction.
    for ov in (0..k).rev() {
        for p in ov..targets[ov] {
            t = swap_adjacent_u64(t, p);
        }
    }
    t & mask_for(new_num_vars)
}

impl PartialEq for TruthTable {
    fn eq(&self, other: &Self) -> bool {
        self.num_vars == other.num_vars && self.words() == other.words()
    }
}

impl Eq for TruthTable {}

impl Hash for TruthTable {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num_vars.hash(state);
        self.words().hash(state);
    }
}

impl PartialOrd for TruthTable {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TruthTable {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.num_vars
            .cmp(&other.num_vars)
            .then_with(|| self.words().cmp(other.words()))
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, 0x{})", self.num_vars, self.to_hex())
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_have_expected_patterns() {
        let a = TruthTable::var(3, 0);
        assert_eq!(a.as_u64(), 0xAA);
        let b = TruthTable::var(3, 1);
        assert_eq!(b.as_u64(), 0xCC);
        let c = TruthTable::var(3, 2);
        assert_eq!(c.as_u64(), 0xF0);
    }

    #[test]
    fn basic_boolean_algebra() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(a.and(&b).as_u64(), 0x8);
        assert_eq!(a.or(&b).as_u64(), 0xE);
        assert_eq!(a.xor(&b).as_u64(), 0x6);
        assert_eq!(a.not().as_u64(), 0x5);
    }

    #[test]
    fn majority_of_projections() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let m = TruthTable::maj(&a, &b, &c);
        assert_eq!(m.as_u64(), 0xE8);
    }

    #[test]
    fn constants_and_counting() {
        assert!(TruthTable::zeros(4).is_const0());
        assert!(TruthTable::ones(4).is_const1());
        assert_eq!(TruthTable::ones(4).count_ones(), 16);
        assert_eq!(TruthTable::var(4, 2).count_ones(), 8);
    }

    #[test]
    fn inline_representation_boundary() {
        assert!(TruthTable::zeros(0).is_inline());
        assert!(TruthTable::zeros(6).is_inline());
        assert!(!TruthTable::zeros(7).is_inline());
        assert_eq!(TruthTable::zeros(7).words().len(), 2);
        // Boolean ops preserve the representation.
        let a = TruthTable::var(6, 5);
        assert!(a.and(&a.not()).is_inline());
        let b = TruthTable::var(7, 6);
        assert!(!b.xor(&b).is_inline());
    }

    #[test]
    fn cofactors_and_support() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let f = a.and(&b);
        assert!(f.is_independent_of(2));
        assert_eq!(f.support(), vec![0, 1]);
        assert_eq!(f.cofactor1(0), b);
        assert!(f.cofactor0(0).is_const0());
    }

    #[test]
    fn independence_matches_cofactor_definition_inline() {
        // Cross-check the inline fast path against the generic definition.
        for seed in 0..50u64 {
            let w = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
            for vars in 1..=6 {
                let t = TruthTable::from_u64(vars, w);
                for v in 0..vars {
                    assert_eq!(
                        t.is_independent_of(v),
                        t.cofactor0(v) == t.cofactor1(v),
                        "vars={vars} v={v} w={w:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn shrink_to_support_reduces_vars() {
        let a = TruthTable::var(4, 1);
        let c = TruthTable::var(4, 3);
        let f = a.xor(&c);
        let (g, support) = f.shrink_to_support();
        assert_eq!(support, vec![1, 3]);
        assert_eq!(g.num_vars(), 2);
        assert_eq!(g.as_u64(), 0x6);
    }

    #[test]
    fn permute_and_flip() {
        let a = TruthTable::var(2, 0);
        let permuted = a.permute(&[1, 0]);
        assert_eq!(permuted, TruthTable::var(2, 1));
        let flipped = a.flip_var(0);
        assert_eq!(flipped, a.not());
    }

    #[test]
    fn flip_var_inline_matches_generic() {
        for vars in 1..=6usize {
            let w = 0xDEAD_BEEF_CAFE_F00Du64;
            let t = TruthTable::from_u64(vars, w);
            for v in 0..vars {
                let fast = t.flip_var(v);
                let mut slow = TruthTable::zeros(vars);
                for i in 0..t.num_bits() {
                    slow.set_bit(i, t.bit(i ^ (1 << v)));
                }
                assert_eq!(fast, slow, "vars={vars} v={v}");
            }
        }
    }

    #[test]
    fn remap_extends_variable_count() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let f = a.and(&b);
        let g = f.remap_vars(4, &[0, 3]);
        let a4 = TruthTable::var(4, 0);
        let b4 = TruthTable::var(4, 3);
        assert_eq!(g, a4.and(&b4));
    }

    /// The retired per-minterm remap, kept as the reference semantics for the
    /// mask-doubling stretch implementation.
    fn remap_u64_reference(table: u64, placement: &[usize], new_num_vars: usize) -> u64 {
        let mut out = 0u64;
        for m in 0..(1usize << new_num_vars) {
            let mut old = 0usize;
            for (ov, &nv) in placement.iter().enumerate() {
                old |= (m >> nv & 1) << ov;
            }
            out |= ((table >> old) & 1) << m;
        }
        out
    }

    #[test]
    fn stretch_remap_matches_per_minterm_reference() {
        // Exhaustive placements for small k, pseudo-random tables; covers
        // monotone (the cut hot path), permuted, and spread placements.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for new_vars in 0..=6usize {
            for k in 0..=new_vars {
                // Walk a spread of placements: all increasing ones for small
                // sizes plus permutations thereof.
                let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
                for _ in 0..k {
                    combos = combos
                        .into_iter()
                        .flat_map(|c| {
                            let lo = c.last().map_or(0, |&l| l + 1);
                            (lo..new_vars).map(move |v| {
                                let mut c = c.clone();
                                c.push(v);
                                c
                            })
                        })
                        .collect();
                }
                for c in combos {
                    let mut perms = vec![c.clone()];
                    let mut rev = c.clone();
                    rev.reverse();
                    perms.push(rev);
                    if c.len() >= 3 {
                        let mut rot = c.clone();
                        rot.rotate_left(1);
                        perms.push(rot);
                    }
                    for p in perms {
                        let table = next() & mask_for(k);
                        assert_eq!(
                            remap_u64(table, &p, new_vars),
                            remap_u64_reference(table, &p, new_vars),
                            "table={table:#x} placement={p:?} new_vars={new_vars}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn remap_into_wide_table() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let f = a.xor(&b);
        let g = f.remap_vars(8, &[2, 7]);
        assert_eq!(g, TruthTable::var(8, 2).xor(&TruthTable::var(8, 7)));
    }

    #[test]
    fn large_tables_work() {
        let f = TruthTable::var(8, 7);
        assert_eq!(f.count_ones(), 128);
        assert_eq!(f.words().len(), 4);
        let g = f.xor(&TruthTable::var(8, 0));
        assert_eq!(g.count_ones(), 128);
    }

    #[test]
    fn hex_round_trip_display() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(a.and(&b).to_hex(), "8");
        assert_eq!(TruthTable::var(3, 2).to_hex(), "f0");
    }

    #[test]
    fn ite_matches_mux_semantics() {
        let s = TruthTable::var(3, 0);
        let t = TruthTable::var(3, 1);
        let e = TruthTable::var(3, 2);
        let f = TruthTable::ite(&s, &t, &e);
        for i in 0..8 {
            let sel = i & 1 != 0;
            let expect = if sel { (i >> 1) & 1 != 0 } else { (i >> 2) & 1 != 0 };
            assert_eq!(f.bit(i), expect);
        }
    }

    #[test]
    fn ordering_is_consistent_across_representations() {
        let small = TruthTable::from_u64(6, 5);
        let big = TruthTable::zeros(7);
        assert!(small < big, "fewer variables order first");
        assert_eq!(small.cmp(&small.clone()), std::cmp::Ordering::Equal);
    }
}
