//! Cut-based ASIC technology mapping with Boolean matching and choice-network
//! support (Algorithm 3 instantiated for standard cells).
//!
//! The covering loop itself — delay pass, required-time propagation, area
//! recovery — lives in the shared [`crate::engine`]; this module supplies the
//! standard-cell [`CoverTarget`]: Boolean matching of cut functions against
//! the library, the per-candidate delay/area model (cell + inverters), and
//! emission of the selected cover as a [`CellNetlist`].

use crate::engine::{cover, Cover, CoverTarget, EngineParams};
use crate::mapping::{prepare_cuts, MappingObjective};
use crate::netlist::{CellNetlist, NetRef};
use mch_choice::ChoiceNetwork;
use mch_cut::{CutCost, CutCostModel, NetworkCuts, MAX_CUT_SIZE};
use mch_logic::{GateKind, Network, NodeId, Signal, TruthTable};
use mch_techlib::{CellId, Library};
use std::collections::HashMap;

/// Derives the cut-ranking cost model from a cell library: the delay/area of
/// a `k`-leaf cut is estimated as the fastest/cheapest cell with exactly `k`
/// inputs (sizes no cell provides inherit the previous size's estimate plus
/// an inverter, approximating a decomposition). This is what lets the depth
/// ranking know that covering more leaves with one cell is *not* free in an
/// ASIC flow, unlike in LUT mapping.
///
/// Public so callers of [`map_asic_with_cuts`] can run [`prepare_cuts`] with
/// the same ranking model [`map_asic`] uses.
pub fn library_cost_model(library: &Library) -> CutCostModel {
    let mut min_delay = [f64::INFINITY; MAX_CUT_SIZE + 1];
    let mut min_area = [f64::INFINITY; MAX_CUT_SIZE + 1];
    for cell in library.cells() {
        let k = cell.num_inputs().min(MAX_CUT_SIZE);
        min_delay[k] = min_delay[k].min(cell.delay());
        min_area[k] = min_area[k].min(cell.area());
    }
    let mut model = CutCostModel::unit();
    let mut last_delay = library.inverter_delay().max(1.0);
    let mut last_area = library.inverter_area().max(f64::MIN_POSITIVE);
    for k in 0..=MAX_CUT_SIZE {
        if min_delay[k].is_finite() {
            last_delay = min_delay[k];
            last_area = min_area[k];
        } else if k > 0 {
            last_delay += library.inverter_delay();
            last_area += library.inverter_area();
        }
        model.delay[k] = last_delay.round().max(1.0) as u32;
        model.area[k] = last_area as f32;
    }
    model
}

/// Parameters of ASIC mapping.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct AsicMapParams {
    /// Mapping objective (delay / balanced / area).
    pub objective: MappingObjective,
    /// Maximum number of cuts per node considered for matching.
    pub cut_limit: usize,
    /// Number of area-recovery passes after the delay-oriented pass.
    pub area_rounds: usize,
    /// Run the engine's exact-area re-selection pass after the area-flow
    /// rounds (see [`EngineParams::exact_area`]). Off by default — it changes
    /// covers, and the default flows pin their quality numbers.
    pub exact_area: bool,
    /// Memoise per-node selections across area rounds (see
    /// [`crate::engine`]). On by default; `false` is the recompute baseline
    /// the `mapping_rounds` bench measures against. Results are bit-identical
    /// either way.
    pub memoise: bool,
    /// How cuts are ranked before the per-node `cut_limit` truncates them
    /// (see [`CutCost`]); defaults to the objective's natural ranking.
    pub cut_ranking: CutCost,
    /// Worker threads for level-parallel cut enumeration and choice transfer
    /// (see [`mch_cut::enumerate_cuts_threaded`]); `1` selects the serial
    /// path, results are identical for every value. Defaults to
    /// [`mch_cut::default_threads`].
    pub threads: usize,
}

impl AsicMapParams {
    /// Creates parameters for the given objective with default knobs.
    pub fn new(objective: MappingObjective) -> Self {
        AsicMapParams {
            objective,
            cut_limit: 8,
            area_rounds: 2,
            exact_area: false,
            memoise: true,
            cut_ranking: objective.default_ranking(),
            threads: mch_cut::default_threads(),
        }
    }

    /// Returns the same parameters with an explicit cut ranking.
    pub fn with_ranking(mut self, ranking: CutCost) -> Self {
        self.cut_ranking = ranking;
        self
    }

    /// Returns the same parameters with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns the same parameters with an explicit area-recovery round count.
    pub fn with_area_rounds(mut self, rounds: usize) -> Self {
        self.area_rounds = rounds;
        self
    }

    /// Returns the same parameters with the exact-area final pass toggled.
    pub fn with_exact_area(mut self, exact: bool) -> Self {
        self.exact_area = exact;
        self
    }

    /// Returns the same parameters with selection memoisation toggled.
    pub fn with_memoise(mut self, memoise: bool) -> Self {
        self.memoise = memoise;
        self
    }

    pub(crate) fn engine_params(&self) -> EngineParams {
        EngineParams {
            objective: self.objective,
            area_rounds: self.area_rounds,
            exact_area: self.exact_area,
            memoise: self.memoise,
        }
    }
}

impl Default for AsicMapParams {
    fn default() -> Self {
        AsicMapParams::new(MappingObjective::Balanced)
    }
}

/// One concrete way of covering a node: a cut reduced to its support, matched
/// onto a library cell, with the inverters the match requires.
///
/// Opaque outside this module; public only because it is [`AsicTarget`]'s
/// [`CoverTarget::Candidate`] associated type.
#[derive(Clone, Debug)]
pub struct MatchCandidate {
    leaves: Vec<NodeId>,
    /// The support-reduced cut function the matched cell implements, over
    /// `leaves` in order. Carried so the fusion pipeline can harvest a
    /// selected ASIC cone as a ready-made LUT candidate (`fusion.rs`).
    function: TruthTable,
    cell: CellId,
    pin_perm: Vec<usize>,
    input_neg: u32,
    output_neg: bool,
    area: f64,
    cell_delay: f64,
    output_extra: f64,
}

impl MatchCandidate {
    /// The candidate's cone: its leaves and the support-reduced function they
    /// feed (the fusion harvest — see `fusion.rs`).
    pub(crate) fn cone(&self) -> (&[NodeId], &TruthTable) {
        (&self.leaves, &self.function)
    }

    /// Approximate memory footprint in bytes (inline size plus owned heap).
    /// Feeds [`crate::PreparedCover::approx_bytes`] for the warm-start
    /// cache's byte accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.leaves.capacity() * std::mem::size_of::<NodeId>()
            + self.function.words().len() * 8
            + self.pin_perm.capacity() * std::mem::size_of::<usize>()
    }
}

/// Builds the direct-fanin cut of a gate: leaves are the sorted distinct
/// non-constant fanin nodes, the function is the gate's primitive (AND / XOR /
/// majority) with fanin complements and constants folded in. Every usable
/// library matches these functions, so this cut makes ASIC matching total
/// regardless of which cuts survived the ranked truncation.
fn direct_fanin_cut(net: &Network, id: NodeId) -> (Vec<NodeId>, TruthTable) {
    let node = net.node(id);
    let fanins = node.fanins();
    let mut leaves: Vec<NodeId> = fanins
        .iter()
        .map(|s| s.node())
        .filter(|n| !n.is_const())
        .collect();
    leaves.sort();
    leaves.dedup();
    let lit = |s: Signal| -> TruthTable {
        if s.node().is_const() {
            TruthTable::constant(leaves.len(), s.is_complement())
        } else {
            let pos = leaves.binary_search(&s.node()).expect("fanin is a leaf");
            let v = TruthTable::var(leaves.len(), pos);
            if s.is_complement() {
                v.not()
            } else {
                v
            }
        }
    };
    let function = match node.kind() {
        GateKind::And2 => lit(fanins[0]).and(&lit(fanins[1])),
        GateKind::Xor2 => lit(fanins[0]).xor(&lit(fanins[1])),
        GateKind::Maj3 => TruthTable::maj(&lit(fanins[0]), &lit(fanins[1]), &lit(fanins[2])),
        _ => unreachable!("only gates are mapped"),
    };
    (leaves, function)
}

/// The standard-cell instantiation of the covering engine's [`CoverTarget`].
///
/// Public so callers can build a [`crate::engine::CoverProblem`] and solve it
/// repeatedly under different [`EngineParams`] (the `mapping_rounds` bench
/// does exactly that).
pub struct AsicTarget<'a> {
    library: &'a Library,
    cuts: &'a NetworkCuts,
    inv_delay: f64,
    inv_area: f64,
}

impl<'a> AsicTarget<'a> {
    /// Creates the target over pre-enumerated cuts (from [`prepare_cuts`]
    /// with cut size `library.max_inputs().clamp(3, 6)` and the
    /// [`library_cost_model`] ranking model).
    pub fn new(library: &'a Library, cuts: &'a NetworkCuts) -> Self {
        AsicTarget {
            library,
            cuts,
            inv_delay: library.inverter_delay(),
            inv_area: library.inverter_area(),
        }
    }
}

impl CoverTarget for AsicTarget<'_> {
    type Candidate = MatchCandidate;
    type Netlist = CellNetlist;

    fn candidates(&self, net: &Network, id: NodeId) -> Vec<MatchCandidate> {
        let library = self.library;
        let inv_delay = self.inv_delay;
        let inv_area = self.inv_area;
        let mut cands = Vec::new();
        // The direct-fanin cut carries the gate's own primitive function, the
        // one shape every usable library covers. Cost-aware rankings can
        // truncate it out of the enumerated set, so it is re-synthesised here
        // as a guaranteed-matchable candidate.
        let fallback = direct_fanin_cut(net, id);
        let enumerated = self.cuts.of(id).iter().map(|c| (c.leaves(), c.function()));
        let all = enumerated.chain(std::iter::once((
            fallback.0.as_slice(),
            &fallback.1,
        )));
        for (cut_leaves, function) in all {
            if cut_leaves.len() == 1 && cut_leaves[0] == id {
                continue; // trivial cut
            }
            let (reduced, support) = function.shrink_to_support();
            if reduced.num_vars() == 0 {
                continue;
            }
            let leaves: Vec<NodeId> = support.iter().map(|&i| cut_leaves[i]).collect();
            let matches = library.matches(&reduced);
            if matches.is_empty() {
                continue;
            }
            // Keep the best-area and best-delay match of this cut.
            let mut best_area: Option<&mch_techlib::CellMatch> = None;
            let mut best_delay: Option<&mch_techlib::CellMatch> = None;
            for m in matches {
                let area = library.cell(m.cell()).area() + m.inverter_count() as f64 * inv_area;
                let delay = library.cell(m.cell()).delay()
                    + if m.inverter_count() > 0 { inv_delay } else { 0.0 };
                if best_area.is_none_or(|b| {
                    area < library.cell(b.cell()).area() + b.inverter_count() as f64 * inv_area
                }) {
                    best_area = Some(m);
                }
                if best_delay.is_none_or(|b| {
                    delay
                        < library.cell(b.cell()).delay()
                            + if b.inverter_count() > 0 { inv_delay } else { 0.0 }
                }) {
                    best_delay = Some(m);
                }
            }
            for m in [best_area, best_delay].into_iter().flatten() {
                let cand = MatchCandidate {
                    leaves: leaves.clone(),
                    function: reduced.clone(),
                    cell: m.cell(),
                    pin_perm: m.perm().to_vec(),
                    input_neg: m.input_neg(),
                    output_neg: m.output_neg(),
                    area: library.cell(m.cell()).area()
                        + m.inverter_count() as f64 * inv_area,
                    cell_delay: library.cell(m.cell()).delay(),
                    output_extra: if m.output_neg() { inv_delay } else { 0.0 },
                };
                // Avoid exact duplicates.
                if !cands.iter().any(|c: &MatchCandidate| {
                    c.cell == cand.cell && c.leaves == cand.leaves && c.input_neg == cand.input_neg
                }) {
                    cands.push(cand);
                }
            }
        }
        assert!(
            !cands.is_empty(),
            "node {id} has no matchable cut; the library cannot cover this network"
        );
        cands
    }

    fn leaves<'b>(&self, cand: &'b MatchCandidate) -> &'b [NodeId] {
        &cand.leaves
    }

    fn arrival(&self, cand: &MatchCandidate, arrivals: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, l) in cand.leaves.iter().enumerate() {
            let extra = if cand.input_neg & (1 << i) != 0 {
                self.inv_delay
            } else {
                0.0
            };
            worst = worst.max(arrivals[l.index()] + extra);
        }
        worst + cand.cell_delay + cand.output_extra
    }

    fn area(&self, cand: &MatchCandidate) -> f64 {
        cand.area
    }

    fn leaf_required(&self, cand: &MatchCandidate, leaf_index: usize, root_required: f64) -> f64 {
        let extra = if cand.input_neg & (1 << leaf_index) != 0 {
            self.inv_delay
        } else {
            0.0
        };
        root_required - cand.cell_delay - cand.output_extra - extra
    }

    fn emit(&self, net: &Network, cover: &Cover<'_, MatchCandidate>) -> CellNetlist {
        let mut netlist = CellNetlist::new(net.name().to_string(), net.input_count());
        let input_pos: HashMap<NodeId, usize> = net
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        let mut node_ref: HashMap<NodeId, NetRef> = HashMap::new();
        let mut inverted: HashMap<NodeId, NetRef> = HashMap::new();
        let inverter = self.library.inverter();

        fn base_ref(
            node: NodeId,
            input_pos: &HashMap<NodeId, usize>,
            node_ref: &HashMap<NodeId, NetRef>,
        ) -> NetRef {
            if node.is_const() {
                NetRef::Const(false)
            } else if let Some(&i) = input_pos.get(&node) {
                NetRef::Input(i)
            } else {
                *node_ref.get(&node).expect("leaf mapped before use")
            }
        }

        for &id in cover.original_gates {
            if !cover.needed[id.index()] {
                continue;
            }
            let c = cover.selected(id);
            let mut pin_fanins = vec![NetRef::Const(false); c.leaves.len()];
            for (i, l) in c.leaves.iter().enumerate() {
                let mut r = base_ref(*l, &input_pos, &node_ref);
                if c.input_neg & (1 << i) != 0 {
                    r = match r {
                        NetRef::Const(v) => NetRef::Const(!v),
                        other => *inverted
                            .entry(*l)
                            .or_insert_with(|| netlist.push_gate(inverter, vec![other])),
                    };
                }
                pin_fanins[c.pin_perm[i]] = r;
            }
            let mut out = netlist.push_gate(c.cell, pin_fanins);
            if c.output_neg {
                out = netlist.push_gate(inverter, vec![out]);
            }
            node_ref.insert(id, out);
        }

        for o in net.outputs() {
            let node = o.node();
            let mut r = if node.is_const() {
                NetRef::Const(false)
            } else if let Some(&i) = input_pos.get(&node) {
                NetRef::Input(i)
            } else {
                *node_ref.get(&node).expect("output driver mapped")
            };
            if o.is_complement() {
                r = match r {
                    NetRef::Const(v) => NetRef::Const(!v),
                    other => *inverted
                        .entry(node)
                        .or_insert_with(|| netlist.push_gate(inverter, vec![other])),
                };
            }
            netlist.push_output(r);
        }
        netlist
    }
}

/// Maps a choice network onto standard cells.
///
/// The mapper follows the classical priority-cut flow, delegated to the
/// shared [`crate::engine`]: a delay-oriented pass establishes arrival times,
/// `area_rounds` area-flow passes recover area under the required times
/// derived from the objective (memoised and incrementally re-evaluated — see
/// the engine docs), and the final cover is extracted from the primary
/// outputs. Choice-node cuts are transferred to their representatives
/// beforehand, so heterogeneous candidate structures are evaluated with the
/// same technology costs as the original structure.
///
/// # Panics
///
/// Panics if some node function cannot be matched by the library (the bundled
/// [`mch_techlib::asap7_lite`] library always matches the 2- and 3-input
/// primitive functions, so this only happens with deliberately crippled
/// libraries).
pub fn map_asic(
    choice: &ChoiceNetwork,
    library: &Library,
    params: &AsicMapParams,
) -> CellNetlist {
    let cut_size = library.max_inputs().clamp(3, 6);
    let mut cuts = prepare_cuts(
        choice,
        cut_size,
        params.cut_limit,
        params.cut_ranking,
        &library_cost_model(library),
        params.threads,
    );
    // Choice transfer leaves dead spans behind (`commit_extension` cannot
    // always rewrite in place); reclaim them before covering so the arena —
    // and everything accounted against `FlowBudget::max_cut_arena_slots` —
    // is dense. `compact` preserves every node's cut list byte-for-byte.
    cuts.compact();
    map_asic_with_cuts(choice, library, &cuts, params)
}

/// Covers a choice network onto standard cells over **pre-enumerated** cuts.
///
/// This is the covering phase of [`map_asic`] in isolation: `cuts` must come
/// from [`prepare_cuts`] over the same choice network (cut size
/// `library.max_inputs().clamp(3, 6)`). Use it to re-cover one cut set under
/// several parameter settings — different `area_rounds`, `exact_area` or
/// objectives — without paying enumeration and choice transfer again; the
/// `mapping_rounds` bench measures exactly this call.
pub fn map_asic_with_cuts(
    choice: &ChoiceNetwork,
    library: &Library,
    cuts: &NetworkCuts,
    params: &AsicMapParams,
) -> CellNetlist {
    let target = AsicTarget::new(library, cuts);
    cover(choice, &target, &params.engine_params())
}

/// Convenience: maps a plain network (no choices) onto standard cells.
pub fn map_asic_network(
    network: &mch_logic::Network,
    library: &Library,
    params: &AsicMapParams,
) -> CellNetlist {
    map_asic(&ChoiceNetwork::from_network(network), library, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::{build_mch, MchParams};
    use mch_logic::{cec, Network, NetworkKind};
    use mch_techlib::asap7_lite;

    fn adder4() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "adder4");
        let a = n.add_inputs(4);
        let b = n.add_inputs(4);
        let mut carry = n.constant(false);
        for i in 0..4 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            n.add_output(s);
            carry = c;
        }
        n.add_output(carry);
        n
    }

    #[test]
    fn mapping_preserves_function() {
        let net = adder4();
        let lib = asap7_lite();
        let mapped = map_asic_network(&net, &lib, &AsicMapParams::default());
        assert!(mapped.gate_count() > 0);
        let back = mapped.to_network(&lib);
        assert!(cec(&net, &back).holds(), "mapped netlist is not equivalent");
    }

    #[test]
    fn area_objective_is_not_larger_than_delay_objective_area() {
        let net = adder4();
        let lib = asap7_lite();
        let delay = map_asic_network(&net, &lib, &AsicMapParams::new(MappingObjective::Delay));
        let area = map_asic_network(&net, &lib, &AsicMapParams::new(MappingObjective::Area));
        assert!(area.area(&lib) <= delay.area(&lib) + 1e-9);
        assert!(delay.delay(&lib) <= area.delay(&lib) + 1e-9);
    }

    #[test]
    fn choices_do_not_hurt_and_stay_equivalent() {
        let net = adder4();
        let lib = asap7_lite();
        let params = AsicMapParams::default();
        let baseline = map_asic_network(&net, &lib, &params);
        let mch = build_mch(&net, &MchParams::area_oriented());
        let with_choices = map_asic(&mch, &lib, &params);
        let back = with_choices.to_network(&lib);
        assert!(cec(&net, &back).holds());
        // The choice-aware mapping should not be worse on both metrics at once.
        let worse_area = with_choices.area(&lib) > baseline.area(&lib) + 1e-9;
        let worse_delay = with_choices.delay(&lib) > baseline.delay(&lib) + 1e-9;
        assert!(
            !(worse_area && worse_delay),
            "choices made both area and delay worse"
        );
    }

    #[test]
    fn complemented_and_constant_outputs() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let f = n.and2(a, b);
        n.add_output(!f);
        n.add_output(n.constant(true));
        n.add_output(!a);
        let lib = asap7_lite();
        let mapped = map_asic_network(&n, &lib, &AsicMapParams::default());
        assert!(cec(&n, &mapped.to_network(&lib)).holds());
    }

    #[test]
    fn xmg_network_maps_correctly() {
        let mut n = Network::new(NetworkKind::Xmg);
        let xs = n.add_inputs(5);
        let m = n.maj3(xs[0], xs[1], xs[2]);
        let x = n.xor2(m, xs[3]);
        let y = n.maj3(x, xs[4], !xs[0]);
        n.add_output(y);
        let lib = asap7_lite();
        let mapped = map_asic_network(&n, &lib, &AsicMapParams::default());
        assert!(cec(&n, &mapped.to_network(&lib)).holds());
    }

    #[test]
    fn memoised_selection_matches_full_recomputation() {
        let net = adder4();
        let lib = asap7_lite();
        for objective in [
            MappingObjective::Delay,
            MappingObjective::Balanced,
            MappingObjective::Area,
        ] {
            for rounds in [0, 2, 5] {
                let params = AsicMapParams::new(objective).with_area_rounds(rounds);
                let memo = map_asic_network(&net, &lib, &params);
                let full = map_asic_network(&net, &lib, &params.with_memoise(false));
                assert_eq!(memo, full, "{objective:?} with {rounds} rounds diverged");
            }
        }
    }

    #[test]
    fn exact_area_pass_stays_equivalent_and_not_larger() {
        let net = adder4();
        let lib = asap7_lite();
        for objective in [MappingObjective::Balanced, MappingObjective::Area] {
            let params = AsicMapParams::new(objective);
            let flow_only = map_asic_network(&net, &lib, &params);
            let exact = map_asic_network(&net, &lib, &params.with_exact_area(true));
            assert!(cec(&net, &exact.to_network(&lib)).holds(), "{objective:?}");
            assert!(
                exact.area(&lib) <= flow_only.area(&lib) + 1e-9,
                "{objective:?}: exact-area pass grew area from {} to {}",
                flow_only.area(&lib),
                exact.area(&lib)
            );
        }
    }
}
