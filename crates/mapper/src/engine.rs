//! The shared covering engine both technology mappers run on.
//!
//! ASIC and LUT covering are the same dynamic program with different cost
//! models (cf. "Mapping Fusion: Improving FPGA Technology Mapping with ASIC
//! Mapper"): a delay-oriented forward pass establishes arrival times, a
//! number of area-recovery rounds re-select candidates under required times
//! propagated backward from the outputs, and the final cover is extracted
//! from the primary outputs. [`cover`] implements that loop once, generically
//! over a [`CoverTarget`] — the trait that supplies what actually differs
//! between targets: how candidates are enumerated, what a candidate's arrival
//! and area are, how required time propagates onto a candidate's leaves, and
//! how the selected cover is emitted as a netlist.
//!
//! # Incremental re-selection (`CandidateCache`)
//!
//! Re-selecting a node is a pure function of
//!
//! 1. the `(arrival, flow)` pair of every leaf of every candidate,
//! 2. the node's own required time, and
//! 3. the node's previous selection (the fallback when no candidate is
//!    feasible).
//!
//! The engine memoises per-node results in a `CandidateCache` and skips a
//! node in an area round when none of those inputs changed — bit-for-bit —
//! since the node was last evaluated. Changes propagate as dirty bits over
//! the candidate-leaf fanout relation: whenever a node's selection, arrival
//! or area flow changes, every node that lists it as a candidate leaf is
//! marked dirty (such nodes are always processed later in the same round
//! because candidate leaves precede their root topologically). Because the
//! skip condition is exact, memoised runs produce **bit-identical** covers to
//! full recomputation (`memoise: false`), which the `mapping_rounds` bench
//! asserts; the speedup at `area_rounds > 2` comes from selections
//! stabilising after the first rounds, after which most nodes are clean.
//!
//! # Exact-area final pass
//!
//! With [`EngineParams::exact_area`] set, a final pass re-selects each
//! covered node by *exact* area — the cells/LUTs the candidate's cone really
//! adds under the current reference counts, computed by the classical
//! ref/deref walk — instead of the area-flow estimate, still honouring the
//! required times established by the preceding `area_rounds` flow rounds.
//! The pass is off by default: it changes covers, and the default flows pin
//! their quality numbers.

use crate::mapping::MappingObjective;
use mch_choice::ChoiceNetwork;
use mch_logic::{Network, NodeId};

/// Slack tolerance of every required-time / arrival comparison in the engine.
///
/// A candidate is considered to meet a timing bound when its arrival exceeds
/// the bound by at most this epsilon, absorbing the float noise that
/// accumulates through arrival/required propagation. Formerly this constant
/// was copy-pasted at four comparison sites across the two mappers.
pub const SLACK_EPS: f64 = 1e-9;

/// Returns `true` when `arrival` meets `bound` within [`SLACK_EPS`].
///
/// This is the single tie-break predicate used by every feasibility check in
/// the engine (strict-delay checks against the minimum achievable arrival,
/// balanced checks against the node's required time).
#[inline]
pub fn meets_bound(arrival: f64, bound: f64) -> bool {
    arrival <= bound + SLACK_EPS
}

/// What a technology target must provide for the engine to cover a network.
///
/// Implementations exist for standard-cell mapping (`asic.rs`) and K-LUT
/// mapping (`lut.rs`); the trait is public so further targets (e.g. hybrid
/// LUT-structures or coarse-grained blocks) can reuse the engine.
pub trait CoverTarget {
    /// One concrete way of covering a node (a matched cell, a LUT, …).
    type Candidate;
    /// The netlist type the selected cover is emitted into.
    type Netlist;

    /// Enumerates the candidates of `id`, in a deterministic order.
    ///
    /// Must never return an empty list — every mappable node needs at least
    /// one implementation (targets assert this with a target-specific
    /// message).
    fn candidates(&self, net: &Network, id: NodeId) -> Vec<Self::Candidate>;

    /// The candidate's leaves (sorted, distinct, topologically before the
    /// root).
    fn leaves<'a>(&self, cand: &'a Self::Candidate) -> &'a [NodeId];

    /// Arrival time at the root if `cand` is selected, given the current
    /// per-node arrival times.
    fn arrival(&self, cand: &Self::Candidate, arrivals: &[f64]) -> f64;

    /// The candidate's own area cost (no leaf contribution).
    fn area(&self, cand: &Self::Candidate) -> f64;

    /// Required time imposed on leaf `leaf_index` when the root must be ready
    /// by `root_required`.
    fn leaf_required(
        &self,
        cand: &Self::Candidate,
        leaf_index: usize,
        root_required: f64,
    ) -> f64;

    /// Emits the selected cover as a netlist.
    fn emit(&self, net: &Network, cover: &Cover<'_, Self::Candidate>) -> Self::Netlist;
}

/// The selected cover handed to [`CoverTarget::emit`].
pub struct Cover<'a, C> {
    /// The original (representative) gates, in topological order.
    pub original_gates: &'a [NodeId],
    /// Candidate lists indexed by node id.
    pub candidates: &'a [Vec<C>],
    /// Index of the selected candidate per node id.
    pub best: &'a [usize],
    /// Whether the node is part of the cover (reachable from the outputs
    /// through selected candidates).
    pub needed: &'a [bool],
}

impl<C> Cover<'_, C> {
    /// The selected candidate of `id`.
    pub fn selected(&self, id: NodeId) -> &C {
        &self.candidates[id.index()][self.best[id.index()]]
    }
}

/// The outcome of the covering dynamic program, before netlist emission.
///
/// [`CoverProblem::solve_selection`] returns the winning candidate index and
/// cover membership per node; [`CoverProblem::emit`] turns a selection into
/// the target netlist. The split exists for cross-mapper fusion: the fusion
/// pipeline solves an ASIC problem, *reads* the selection to harvest the
/// chosen cones, and never emits an ASIC netlist at all.
pub struct CoverSelection {
    best: Vec<usize>,
    needed: Vec<bool>,
}

impl CoverSelection {
    /// Index of the winning candidate of `id` (into the problem's candidate
    /// list for that node). `usize::MAX` for nodes that are not original
    /// gates of the problem.
    pub fn best_index(&self, id: NodeId) -> usize {
        self.best[id.index()]
    }

    /// Whether `id` is part of the cover (reachable from the outputs through
    /// selected candidates).
    pub fn is_needed(&self, id: NodeId) -> bool {
        self.needed[id.index()]
    }
}

/// Knobs of the covering engine, shared by both mappers.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct EngineParams {
    /// Mapping objective (delay / balanced / area).
    pub objective: MappingObjective,
    /// Number of area-recovery rounds after the delay-oriented pass.
    pub area_rounds: usize,
    /// Run an exact-area re-selection pass (ref/deref walk under the final
    /// required times) after the area-flow rounds. Off by default.
    pub exact_area: bool,
    /// Memoise per-node selections across rounds (see the
    /// `CandidateCache` notes in the module docs).
    /// `false` re-evaluates every node every round — the recompute baseline
    /// the `mapping_rounds` bench measures against. Results are bit-identical
    /// either way.
    pub memoise: bool,
}

/// The parameter-independent skeleton of a covering problem: the target's
/// enumerated candidates, the fanout reference estimates and the
/// candidate-leaf fanout relation.
///
/// Building a skeleton is the expensive part of preparing a cover (candidate
/// enumeration — Boolean matching for ASIC targets — dominates it), and the
/// result depends only on the choice network and the target's cut set, never
/// on [`EngineParams`]. A skeleton therefore outlives any single solve: the
/// warm-start layer of `mch_core` caches one per `(choice network, cut set,
/// library)` and hands each parameter variant its own clone via
/// [`CoverProblem::with_skeleton`] — cloning is linear in the candidate
/// bytes, orders of magnitude cheaper than re-enumerating them, and keeps
/// per-problem mutations (candidate injection, bonuses) from ever touching
/// the cached copy.
#[derive(Clone, Debug)]
pub struct CoverSkeleton<C> {
    original_gates: Vec<NodeId>,
    candidates: Vec<Vec<C>>,
    refs: Vec<f64>,
    /// The candidate-leaf fanout relation: `users[l]` lists every original
    /// gate with `l` as a leaf of *some* candidate — the edges dirty bits
    /// propagate along (see `CandidateCache`).
    users: Vec<Vec<u32>>,
}

impl<C> CoverSkeleton<C> {
    /// Builds the skeleton: enumerates every original gate's candidates,
    /// derives fanout reference estimates and the candidate-leaf fanout
    /// relation. Deterministic — a pure function of `(choice, target)`.
    pub fn build<T: CoverTarget<Candidate = C>>(choice: &ChoiceNetwork, target: &T) -> Self {
        let net = choice.network();
        let original_gates: Vec<NodeId> = net
            .gate_ids()
            .filter(|id| choice.is_original(*id))
            .collect();

        let mut candidates: Vec<Vec<C>> =
            std::iter::repeat_with(Vec::new).take(net.len()).collect();
        for &id in &original_gates {
            candidates[id.index()] = target.candidates(net, id);
            assert!(
                !candidates[id.index()].is_empty(),
                "node {id} has no cover candidate"
            );
        }

        // Fanout reference estimates over the original structure.
        let mut refs = vec![0.0f64; net.len()];
        for &id in &original_gates {
            for f in net.node(id).fanins() {
                refs[f.node().index()] += 1.0;
            }
        }
        for o in net.outputs() {
            refs[o.node().index()] += 1.0;
        }

        let mut users: Vec<Vec<u32>> = vec![Vec::new(); net.len()];
        for &id in &original_gates {
            for cand in &candidates[id.index()] {
                for &l in target.leaves(cand) {
                    users[l.index()].push(id.index() as u32);
                }
            }
        }
        for list in &mut users {
            list.sort_unstable();
            list.dedup();
        }

        CoverSkeleton {
            original_gates,
            candidates,
            refs,
            users,
        }
    }

    /// Approximate heap footprint in bytes; `candidate_bytes` supplies the
    /// per-candidate estimate (candidates are opaque here). Used by the
    /// warm-start cache's byte accounting.
    pub fn approx_bytes(&self, candidate_bytes: impl Fn(&C) -> usize) -> usize {
        let cand_heap: usize = self
            .candidates
            .iter()
            .flat_map(|list| list.iter().map(&candidate_bytes))
            .sum();
        self.original_gates.capacity() * std::mem::size_of::<NodeId>()
            + self.candidates.capacity() * std::mem::size_of::<Vec<C>>()
            + cand_heap
            + self.refs.capacity() * 8
            + self.users.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.users.iter().map(|u| u.capacity() * 4).sum::<usize>()
    }
}

/// A covering problem prepared for (repeated) solving: a
/// [`CoverSkeleton`] bound to its choice network and target, plus the
/// per-problem selection bonuses.
///
/// Preparing is the expensive, parameter-independent part of covering
/// (candidate enumeration dominates it); [`CoverProblem::solve`] runs the
/// actual dynamic program and can be called any number of times with
/// different [`EngineParams`] — different `area_rounds`, objectives or the
/// exact-area pass — without re-enumerating candidates. The `mapping_rounds`
/// bench times `solve` in isolation this way. Solving never mutates the
/// problem: all per-solve state (arrivals, flows, selections, the
/// memoisation cache) is allocated fresh inside each call, so repeated
/// solves of one problem are independent and bit-reproducible — the fusion
/// pipeline relies on this when it solves the same problem before and after
/// injecting guide cones.
pub struct CoverProblem<'a, T: CoverTarget> {
    choice: &'a ChoiceNetwork,
    target: &'a T,
    skeleton: CoverSkeleton<T::Candidate>,
    /// Sparse per-candidate selection bonus (see [`CoverProblem::set_bonus`]).
    /// Empty (length 0) unless a bonus was ever set, so the unfused path pays
    /// nothing.
    bonus: Vec<Vec<f64>>,
}

/// Per-solve memoisation state of the area-recovery rounds.
///
/// A node is skipped in an area round when it is clean (no leaf of any of its
/// candidates changed `(arrival, flow)` since the node was last evaluated)
/// and its required time is bit-identical to the previous round's. When a
/// node's `(best, arrival, flow)` does change, its users — via
/// [`CoverProblem::users`] — are marked dirty; they always sit later in the
/// same round's topological sweep.
struct CandidateCache {
    dirty: Vec<bool>,
    prev_required: Vec<f64>,
}

impl<'a, T: CoverTarget> CoverProblem<'a, T> {
    /// Builds the problem: enumerates every original gate's candidates,
    /// derives fanout reference estimates and the candidate-leaf fanout
    /// relation ([`CoverSkeleton::build`]).
    pub fn new(choice: &'a ChoiceNetwork, target: &'a T) -> Self {
        Self::with_skeleton(choice, target, CoverSkeleton::build(choice, target))
    }

    /// Builds the problem around a pre-built skeleton, skipping candidate
    /// enumeration entirely — the warm-start path.
    ///
    /// `skeleton` must have been built by [`CoverSkeleton::build`] over the
    /// same choice network and an identically-configured target (same cut
    /// set, same library); the sizes are asserted, the contents are the
    /// caller's contract. The skeleton is taken by value: callers reusing a
    /// cached skeleton clone it, so later mutations of this problem
    /// (injection, bonuses) never leak into the cache.
    pub fn with_skeleton(
        choice: &'a ChoiceNetwork,
        target: &'a T,
        skeleton: CoverSkeleton<T::Candidate>,
    ) -> Self {
        assert_eq!(
            skeleton.candidates.len(),
            choice.network().len(),
            "skeleton was built over a differently-sized network"
        );
        CoverProblem {
            choice,
            target,
            skeleton,
            bonus: Vec::new(),
        }
    }

    /// The original (representative) gates of the problem, in topological
    /// order.
    pub fn original_gates(&self) -> &[NodeId] {
        &self.skeleton.original_gates
    }

    /// The candidate list of `id` (empty for non-original nodes).
    pub fn candidates_of(&self, id: NodeId) -> &[T::Candidate] {
        &self.skeleton.candidates[id.index()]
    }

    /// The selected candidate of `id` under `sel`.
    ///
    /// Panics when `id` is not an original gate of the problem.
    pub fn selected<'s>(&'s self, sel: &CoverSelection, id: NodeId) -> &'s T::Candidate {
        &self.skeleton.candidates[id.index()][sel.best_index(id)]
    }

    /// Injects an extra candidate on `root` and returns its index in the
    /// node's candidate list.
    ///
    /// This is the fusion hook: cones selected by one mapper become
    /// additional candidates of another mapper's problem. The candidate's
    /// leaves must be distinct nodes that topologically precede `root`
    /// (asserted), exactly as for enumerated candidates.
    ///
    /// Injection keeps `CandidateCache` incrementality sound: every leaf of
    /// the new candidate gains a `users`-list entry for `root`, so dirty-bit
    /// invalidation reaches the injected cone exactly like an enumerated one.
    /// The `users` lists stay sorted and deduplicated, preserving the
    /// deterministic propagation order.
    pub fn inject_candidate(&mut self, root: NodeId, cand: T::Candidate) -> usize {
        let idx = root.index();
        assert!(
            !self.skeleton.candidates[idx].is_empty(),
            "injection root {root} is not an original gate of the problem"
        );
        for &l in self.target.leaves(&cand) {
            assert!(
                l.index() < idx,
                "injected leaf {l} does not precede root {root}"
            );
            let list = &mut self.skeleton.users[l.index()];
            match list.binary_search(&(idx as u32)) {
                Ok(_) => {}
                Err(pos) => list.insert(pos, idx as u32),
            }
        }
        self.skeleton.candidates[idx].push(cand);
        if !self.bonus.is_empty() && self.bonus[idx].len() < self.skeleton.candidates[idx].len() {
            self.bonus[idx].resize(self.skeleton.candidates[idx].len(), 0.0);
        }
        self.skeleton.candidates[idx].len() - 1
    }

    /// Grants candidate `cand_index` of `root` a selection bonus.
    ///
    /// The bonus is subtracted from the candidate's **area-flow comparison
    /// key** in the delay pass and the area-recovery rounds — it biases which
    /// candidate wins ties (and near-ties) without touching the arrival times
    /// or area flows that are stored and propagated, so a problem with no
    /// bonuses set is bit-identical to one where this method was never
    /// called. A bonus is a pure function of `(root, cand_index)` and
    /// constant across rounds, so `CandidateCache` memoisation stays exact.
    pub fn set_bonus(&mut self, root: NodeId, cand_index: usize, bonus: f64) {
        let idx = root.index();
        assert!(
            cand_index < self.skeleton.candidates[idx].len(),
            "bonus for nonexistent candidate {cand_index} of {root}"
        );
        if self.bonus.is_empty() {
            self.bonus = vec![Vec::new(); self.skeleton.candidates.len()];
        }
        if self.bonus[idx].len() < self.skeleton.candidates[idx].len() {
            self.bonus[idx].resize(self.skeleton.candidates[idx].len(), 0.0);
        }
        self.bonus[idx][cand_index] = bonus;
    }

    /// Runs the covering dynamic program and emits the target netlist.
    ///
    /// The flow is exactly the classical priority-cut dynamic program both
    /// mappers previously hand-rolled:
    ///
    /// 1. **Delay pass** — pick, per node in topological order, the candidate
    ///    minimising `(arrival, area_flow)`; the worst output arrival becomes
    ///    the delay target.
    /// 2. **Area rounds** — `area_rounds` times: propagate required times
    ///    backward from the outputs (skipped entirely for the
    ///    [`Area`](MappingObjective::Area) objective, where timing is
    ///    unconstrained), then re-select per node the candidate minimising
    ///    `(area_flow, arrival)` among those meeting the node's timing bound.
    ///    With [`EngineParams::memoise`], clean nodes are skipped (see
    ///    `CandidateCache`), and a round in which nothing changed is a
    ///    fixed point — every later round would be a no-op, so the loop ends
    ///    early.
    /// 3. **Exact-area pass** (optional) — re-select covered nodes by exact
    ///    area under the final required times.
    /// 4. **Extraction** — walk the selected candidates from the outputs and
    ///    emit the needed nodes through [`CoverTarget::emit`].
    pub fn solve(&self, params: &EngineParams) -> T::Netlist {
        self.emit(&self.solve_selection(params))
    }

    /// Runs the covering dynamic program and returns the winning selection
    /// without emitting a netlist (steps 1–4 of [`CoverProblem::solve`] minus
    /// the final [`CoverTarget::emit`]).
    ///
    /// The fusion pipeline uses this to harvest the cones an ASIC cover
    /// selects; plain mapping goes through [`CoverProblem::solve`].
    pub fn solve_selection(&self, params: &EngineParams) -> CoverSelection {
        let net = self.choice.network();
        let target = self.target;
        let original_gates = &self.skeleton.original_gates;
        let candidates = &self.skeleton.candidates;
        let refs = &self.skeleton.refs;

        let area_flow = |cand: &T::Candidate, flow: &[f64]| -> f64 {
            let mut acc = target.area(cand);
            for l in target.leaves(cand) {
                acc += flow[l.index()] / refs[l.index()].max(1.0);
            }
            acc
        };
        // Selection-key bias (see `set_bonus`); `bonus` stays empty unless a
        // bonus was ever granted, in which case the lookup is free.
        let bonus_of = |idx: usize, cand_i: usize| -> f64 {
            self.bonus
                .get(idx)
                .and_then(|b| b.get(cand_i))
                .copied()
                .unwrap_or(0.0)
        };

        // --------------------------------------------------------------
        // Pass 1: delay-oriented selection.
        // --------------------------------------------------------------
        let mut arrival = vec![0.0f64; net.len()];
        let mut flow = vec![0.0f64; net.len()];
        let mut best: Vec<usize> = vec![usize::MAX; net.len()];
        for &id in original_gates {
            let cands = &candidates[id.index()];
            let mut chosen = 0;
            let mut chosen_key = (f64::INFINITY, f64::INFINITY);
            for (i, c) in cands.iter().enumerate() {
                let arr = target.arrival(c, &arrival);
                let af = area_flow(c, &flow) - bonus_of(id.index(), i);
                if (arr, af) < chosen_key {
                    chosen_key = (arr, af);
                    chosen = i;
                }
            }
            best[id.index()] = chosen;
            arrival[id.index()] = chosen_key.0;
            flow[id.index()] = area_flow(&cands[chosen], &flow) / refs[id.index()].max(1.0);
        }
        let delay_target = net
            .outputs()
            .iter()
            .map(|o| arrival[o.node().index()])
            .fold(0.0, f64::max);

        // --------------------------------------------------------------
        // Passes 2..: area recovery under required times.
        // --------------------------------------------------------------
        // Every node is dirty going into the first area round: the selection
        // criterion flips from (arrival, flow) to (flow, arrival) there, so
        // the delay-pass results never carry over unexamined.
        let mut cache = CandidateCache {
            dirty: vec![true; net.len()],
            prev_required: vec![f64::NAN; net.len()],
        };
        let strict_delay = params.objective == MappingObjective::Delay;
        for _round in 0..params.area_rounds {
            mch_logic::failpoint!("engine::round");
            let required = compute_required(
                net,
                target,
                original_gates,
                candidates,
                &best,
                params.objective,
                delay_target,
            );
            let mut round_changes = 0usize;
            for &id in original_gates {
                let idx = id.index();
                if params.memoise
                    && !cache.dirty[idx]
                    && required[idx].to_bits() == cache.prev_required[idx].to_bits()
                {
                    continue;
                }
                let cands = &candidates[idx];
                let node_required = required[idx];
                // Only the strict-delay objective compares against the best
                // achievable arrival; skip the extra candidate scan otherwise.
                let min_arrival = if strict_delay {
                    cands
                        .iter()
                        .map(|c| target.arrival(c, &arrival))
                        .fold(f64::INFINITY, f64::min)
                } else {
                    f64::INFINITY
                };
                let mut chosen = best[idx];
                let mut chosen_key = (f64::INFINITY, f64::INFINITY);
                for (i, c) in cands.iter().enumerate() {
                    let arr = target.arrival(c, &arrival);
                    let feasible = if strict_delay {
                        meets_bound(arr, min_arrival)
                    } else {
                        !node_required.is_finite() || meets_bound(arr, node_required)
                    };
                    if !feasible {
                        continue;
                    }
                    let af = area_flow(c, &flow) - bonus_of(idx, i);
                    if (af, arr) < chosen_key {
                        chosen_key = (af, arr);
                        chosen = i;
                    }
                }
                let c = &cands[chosen];
                let new_arrival = target.arrival(c, &arrival);
                let new_flow = area_flow(c, &flow) / refs[idx].max(1.0);
                let changed = chosen != best[idx]
                    || new_arrival.to_bits() != arrival[idx].to_bits()
                    || new_flow.to_bits() != flow[idx].to_bits();
                best[idx] = chosen;
                arrival[idx] = new_arrival;
                flow[idx] = new_flow;
                if params.memoise {
                    cache.dirty[idx] = false;
                    if changed {
                        // Dirty every node that reads this one through a
                        // candidate leaf; all of them sit later in this
                        // round's topological sweep.
                        for &u in &self.skeleton.users[idx] {
                            cache.dirty[u as usize] = true;
                        }
                    }
                }
                round_changes += usize::from(changed);
            }
            cache.prev_required = required;
            // A change-free round is a fixed point: selections, arrivals,
            // flows and therefore the next round's required times are all
            // bit-identical, so every further round is a no-op. (The
            // recompute baseline keeps grinding through them — that cost is
            // exactly what the `mapping_rounds` bench measures.)
            if params.memoise && round_changes == 0 {
                break;
            }
        }

        // --------------------------------------------------------------
        // Optional exact-area final pass.
        // --------------------------------------------------------------
        if params.exact_area && !original_gates.is_empty() {
            exact_area_pass(
                net,
                target,
                original_gates,
                candidates,
                &mut best,
                &mut arrival,
                params.objective,
                delay_target,
            );
        }

        // --------------------------------------------------------------
        // Cover extraction.
        // --------------------------------------------------------------
        let needed = extract_needed(net, target, candidates, &best);
        CoverSelection { best, needed }
    }

    /// Emits a selection (from [`CoverProblem::solve_selection`]) as the
    /// target netlist.
    pub fn emit(&self, sel: &CoverSelection) -> T::Netlist {
        let cover = Cover {
            original_gates: &self.skeleton.original_gates,
            candidates: &self.skeleton.candidates,
            best: &sel.best,
            needed: &sel.needed,
        };
        self.target.emit(self.choice.network(), &cover)
    }
}

/// Runs the full covering flow over a prepared choice network and emits the
/// target netlist.
///
/// Convenience wrapper: [`CoverProblem::new`] followed by one
/// [`CoverProblem::solve`]. Callers that want to solve the same problem under
/// several parameter settings should hold on to the [`CoverProblem`] instead.
pub fn cover<T: CoverTarget>(
    choice: &ChoiceNetwork,
    target: &T,
    params: &EngineParams,
) -> T::Netlist {
    CoverProblem::new(choice, target).solve(params)
}

/// Backward required-time propagation over the current selections.
///
/// Outputs are required at the delay target established by the delay pass;
/// every selected candidate propagates its root's requirement onto its leaves
/// through [`CoverTarget::leaf_required`]. For the pure-area objective the
/// whole vector stays `+inf` (no timing constraint).
fn compute_required<T: CoverTarget>(
    net: &Network,
    target: &T,
    original_gates: &[NodeId],
    candidates: &[Vec<T::Candidate>],
    best: &[usize],
    objective: MappingObjective,
    delay_target: f64,
) -> Vec<f64> {
    let mut required = vec![f64::INFINITY; net.len()];
    if objective == MappingObjective::Area {
        return required;
    }
    for o in net.outputs() {
        let idx = o.node().index();
        required[idx] = required[idx].min(delay_target);
    }
    for &id in original_gates.iter().rev() {
        let r = required[id.index()];
        if !r.is_finite() {
            continue;
        }
        let c = &candidates[id.index()][best[id.index()]];
        for (i, l) in target.leaves(c).iter().enumerate() {
            let slack = target.leaf_required(c, i, r);
            required[l.index()] = required[l.index()].min(slack);
        }
    }
    required
}

/// Marks the nodes reachable from the outputs through selected candidates.
fn extract_needed<T: CoverTarget>(
    net: &Network,
    target: &T,
    candidates: &[Vec<T::Candidate>],
    best: &[usize],
) -> Vec<bool> {
    let mut needed = vec![false; net.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for o in net.outputs() {
        if net.is_gate(o.node()) {
            stack.push(o.node());
        }
    }
    while let Some(id) = stack.pop() {
        if needed[id.index()] {
            continue;
        }
        needed[id.index()] = true;
        let c = &candidates[id.index()][best[id.index()]];
        for l in target.leaves(c) {
            if net.is_gate(*l) && !needed[l.index()] {
                stack.push(*l);
            }
        }
    }
    needed
}

/// Exact-area re-selection under the final required times.
///
/// Maintains reference counts over the current cover and, for each referenced
/// node in topological order, de-references its selected cone, evaluates
/// every timing-feasible candidate by the exact area its cone would add
/// (classical ref/deref walk), commits the best and re-references it.
/// Arrival times are refreshed along the way so downstream feasibility checks
/// see the updated cone.
#[allow(clippy::too_many_arguments)]
fn exact_area_pass<T: CoverTarget>(
    net: &Network,
    target: &T,
    original_gates: &[NodeId],
    candidates: &[Vec<T::Candidate>],
    best: &mut [usize],
    arrival: &mut [f64],
    objective: MappingObjective,
    delay_target: f64,
) {
    let required = compute_required(
        net,
        target,
        original_gates,
        candidates,
        best,
        objective,
        delay_target,
    );
    // Reference counts of the current cover: selected-candidate leaves plus
    // primary outputs.
    let needed = extract_needed(net, target, candidates, best);
    let mut nrefs = vec![0u32; net.len()];
    for &id in original_gates {
        if !needed[id.index()] {
            continue;
        }
        for &l in target.leaves(&candidates[id.index()][best[id.index()]]) {
            if net.is_gate(l) {
                nrefs[l.index()] += 1;
            }
        }
    }
    for o in net.outputs() {
        if net.is_gate(o.node()) {
            nrefs[o.node().index()] += 1;
        }
    }

    let strict_delay = objective == MappingObjective::Delay;
    let mut walk: Vec<NodeId> = Vec::new();
    for &id in original_gates {
        let idx = id.index();
        if nrefs[idx] == 0 {
            continue;
        }
        // Take the node's current cone out of the cover.
        deref_cone(net, target, candidates, best, &mut nrefs, &mut walk, id);
        let cands = &candidates[idx];
        let node_required = required[idx];
        // Only the strict-delay objective compares against the best
        // achievable arrival; skip the extra candidate scan otherwise.
        let min_arrival = if strict_delay {
            cands
                .iter()
                .map(|c| target.arrival(c, arrival))
                .fold(f64::INFINITY, f64::min)
        } else {
            f64::INFINITY
        };
        let mut chosen = best[idx];
        let mut chosen_key = (f64::INFINITY, f64::INFINITY);
        for (i, c) in cands.iter().enumerate() {
            let arr = target.arrival(c, arrival);
            let feasible = if strict_delay {
                meets_bound(arr, min_arrival)
            } else {
                !node_required.is_finite() || meets_bound(arr, node_required)
            };
            if !feasible {
                continue;
            }
            let ea = ref_cone_area(net, target, candidates, best, &mut nrefs, &mut walk, c);
            deref_cand(net, target, candidates, best, &mut nrefs, &mut walk, c);
            if (ea, arr) < chosen_key {
                chosen_key = (ea, arr);
                chosen = i;
            }
        }
        best[idx] = chosen;
        arrival[idx] = target.arrival(&cands[chosen], arrival);
        // Put the (possibly new) cone back.
        let c = &cands[chosen];
        ref_cone_area(net, target, candidates, best, &mut nrefs, &mut walk, c);
    }
}

/// References `cand`'s leaves and returns the exact area its cone adds:
/// the candidate's own area plus the cones of leaves newly pulled into the
/// cover (iterative, no recursion).
fn ref_cone_area<T: CoverTarget>(
    net: &Network,
    target: &T,
    candidates: &[Vec<T::Candidate>],
    best: &[usize],
    nrefs: &mut [u32],
    walk: &mut Vec<NodeId>,
    cand: &T::Candidate,
) -> f64 {
    let mut total = target.area(cand);
    walk.clear();
    for &l in target.leaves(cand) {
        if net.is_gate(l) {
            nrefs[l.index()] += 1;
            if nrefs[l.index()] == 1 {
                walk.push(l);
            }
        }
    }
    while let Some(n) = walk.pop() {
        let c = &candidates[n.index()][best[n.index()]];
        total += target.area(c);
        for &l in target.leaves(c) {
            if net.is_gate(l) {
                nrefs[l.index()] += 1;
                if nrefs[l.index()] == 1 {
                    walk.push(l);
                }
            }
        }
    }
    total
}

/// Undoes [`ref_cone_area`] for `cand` (leaves only, not the root).
fn deref_cand<T: CoverTarget>(
    net: &Network,
    target: &T,
    candidates: &[Vec<T::Candidate>],
    best: &[usize],
    nrefs: &mut [u32],
    walk: &mut Vec<NodeId>,
    cand: &T::Candidate,
) {
    walk.clear();
    for &l in target.leaves(cand) {
        if net.is_gate(l) {
            nrefs[l.index()] -= 1;
            if nrefs[l.index()] == 0 {
                walk.push(l);
            }
        }
    }
    while let Some(n) = walk.pop() {
        let c = &candidates[n.index()][best[n.index()]];
        for &l in target.leaves(c) {
            if net.is_gate(l) {
                nrefs[l.index()] -= 1;
                if nrefs[l.index()] == 0 {
                    walk.push(l);
                }
            }
        }
    }
}

/// De-references the selected cone of `id` (its current candidate's leaves).
fn deref_cone<T: CoverTarget>(
    net: &Network,
    target: &T,
    candidates: &[Vec<T::Candidate>],
    best: &[usize],
    nrefs: &mut [u32],
    walk: &mut Vec<NodeId>,
    id: NodeId,
) {
    let c = &candidates[id.index()][best[id.index()]];
    deref_cand(net, target, candidates, best, nrefs, walk, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::{LutCandidate, LutTarget};
    use crate::mapping::prepare_cuts;
    use mch_choice::{build_mch, MchParams};
    use mch_cut::{CutCost, CutCostModel};
    use mch_logic::NetworkKind;
    use mch_techlib::LutLibrary;

    #[test]
    fn slack_epsilon_tie_break_at_the_boundary() {
        // Exactly at the bound and exactly at bound + eps are feasible…
        assert!(meets_bound(1.0, 1.0));
        assert!(meets_bound(1.0 + SLACK_EPS, 1.0));
        assert!(meets_bound(100.0 + SLACK_EPS, 100.0));
        // …one representable step past bound + eps is not.
        assert!(!meets_bound(1.0 + 2.1 * SLACK_EPS, 1.0));
        assert!(!meets_bound(f64::INFINITY, 1.0));
        // Infinite bounds accept everything finite (unconstrained nodes).
        assert!(meets_bound(1e300, f64::INFINITY));
    }

    #[test]
    fn slack_epsilon_is_the_engine_wide_constant() {
        // Pin the value: quality numbers and tie-breaks depend on it.
        assert_eq!(SLACK_EPS, 1e-9);
    }

    /// Regression (PR 9): injected candidates must take part in dirty-bit
    /// invalidation. `inject_candidate` adds `users`-list entries for the new
    /// cone's leaves; without them, a leaf whose `(arrival, flow)` changes in
    /// an area round would leave the injected cone's root marked clean, and
    /// the memoised solve would diverge from full recomputation exactly where
    /// fusion had intervened.
    #[test]
    fn injected_candidates_keep_memoised_selection_bit_identical() {
        let mut net = Network::with_name(NetworkKind::Aig, "inject-memo");
        let a = net.add_inputs(4);
        let b = net.add_inputs(4);
        let mut carry = net.constant(false);
        for i in 0..4 {
            let (s, c) = net.full_adder(a[i], b[i], carry);
            net.add_output(s);
            carry = c;
        }
        net.add_output(carry);
        let choice = build_mch(&net, &MchParams::area_oriented());
        let lut = LutLibrary::k6();
        // Aggressively truncated base cut set: plenty of cones are missing,
        // so injection adds real structure, and selections keep shifting
        // across area rounds (the invalidation traffic the test needs).
        let mut narrow = prepare_cuts(&choice, 4, 2, CutCost::Hybrid, &CutCostModel::unit(), 1);
        narrow.compact();
        // A wider enumeration supplies the cones the narrow set lost.
        let mut wide = prepare_cuts(&choice, 6, 8, CutCost::Hybrid, &CutCostModel::unit(), 1);
        wide.compact();
        let target = LutTarget::new(&lut, &narrow);

        let build_injected = || {
            let mut problem = CoverProblem::new(&choice, &target);
            let roots: Vec<NodeId> = problem.original_gates().to_vec();
            let mut injected = 0usize;
            for id in roots {
                for cut in wide.of(id).iter() {
                    if cut.is_trivial() || cut.size() > lut.k() {
                        continue;
                    }
                    let (reduced, support) = cut.function().shrink_to_support();
                    let leaves: Vec<NodeId> =
                        support.iter().map(|&i| cut.leaves()[i]).collect();
                    if leaves.is_empty()
                        || problem
                            .candidates_of(id)
                            .iter()
                            .any(|c| c.matches_cone(&leaves, &reduced))
                    {
                        continue;
                    }
                    let i = problem.inject_candidate(id, LutCandidate::from_cone(leaves, reduced));
                    problem.set_bonus(id, i, 0.25 * lut.area());
                    injected += 1;
                }
            }
            assert!(injected > 0, "no cone was injected; the test proves nothing");
            problem
        };

        for objective in [
            MappingObjective::Delay,
            MappingObjective::Balanced,
            MappingObjective::Area,
        ] {
            for rounds in [1, 3, 8] {
                let problem = build_injected();
                let memo = EngineParams {
                    objective,
                    area_rounds: rounds,
                    exact_area: false,
                    memoise: true,
                };
                let full = EngineParams {
                    memoise: false,
                    ..memo
                };
                assert_eq!(
                    problem.emit(&problem.solve_selection(&memo)),
                    problem.emit(&problem.solve_selection(&full)),
                    "{objective:?} with {rounds} rounds diverged under memoisation"
                );
            }
        }
    }

    /// Repeated solves of one problem must be independent: every per-solve
    /// structure (arrivals, flows, selections, the `CandidateCache`) is
    /// allocated fresh inside `solve_selection`, so a second solve — with the
    /// same or different parameters, in any order — is bit-identical to a
    /// first solve on a fresh problem. The warm-start sweep path leans on
    /// this directly (one prepared problem, many parameter variants), as does
    /// fusion (two solves of the guided problem).
    #[test]
    fn repeated_solves_of_one_problem_are_bit_identical() {
        let mut net = Network::with_name(NetworkKind::Aig, "resolve-idem");
        let a = net.add_inputs(3);
        let b = net.add_inputs(3);
        let mut carry = net.constant(false);
        for i in 0..3 {
            let (s, c) = net.full_adder(a[i], b[i], carry);
            net.add_output(s);
            carry = c;
        }
        net.add_output(carry);
        let choice = build_mch(&net, &MchParams::area_oriented());
        let lut = LutLibrary::k4();
        let mut cuts = prepare_cuts(&choice, 4, 8, CutCost::Hybrid, &CutCostModel::unit(), 1);
        cuts.compact();
        let target = LutTarget::new(&lut, &cuts);

        let variants: Vec<EngineParams> = [
            (MappingObjective::Delay, 1, false),
            (MappingObjective::Balanced, 3, false),
            (MappingObjective::Area, 3, true),
            (MappingObjective::Area, 8, false),
        ]
        .into_iter()
        .map(|(objective, area_rounds, exact_area)| EngineParams {
            objective,
            area_rounds,
            exact_area,
            memoise: true,
        })
        .collect();

        // Reference: one fresh problem per (variant, repetition).
        let reference: Vec<_> = variants
            .iter()
            .map(|p| CoverProblem::new(&choice, &target).solve(p))
            .collect();

        // One shared problem, solved under every variant, forwards then
        // backwards, twice — 4× per variant, interleaved with the others.
        let shared = CoverProblem::new(&choice, &target);
        for _ in 0..2 {
            for (p, expect) in variants.iter().zip(&reference) {
                assert_eq!(&shared.solve(p), expect, "forward re-solve diverged");
            }
            for (p, expect) in variants.iter().zip(&reference).rev() {
                assert_eq!(&shared.solve(p), expect, "backward re-solve diverged");
            }
        }

        // The split form (`solve_selection` + `emit`) is just as repeatable,
        // including emitting one selection twice.
        let sel = shared.solve_selection(&variants[0]);
        assert_eq!(shared.emit(&sel), reference[0]);
        assert_eq!(shared.emit(&sel), reference[0]);
    }

    /// A cached skeleton handed out by value must be byte-transparent: a
    /// problem built via `with_skeleton` on a clone solves identically to one
    /// built from scratch, and mutating one clone (injection, bonuses) never
    /// contaminates a sibling built from the same skeleton.
    #[test]
    fn skeleton_clones_are_byte_transparent_and_isolated() {
        let mut net = Network::with_name(NetworkKind::Aig, "skeleton-share");
        let a = net.add_inputs(4);
        let b = net.add_inputs(4);
        let mut carry = net.constant(false);
        for i in 0..4 {
            let (s, c) = net.full_adder(a[i], b[i], carry);
            net.add_output(s);
            carry = c;
        }
        net.add_output(carry);
        let choice = build_mch(&net, &MchParams::area_oriented());
        let lut = LutLibrary::k6();
        let mut cuts = prepare_cuts(&choice, 6, 8, CutCost::Hybrid, &CutCostModel::unit(), 1);
        cuts.compact();
        let target = LutTarget::new(&lut, &cuts);
        let params = EngineParams {
            objective: MappingObjective::Balanced,
            area_rounds: 3,
            exact_area: false,
            memoise: true,
        };

        let fresh = CoverProblem::new(&choice, &target).solve(&params);
        let skeleton = CoverSkeleton::build(&choice, &target);

        // Clone 1 is mutated: inject a self-made cone candidate with a bonus.
        let mut poked = CoverProblem::with_skeleton(&choice, &target, skeleton.clone());
        let root = *poked.original_gates().last().unwrap();
        let cand = poked.candidates_of(root)[0].clone();
        let i = poked.inject_candidate(root, cand);
        poked.set_bonus(root, i, 1.0);
        let _ = poked.solve(&params);

        // Clone 2, taken afterwards, still matches the from-scratch build.
        let pristine = CoverProblem::with_skeleton(&choice, &target, skeleton.clone());
        assert_eq!(pristine.solve(&params), fresh);
    }
}
