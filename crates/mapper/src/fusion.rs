//! Cross-mapper fusion: ASIC-guided K-LUT mapping.
//!
//! "Mapping Fusion: Improving FPGA Technology Mapping with ASIC Mapper" shows
//! that the structure an ASIC mapper selects is itself a useful choice source
//! for LUT covering: standard-cell matching prefers cones with cheap Boolean
//! decompositions, and those cones are often exactly the ones a K-LUT cover
//! should commit to. Because both mappers here are
//! [`CoverTarget`](crate::engine::CoverTarget)s over the same
//! [`CoverProblem`] engine, the fusion pipeline is small:
//!
//! 1. run an ASIC cover over the choice network's cuts
//!    ([`CoverProblem::solve_selection`] — no netlist is emitted),
//! 2. harvest the winning cover as **cell clusters**: each selected cone
//!    greedily absorbs the selected cones of its fanin cells while the
//!    merged support fits `K` leaves, so a harvested cone is a whole
//!    subtree of the would-be cell netlist expressible as one LUT,
//! 3. feed the clusters into the LUT problem, per [`FusionMode`]: as
//!    **injected** extra candidates on their root nodes (cones the LUT cut
//!    ranking had truncated away compete again) and/or as a
//!    **selection-key bias** ([`CoverProblem::set_bonus`]) that breaks
//!    area-flow near-ties toward ASIC-chosen cones,
//! 4. solve the LUT cover twice — unguided and guided — and emit whichever
//!    maps better under the objective (ties keep the unguided cover). Area
//!    flow is a heuristic, so a locally attractive guide cone can globally
//!    reduce sharing; the guard makes the guide strictly one-sided: it can
//!    improve the mapping, never regress it.
//!
//! With [`FusionMode::Off`] (the default everywhere) the pipeline delegates
//! to [`map_lut`] unchanged, so existing flows stay byte-identical.
//!
//! The harvest and application are pure functions of the deterministic ASIC
//! selection, so fused output is byte-identical at every thread count — the
//! same invariant every other phase holds (`tests/choice_determinism.rs`).

use crate::asic::{library_cost_model, AsicMapParams, AsicTarget, MatchCandidate};
use crate::engine::{CoverProblem, CoverSkeleton};
use crate::lut::{map_lut, LutCandidate, LutMapParams, LutTarget};
use crate::mapping::{prepare_cuts, MappingObjective};
use crate::netlist::LutNetlist;
use crate::prepared::{map_lut_prepared, PreparedCover};
use mch_choice::ChoiceNetwork;
use mch_cut::CutCostModel;
use mch_logic::{NodeId, TruthTable};
use mch_techlib::{Library, LutLibrary};

/// How the ASIC guide pass feeds the LUT cover (see the module docs).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum FusionMode {
    /// No fusion: [`map_lut_fused`] behaves exactly like [`map_lut`].
    #[default]
    Off,
    /// Bias only: LUT candidates that coincide with ASIC-selected cones get a
    /// selection-key bonus; no candidates are added.
    Bias,
    /// Injection only: ASIC-selected cones missing from the LUT candidate
    /// lists are injected as extra candidates; no bias is applied.
    Inject,
    /// Injection plus bias — the full fusion pipeline, and what the
    /// `lut_fusion` flow preset uses.
    Full,
}

impl FusionMode {
    /// Whether the ASIC guide pass runs at all.
    pub fn is_enabled(self) -> bool {
        self != FusionMode::Off
    }

    fn injects(self) -> bool {
        matches!(self, FusionMode::Inject | FusionMode::Full)
    }

    fn biases(self) -> bool {
        matches!(self, FusionMode::Bias | FusionMode::Full)
    }
}

/// Selection-key bonus granted to ASIC-coinciding LUT candidates, as a
/// fraction of one LUT area. Small enough that a cone only wins when it is
/// within a quarter LUT of the area-flow optimum — the bias breaks near-ties,
/// it does not override clearly better covers.
const FUSION_BONUS_LUTS: f64 = 0.25;

/// A cone harvested from the ASIC cover: the root it covers, its
/// support-reduced leaves (sorted, distinct) and the function they feed.
/// One cone may absorb several standard cells (see [`harvest_asic_cones`]).
struct AsicCone {
    root: NodeId,
    leaves: Vec<NodeId>,
    function: TruthTable,
}

/// Maps a choice network onto K-LUTs with ASIC-guided fusion.
///
/// `library` drives the ASIC guide pass; `params.fusion` selects what the
/// harvested cones do ([`FusionMode`]). With [`FusionMode::Off`] this is
/// exactly [`map_lut`] — same bytes out — and `library` is untouched.
///
/// # Panics
///
/// As [`crate::map_asic`]: panics if the library cannot match some node
/// function (never the case for [`mch_techlib::asap7_lite`]).
pub fn map_lut_fused(
    choice: &ChoiceNetwork,
    lut: &LutLibrary,
    library: &Library,
    params: &LutMapParams,
) -> LutNetlist {
    if !params.fusion.is_enabled() {
        return map_lut(choice, lut, params);
    }
    let cones = harvest_asic_cones(choice, library, params, lut.k());

    let mut cuts = prepare_cuts(
        choice,
        lut.k(),
        params.cut_limit,
        params.cut_ranking,
        &CutCostModel::unit(),
        params.threads,
    );
    cuts.compact();
    let target = LutTarget::new(lut, &cuts);
    let problem = CoverProblem::new(choice, &target);
    solve_guarded(problem, lut, &cones, params)
}

/// The guarded double solve shared by the one-shot and warm-start pipelines:
/// solve the unguided cover first (identical to [`map_lut`] — same cuts, same
/// engine parameters), then the guided one, and emit whichever maps better
/// under the objective. Area flow is a heuristic: an ASIC cone that looks
/// locally cheap can globally reduce sharing, so the guide's cover is
/// accepted only when it wins — the guide can help, never hurt. Ties keep the
/// unguided cover, so a guide pass that changes nothing still returns the
/// plain mapper's bytes.
fn solve_guarded(
    mut problem: CoverProblem<'_, LutTarget<'_>>,
    lut: &LutLibrary,
    cones: &[AsicCone],
    params: &LutMapParams,
) -> LutNetlist {
    let engine = params.engine_params();
    let plain = problem.emit(&problem.solve_selection(&engine));
    apply_cones(&mut problem, lut, cones, params.fusion);
    let guided = problem.emit(&problem.solve_selection(&engine));
    let key = |n: &LutNetlist| match params.objective {
        MappingObjective::Area => (n.lut_count(), n.level_count()),
        _ => (n.level_count() as usize, n.lut_count() as u32),
    };
    if key(&guided) < key(&plain) {
        guided
    } else {
        plain
    }
}

/// The ASIC parameters of the guide pass, derived from the LUT parameters:
/// objective, threads and memoisation carry over, everything else takes the
/// ASIC defaults. The guide's cut ranking — which shapes its cut set, and
/// hence the prepared guide artifact — is the objective's natural ASIC
/// ranking.
fn guide_asic_params(params: &LutMapParams) -> AsicMapParams {
    AsicMapParams::new(params.objective)
        .with_threads(params.threads)
        .with_memoise(params.memoise)
}

/// Runs the preparation phase of the fusion guide pass: ASIC cut enumeration
/// and Boolean matching under the guide's derived ASIC parameters
/// (objective-derived ranking, the LUT `cut_limit`).
///
/// Of `params`, only `objective`, `cut_limit` and `threads` reach this phase,
/// and `threads` never changes the result — a cache key needs `objective`,
/// `cut_limit` and the cell library.
pub fn prepare_fusion_guide(
    choice: &ChoiceNetwork,
    library: &Library,
    params: &LutMapParams,
) -> PreparedCover<MatchCandidate> {
    let asic_params = guide_asic_params(params);
    let cut_size = library.max_inputs().clamp(3, 6);
    let mut cuts = prepare_cuts(
        choice,
        cut_size,
        params.cut_limit,
        asic_params.cut_ranking,
        &library_cost_model(library),
        params.threads,
    );
    cuts.compact();
    let skeleton = {
        let target = AsicTarget::new(library, &cuts);
        CoverSkeleton::build(choice, &target)
    };
    PreparedCover { cuts, skeleton }
}

/// [`map_lut_fused`] over prepared covers — the warm-start path.
///
/// `lut_prep` must come from [`crate::prepare_lut_cover`] and `guide_prep`
/// from [`prepare_fusion_guide`], both over the same choice network and
/// parameters (`cut_limit`, `cut_ranking`, `objective`). Byte-identical to
/// the one-shot [`map_lut_fused`]; with [`FusionMode::Off`] the guide
/// artifact is ignored entirely and this is [`map_lut_prepared`].
pub fn map_lut_fused_prepared(
    choice: &ChoiceNetwork,
    lut: &LutLibrary,
    library: &Library,
    params: &LutMapParams,
    lut_prep: &PreparedCover<LutCandidate>,
    guide_prep: &PreparedCover<MatchCandidate>,
) -> LutNetlist {
    if !params.fusion.is_enabled() {
        return map_lut_prepared(choice, lut, lut_prep, params);
    }
    let cones = {
        let target = AsicTarget::new(library, &guide_prep.cuts);
        let problem = CoverProblem::with_skeleton(choice, &target, guide_prep.skeleton.clone());
        harvest_from_selection(choice, &problem, params, lut.k())
    };
    let target = LutTarget::new(lut, &lut_prep.cuts);
    let problem = CoverProblem::with_skeleton(choice, &target, lut_prep.skeleton.clone());
    solve_guarded(problem, lut, &cones, params)
}

/// Runs the ASIC guide cover and returns the harvested cones in id order.
///
/// The guide pass reuses the LUT parameters where they apply (objective,
/// cut limit, threads, memoisation) and the ASIC defaults elsewhere, and
/// solves the selection only — no cell netlist is ever emitted.
///
/// Standard cells are narrower than a `K`-LUT, so a bare cell cone makes a
/// poor LUT candidate: committing to it fragments the cover. The harvest
/// therefore **clusters** the winning cover: each selected cell cone greedily
/// absorbs the selected cones of its fanin cells while the merged support
/// still fits `k` leaves. The merged cone covers a whole subtree of the cell
/// netlist with one LUT — the structural alignment fusion is after — and the
/// cell boundaries inside it are exactly the ASIC mapper's choices.
fn harvest_asic_cones(
    choice: &ChoiceNetwork,
    library: &Library,
    params: &LutMapParams,
    k: usize,
) -> Vec<AsicCone> {
    let asic_params = guide_asic_params(params);
    let cut_size = library.max_inputs().clamp(3, 6);
    let mut cuts = prepare_cuts(
        choice,
        cut_size,
        params.cut_limit,
        asic_params.cut_ranking,
        &library_cost_model(library),
        params.threads,
    );
    cuts.compact();
    let target = AsicTarget::new(library, &cuts);
    let problem = CoverProblem::new(choice, &target);
    harvest_from_selection(choice, &problem, params, k)
}

/// Solves the guide problem's selection and clusters its winning cover into
/// LUT-sized cones (see [`harvest_asic_cones`] for the clustering rules).
/// Shared by the one-shot path (which builds the guide problem from scratch)
/// and the warm-start path (which rebuilds it from a [`PreparedCover`]).
fn harvest_from_selection(
    choice: &ChoiceNetwork,
    problem: &CoverProblem<'_, AsicTarget<'_>>,
    params: &LutMapParams,
    k: usize,
) -> Vec<AsicCone> {
    let selection = problem.solve_selection(&guide_asic_params(params).engine_params());

    // The winning cover: the selected cell cone of every needed gate.
    let mut selected: Vec<Option<(Vec<NodeId>, TruthTable)>> =
        vec![None; choice.network().len()];
    for &id in problem.original_gates() {
        if selection.is_needed(id) {
            let (leaves, function) = problem.selected(&selection, id).cone();
            selected[id.index()] = Some((leaves.to_vec(), function.clone()));
        }
    }

    let mut cones = Vec::new();
    for &id in problem.original_gates() {
        let Some((cell_leaves, _)) = selected[id.index()].as_ref() else {
            continue;
        };
        // Greedy absorption, deterministic: repeatedly inline the lowest-id
        // leaf that is itself a selected cell root, as long as the merged
        // support still fits one LUT. Every inlined root moves to the
        // interior; its cone leaves join the support unless already interior.
        let mut interior: Vec<NodeId> = vec![id];
        let mut leaves: Vec<NodeId> = cell_leaves.clone();
        loop {
            let mut advanced = false;
            for (pos, &leaf) in leaves.iter().enumerate() {
                let Some((sub_leaves, _)) = selected[leaf.index()].as_ref() else {
                    continue;
                };
                let mut merged = leaves.clone();
                merged.remove(pos);
                for &l in sub_leaves {
                    if interior.contains(&l) || l == leaf {
                        continue;
                    }
                    if let Err(p) = merged.binary_search(&l) {
                        merged.insert(p, l);
                    }
                }
                if merged.len() <= k {
                    interior.push(leaf);
                    leaves = merged;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        interior.sort_unstable();
        let function = evaluate_cluster(&selected, &interior, &leaves);
        let (reduced, support) = function.shrink_to_support();
        let reduced_leaves: Vec<NodeId> = support.iter().map(|&v| leaves[v]).collect();
        if reduced_leaves.is_empty() {
            continue;
        }
        cones.push(AsicCone {
            root: id,
            leaves: reduced_leaves,
            function: reduced,
        });
    }
    cones
}

/// Truth table of a cell cluster over its merged `leaves`.
///
/// `interior` is the ascending-id list of absorbed cell roots (the cluster's
/// root is its maximum); each interior cone leaf is either a merged leaf or a
/// smaller interior root, so one ascending pass per minterm evaluates the
/// whole cluster. At most `2^k = 64` minterms over a handful of cells.
fn evaluate_cluster(
    selected: &[Option<(Vec<NodeId>, TruthTable)>],
    interior: &[NodeId],
    leaves: &[NodeId],
) -> TruthTable {
    let mut out = TruthTable::zeros(leaves.len());
    let mut values = vec![false; interior.len()];
    for minterm in 0..out.num_bits() {
        for (i, &node) in interior.iter().enumerate() {
            let (cone_leaves, function) = selected[node.index()]
                .as_ref()
                .expect("interior nodes are selected cell roots");
            let mut index = 0usize;
            for (var, &l) in cone_leaves.iter().enumerate() {
                let value = match leaves.binary_search(&l) {
                    Ok(v) => minterm >> v & 1 == 1,
                    Err(_) => {
                        values[interior
                            .binary_search(&l)
                            .expect("cluster leaves are merged leaves or interior roots")]
                    }
                };
                if value {
                    index |= 1 << var;
                }
            }
            values[i] = function.bit(index);
        }
        out.set_bit(minterm, values[interior.len() - 1]);
    }
    out
}

/// Applies harvested cones to the LUT problem per the fusion mode.
///
/// Cones wider than `K` cannot be a single LUT and are skipped. A cone that
/// already exists as an enumerated LUT candidate is biased in place (never
/// duplicated); a missing cone is injected — through
/// [`CoverProblem::inject_candidate`], which also wires the new candidate
/// into the dirty-bit `users` relation so memoisation stays exact.
fn apply_cones(
    problem: &mut CoverProblem<'_, LutTarget<'_>>,
    lut: &LutLibrary,
    cones: &[AsicCone],
    mode: FusionMode,
) {
    let bonus = FUSION_BONUS_LUTS * lut.area();
    for cone in cones {
        if cone.leaves.is_empty() || cone.leaves.len() > lut.k() {
            continue;
        }
        let existing = problem
            .candidates_of(cone.root)
            .iter()
            .position(|c| c.matches_cone(&cone.leaves, &cone.function));
        match existing {
            Some(i) => {
                if mode.biases() {
                    problem.set_bonus(cone.root, i, bonus);
                }
            }
            None => {
                if mode.injects() {
                    let cand =
                        LutCandidate::from_cone(cone.leaves.clone(), cone.function.clone());
                    let i = problem.inject_candidate(cone.root, cand);
                    if mode.biases() {
                        problem.set_bonus(cone.root, i, bonus);
                    }
                }
            }
        }
    }
}

/// Convenience: fused mapping of a plain network (no choices).
pub fn map_lut_fused_network(
    network: &mch_logic::Network,
    lut: &LutLibrary,
    library: &Library,
    params: &LutMapParams,
) -> LutNetlist {
    map_lut_fused(&ChoiceNetwork::from_network(network), lut, library, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingObjective;
    use mch_choice::{build_mch, MchParams};
    use mch_logic::{cec, Network, NetworkKind};
    use mch_techlib::asap7_lite;

    fn adder4() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "adder4");
        let a = n.add_inputs(4);
        let b = n.add_inputs(4);
        let mut carry = n.constant(false);
        for i in 0..4 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            n.add_output(s);
            carry = c;
        }
        n.add_output(carry);
        n
    }

    #[test]
    fn fusion_off_is_byte_identical_to_plain_mapping() {
        let net = adder4();
        let choice = build_mch(&net, &MchParams::area_oriented());
        let params = LutMapParams::default();
        let plain = map_lut(&choice, &LutLibrary::k6(), &params);
        let fused = map_lut_fused(&choice, &LutLibrary::k6(), &asap7_lite(), &params);
        assert_eq!(plain, fused);
    }

    #[test]
    fn every_fusion_mode_stays_equivalent() {
        let net = adder4();
        let choice = build_mch(&net, &MchParams::area_oriented());
        for mode in [FusionMode::Bias, FusionMode::Inject, FusionMode::Full] {
            for objective in [
                MappingObjective::Delay,
                MappingObjective::Balanced,
                MappingObjective::Area,
            ] {
                let params = LutMapParams::new(objective).with_fusion(mode);
                let fused = map_lut_fused(&choice, &LutLibrary::k6(), &asap7_lite(), &params);
                assert!(
                    cec(&net, &fused.to_network()).holds(),
                    "{mode:?}/{objective:?} broke equivalence"
                );
            }
        }
    }

    #[test]
    fn prepared_fused_solves_match_one_shot_mapping_bytes() {
        let net = adder4();
        let choice = build_mch(&net, &MchParams::area_oriented());
        let lut = LutLibrary::k6();
        let lib = asap7_lite();
        for mode in [
            FusionMode::Off,
            FusionMode::Bias,
            FusionMode::Inject,
            FusionMode::Full,
        ] {
            let base = LutMapParams::new(MappingObjective::Area).with_fusion(mode);
            let lut_prep = crate::prepared::prepare_lut_cover(&choice, &lut, &base);
            let guide_prep = prepare_fusion_guide(&choice, &lib, &base);
            for params in [base, base.with_area_rounds(1), base.with_exact_area(true)] {
                assert_eq!(
                    map_lut_fused_prepared(&choice, &lut, &lib, &params, &lut_prep, &guide_prep),
                    map_lut_fused(&choice, &lut, &lib, &params),
                    "{mode:?}/{params:?} diverged from the one-shot fused mapper"
                );
            }
        }
    }

    #[test]
    fn fused_memoisation_matches_full_recomputation() {
        let net = adder4();
        let choice = build_mch(&net, &MchParams::area_oriented());
        for mode in [FusionMode::Bias, FusionMode::Inject, FusionMode::Full] {
            let params = LutMapParams::default().with_fusion(mode);
            let memo = map_lut_fused(&choice, &LutLibrary::k6(), &asap7_lite(), &params);
            let full = map_lut_fused(
                &choice,
                &LutLibrary::k6(),
                &asap7_lite(),
                &params.with_memoise(false),
            );
            assert_eq!(memo, full, "{mode:?} diverged under memoisation");
        }
    }
}
