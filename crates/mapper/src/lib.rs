//! Cut-based technology mappers (ASIC standard cells and FPGA K-LUTs) with
//! structural-choice support.
//!
//! Both mappers accept a [`mch_choice::ChoiceNetwork`]; a plain network is the
//! degenerate case with zero choices (see [`map_asic_network`] /
//! [`map_lut_network`]). Choice-node cuts are transferred to their
//! representative nodes before the dynamic-programming passes (Algorithm 3 of
//! the MCH paper), so heterogeneous candidate structures are evaluated with
//! real technology costs.
//!
//! Both mappers delegate their covering loop (delay pass, required-time
//! propagation, memoised area recovery) to the shared [`engine`]; the
//! target-specific parts — candidate enumeration, cost model, netlist
//! emission — are supplied through the [`CoverTarget`] trait.
//!
//! # Example
//!
//! ```
//! use mch_logic::{Network, NetworkKind};
//! use mch_mapper::{map_asic_network, map_lut_network, AsicMapParams, LutMapParams};
//! use mch_techlib::{asap7_lite, LutLibrary};
//!
//! let mut aig = Network::new(NetworkKind::Aig);
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let c = aig.add_input();
//! let f = aig.and2(a, b);
//! let g = aig.or(f, c);
//! aig.add_output(g);
//!
//! let lib = asap7_lite();
//! let asic = map_asic_network(&aig, &lib, &AsicMapParams::default());
//! assert!(asic.area(&lib) > 0.0);
//!
//! let fpga = map_lut_network(&aig, &LutLibrary::k6(), &LutMapParams::default());
//! assert_eq!(fpga.lut_count(), 1);
//! ```

#![warn(missing_docs)]

mod asic;
pub mod engine;
pub mod fusion;
mod lut;
mod mapping;
mod netlist;
mod prepared;

pub use asic::{
    library_cost_model, map_asic, map_asic_network, map_asic_with_cuts, AsicMapParams, AsicTarget,
    MatchCandidate,
};
pub use engine::{
    CoverProblem, CoverSelection, CoverSkeleton, CoverTarget, EngineParams, SLACK_EPS,
};
pub use fusion::{
    map_lut_fused, map_lut_fused_network, map_lut_fused_prepared, prepare_fusion_guide, FusionMode,
};
pub use lut::{map_lut, map_lut_network, map_lut_with_cuts, LutCandidate, LutMapParams, LutTarget};
pub use mapping::{prepare_cuts, MappingObjective};
pub use prepared::{
    map_asic_prepared, map_lut_prepared, prepare_asic_cover, prepare_lut_cover, PreparedCover,
};
pub use mch_cut::{CutCost, CutCostModel, CutCosts};
pub use netlist::{CellNetlist, LutNetlist, MappedCell, MappedLut, NetRef};
