//! Cut-based K-LUT (FPGA) technology mapping with choice-network support.

use crate::mapping::{prepare_cuts, MappingObjective};
use crate::netlist::{LutNetlist, NetRef};
use mch_choice::ChoiceNetwork;
use mch_cut::{CutCost, CutCostModel};
use mch_logic::{NodeId, TruthTable};
use mch_techlib::LutLibrary;
use std::collections::HashMap;

/// Parameters of K-LUT mapping.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct LutMapParams {
    /// Mapping objective (delay / balanced / area).
    pub objective: MappingObjective,
    /// Maximum number of cuts per node.
    pub cut_limit: usize,
    /// Number of area-recovery passes after the delay-oriented pass.
    pub area_rounds: usize,
    /// How cuts are ranked before the per-node `cut_limit` truncates them
    /// (see [`CutCost`]); defaults to the objective's natural ranking.
    pub cut_ranking: CutCost,
    /// Worker threads for level-parallel cut enumeration and choice transfer
    /// (see [`mch_cut::enumerate_cuts_threaded`]); `1` selects the serial
    /// path, results are identical for every value. Defaults to
    /// [`mch_cut::default_threads`].
    pub threads: usize,
}

impl LutMapParams {
    /// Creates parameters for the given objective with default knobs.
    pub fn new(objective: MappingObjective) -> Self {
        LutMapParams {
            objective,
            cut_limit: 8,
            area_rounds: 3,
            cut_ranking: objective.default_ranking(),
            threads: mch_cut::default_threads(),
        }
    }

    /// Returns the same parameters with an explicit cut ranking.
    pub fn with_ranking(mut self, ranking: CutCost) -> Self {
        self.cut_ranking = ranking;
        self
    }

    /// Returns the same parameters with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

impl Default for LutMapParams {
    fn default() -> Self {
        LutMapParams::new(MappingObjective::Area)
    }
}

#[derive(Clone, Debug)]
struct LutCandidate {
    leaves: Vec<NodeId>,
    function: TruthTable,
}

impl LutCandidate {
    fn arrival(&self, arrivals: &[f64], lut_delay: f64) -> f64 {
        self.leaves
            .iter()
            .map(|l| arrivals[l.index()])
            .fold(0.0, f64::max)
            + lut_delay
    }

    fn area_flow(&self, flows: &[f64], refs: &[f64], lut_area: f64) -> f64 {
        let mut acc = lut_area;
        for l in &self.leaves {
            acc += flows[l.index()] / refs[l.index()].max(1.0);
        }
        acc
    }
}

/// Maps a choice network onto K-input LUTs.
///
/// Identical in structure to the ASIC mapper, except that every cut of at most
/// `K` leaves is implementable (the LUT mask is the cut function), so no
/// Boolean matching is needed. Choice-node cuts are transferred to their
/// representatives first, so candidate structures from other representations
/// compete on equal terms — this is the configuration that produced the EPFL
/// best-results entries in the paper (Table II).
pub fn map_lut(choice: &ChoiceNetwork, lut: &LutLibrary, params: &LutMapParams) -> LutNetlist {
    let net = choice.network();
    // The unit model is exact for LUTs: one level, one LUT per cut.
    let cuts = prepare_cuts(
        choice,
        lut.k(),
        params.cut_limit,
        params.cut_ranking,
        &CutCostModel::unit(),
        params.threads,
    );

    let original_gates: Vec<NodeId> = net
        .gate_ids()
        .filter(|id| choice.is_original(*id))
        .collect();
    let mut candidates: Vec<Vec<LutCandidate>> = vec![Vec::new(); net.len()];
    for &id in &original_gates {
        let mut cands = Vec::new();
        for cut in cuts.of(id).iter() {
            if cut.is_trivial() || cut.size() > lut.k() {
                continue;
            }
            let (reduced, support) = cut.function().shrink_to_support();
            let leaves: Vec<NodeId> = support.iter().map(|&i| cut.leaves()[i]).collect();
            if leaves.is_empty() {
                // The cone is functionally constant (redundant logic): cover
                // it with a one-input constant LUT anchored at the cut's
                // first leaf so the netlist stays structurally uniform.
                if let Some(&anchor) = cut.leaves().first() {
                    let function = TruthTable::constant(1, reduced.bit(0));
                    if !cands
                        .iter()
                        .any(|c: &LutCandidate| c.leaves == [anchor] && c.function == function)
                    {
                        cands.push(LutCandidate {
                            leaves: vec![anchor],
                            function,
                        });
                    }
                }
                continue;
            }
            if !cands
                .iter()
                .any(|c: &LutCandidate| c.leaves == leaves && c.function == reduced)
            {
                cands.push(LutCandidate {
                    leaves,
                    function: reduced,
                });
            }
        }
        assert!(!cands.is_empty(), "node {id} has no K-feasible cut");
        candidates[id.index()] = cands;
    }

    let mut refs = vec![0.0f64; net.len()];
    for &id in &original_gates {
        for f in net.node(id).fanins() {
            refs[f.node().index()] += 1.0;
        }
    }
    for o in net.outputs() {
        refs[o.node().index()] += 1.0;
    }

    // Delay-oriented pass.
    let mut arrival = vec![0.0f64; net.len()];
    let mut flow = vec![0.0f64; net.len()];
    let mut best: Vec<usize> = vec![usize::MAX; net.len()];
    for &id in &original_gates {
        let cands = &candidates[id.index()];
        let mut chosen = 0;
        let mut key = (f64::INFINITY, f64::INFINITY);
        for (i, c) in cands.iter().enumerate() {
            let arr = c.arrival(&arrival, lut.delay());
            let af = c.area_flow(&flow, &refs, lut.area());
            if (arr, af) < key {
                key = (arr, af);
                chosen = i;
            }
        }
        best[id.index()] = chosen;
        arrival[id.index()] = key.0;
        flow[id.index()] =
            cands[chosen].area_flow(&flow, &refs, lut.area()) / refs[id.index()].max(1.0);
    }
    let delay_target = net
        .outputs()
        .iter()
        .map(|o| arrival[o.node().index()])
        .fold(0.0, f64::max);

    // Area-recovery passes.
    for _ in 0..params.area_rounds {
        let mut required = vec![f64::INFINITY; net.len()];
        if params.objective != MappingObjective::Area {
            for o in net.outputs() {
                let idx = o.node().index();
                required[idx] = required[idx].min(delay_target);
            }
            for &id in original_gates.iter().rev() {
                let r = required[id.index()];
                if !r.is_finite() {
                    continue;
                }
                let c = &candidates[id.index()][best[id.index()]];
                for l in &c.leaves {
                    required[l.index()] = required[l.index()].min(r - lut.delay());
                }
            }
        }
        for &id in &original_gates {
            let cands = &candidates[id.index()];
            let node_required = required[id.index()];
            let strict = params.objective == MappingObjective::Delay;
            let min_arrival = cands
                .iter()
                .map(|c| c.arrival(&arrival, lut.delay()))
                .fold(f64::INFINITY, f64::min);
            let mut chosen = best[id.index()];
            let mut key = (f64::INFINITY, f64::INFINITY);
            for (i, c) in cands.iter().enumerate() {
                let arr = c.arrival(&arrival, lut.delay());
                let feasible = if strict {
                    arr <= min_arrival + 1e-9
                } else {
                    !node_required.is_finite() || arr <= node_required + 1e-9
                };
                if !feasible {
                    continue;
                }
                let af = c.area_flow(&flow, &refs, lut.area());
                if (af, arr) < key {
                    key = (af, arr);
                    chosen = i;
                }
            }
            best[id.index()] = chosen;
            let c = &cands[chosen];
            arrival[id.index()] = c.arrival(&arrival, lut.delay());
            flow[id.index()] =
                c.area_flow(&flow, &refs, lut.area()) / refs[id.index()].max(1.0);
        }
    }

    // Cover extraction.
    let mut needed = vec![false; net.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for o in net.outputs() {
        if net.is_gate(o.node()) {
            stack.push(o.node());
        }
    }
    while let Some(id) = stack.pop() {
        if needed[id.index()] {
            continue;
        }
        needed[id.index()] = true;
        let c = &candidates[id.index()][best[id.index()]];
        for l in &c.leaves {
            if net.is_gate(*l) && !needed[l.index()] {
                stack.push(*l);
            }
        }
    }

    let mut netlist = LutNetlist::new(net.name().to_string(), net.input_count());
    let input_pos: HashMap<NodeId, usize> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();

    // Primary-output polarity is free in a LUT netlist as long as the driver's
    // positive value has no other consumer: in that case the driver LUT's
    // function is complemented in place. Otherwise a 1-input inverter LUT is
    // inserted (rare).
    let mut positive_uses: HashMap<NodeId, usize> = HashMap::new();
    for &id in &original_gates {
        if !needed[id.index()] {
            continue;
        }
        for l in &candidates[id.index()][best[id.index()]].leaves {
            *positive_uses.entry(*l).or_insert(0) += 1;
        }
    }
    for o in net.outputs() {
        if !o.is_complement() {
            *positive_uses.entry(o.node()).or_insert(0) += 1;
        }
    }
    let mut emit_complemented: HashMap<NodeId, bool> = HashMap::new();
    for o in net.outputs() {
        let node = o.node();
        if o.is_complement()
            && net.is_gate(node)
            && needed[node.index()]
            && positive_uses.get(&node).copied().unwrap_or(0) == 0
        {
            emit_complemented.insert(node, true);
        }
    }

    let mut node_ref: HashMap<NodeId, NetRef> = HashMap::new();
    let mut inverted: HashMap<NodeId, NetRef> = HashMap::new();

    for &id in &original_gates {
        if !needed[id.index()] {
            continue;
        }
        let c = &candidates[id.index()][best[id.index()]];
        let fanins: Vec<NetRef> = c
            .leaves
            .iter()
            .map(|l| {
                if l.is_const() {
                    NetRef::Const(false)
                } else if let Some(&i) = input_pos.get(l) {
                    NetRef::Input(i)
                } else {
                    *node_ref.get(l).expect("leaf mapped before use")
                }
            })
            .collect();
        let function = if emit_complemented.get(&id).copied().unwrap_or(false) {
            c.function.not()
        } else {
            c.function.clone()
        };
        let out = netlist.push_lut(function, fanins);
        node_ref.insert(id, out);
    }

    for o in net.outputs() {
        let node = o.node();
        let complemented_in_place = emit_complemented.get(&node).copied().unwrap_or(false);
        let mut r = if node.is_const() {
            NetRef::Const(false)
        } else if let Some(&i) = input_pos.get(&node) {
            NetRef::Input(i)
        } else {
            *node_ref.get(&node).expect("output driver mapped")
        };
        if o.is_complement() != complemented_in_place {
            r = match r {
                NetRef::Const(v) => NetRef::Const(!v),
                other => *inverted.entry(node).or_insert_with(|| {
                    netlist.push_lut(TruthTable::var(1, 0).not(), vec![other])
                }),
            };
        }
        netlist.push_output(r);
    }
    netlist
}

/// Convenience: maps a plain network (no choices) onto K-LUTs.
pub fn map_lut_network(
    network: &mch_logic::Network,
    lut: &LutLibrary,
    params: &LutMapParams,
) -> LutNetlist {
    map_lut(&ChoiceNetwork::from_network(network), lut, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::{build_mch, MchParams};
    use mch_logic::{cec, Network, NetworkKind};

    fn parity8() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "parity8");
        let xs = n.add_inputs(8);
        let p = n.xor_reduce(&xs);
        n.add_output(p);
        n
    }

    fn adder4() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "adder4");
        let a = n.add_inputs(4);
        let b = n.add_inputs(4);
        let mut carry = n.constant(false);
        for i in 0..4 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            n.add_output(s);
            carry = c;
        }
        n.add_output(carry);
        n
    }

    #[test]
    fn lut_mapping_preserves_function() {
        for net in [parity8(), adder4()] {
            let mapped = map_lut_network(&net, &LutLibrary::k6(), &LutMapParams::default());
            assert!(mapped.lut_count() > 0);
            assert!(cec(&net, &mapped.to_network()).holds(), "{}", net.name());
        }
    }

    #[test]
    fn parity_maps_into_few_luts() {
        // An 8-input parity over 6-LUTs needs at most a handful of LUTs in two
        // to three levels (the AND-decomposed XOR tree has 21 nodes).
        let mapped = map_lut_network(&parity8(), &LutLibrary::k6(), &LutMapParams::default());
        assert!(mapped.lut_count() <= 4, "got {} LUTs", mapped.lut_count());
        assert!(mapped.level_count() <= 3);
    }

    #[test]
    fn smaller_k_needs_more_luts() {
        let net = adder4();
        let k6 = map_lut_network(&net, &LutLibrary::k6(), &LutMapParams::default());
        let k4 = map_lut_network(&net, &LutLibrary::k4(), &LutMapParams::default());
        assert!(k4.lut_count() >= k6.lut_count());
    }

    #[test]
    fn delay_objective_minimises_levels() {
        let net = adder4();
        let delay = map_lut_network(&net, &LutLibrary::k6(), &LutMapParams::new(MappingObjective::Delay));
        let area = map_lut_network(&net, &LutLibrary::k6(), &LutMapParams::new(MappingObjective::Area));
        assert!(delay.level_count() <= area.level_count());
    }

    #[test]
    fn choice_aware_lut_mapping_stays_equivalent_and_not_worse() {
        let net = adder4();
        let params = LutMapParams::default();
        let baseline = map_lut_network(&net, &LutLibrary::k6(), &params);
        let mch = build_mch(&net, &MchParams::area_oriented());
        let mapped = map_lut(&mch, &LutLibrary::k6(), &params);
        assert!(cec(&net, &mapped.to_network()).holds());
        assert!(mapped.lut_count() <= baseline.lut_count() + 1);
    }

    #[test]
    fn complemented_outputs_get_inverter_luts() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let f = n.and2(a, b);
        n.add_output(!f);
        let mapped = map_lut_network(&n, &LutLibrary::k6(), &LutMapParams::default());
        assert!(cec(&n, &mapped.to_network()).holds());
    }
}
