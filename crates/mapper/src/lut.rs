//! Cut-based K-LUT (FPGA) technology mapping with choice-network support.
//!
//! The covering loop — delay pass, required-time propagation, area recovery —
//! lives in the shared [`crate::engine`]; this module supplies the K-LUT
//! [`CoverTarget`]: every cut of at most `K` leaves is implementable (the LUT
//! mask is the cut function), so candidates need no Boolean matching and the
//! cost model is the LUT library's uniform delay/area.

use crate::engine::{cover, Cover, CoverTarget, EngineParams};
use crate::fusion::FusionMode;
use crate::mapping::{prepare_cuts, MappingObjective};
use crate::netlist::{LutNetlist, NetRef};
use mch_choice::ChoiceNetwork;
use mch_cut::{CutCost, CutCostModel, NetworkCuts};
use mch_logic::{Network, NodeId, TruthTable};
use mch_techlib::LutLibrary;
use std::collections::HashMap;

/// Parameters of K-LUT mapping.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct LutMapParams {
    /// Mapping objective (delay / balanced / area).
    pub objective: MappingObjective,
    /// Maximum number of cuts per node.
    pub cut_limit: usize,
    /// Number of area-recovery passes after the delay-oriented pass.
    pub area_rounds: usize,
    /// Run the engine's exact-area re-selection pass after the area-flow
    /// rounds (see [`EngineParams::exact_area`]). Off by default — it changes
    /// covers, and the default flows pin their quality numbers.
    pub exact_area: bool,
    /// Memoise per-node selections across area rounds (see
    /// [`crate::engine`]). On by default; `false` is the recompute baseline
    /// the `mapping_rounds` bench measures against. Results are bit-identical
    /// either way.
    pub memoise: bool,
    /// How cuts are ranked before the per-node `cut_limit` truncates them
    /// (see [`CutCost`]); defaults to the objective's natural ranking.
    pub cut_ranking: CutCost,
    /// Worker threads for level-parallel cut enumeration and choice transfer
    /// (see [`mch_cut::enumerate_cuts_threaded`]); `1` selects the serial
    /// path, results are identical for every value. Defaults to
    /// [`mch_cut::default_threads`].
    pub threads: usize,
    /// Cross-mapper fusion mode (see [`crate::fusion`]). Off by default; only
    /// honoured by [`crate::fusion::map_lut_fused`], which has the cell
    /// library the ASIC guide pass needs — [`map_lut`] itself ignores it.
    pub fusion: FusionMode,
}

impl LutMapParams {
    /// Creates parameters for the given objective with default knobs.
    pub fn new(objective: MappingObjective) -> Self {
        LutMapParams {
            objective,
            cut_limit: 8,
            area_rounds: 3,
            exact_area: false,
            memoise: true,
            cut_ranking: objective.default_ranking(),
            threads: mch_cut::default_threads(),
            fusion: FusionMode::Off,
        }
    }

    /// Returns the same parameters with an explicit cut ranking.
    pub fn with_ranking(mut self, ranking: CutCost) -> Self {
        self.cut_ranking = ranking;
        self
    }

    /// Returns the same parameters with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns the same parameters with an explicit area-recovery round count.
    pub fn with_area_rounds(mut self, rounds: usize) -> Self {
        self.area_rounds = rounds;
        self
    }

    /// Returns the same parameters with the exact-area final pass toggled.
    pub fn with_exact_area(mut self, exact: bool) -> Self {
        self.exact_area = exact;
        self
    }

    /// Returns the same parameters with selection memoisation toggled.
    pub fn with_memoise(mut self, memoise: bool) -> Self {
        self.memoise = memoise;
        self
    }

    /// Returns the same parameters with an explicit fusion mode (see
    /// [`crate::fusion::map_lut_fused`]).
    pub fn with_fusion(mut self, fusion: FusionMode) -> Self {
        self.fusion = fusion;
        self
    }

    pub(crate) fn engine_params(&self) -> EngineParams {
        EngineParams {
            objective: self.objective,
            area_rounds: self.area_rounds,
            exact_area: self.exact_area,
            memoise: self.memoise,
        }
    }
}

impl Default for LutMapParams {
    fn default() -> Self {
        LutMapParams::new(MappingObjective::Area)
    }
}

/// One concrete way of covering a node with a single LUT: a support-reduced
/// cut and the LUT mask implementing its function.
///
/// Opaque outside this module; public only because it is [`LutTarget`]'s
/// [`CoverTarget::Candidate`] associated type.
#[derive(Clone, Debug)]
pub struct LutCandidate {
    leaves: Vec<NodeId>,
    function: TruthTable,
}

impl LutCandidate {
    /// Builds a candidate from a harvested ASIC cone (the fusion injection —
    /// see `fusion.rs`). `leaves` must be sorted, distinct, non-empty and
    /// `function` their support-reduced cone function.
    pub(crate) fn from_cone(leaves: Vec<NodeId>, function: TruthTable) -> Self {
        debug_assert!(!leaves.is_empty());
        debug_assert!(leaves.windows(2).all(|w| w[0] < w[1]));
        LutCandidate { leaves, function }
    }

    /// Whether this candidate covers exactly the given cone.
    pub(crate) fn matches_cone(&self, leaves: &[NodeId], function: &TruthTable) -> bool {
        self.leaves == leaves && self.function == *function
    }

    /// Approximate memory footprint in bytes (inline size plus owned heap).
    /// Feeds [`crate::PreparedCover::approx_bytes`] for the warm-start
    /// cache's byte accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.leaves.capacity() * std::mem::size_of::<NodeId>()
            + self.function.words().len() * 8
    }
}

/// The K-LUT instantiation of the covering engine's [`CoverTarget`].
///
/// Public so callers can build a [`crate::engine::CoverProblem`] and solve it
/// repeatedly under different [`EngineParams`] (the `mapping_rounds` bench
/// does exactly that).
pub struct LutTarget<'a> {
    lut: &'a LutLibrary,
    cuts: &'a NetworkCuts,
}

impl<'a> LutTarget<'a> {
    /// Creates the target over pre-enumerated cuts (from [`prepare_cuts`]
    /// with cut size `lut.k()`).
    pub fn new(lut: &'a LutLibrary, cuts: &'a NetworkCuts) -> Self {
        LutTarget { lut, cuts }
    }
}

impl CoverTarget for LutTarget<'_> {
    type Candidate = LutCandidate;
    type Netlist = LutNetlist;

    fn candidates(&self, _net: &Network, id: NodeId) -> Vec<LutCandidate> {
        let mut cands = Vec::new();
        for cut in self.cuts.of(id).iter() {
            if cut.is_trivial() || cut.size() > self.lut.k() {
                continue;
            }
            let (reduced, support) = cut.function().shrink_to_support();
            let leaves: Vec<NodeId> = support.iter().map(|&i| cut.leaves()[i]).collect();
            if leaves.is_empty() {
                // The cone is functionally constant (redundant logic): cover
                // it with a one-input constant LUT anchored at the cut's
                // first leaf so the netlist stays structurally uniform.
                if let Some(&anchor) = cut.leaves().first() {
                    let function = TruthTable::constant(1, reduced.bit(0));
                    if !cands
                        .iter()
                        .any(|c: &LutCandidate| c.leaves == [anchor] && c.function == function)
                    {
                        cands.push(LutCandidate {
                            leaves: vec![anchor],
                            function,
                        });
                    }
                }
                continue;
            }
            if !cands
                .iter()
                .any(|c: &LutCandidate| c.leaves == leaves && c.function == reduced)
            {
                cands.push(LutCandidate {
                    leaves,
                    function: reduced,
                });
            }
        }
        assert!(!cands.is_empty(), "node {id} has no K-feasible cut");
        cands
    }

    fn leaves<'b>(&self, cand: &'b LutCandidate) -> &'b [NodeId] {
        &cand.leaves
    }

    fn arrival(&self, cand: &LutCandidate, arrivals: &[f64]) -> f64 {
        cand.leaves
            .iter()
            .map(|l| arrivals[l.index()])
            .fold(0.0, f64::max)
            + self.lut.delay()
    }

    fn area(&self, _cand: &LutCandidate) -> f64 {
        self.lut.area()
    }

    fn leaf_required(&self, _cand: &LutCandidate, _leaf_index: usize, root_required: f64) -> f64 {
        root_required - self.lut.delay()
    }

    fn emit(&self, net: &Network, cover: &Cover<'_, LutCandidate>) -> LutNetlist {
        let mut netlist = LutNetlist::new(net.name().to_string(), net.input_count());
        let input_pos: HashMap<NodeId, usize> = net
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();

        // Primary-output polarity is free in a LUT netlist as long as the
        // driver's positive value has no other consumer: in that case the
        // driver LUT's function is complemented in place. Otherwise a 1-input
        // inverter LUT is inserted (rare).
        let mut positive_uses: HashMap<NodeId, usize> = HashMap::new();
        for &id in cover.original_gates {
            if !cover.needed[id.index()] {
                continue;
            }
            for l in &cover.selected(id).leaves {
                *positive_uses.entry(*l).or_insert(0) += 1;
            }
        }
        for o in net.outputs() {
            if !o.is_complement() {
                *positive_uses.entry(o.node()).or_insert(0) += 1;
            }
        }
        let mut emit_complemented: HashMap<NodeId, bool> = HashMap::new();
        for o in net.outputs() {
            let node = o.node();
            if o.is_complement()
                && net.is_gate(node)
                && cover.needed[node.index()]
                && positive_uses.get(&node).copied().unwrap_or(0) == 0
            {
                emit_complemented.insert(node, true);
            }
        }

        let mut node_ref: HashMap<NodeId, NetRef> = HashMap::new();
        let mut inverted: HashMap<NodeId, NetRef> = HashMap::new();

        for &id in cover.original_gates {
            if !cover.needed[id.index()] {
                continue;
            }
            let c = cover.selected(id);
            let fanins: Vec<NetRef> = c
                .leaves
                .iter()
                .map(|l| {
                    if l.is_const() {
                        NetRef::Const(false)
                    } else if let Some(&i) = input_pos.get(l) {
                        NetRef::Input(i)
                    } else {
                        *node_ref.get(l).expect("leaf mapped before use")
                    }
                })
                .collect();
            let function = if emit_complemented.get(&id).copied().unwrap_or(false) {
                c.function.not()
            } else {
                c.function.clone()
            };
            let out = netlist.push_lut(function, fanins);
            node_ref.insert(id, out);
        }

        for o in net.outputs() {
            let node = o.node();
            let complemented_in_place = emit_complemented.get(&node).copied().unwrap_or(false);
            let mut r = if node.is_const() {
                NetRef::Const(false)
            } else if let Some(&i) = input_pos.get(&node) {
                NetRef::Input(i)
            } else {
                *node_ref.get(&node).expect("output driver mapped")
            };
            if o.is_complement() != complemented_in_place {
                r = match r {
                    NetRef::Const(v) => NetRef::Const(!v),
                    other => *inverted.entry(node).or_insert_with(|| {
                        netlist.push_lut(TruthTable::var(1, 0).not(), vec![other])
                    }),
                };
            }
            netlist.push_output(r);
        }
        netlist
    }
}

/// Maps a choice network onto K-input LUTs.
///
/// Runs the same shared covering engine as the ASIC mapper (see
/// [`crate::engine`]), except that every cut of at most `K` leaves is
/// implementable (the LUT mask is the cut function), so no Boolean matching
/// is needed. Choice-node cuts are transferred to their representatives
/// first, so candidate structures from other representations compete on equal
/// terms — this is the configuration that produced the EPFL best-results
/// entries in the paper (Table II).
pub fn map_lut(choice: &ChoiceNetwork, lut: &LutLibrary, params: &LutMapParams) -> LutNetlist {
    // The unit model is exact for LUTs: one level, one LUT per cut.
    let mut cuts = prepare_cuts(
        choice,
        lut.k(),
        params.cut_limit,
        params.cut_ranking,
        &CutCostModel::unit(),
        params.threads,
    );
    // Choice transfer leaves dead spans behind (`commit_extension` cannot
    // always rewrite in place); reclaim them before covering so the arena —
    // and everything accounted against `FlowBudget::max_cut_arena_slots` —
    // is dense. `compact` preserves every node's cut list byte-for-byte.
    cuts.compact();
    map_lut_with_cuts(choice, lut, &cuts, params)
}

/// Covers a choice network onto K-LUTs over **pre-enumerated** cuts.
///
/// This is the covering phase of [`map_lut`] in isolation: `cuts` must come
/// from [`prepare_cuts`] over the same choice network with cut size
/// `lut.k()`. Use it to re-cover one cut set under several parameter settings
/// — different `area_rounds`, `exact_area` or objectives — without paying
/// enumeration and choice transfer again; the `mapping_rounds` bench measures
/// exactly this call.
pub fn map_lut_with_cuts(
    choice: &ChoiceNetwork,
    lut: &LutLibrary,
    cuts: &NetworkCuts,
    params: &LutMapParams,
) -> LutNetlist {
    let target = LutTarget::new(lut, cuts);
    cover(choice, &target, &params.engine_params())
}

/// Convenience: maps a plain network (no choices) onto K-LUTs.
pub fn map_lut_network(
    network: &mch_logic::Network,
    lut: &LutLibrary,
    params: &LutMapParams,
) -> LutNetlist {
    map_lut(&ChoiceNetwork::from_network(network), lut, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::{build_mch, MchParams};
    use mch_logic::{cec, Network, NetworkKind};

    fn parity8() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "parity8");
        let xs = n.add_inputs(8);
        let p = n.xor_reduce(&xs);
        n.add_output(p);
        n
    }

    fn adder4() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "adder4");
        let a = n.add_inputs(4);
        let b = n.add_inputs(4);
        let mut carry = n.constant(false);
        for i in 0..4 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            n.add_output(s);
            carry = c;
        }
        n.add_output(carry);
        n
    }

    #[test]
    fn lut_mapping_preserves_function() {
        for net in [parity8(), adder4()] {
            let mapped = map_lut_network(&net, &LutLibrary::k6(), &LutMapParams::default());
            assert!(mapped.lut_count() > 0);
            assert!(cec(&net, &mapped.to_network()).holds(), "{}", net.name());
        }
    }

    #[test]
    fn parity_maps_into_few_luts() {
        // An 8-input parity over 6-LUTs needs at most a handful of LUTs in two
        // to three levels (the AND-decomposed XOR tree has 21 nodes).
        let mapped = map_lut_network(&parity8(), &LutLibrary::k6(), &LutMapParams::default());
        assert!(mapped.lut_count() <= 4, "got {} LUTs", mapped.lut_count());
        assert!(mapped.level_count() <= 3);
    }

    #[test]
    fn smaller_k_needs_more_luts() {
        let net = adder4();
        let k6 = map_lut_network(&net, &LutLibrary::k6(), &LutMapParams::default());
        let k4 = map_lut_network(&net, &LutLibrary::k4(), &LutMapParams::default());
        assert!(k4.lut_count() >= k6.lut_count());
    }

    #[test]
    fn delay_objective_minimises_levels() {
        let net = adder4();
        let delay = map_lut_network(&net, &LutLibrary::k6(), &LutMapParams::new(MappingObjective::Delay));
        let area = map_lut_network(&net, &LutLibrary::k6(), &LutMapParams::new(MappingObjective::Area));
        assert!(delay.level_count() <= area.level_count());
    }

    #[test]
    fn choice_aware_lut_mapping_stays_equivalent_and_not_worse() {
        let net = adder4();
        let params = LutMapParams::default();
        let baseline = map_lut_network(&net, &LutLibrary::k6(), &params);
        let mch = build_mch(&net, &MchParams::area_oriented());
        let mapped = map_lut(&mch, &LutLibrary::k6(), &params);
        assert!(cec(&net, &mapped.to_network()).holds());
        assert!(mapped.lut_count() <= baseline.lut_count() + 1);
    }

    #[test]
    fn complemented_outputs_get_inverter_luts() {
        let mut n = Network::new(NetworkKind::Aig);
        let a = n.add_input();
        let b = n.add_input();
        let f = n.and2(a, b);
        n.add_output(!f);
        let mapped = map_lut_network(&n, &LutLibrary::k6(), &LutMapParams::default());
        assert!(cec(&n, &mapped.to_network()).holds());
    }

    #[test]
    fn memoised_selection_matches_full_recomputation() {
        for net in [parity8(), adder4()] {
            for objective in [
                MappingObjective::Delay,
                MappingObjective::Balanced,
                MappingObjective::Area,
            ] {
                for rounds in [0, 3, 8] {
                    let params = LutMapParams::new(objective).with_area_rounds(rounds);
                    let memo = map_lut_network(&net, &LutLibrary::k6(), &params);
                    let full =
                        map_lut_network(&net, &LutLibrary::k6(), &params.with_memoise(false));
                    assert_eq!(
                        memo, full,
                        "{}: {objective:?} with {rounds} rounds diverged",
                        net.name()
                    );
                }
            }
        }
    }

    #[test]
    fn exact_area_pass_stays_equivalent_and_not_larger() {
        let net = adder4();
        let params = LutMapParams::new(MappingObjective::Area);
        let flow_only = map_lut_network(&net, &LutLibrary::k6(), &params);
        let exact = map_lut_network(&net, &LutLibrary::k6(), &params.with_exact_area(true));
        assert!(cec(&net, &exact.to_network()).holds());
        assert!(
            exact.lut_count() <= flow_only.lut_count(),
            "exact-area pass grew the cover from {} to {} LUTs",
            flow_only.lut_count(),
            exact.lut_count()
        );
    }
}
